"""Property-based tests on application substrates and kernels.

These run under the functional Cilkview executor (no timing) so hypothesis
can afford many examples, plus targeted properties of the graph generator.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import CilkviewAnalyzer
from repro.apps import make_app
from repro.apps.cilk5.nqueens import NQ_SOLUTIONS, CilkNQueens
from repro.apps.ligra.graph import HostGraph, rmat, rmat_graph


def run_functionally(app):
    analyzer = CilkviewAnalyzer()
    app.setup(analyzer.machine)
    report = analyzer.analyze(app.make_root())
    app.check()
    return report


# ----------------------------------------------------------------------
# cilksort
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.integers(4, 400), st.integers(2, 64), st.integers(0, 2**32))
def test_cilksort_sorts_any_input(n, grain, seed):
    app = make_app("cilk5-cs", n=n, grain=grain, seed=seed)
    run_functionally(app)  # check() asserts sortedness vs the input


@settings(max_examples=10, deadline=None)
@given(st.integers(8, 200))
def test_cilksort_work_scales_superlinearly(n):
    small = run_functionally(make_app("cilk5-cs", n=n, grain=4))
    big = run_functionally(make_app("cilk5-cs", n=2 * n, grain=4))
    assert big.work > small.work


# ----------------------------------------------------------------------
# N-queens
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(st.sampled_from(sorted(NQ_SOLUTIONS)[:4]), st.integers(0, 3))
def test_nqueens_counts_known_solutions(n, cutoff):
    app = make_app("cilk5-nq", n=n, cutoff=min(cutoff, n))
    run_functionally(app)


def test_nqueens_legal_matches_bruteforce():
    legal = CilkNQueens.legal
    for placed in ([0], [0, 2], [1, 3, 0]):
        row = len(placed)
        for col in range(6):
            expected = all(
                c != col and abs(c - col) != row - r for r, c in enumerate(placed)
            )
            assert legal(placed, row, col) == expected


# ----------------------------------------------------------------------
# LU / matmul / transpose
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(st.sampled_from([(8, 4), (16, 4), (16, 8)]), st.integers(0, 2**16))
def test_lu_factors_random_matrices(shape, seed):
    n, grain = shape
    run_functionally(make_app("cilk5-lu", n=n, grain=grain, seed=seed))


@settings(max_examples=8, deadline=None)
@given(st.sampled_from([(8, 4), (16, 4), (16, 8)]), st.integers(0, 2**16))
def test_matmul_random_matrices(shape, seed):
    n, grain = shape
    run_functionally(make_app("cilk5-mm", n=n, grain=grain, seed=seed))


@settings(max_examples=8, deadline=None)
@given(st.sampled_from([(8, 4), (16, 8), (32, 8)]), st.integers(0, 2**16))
def test_transpose_random_matrices(shape, seed):
    n, grain = shape
    run_functionally(make_app("cilk5-mt", n=n, grain=grain, seed=seed))


# ----------------------------------------------------------------------
# R-MAT generator and CSR graph
# ----------------------------------------------------------------------
@given(st.integers(2, 8), st.integers(1, 8), st.integers(0, 2**32))
def test_rmat_edges_in_range(scale, degree, seed):
    n = 1 << scale
    for u, v in rmat(scale, degree, seed):
        assert 0 <= u < n and 0 <= v < n


@given(st.integers(2, 8), st.integers(0, 2**32))
def test_rmat_deterministic(scale, seed):
    assert rmat(scale, 4, seed) == rmat(scale, 4, seed)


@given(st.integers(2, 7), st.integers(1, 6), st.integers(0, 2**32))
def test_host_graph_invariants(scale, degree, seed):
    g = rmat_graph(scale, degree, seed, symmetric=True)
    # CSR consistency.
    assert g.offsets[0] == 0 and g.offsets[-1] == g.m
    assert len(g.edge_targets) == g.m
    for v in range(g.n):
        nbrs = g.neighbors(v)
        assert nbrs == sorted(nbrs)  # sorted adjacency
        assert len(set(nbrs)) == len(nbrs)  # deduplicated
        assert v not in nbrs  # no self loops
        for u in nbrs:  # symmetric
            assert v in g.neighbors(u)


def test_host_graph_weights_deterministic_positive():
    g1 = rmat_graph(5, 4, seed=9, weighted=True)
    g2 = rmat_graph(5, 4, seed=9, weighted=True)
    assert g1.weights == g2.weights
    assert all(w >= 1 for w in g1.weights)


def test_host_graph_directed_mode():
    edges = [(0, 1), (1, 2)]
    g = HostGraph(3, edges, symmetric=False)
    assert g.neighbors(0) == [1]
    assert g.neighbors(1) == [2]
    assert g.neighbors(2) == []


# ----------------------------------------------------------------------
# Ligra kernels under random graphs (functional execution + check)
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    st.sampled_from(["ligra-bfs", "ligra-bfsbv", "ligra-cc", "ligra-tc"]),
    st.integers(3, 6),
    st.integers(0, 2**32),
)
def test_graph_kernels_on_random_graphs(name, scale, seed):
    app = make_app(name, scale=scale, grain=4, seed=seed)
    run_functionally(app)


@settings(max_examples=6, deadline=None)
@given(
    st.sampled_from(["ligra-bc", "ligra-bf", "ligra-mis", "ligra-radii"]),
    st.integers(3, 5),
    st.integers(0, 2**32),
)
def test_remaining_graph_kernels_on_random_graphs(name, scale, seed):
    app = make_app(name, scale=scale, grain=4, seed=seed)
    run_functionally(app)
