"""L2 eviction / inclusion edge cases with a deliberately tiny L2."""

from helpers import tiny_machine


def small_l2_machine(kind="bt-mesi"):
    # 2 banks x 1KB, 2-way: 8 lines per bank -> evictions are easy to force.
    return tiny_machine(kind, l2_bank_bytes=1024, l2_assoc=2)


def fill_bank(machine, bank_id, n_lines, core_id=2, start_cycle=0):
    """Touch n_lines distinct lines mapping to one bank."""
    stride = 64 * machine.l2.n_banks
    base = machine.address_space.alloc(stride * (n_lines + 2), "filler")
    base += (bank_id - machine.l2.bank_of(base)) % machine.l2.n_banks * 64
    now = start_cycle
    for i in range(n_lines):
        machine.l1s[core_id].load(base + i * stride, now)
        now += 10
    return now


class TestL2Inclusion:
    def test_eviction_recalls_mesi_owner(self):
        machine = small_l2_machine()
        addr = machine.address_space.alloc_words(1, "x")
        machine.l1s[1].store(addr, 99, 0)  # M in core 1, owner in L2 dir
        bank = machine.l2.bank_of(addr)
        fill_bank(machine, bank, 8, core_id=2, start_cycle=10)
        # The L2 line for addr may have been evicted; its dirty data must
        # have been recalled from core 1 and written to DRAM.
        assert machine.host_read_word(addr) == 99
        if machine.l2.directory_entry(addr) is None:
            # Inclusion: the owner's L1 copy was recalled on eviction.
            assert machine.memory.read_word(addr) == 99

    def test_eviction_invalidates_mesi_sharers(self):
        machine = small_l2_machine()
        addr = machine.address_space.alloc_words(1, "x")
        machine.host_write_word(addr, 7)
        machine.l1s[1].load(addr, 0)
        machine.l1s[3].load(addr, 1)
        bank = machine.l2.bank_of(addr)
        fill_bank(machine, bank, 8, core_id=2, start_cycle=10)
        if machine.l2.directory_entry(addr) is None:
            # Inclusive L2: no L1 may retain the line after L2 eviction.
            assert machine.l1s[1].resident(addr) is None
            assert machine.l1s[3].resident(addr) is None

    def test_gwb_dirty_survives_l2_eviction_via_refetch(self):
        machine = small_l2_machine("bt-hcc-gwb")
        addr = machine.address_space.alloc_words(1, "x")
        machine.host_write_word(addr, 5)
        tiny = machine.l1s[1]
        tiny.store(addr, 50, 0)  # dirty word, untracked by the directory
        bank = machine.l2.bank_of(addr)
        fill_bank(machine, bank, 8, core_id=2, start_cycle=10)
        # The L2 copy may be gone, but the flush must still land correctly:
        # writeback_line refetches the line from DRAM and merges.
        tiny.flush_all(1000)
        assert machine.l2.peek_word(addr) == 50

    def test_denovo_owner_recalled_on_l2_eviction(self):
        machine = small_l2_machine("bt-hcc-dnv")
        addr = machine.address_space.alloc_words(1, "x")
        tiny = machine.l1s[1]
        tiny.store(addr, 31, 0)  # registered dirty
        bank = machine.l2.bank_of(addr)
        fill_bank(machine, bank, 8, core_id=2, start_cycle=10)
        assert machine.host_read_word(addr) == 31

    def test_l2_statistics_track_evictions(self):
        machine = small_l2_machine()
        fill_bank(machine, 0, 12, core_id=1)
        assert machine.l2.stats.get("evictions") > 0
        assert machine.l2.stats.get("misses") >= 12
