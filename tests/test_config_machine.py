"""Configuration presets and machine wiring tests."""

import pytest

from repro.config import (
    BIGTINY_KINDS,
    CONFIG_KINDS,
    DTS_KINDS,
    HCC_KINDS,
    SCALES,
    make_config,
)
from repro.machine import Machine


class TestConfigs:
    @pytest.mark.parametrize("kind", CONFIG_KINDS)
    @pytest.mark.parametrize("scale", sorted(SCALES))
    def test_every_preset_validates(self, kind, scale):
        config = make_config(kind, scale)
        config.validate()
        assert config.n_cores >= 1

    def test_paper_scale_matches_table2(self):
        config = make_config("bt-mesi", "paper")
        assert config.n_big == 4 and config.n_tiny == 60
        assert (config.mesh_rows, config.mesh_cols) == (8, 8)
        assert config.n_l2_banks == 8
        assert config.big_l1.size_bytes == 64 * 1024
        assert config.tiny_l1.size_bytes == 4 * 1024

    def test_large_scale_matches_table5(self):
        config = make_config("bt-hcc-dts-gwb", "large")
        assert config.n_big == 4 and config.n_tiny == 252
        assert config.mesh_cols == 32
        assert config.n_l2_banks == 32
        assert config.dts and config.tiny_protocol == "gpu-wb"

    def test_hcc_kinds_select_protocols(self):
        assert make_config("bt-hcc-dnv", "tiny").tiny_protocol == "denovo"
        assert make_config("bt-hcc-gwt", "tiny").tiny_protocol == "gpu-wt"
        assert make_config("bt-hcc-gwb", "tiny").tiny_protocol == "gpu-wb"
        assert not make_config("bt-hcc-gwb", "tiny").dts
        assert make_config("bt-hcc-dts-gwb", "tiny").dts

    def test_o3_configs_have_only_big_cores(self):
        for n in (1, 4, 8):
            config = make_config(f"o3x{n}", "quick")
            assert config.n_big == n and config.n_tiny == 0
            assert all(config.is_big_core(c) for c in range(n))

    def test_serial_io_is_one_tiny_core(self):
        config = make_config("serial-io", "quick")
        assert config.n_cores == 1
        assert not config.is_big_core(0)

    def test_unknown_kind_and_scale_rejected(self):
        with pytest.raises(ValueError):
            make_config("nope", "tiny")
        with pytest.raises(ValueError):
            make_config("bt-mesi", "galactic")

    def test_overrides_applied(self):
        config = make_config("bt-mesi", "tiny", seed=7, dram_latency=99)
        assert config.seed == 7 and config.dram_latency == 99

    def test_kind_groups_consistent(self):
        assert set(HCC_KINDS) | set(DTS_KINDS) | {"bt-mesi"} == set(BIGTINY_KINDS)


class TestMachine:
    def test_wiring_counts(self):
        machine = Machine(make_config("bt-mesi", "tiny"))
        config = machine.config
        assert len(machine.cores) == config.n_cores
        assert len(machine.l1s) == config.n_cores
        assert len(machine.l2.banks) == config.n_l2_banks

    def test_big_cores_get_big_caches(self):
        machine = Machine(make_config("bt-hcc-gwb", "tiny"))
        assert machine.l1s[0].stats.get("size_bytes") == 64 * 1024
        assert machine.l1s[1].stats.get("size_bytes") == 4 * 1024
        assert machine.l1s[0].PROTOCOL == "mesi"
        assert machine.l1s[1].PROTOCOL == "gpu-wb"

    def test_host_write_then_read(self):
        machine = Machine(make_config("bt-mesi", "tiny"))
        base = machine.address_space.alloc_words(4, "x")
        machine.host_write_array(base, [1, 2, 3, 4])
        assert machine.host_read_array(base, 4) == [1, 2, 3, 4]

    def test_host_read_sees_dirty_l1_data(self):
        machine = Machine(make_config("bt-hcc-gwb", "tiny"))
        addr = machine.address_space.alloc_words(1, "x")
        machine.l1s[1].store(addr, 77, 0)  # dirty, unflushed
        assert machine.host_read_word(addr) == 77

    def test_tiny_core_ids(self):
        machine = Machine(make_config("bt-mesi", "tiny"))
        assert machine.tiny_core_ids() == [1, 2, 3]

    def test_contexts_one_per_core(self):
        machine = Machine(make_config("bt-mesi", "tiny"))
        contexts = machine.make_contexts()
        assert [ctx.tid for ctx in contexts] == [0, 1, 2, 3]
        assert all(ctx.core is machine.cores[ctx.tid] for ctx in contexts)

    def test_aggregate_l1_stats_shape(self):
        machine = Machine(make_config("bt-mesi", "tiny"))
        agg = machine.aggregate_l1_stats()
        assert {"loads", "stores", "lines_invalidated", "lines_flushed"} <= set(agg)

    def test_hit_rate_defaults_to_one_when_idle(self):
        machine = Machine(make_config("bt-mesi", "tiny"))
        assert machine.l1_hit_rate() == 1.0
