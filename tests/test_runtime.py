"""Work-stealing runtime tests across all three Figure 3 variants."""

import pytest

from repro.core import Task, WorkStealingRuntime
from repro.engine.simulator import SimulationError
from repro.mem.address import WORD_BYTES

from helpers import ALL_BIGTINY, tiny_machine


def pyfib(n):
    return n if n < 2 else pyfib(n - 1) + pyfib(n - 2)


class FibTask(Task):
    """The paper's Figure 2 running example."""

    ARG_WORDS = 2

    def __init__(self, n, out_addr):
        super().__init__()
        self.n = n
        self.out_addr = out_addr

    def execute(self, rt, ctx):
        if self.n < 2:
            yield from ctx.store(self.out_addr, self.n)
            return
        scratch = rt.machine.address_space.alloc_words(2, "fib_scratch")
        children = [FibTask(self.n - 1, scratch), FibTask(self.n - 2, scratch + WORD_BYTES)]
        yield from rt.fork_join(ctx, self, children)
        x = yield from ctx.load(scratch)
        y = yield from ctx.load(scratch + WORD_BYTES)
        yield from ctx.store(self.out_addr, x + y)


def run_fib(kind, n=9, **rt_kwargs):
    machine = tiny_machine(kind)
    rt = WorkStealingRuntime(machine, **rt_kwargs)
    out = machine.address_space.alloc_words(1, "out")
    cycles = rt.run(FibTask(n, out))
    return machine, rt, machine.host_read_word(out), cycles


class TestVariantSelection:
    def test_variant_derived_from_config(self):
        assert WorkStealingRuntime(tiny_machine("bt-mesi")).variant == "hw"
        assert WorkStealingRuntime(tiny_machine("bt-hcc-gwb")).variant == "hcc"
        assert WorkStealingRuntime(tiny_machine("bt-hcc-dts-gwb")).variant == "dts"

    def test_variant_override(self):
        rt = WorkStealingRuntime(tiny_machine("bt-mesi"), variant="hcc")
        assert rt.variant == "hcc"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingRuntime(tiny_machine(), variant="nope")


@pytest.mark.parametrize("kind", ALL_BIGTINY)
class TestFibOnEveryConfig:
    def test_correct_result(self, kind):
        _, _, result, _ = run_fib(kind)
        assert result == pyfib(9)

    def test_tasks_accounted(self, kind):
        _, rt, _, _ = run_fib(kind)
        # fib(9) spawns 2 children per task with n >= 2.
        assert rt.stats.get("tasks_executed") == rt.stats.get("spawns") + 1
        assert rt.stats.get("spawns") > 10


class TestStealing:
    def test_steals_happen_on_multicore(self):
        _, rt, _, _ = run_fib("bt-mesi", n=10)
        assert rt.stats.get("steals") > 0

    def test_dts_steals_via_uli(self):
        machine, rt, _, _ = run_fib("bt-hcc-dts-gwb", n=10)
        assert rt.stats.get("steals") > 0
        assert rt.stats.get("uli_handler_runs") >= rt.stats.get("uli_tasks_exported")
        assert machine.stats.child("uli_network").get("messages") > 0

    def test_hsc_set_when_child_stolen(self):
        machine, rt, _, _ = run_fib("bt-hcc-dts-gwb", n=10)
        assert rt.stats.get("uli_tasks_exported") > 0
        # At least one task carries has_stolen_child == 1 in memory.
        hsc_values = [
            machine.host_read_word(task.hsc_addr) for task in rt.tasks.values()
        ]
        assert any(hsc_values)

    def test_single_core_never_steals(self):
        from repro.config import make_config
        from repro.machine import Machine

        machine = Machine(make_config("o3x1", "tiny"))
        rt = WorkStealingRuntime(machine)
        out = machine.address_space.alloc_words(1, "out")
        rt.run(FibTask(8, out))
        assert machine.host_read_word(out) == pyfib(8)
        assert rt.stats.get("steals") == 0


class TestSerialElision:
    def test_elision_gives_correct_result(self):
        _, rt, result, _ = run_fib("bt-mesi", serial_elision=True)
        assert result == pyfib(9)
        assert rt.stats.get("spawns") == 0
        assert rt.stats.get("steals") == 0

    def test_elision_cheaper_than_single_worker_runtime(self):
        from repro.config import make_config
        from repro.machine import Machine

        def cycles(elide):
            machine = Machine(make_config("serial-io", "tiny"))
            rt = WorkStealingRuntime(machine, serial_elision=elide)
            out = machine.address_space.alloc_words(1, "out")
            return rt.run(FibTask(9, out))

        assert cycles(True) < cycles(False)


class TestDtsAblations:
    def test_disable_queue_sync_elision_still_correct(self):
        _, rt, result, _ = run_fib(
            "bt-hcc-dts-gwb", dts_elide_queue_sync=False
        )
        assert result == pyfib(9)

    def test_disable_parent_sync_elision_still_correct(self):
        _, rt, result, _ = run_fib(
            "bt-hcc-dts-gwb", dts_elide_parent_sync=False
        )
        assert result == pyfib(9)

    def test_handler_tail_steal_variant(self):
        _, rt, result, _ = run_fib("bt-hcc-dts-gwb", handler_steals_tail=True)
        assert result == pyfib(9)

    def test_elisions_reduce_flushes(self):
        def flushes(**kwargs):
            machine, rt, result, _ = run_fib("bt-hcc-dts-gwb", n=10, **kwargs)
            assert result == pyfib(10)
            return machine.aggregate_l1_stats(machine.tiny_core_ids())["lines_flushed"]

        assert flushes() <= flushes(dts_elide_queue_sync=False)


class TestRuntimeLifecycle:
    def test_runtime_cannot_run_twice(self):
        machine = tiny_machine()
        rt = WorkStealingRuntime(machine)
        out = machine.address_space.alloc_words(1, "out")
        rt.run(FibTask(5, out))
        with pytest.raises(SimulationError):
            rt.run(FibTask(5, out))

    def test_deterministic_given_seed(self):
        a = run_fib("bt-hcc-dts-gwb", n=9)
        b = run_fib("bt-hcc-dts-gwb", n=9)
        assert a[3] == b[3]  # identical cycle counts

    def test_different_seed_changes_schedule(self):
        machine1 = tiny_machine("bt-mesi", seed=1)
        machine2 = tiny_machine("bt-mesi", seed=2)
        results = []
        for machine in (machine1, machine2):
            rt = WorkStealingRuntime(machine)
            out = machine.address_space.alloc_words(1, "out")
            rt.run(FibTask(9, out))
            results.append(machine.host_read_word(out))
        assert results == [pyfib(9)] * 2
