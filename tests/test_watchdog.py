"""Deadlock watchdog: structured DeadlockError instead of opaque max_cycles."""

import json
import pickle

import pytest

from repro.core import Task, WorkStealingRuntime
from repro.engine import Simulator
from repro.engine.watchdog import DeadlockError, Watchdog
from repro.mem.address import WORD_BYTES

from helpers import VARIANT_KINDS, tiny_machine


# ----------------------------------------------------------------------
# Watchdog unit tests (bare simulator)
# ----------------------------------------------------------------------

def _keepalive(sim, period=10, ticks=200):
    """An event chain that keeps the simulator busy without 'progress'."""
    remaining = [ticks]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(period, step)

    sim.schedule(period, step)


class TestWatchdogUnit:
    def test_fires_when_progress_stalls(self):
        sim = Simulator()
        _keepalive(sim)
        wd = Watchdog(sim, progress=lambda: 0, grace=100,
                      outstanding=lambda: True)
        wd.arm()
        with pytest.raises(DeadlockError) as exc_info:
            sim.run()
        # Fires within ~1.25x grace of the stall start.
        assert 100 <= sim.now <= 130
        diag = exc_info.value.diagnostic
        assert diag["grace"] == 100
        assert diag["progress_counter"] == 0
        assert "pending_events" in diag and "stalled_since" in diag

    def test_silent_while_progress_moves(self):
        sim = Simulator()
        counter = [0]

        def step():
            counter[0] += 1
            if counter[0] < 30:
                sim.schedule(10, step)

        sim.schedule(10, step)
        wd = Watchdog(sim, progress=lambda: counter[0], grace=50,
                      outstanding=lambda: True)
        wd.arm()
        sim.run()  # must not raise: progress moves every 10 < grace 50
        assert counter[0] == 30

    def test_drain_phase_never_raises(self):
        """Work done but simulator still draining: watch, don't bark."""
        sim = Simulator()
        _keepalive(sim)
        wd = Watchdog(sim, progress=lambda: 0, grace=100,
                      outstanding=lambda: False)
        wd.arm()
        sim.run()

    def test_cancel_disarms_queued_tick(self):
        sim = Simulator()
        _keepalive(sim, ticks=50)
        wd = Watchdog(sim, progress=lambda: 0, grace=60,
                      outstanding=lambda: True)
        wd.arm()
        wd.cancel()
        sim.run()  # cancelled before the first tick: nothing fires

    def test_daemon_ticks_never_keep_sim_alive(self):
        """Once real events drain, the re-arming tick dies with the run."""
        sim = Simulator()
        sim.schedule(5, lambda: None)
        wd = Watchdog(sim, progress=lambda: 0, grace=1000, interval=2,
                      outstanding=lambda: True)
        wd.arm()
        assert sim.run() == 5

    def test_bad_grace_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(Simulator(), progress=lambda: 0, grace=0)

    def test_deadlock_error_pickles_with_diagnostic(self):
        err = DeadlockError("stalled", {"cycle": 7, "cores": {"0": {}}})
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, DeadlockError)
        assert back.diagnostic == {"cycle": 7, "cores": {"0": {}}}
        assert "stalled" in str(back)


# ----------------------------------------------------------------------
# Runtime integration: a wedged program on every variant
# ----------------------------------------------------------------------

class WedgedTask(Task):
    """Spins on a flag nobody will ever set."""

    ARG_WORDS = 2

    def __init__(self, flag_addr):
        super().__init__()
        self.flag_addr = flag_addr

    def execute(self, rt, ctx):
        while True:
            value = yield from ctx.amo_or(self.flag_addr, 0)
            if value:
                return


class FibTask(Task):
    ARG_WORDS = 2

    def __init__(self, n, out_addr):
        super().__init__()
        self.n = n
        self.out_addr = out_addr

    def execute(self, rt, ctx):
        if self.n < 2:
            yield from ctx.store(self.out_addr, self.n)
            return
        scratch = rt.machine.address_space.alloc_words(2, "fib_scratch")
        children = [
            FibTask(self.n - 1, scratch),
            FibTask(self.n - 2, scratch + WORD_BYTES),
        ]
        yield from rt.fork_join(ctx, self, children)
        x = yield from ctx.load(scratch)
        y = yield from ctx.load(scratch + WORD_BYTES)
        yield from ctx.store(self.out_addr, x + y)


class TestRuntimeWatchdog:
    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_wedged_program_raises_structured_error(self, kind):
        machine = tiny_machine(kind)
        rt = WorkStealingRuntime(machine, watchdog=5_000)
        flag = machine.address_space.alloc_words(1, "flag")
        with pytest.raises(DeadlockError) as exc_info:
            rt.run(WedgedTask(flag))
        diag = exc_info.value.diagnostic
        assert diag["variant"] == rt.variant
        assert diag["done"] is False
        assert set(diag["cores"]) == {str(c) for c in range(machine.config.n_cores)}
        assert set(diag["deques"]) == set(diag["cores"])
        json.dumps(diag)  # the whole dump must be JSON-able

    def test_dts_steal_nacks_are_not_progress(self):
        """Idle thieves hammering a wedged victim must not reset the clock."""
        machine = tiny_machine("bt-hcc-dts-gwb")
        rt = WorkStealingRuntime(machine, watchdog=5_000)
        flag = machine.address_space.alloc_words(1, "flag")
        with pytest.raises(DeadlockError):
            rt.run(WedgedTask(flag))
        # The thieves really were probing the whole time.
        assert rt.stats.get("uli_handler_runs") > 0
        assert machine.sim.now < 50_000  # fired promptly, not at max_cycles

    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_healthy_run_unperturbed(self, kind):
        def run(watchdog):
            machine = tiny_machine(kind)
            rt = WorkStealingRuntime(machine, watchdog=watchdog)
            out = machine.address_space.alloc_words(1, "out")
            cycles = rt.run(FibTask(9, out))
            return machine.host_read_word(out), cycles

        assert run(None) == run(2_000)  # same answer, same cycle count
