"""Additional coverage: traffic meter, runtime-on-mismatched-machine,
GPU-WT fences, stats aggregation, and app-specific odds and ends."""

import pytest

from repro.core import Task, WorkStealingRuntime
from repro.mem.traffic import CATEGORIES, TrafficMeter

from helpers import tiny_machine


class TestTrafficMeter:
    def test_record_and_totals(self):
        meter = TrafficMeter()
        meter.record("cpu_req", 8, 3)
        meter.record("cpu_req", 8, 1)
        meter.record("data_resp", 72, 3)
        assert meter.bytes["cpu_req"] == 16
        assert meter.byte_hops["cpu_req"] == 32
        assert meter.messages["data_resp"] == 1
        assert meter.total_bytes() == 88
        assert meter.total_byte_hops() == 32 + 216

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            TrafficMeter().record("warp_drive", 8, 1)

    def test_merged_with(self):
        a, b = TrafficMeter(), TrafficMeter()
        a.record("wb_req", 16, 2)
        b.record("wb_req", 16, 4)
        merged = a.merged_with(b)
        assert merged.bytes["wb_req"] == 32
        assert merged.byte_hops["wb_req"] == 96
        assert a.bytes["wb_req"] == 16  # originals untouched

    def test_snapshot_covers_all_categories(self):
        snap = TrafficMeter().snapshot()
        assert set(snap) == set(CATEGORIES)


class _CounterTask(Task):
    def __init__(self, addr, n):
        super().__init__()
        self.addr = addr
        self.n = n

    def execute(self, rt, ctx):
        if self.n == 0:
            yield from ctx.amo_add(self.addr, 1)
            return
        yield from rt.fork_join(
            ctx, self, [_CounterTask(self.addr, self.n - 1) for _ in range(3)]
        )


class TestRuntimeVariantMachineMismatch:
    def test_hcc_runtime_on_mesi_machine_is_correct(self):
        """Coherence ops no-op on MESI; the HCC recipe must still work."""
        machine = tiny_machine("bt-mesi")
        rt = WorkStealingRuntime(machine, variant="hcc")
        addr = machine.address_space.alloc_words(1, "c")
        machine.host_write_word(addr, 0)
        rt.run(_CounterTask(addr, 3))
        assert machine.host_read_word(addr) == 27
        # MESI treats invalidate/flush as no-ops: no lines are dropped.
        assert machine.aggregate_l1_stats()["lines_invalidated"] == 0
        assert machine.aggregate_l1_stats()["lines_flushed"] == 0

    def test_hw_runtime_on_hcc_machine_misbehaves(self):
        """The hw runtime on an HCC machine is *not* correct.

        This is the paper's core point (Section III-C): without the
        Figure 3b coherence operations, deque head/tail reads go stale and
        tasks get duplicated or lost.  We run the experiment under a tight
        cycle budget and accept any of: a wrong counter (duplicated
        tasks), a deadlock (lost tasks), or — rarely — a lucky correct
        run.  What must never happen silently is exactly what the HCC
        runtime exists to prevent.
        """
        from repro.engine.simulator import SimulationError

        outcomes = []
        for seed in (1, 2, 3, 4):
            machine = tiny_machine("bt-hcc-gwb", seed=seed, max_cycles=300_000)
            rt = WorkStealingRuntime(machine, variant="hw")
            addr = machine.address_space.alloc_words(1, "c")
            machine.host_write_word(addr, 0)
            try:
                rt.run(_CounterTask(addr, 2))
                outcomes.append(machine.host_read_word(addr))
            except SimulationError:
                outcomes.append("hang")
        # At least one schedule exposes the incoherence.
        assert any(outcome != 9 for outcome in outcomes), outcomes


class TestGpuWtFencing:
    def test_amo_waits_for_write_buffer_drain(self):
        machine = tiny_machine("bt-hcc-gwt")
        l1 = machine.l1s[1]
        base = machine.address_space.alloc_words(16, "buf")
        # Fill the write buffer with write-throughs at cycle 0.
        for i in range(8):
            l1.store(base + i * 8, i, 0)
        _, latency = l1.amo("add", base + 127 * 8, 1, 0)
        # The AMO drained the buffer: its latency covers the outstanding
        # write-through round trips.
        assert latency > 20


class TestBreakdownConsistency:
    @pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-dts-gwb"))
    def test_cycle_breakdown_sums_to_elapsed(self, kind):
        machine = tiny_machine(kind)
        rt = WorkStealingRuntime(machine)
        addr = machine.address_space.alloc_words(1, "c")
        machine.host_write_word(addr, 0)
        rt.run(_CounterTask(addr, 3))
        for core in machine.cores:
            total = sum(core.cycle_breakdown().values())
            # Cores halt at different times but can never exceed sim.now.
            assert total <= machine.sim.now


class TestAppExtras:
    def test_radii_estimated_radius_positive(self):
        from repro.analysis import CilkviewAnalyzer
        from repro.apps import make_app

        app = make_app("ligra-radii", scale=4, grain=4)
        analyzer = CilkviewAnalyzer()
        app.setup(analyzer.machine)
        analyzer.analyze(app.make_root())
        app.check()
        assert app.estimated_radius() >= 1

    def test_nq_rejects_unknown_board(self):
        from repro.apps import make_app

        with pytest.raises(ValueError):
            make_app("cilk5-nq", n=3)

    def test_lu_rejects_non_divisible_block(self):
        from repro.apps import make_app

        with pytest.raises(ValueError):
            make_app("cilk5-lu", n=10, grain=4)

    def test_mm_and_mt_reject_non_power_of_two(self):
        from repro.apps import make_app

        with pytest.raises(ValueError):
            make_app("cilk5-mm", n=12)
        with pytest.raises(ValueError):
            make_app("cilk5-mt", n=12)

    def test_graph_apps_have_pf_method(self):
        from repro.apps import PAPER_APPS, make_app

        for name in PAPER_APPS:
            app = make_app(name)
            if name.startswith("ligra"):
                assert app.pm == "pf"
