"""parallel_for / parallel_invoke pattern tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FuncTask, Task, WorkStealingRuntime, parallel_for, parallel_invoke
from repro.core.patterns import RangeTask

from helpers import tiny_machine


class _PforRoot(Task):
    def __init__(self, n, grain, out_base):
        super().__init__()
        self.n = n
        self.grain = grain
        self.out_base = out_base

    def execute(self, rt, ctx):
        def body(rt, ctx, lo, hi):
            for i in range(lo, hi):
                old = yield from ctx.amo_add(self.out_base + i * 8, 1)
                assert old == 0  # each index visited exactly once

        yield from parallel_for(rt, ctx, 0, self.n, body, self.grain)


def run_pfor(kind, n, grain):
    machine = tiny_machine(kind)
    rt = WorkStealingRuntime(machine)
    out = machine.address_space.alloc_words(max(1, n), "out")
    rt.run(_PforRoot(n, grain, out))
    return machine.host_read_array(out, max(1, n))


class TestParallelFor:
    @pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb"))
    @pytest.mark.parametrize("n,grain", [(1, 1), (7, 2), (16, 4), (33, 8), (10, 100)])
    def test_every_index_once(self, kind, n, grain):
        assert run_pfor(kind, n, grain) == [1] * n

    def test_empty_range_is_noop(self):
        assert run_pfor("bt-mesi", 0, 4) == [0]

    def test_bad_grain_rejected(self):
        with pytest.raises(ValueError):
            RangeTask(0, 10, 0, None)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 16))
    def test_property_full_coverage(self, n, grain):
        assert run_pfor("bt-mesi", n, grain) == [1] * n


class TestParallelInvoke:
    def test_runs_every_body(self):
        machine = tiny_machine("bt-hcc-dts-gwb")
        rt = WorkStealingRuntime(machine)
        out = machine.address_space.alloc_words(3, "out")

        def make_body(i):
            def body(rt, ctx):
                yield from ctx.store(out + i * 8, i + 1)

            return body

        class Root(Task):
            def execute(self, rt, ctx):
                yield from parallel_invoke(
                    rt, ctx, make_body(0), make_body(1), make_body(2)
                )

        rt.run(Root())
        assert machine.host_read_array(out, 3) == [1, 2, 3]

    def test_no_bodies_is_noop(self):
        machine = tiny_machine()
        rt = WorkStealingRuntime(machine)

        class Root(Task):
            def execute(self, rt, ctx):
                yield from parallel_invoke(rt, ctx)
                yield from ctx.work(1)

        rt.run(Root())  # completes without error

    def test_nested_invoke(self):
        machine = tiny_machine("bt-hcc-gwb")
        rt = WorkStealingRuntime(machine)
        counter = machine.address_space.alloc_words(1, "c")
        machine.host_write_word(counter, 0)

        def leaf(rt, ctx):
            yield from ctx.amo_add(counter, 1)

        def inner(rt, ctx):
            yield from parallel_invoke(rt, ctx, leaf, leaf)

        class Root(Task):
            def execute(self, rt, ctx):
                yield from parallel_invoke(rt, ctx, inner, inner, leaf)

        rt.run(Root())
        assert machine.host_read_word(counter) == 5


class TestFuncTask:
    def test_functask_wraps_generator(self):
        machine = tiny_machine()
        rt = WorkStealingRuntime(machine)
        out = machine.address_space.alloc_words(1, "out")

        def body(rt, ctx):
            yield from ctx.store(out, 42)

        class Root(Task):
            def execute(self, rt, ctx):
                yield from rt.fork_join(ctx, self, [FuncTask(body)])

        rt.run(Root())
        assert machine.host_read_word(out) == 42
