"""DeNovo, GPU-WT, and GPU-WB protocol unit tests.

These drive the L1 models directly and verify the defining behaviours of
each protocol from Table I — including the *incoherence* that software must
manage: stale reads really happen until ``cache_invalidate``, and GPU-WB
dirty data really is invisible until ``cache_flush``.
"""

from repro.mem.cacheline import REGISTERED, VALID

from helpers import tiny_machine


def fresh(kind):
    machine = tiny_machine(kind)
    addr = machine.address_space.alloc_words(8, "x")
    machine.host_write_word(addr, 100)
    return machine, addr


# ----------------------------------------------------------------------
# DeNovo
# ----------------------------------------------------------------------
class TestDeNovo:
    def test_store_registers_ownership(self):
        machine, addr = fresh("bt-hcc-dnv")
        l1 = machine.l1s[1]
        l1.store(addr, 7, 0)
        assert l1.resident(addr).state == REGISTERED
        entry = machine.l2.directory_entry(addr)
        assert entry.owner == 1

    def test_stale_read_until_invalidate(self):
        machine, addr = fresh("bt-hcc-dnv")
        reader, writer = machine.l1s[1], machine.l1s[2]
        value, _ = reader.load(addr, 0)
        assert value == 100
        writer.store(addr, 200, 1)
        stale, _ = reader.load(addr, 2)
        assert stale == 100  # reader-initiated protocol: still stale
        reader.invalidate_all(3)
        fresh_value, _ = reader.load(addr, 4)
        assert fresh_value == 200  # recall from the registered owner

    def test_invalidate_keeps_registered_lines(self):
        machine, addr = fresh("bt-hcc-dnv")
        l1 = machine.l1s[1]
        other = machine.address_space.alloc_words(8, "y")
        l1.store(addr, 1, 0)  # registered
        l1.load(other, 1)  # valid clean
        l1.invalidate_all(2)
        assert l1.resident(addr) is not None
        assert l1.resident(other) is None
        assert l1.stats.get("lines_invalidated") == 1

    def test_flush_is_noop(self):
        machine, addr = fresh("bt-hcc-dnv")
        machine.l1s[1].store(addr, 9, 0)
        assert machine.l1s[1].flush_all(1) == 0

    def test_amo_in_l1_after_registration(self):
        machine, addr = fresh("bt-hcc-dnv")
        old, _ = machine.l1s[1].amo("add", addr, 5, 0)
        assert old == 100
        old, _ = machine.l1s[2].amo("add", addr, 5, 1)
        assert old == 105  # ownership recalled, latest value seen

    def test_registered_eviction_releases_ownership(self):
        machine, addr = fresh("bt-hcc-dnv")
        l1 = machine.l1s[1]
        set_stride = 32 * 64
        base = machine.address_space.alloc(set_stride * 4, "evict")
        l1.store(base, 1, 0)
        l1.store(base + set_stride, 2, 1)
        l1.store(base + 2 * set_stride, 3, 2)
        assert machine.l2.peek_word(base) == 1
        assert machine.l2.directory_entry(base).owner is None


# ----------------------------------------------------------------------
# GPU-WT
# ----------------------------------------------------------------------
class TestGpuWt:
    def test_store_is_immediately_visible_at_l2(self):
        machine, addr = fresh("bt-hcc-gwt")
        machine.l1s[1].store(addr, 42, 0)
        assert machine.l2.peek_word(addr) == 42

    def test_store_miss_does_not_allocate(self):
        machine, addr = fresh("bt-hcc-gwt")
        l1 = machine.l1s[1]
        l1.store(addr, 42, 0)
        assert l1.resident(addr) is None  # no write allocate

    def test_store_hit_updates_local_copy(self):
        machine, addr = fresh("bt-hcc-gwt")
        l1 = machine.l1s[1]
        l1.load(addr, 0)
        l1.store(addr, 42, 1)
        value, latency = l1.load(addr, 2)
        assert value == 42 and latency == l1.hit_latency

    def test_invalidate_drops_everything(self):
        machine, addr = fresh("bt-hcc-gwt")
        l1 = machine.l1s[1]
        l1.load(addr, 0)
        l1.invalidate_all(1)
        assert l1.resident(addr) is None
        assert l1.stats.get("lines_invalidated") == 1

    def test_amo_executes_at_l2(self):
        machine, addr = fresh("bt-hcc-gwt")
        old, latency = machine.l1s[1].amo("add", addr, 1, 0)
        assert old == 100
        assert machine.l2.peek_word(addr) == 101
        assert latency > machine.l1s[1].hit_latency  # round trip to L2
        assert machine.l2.stats.get("amos") == 1

    def test_write_buffer_stalls_when_full(self):
        machine, addr = fresh("bt-hcc-gwt")
        l1 = machine.l1s[1]
        stalls_before = l1.stats.get("write_buffer_stall_cycles")
        for i in range(20):
            l1.store(addr + (i % 8) * 8, i, 0)  # all at cycle 0: buffer fills
        assert l1.stats.get("write_buffer_stall_cycles") > stalls_before

    def test_stale_read_until_invalidate(self):
        machine, addr = fresh("bt-hcc-gwt")
        reader, writer = machine.l1s[1], machine.l1s[2]
        reader.load(addr, 0)
        writer.store(addr, 55, 1)
        assert reader.load(addr, 2)[0] == 100
        reader.invalidate_all(3)
        assert reader.load(addr, 4)[0] == 55


# ----------------------------------------------------------------------
# GPU-WB
# ----------------------------------------------------------------------
class TestGpuWb:
    def test_dirty_data_invisible_until_flush(self):
        machine, addr = fresh("bt-hcc-gwb")
        writer, reader = machine.l1s[1], machine.l1s[2]
        writer.store(addr, 77, 0)
        assert machine.l2.peek_word(addr) == 100  # not yet written back
        assert reader.load(addr, 1)[0] == 100
        writer.flush_all(2)
        assert machine.l2.peek_word(addr) == 77
        reader.invalidate_all(3)
        assert reader.load(addr, 4)[0] == 77

    def test_write_allocate_without_fetch(self):
        machine, addr = fresh("bt-hcc-gwb")
        l1 = machine.l1s[1]
        latency = l1.store(addr, 1, 0)
        assert latency == l1.hit_latency  # no fetch round trip
        line = l1.resident(addr)
        assert line.word_valid(0) and not line.word_valid(1)

    def test_load_merges_fill_with_dirty_words(self):
        machine, addr = fresh("bt-hcc-gwb")
        machine.host_write_word(addr + 8, 300)
        l1 = machine.l1s[1]
        l1.store(addr, 1, 0)  # dirty word 0, word 1 invalid
        value, _ = l1.load(addr + 8, 1)  # fill merges
        assert value == 300
        assert l1.resident(addr).data[0] == 1  # our write survived the fill

    def test_invalidate_keeps_only_dirty_words(self):
        machine, addr = fresh("bt-hcc-gwb")
        l1 = machine.l1s[1]
        l1.load(addr, 0)  # full line valid clean
        l1.store(addr + 8, 5, 1)  # word 1 dirty
        l1.invalidate_all(2)
        line = l1.resident(addr)
        assert line is not None
        assert line.word_dirty(1) and line.word_valid(1)
        assert not line.word_valid(0)  # clean word invalidated

    def test_flush_counts_lines_and_clears_dirty(self):
        machine, addr = fresh("bt-hcc-gwb")
        l1 = machine.l1s[1]
        other = machine.address_space.alloc_words(8, "y")
        l1.store(addr, 1, 0)
        l1.store(other, 2, 1)
        l1.flush_all(2)
        assert l1.stats.get("lines_flushed") == 2
        assert l1.resident(addr).dirty_mask == 0

    def test_amo_flushes_local_dirty_word_first(self):
        machine, addr = fresh("bt-hcc-gwb")
        l1 = machine.l1s[1]
        l1.store(addr, 10, 0)  # dirty locally, L2 still has 100
        old, _ = l1.amo("add", addr, 1, 1)
        assert old == 10  # AMO saw our store, not the stale L2 copy
        assert machine.l2.peek_word(addr) == 11

    def test_dirty_eviction_writes_back_words(self):
        machine, addr = fresh("bt-hcc-gwb")
        l1 = machine.l1s[1]
        set_stride = 32 * 64
        base = machine.address_space.alloc(set_stride * 4, "evict")
        l1.store(base, 1, 0)
        l1.store(base + set_stride, 2, 1)
        l1.store(base + 2 * set_stride, 3, 2)
        assert machine.l2.peek_word(base) == 1

    def test_lock_release_requires_amo(self):
        machine, _ = fresh("bt-hcc-gwb")
        assert machine.l1s[1].LOCK_RELEASE_AMO is True
        mesi_machine, _ = fresh("bt-mesi")
        assert mesi_machine.l1s[1].LOCK_RELEASE_AMO is False
