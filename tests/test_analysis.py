"""Tests for the Cilkview analyzer, the area model, and the energy model."""

import math

import pytest

from repro.analysis import (
    CilkviewAnalyzer,
    area_equivalence_report,
    big_to_tiny_ratio,
    estimate_energy,
    l1_area,
    system_l1_area,
)
from repro.config import make_config
from repro.core import Task, WorkStealingRuntime

from helpers import tiny_machine


class _BalancedTask(Task):
    """depth-d binary tree; each strand does exactly `strand` work."""

    def __init__(self, depth, strand=10):
        super().__init__()
        self.depth = depth
        self.strand = strand

    def execute(self, rt, ctx):
        yield from ctx.work(self.strand)
        if self.depth > 0:
            yield from rt.fork_join(
                ctx,
                self,
                [
                    _BalancedTask(self.depth - 1, self.strand),
                    _BalancedTask(self.depth - 1, self.strand),
                ],
            )


class TestCilkview:
    def test_balanced_tree_work_and_span(self):
        analyzer = CilkviewAnalyzer()
        report = analyzer.analyze(_BalancedTask(depth=4, strand=10))
        n_tasks = 2**5 - 1
        assert report.n_tasks == n_tasks
        # Work = strand + start overhead per task.
        assert report.work == n_tasks * (10 + 4)
        # Span = one root-to-leaf path.
        assert report.span == 5 * (10 + 4)
        assert abs(report.parallelism - report.work / report.span) < 1e-12

    def test_serial_chain_has_parallelism_one(self):
        class Chain(Task):
            def execute(self, rt, ctx):
                yield from ctx.work(100)

        report = CilkviewAnalyzer().analyze(Chain())
        assert abs(report.parallelism - 1.0) < 1e-12

    def test_memory_ops_count_as_instructions(self):
        class MemTask(Task):
            def execute(self, rt, ctx):
                addr = rt.machine.address_space.alloc_words(1, "x")
                yield from ctx.store(addr, 5)
                value = yield from ctx.load(addr)
                assert value == 5
                old = yield from ctx.amo_add(addr, 1)
                assert old == 5

        report = CilkviewAnalyzer().analyze(MemTask())
        assert report.work == 4 + 3  # start overhead + three memory ops

    def test_ipt(self):
        report = CilkviewAnalyzer().analyze(_BalancedTask(depth=2, strand=6))
        assert report.instructions_per_task == pytest.approx(10.0)


class TestAreaModel:
    def test_calibrated_ratio(self):
        assert big_to_tiny_ratio() == pytest.approx(14.9, rel=1e-6)

    def test_area_monotonic(self):
        assert l1_area(8 * 1024) > l1_area(4 * 1024)

    def test_area_sublinear(self):
        assert l1_area(64 * 1024) < 16 * l1_area(4 * 1024)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            l1_area(0)

    def test_o3x8_roughly_area_equivalent_to_paper_bigtiny(self):
        report = area_equivalence_report(
            make_config("o3x8", "paper"), make_config("bt-mesi", "paper")
        )
        # Paper Section V-A: similar L1 area. Allow 15% slack.
        assert 0.85 < report["ratio"] < 1.25

    def test_system_area_sums_cores(self):
        config = make_config("bt-mesi", "tiny")
        total = system_l1_area(config)
        assert total == pytest.approx(
            2 * l1_area(64 * 1024) + 3 * 2 * l1_area(4 * 1024)
        )


class TestEnergyModel:
    def test_energy_positive_and_decomposed(self):
        from repro.mem.address import WORD_BYTES

        class Fib(Task):
            def __init__(self, n, out):
                super().__init__()
                self.n, self.out = n, out

            def execute(self, rt, ctx):
                if self.n < 2:
                    yield from ctx.store(self.out, self.n)
                    return
                scratch = rt.machine.address_space.alloc_words(2, "s")
                yield from rt.fork_join(
                    ctx, self, [Fib(self.n - 1, scratch), Fib(self.n - 2, scratch + WORD_BYTES)]
                )
                x = yield from ctx.load(scratch)
                y = yield from ctx.load(scratch + WORD_BYTES)
                yield from ctx.store(self.out, x + y)

        machine = tiny_machine("bt-hcc-dts-gwb")
        rt = WorkStealingRuntime(machine)
        out = machine.address_space.alloc_words(1, "out")
        rt.run(Fib(8, out))
        report = estimate_energy(machine)
        assert report.total_pj > 0
        assert report.total_pj == pytest.approx(sum(report.breakdown_pj.values()))
        for component in ("cores", "l1", "l2", "dram", "noc", "uli"):
            assert component in report.breakdown_pj
        assert report.breakdown_pj["uli"] > 0  # DTS config sent ULIs

    def test_energy_ratio(self):
        machine = tiny_machine()
        machine.cores[0].stats.add("cycles_compute", 100)
        a = estimate_energy(machine)
        b = estimate_energy(machine, coefficients={"big_core_cycle": 50.0})
        assert b.ratio_to(a) == pytest.approx(2.0)
