"""Shared L2 / heterogeneous directory unit tests."""

from repro.mem.traffic import CATEGORIES

from helpers import tiny_machine


def fresh(kind="bt-mesi"):
    machine = tiny_machine(kind)
    addr = machine.address_space.alloc_words(8, "x")
    machine.host_write_word(addr, 5)
    return machine, addr


class TestDirectory:
    def test_sharer_list_tracks_mesi_readers(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l1s[2].load(addr, 1)
        entry = machine.l2.directory_entry(addr)
        assert entry.sharers == {1, 2}

    def test_exclusive_grant_records_owner(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        entry = machine.l2.directory_entry(addr)
        assert entry.owner == 1 and not entry.sharers

    def test_getm_clears_sharers_and_sets_owner(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l1s[2].load(addr, 1)
        machine.l1s[0].store(addr, 9, 2)
        entry = machine.l2.directory_entry(addr)
        assert entry.owner == 0
        assert entry.sharers == set()

    def test_untracked_gpu_readers_not_in_sharer_list(self):
        machine, addr = fresh("bt-hcc-gwb")
        machine.l1s[1].load(addr, 0)  # tiny gwb core
        entry = machine.l2.directory_entry(addr)
        assert 1 not in entry.sharers and entry.owner != 1

    def test_foreign_writeback_invalidates_mesi_copies(self):
        machine, addr = fresh("bt-hcc-gwb")
        big, tiny = machine.l1s[0], machine.l1s[1]
        big.load(addr, 0)  # big MESI core caches the line
        tiny.store(addr, 70, 1)
        tiny.flush_all(2)
        value, _ = big.load(addr, 3)
        assert value == 70  # MESI copy was invalidated, fresh fill

    def test_write_through_invalidates_mesi_copies(self):
        machine, addr = fresh("bt-hcc-gwt")
        big, tiny = machine.l1s[0], machine.l1s[1]
        big.store(addr, 50, 0)  # big core owns it dirty
        tiny.store(addr, 60, 1)  # write-through must merge + invalidate
        value, _ = big.load(addr, 2)
        assert value == 60

    def test_amo_at_l2_sees_mesi_owner_data(self):
        machine, addr = fresh("bt-hcc-gwb")
        big, tiny = machine.l1s[0], machine.l1s[1]
        big.store(addr, 30, 0)  # dirty in big core's MESI L1
        old, _ = tiny.amo("add", addr, 1, 1)
        assert old == 30  # owner recalled before the AMO


class TestL2Mechanics:
    def test_bank_mapping_is_line_interleaved(self):
        machine, _ = fresh()
        l2 = machine.l2
        assert l2.bank_of(0x1000) != l2.bank_of(0x1040) or l2.n_banks == 1
        assert l2.bank_of(0x1000) == l2.bank_of(0x1000 + 64 * l2.n_banks)

    def test_l2_miss_goes_to_dram(self):
        machine, addr = fresh()
        before = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        machine.l1s[1].load(addr, 0)
        after = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        assert after == before + 1

    def test_l2_hit_avoids_dram(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        before = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        machine.l1s[2].load(addr, 1)
        assert sum(mc.stats.get("accesses") for mc in machine.l2.dram) == before

    def test_read_word_bypass_returns_latest(self):
        machine, addr = fresh()
        machine.l1s[1].store(addr, 123, 0)  # dirty in a MESI L1
        value, latency = machine.l2.read_word_bypass(2, addr, 1)
        assert value == 123
        assert latency > 0

    def test_l2_eviction_preserves_data_in_dram(self):
        machine, addr = fresh(kind="bt-mesi")
        # Shrink L2 to force evictions: 2 banks x 2KB, 2-way -> tiny L2.
        small = tiny_machine("bt-mesi", l2_bank_bytes=2048, l2_assoc=2)
        a = small.address_space.alloc_words(8, "a")
        small.l1s[1].store(a, 42, 0)
        small.l1s[1].flush_all(1)  # no-op on MESI but harmless
        # Touch many distinct lines so that line a is evicted from L2.
        filler = small.address_space.alloc(64 * 512, "filler")
        now = 2
        for i in range(256):
            small.l1s[2].load(filler + i * 64, now)
            now += 5
        assert small.host_read_word(a) == 42

    def test_traffic_categories_populated(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l1s[2].store(addr, 1, 1)
        snap = machine.traffic.snapshot()
        assert set(snap) == set(CATEGORIES)
        assert snap["cpu_req"] > 0
        assert snap["data_resp"] > 0
        assert snap["dram_req"] > 0

    def test_bank_queue_adds_delay_under_contention(self):
        machine, _ = fresh()
        base = machine.address_space.alloc_words(8, "hot")
        machine.host_write_word(base, 1)
        # Two misses to the same bank at the same cycle: the second queues.
        _, lat1 = machine.l1s[1].load(base, 0)
        other = machine.address_space.alloc_words(8, "hot2")
        # Map to the same bank: stride by n_banks lines.
        same_bank = base + 64 * machine.l2.n_banks
        _, lat2 = machine.l1s[2].load(same_bank, 0)
        assert lat2 >= lat1 - 5  # both paid the miss; second may queue more
