"""Shared L2 / heterogeneous directory unit tests."""

from repro.mem.address import WORD_BYTES, line_addr
from repro.mem.cacheline import MODIFIED
from repro.mem.traffic import CATEGORIES, CTRL_BYTES

from helpers import tiny_machine


def fresh(kind="bt-mesi"):
    machine = tiny_machine(kind)
    addr = machine.address_space.alloc_words(8, "x")
    machine.host_write_word(addr, 5)
    return machine, addr


class TestDirectory:
    def test_sharer_list_tracks_mesi_readers(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l1s[2].load(addr, 1)
        entry = machine.l2.directory_entry(addr)
        assert entry.sharers == {1, 2}

    def test_exclusive_grant_records_owner(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        entry = machine.l2.directory_entry(addr)
        assert entry.owner == 1 and not entry.sharers

    def test_getm_clears_sharers_and_sets_owner(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l1s[2].load(addr, 1)
        machine.l1s[0].store(addr, 9, 2)
        entry = machine.l2.directory_entry(addr)
        assert entry.owner == 0
        assert entry.sharers == set()

    def test_untracked_gpu_readers_not_in_sharer_list(self):
        machine, addr = fresh("bt-hcc-gwb")
        machine.l1s[1].load(addr, 0)  # tiny gwb core
        entry = machine.l2.directory_entry(addr)
        assert 1 not in entry.sharers and entry.owner != 1

    def test_foreign_writeback_invalidates_mesi_copies(self):
        machine, addr = fresh("bt-hcc-gwb")
        big, tiny = machine.l1s[0], machine.l1s[1]
        big.load(addr, 0)  # big MESI core caches the line
        tiny.store(addr, 70, 1)
        tiny.flush_all(2)
        value, _ = big.load(addr, 3)
        assert value == 70  # MESI copy was invalidated, fresh fill

    def test_write_through_invalidates_mesi_copies(self):
        machine, addr = fresh("bt-hcc-gwt")
        big, tiny = machine.l1s[0], machine.l1s[1]
        big.store(addr, 50, 0)  # big core owns it dirty
        tiny.store(addr, 60, 1)  # write-through must merge + invalidate
        value, _ = big.load(addr, 2)
        assert value == 60

    def test_amo_at_l2_sees_mesi_owner_data(self):
        machine, addr = fresh("bt-hcc-gwb")
        big, tiny = machine.l1s[0], machine.l1s[1]
        big.store(addr, 30, 0)  # dirty in big core's MESI L1
        old, _ = tiny.amo("add", addr, 1, 1)
        assert old == 30  # owner recalled before the AMO


class TestL2Mechanics:
    def test_bank_mapping_is_line_interleaved(self):
        machine, _ = fresh()
        l2 = machine.l2
        assert l2.bank_of(0x1000) != l2.bank_of(0x1040) or l2.n_banks == 1
        assert l2.bank_of(0x1000) == l2.bank_of(0x1000 + 64 * l2.n_banks)

    def test_l2_miss_goes_to_dram(self):
        machine, addr = fresh()
        before = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        machine.l1s[1].load(addr, 0)
        after = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        assert after == before + 1

    def test_l2_hit_avoids_dram(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        before = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        machine.l1s[2].load(addr, 1)
        assert sum(mc.stats.get("accesses") for mc in machine.l2.dram) == before

    def test_read_word_bypass_returns_latest(self):
        machine, addr = fresh()
        machine.l1s[1].store(addr, 123, 0)  # dirty in a MESI L1
        value, latency = machine.l2.read_word_bypass(2, addr, 1)
        assert value == 123
        assert latency > 0

    def test_l2_eviction_preserves_data_in_dram(self):
        machine, addr = fresh(kind="bt-mesi")
        # Shrink L2 to force evictions: 2 banks x 2KB, 2-way -> tiny L2.
        small = tiny_machine("bt-mesi", l2_bank_bytes=2048, l2_assoc=2)
        a = small.address_space.alloc_words(8, "a")
        small.l1s[1].store(a, 42, 0)
        small.l1s[1].flush_all(1)  # no-op on MESI but harmless
        # Touch many distinct lines so that line a is evicted from L2.
        filler = small.address_space.alloc(64 * 512, "filler")
        now = 2
        for i in range(256):
            small.l1s[2].load(filler + i * 64, now)
            now += 5
        assert small.host_read_word(a) == 42

    def test_traffic_categories_populated(self):
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l1s[2].store(addr, 1, 1)
        snap = machine.traffic.snapshot()
        assert set(snap) == set(CATEGORIES)
        assert snap["cpu_req"] > 0
        assert snap["data_resp"] > 0
        assert snap["dram_req"] > 0

    def test_bypass_preserves_mesi_ownership(self):
        # Regression: the old bypass recalled the owner, silently demoting
        # M/R copies on every mailbox poll.  A bypass read must observe
        # the owner's value without touching directory or L1 state.
        machine, addr = fresh()
        machine.l1s[1].store(addr, 123, 0)
        value, latency = machine.l2.read_word_bypass(2, addr, 1)
        assert value == 123
        assert latency > 0
        entry = machine.l2.directory_entry(addr)
        assert entry.owner == 1
        line = machine.l1s[1].resident(addr)
        assert line is not None and line.state == MODIFIED
        assert line.dirty_mask  # still dirty: nothing was flushed

    def test_bypass_sees_own_dirty_copy(self):
        # The reading core itself may be the owner; its private dirty copy
        # is the architectural value, not the L2's stale words.
        machine, addr = fresh()
        machine.l1s[1].store(addr, 77, 0)
        value, _ = machine.l2.read_word_bypass(1, addr, 1)
        assert value == 77
        assert machine.l2.directory_entry(addr).owner == 1

    def test_bypass_peeks_instead_of_recalling(self):
        machine, addr = fresh()
        machine.l1s[1].store(addr, 5, 0)
        before = machine.l2.stats.get("owner_recalls")
        machine.l2.read_word_bypass(2, addr, 1)
        assert machine.l2.stats.get("owner_peeks") == 1
        assert machine.l2.stats.get("owner_recalls") == before

    def test_recall_and_invalidate_round_trips_symmetric(self):
        # Regression: _invalidate_sharers dropped the +1 hop-independent
        # cycle _recall_owner charges, so a recall from core N cost one
        # cycle more than an invalidation of a sharer at the same spot.
        recall_m, addr_r = fresh()
        recall_m.l1s[1].store(addr_r, 9, 0)  # core 1 owns dirty
        base_r = line_addr(addr_r)
        bank_r = recall_m.l2.banks[recall_m.l2.bank_of(base_r)]
        lat_recall = recall_m.l2._recall_owner(
            bank_r, recall_m.l2.directory_entry(addr_r), 0)

        inval_m, addr_i = fresh()
        inval_m.l1s[1].load(addr_i, 0)
        inval_m.l1s[2].load(addr_i, 1)   # sharers {1, 2}
        inval_m.l2.eviction_notice(2, addr_i)  # leave exactly core 1
        base_i = line_addr(addr_i)
        bank_i = inval_m.l2.banks[inval_m.l2.bank_of(base_i)]
        entry_i = inval_m.l2.directory_entry(addr_i)
        assert entry_i.sharers == {1}
        lat_inval = inval_m.l2._invalidate_sharers(
            bank_i, entry_i, 0, except_core=None)
        assert bank_r.bank_id == bank_i.bank_id  # same distances
        assert lat_recall == lat_inval

    def test_dirty_l2_evict_pays_dram_latency(self):
        # Regression: the dirty-victim DRAM access latency was computed
        # but dropped from the returned eviction latency.
        machine, addr = fresh("bt-hcc-gwb")
        machine.l1s[1].store(addr, 7, 0)
        machine.l1s[1].flush_all(1)  # write-back: L2 line now dirty
        base = line_addr(addr)
        bank = machine.l2.banks[machine.l2.bank_of(base)]
        victim = bank.tags.remove(base)
        assert victim.dirty_mask
        latency = machine.l2._evict_l2_line(bank, victim, 10)
        # At least the DRAM access latency (60 cycles) must be charged.
        assert latency >= 60
        assert machine.memory.read_word(addr) == 7

    def test_clean_l2_evict_is_dropped_silently(self):
        # Regression: clean victims were written back to memory with a
        # full-line mask and no DRAM traffic accounting.  A clean line
        # matches DRAM by construction, so the evict must be free.
        machine, addr = fresh()
        machine.l1s[1].load(addr, 0)
        machine.l2.eviction_notice(1, addr)  # clear directory tracking
        base = line_addr(addr)
        bank = machine.l2.banks[machine.l2.bank_of(base)]
        victim = bank.tags.remove(base)
        assert not victim.dirty_mask
        # Divergence sentinel: if the evict wrote the line back, the
        # sentinel would be clobbered with the cached copy.
        machine.memory.write_word(addr, 999)
        req_before = machine.traffic.messages["dram_req"]
        acc_before = sum(mc.stats.get("accesses") for mc in machine.l2.dram)
        latency = machine.l2._evict_l2_line(bank, victim, 0)
        assert latency == 0
        assert machine.traffic.messages["dram_req"] == req_before
        assert sum(mc.stats.get("accesses")
                   for mc in machine.l2.dram) == acc_before
        assert machine.memory.read_word(addr) == 999

    def test_mesi_evict_writes_back_only_dirty_words(self):
        # Regression: `dirty_mask or FULL_MASK` pushed all 8 words (and
        # full-line wb_req bytes) for a single dirty word.
        machine, addr = fresh()
        machine.l1s[1].store(addr, 42, 0)  # exactly one dirty word
        machine.host_write_word(addr + WORD_BYTES, 5)
        before = machine.traffic.bytes["wb_req"]
        machine.l1s[1].force_capacity_eviction(1)
        delta = machine.traffic.bytes["wb_req"] - before
        assert delta == CTRL_BYTES + 8  # control + ONE word, not the line
        assert machine.l2.peek_word(addr) == 42

    def test_bank_queue_adds_delay_under_contention(self):
        machine, _ = fresh()
        base = machine.address_space.alloc_words(8, "hot")
        machine.host_write_word(base, 1)
        # Two misses to the same bank at the same cycle: the second queues.
        _, lat1 = machine.l1s[1].load(base, 0)
        other = machine.address_space.alloc_words(8, "hot2")
        # Map to the same bank: stride by n_banks lines.
        same_bank = base + 64 * machine.l2.n_banks
        _, lat2 = machine.l1s[2].load(same_bank, 0)
        assert lat2 >= lat1 - 5  # both paid the miss; second may queue more
