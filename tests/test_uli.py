"""User-level interrupt (ULI) mechanism tests (Section IV)."""

from repro.cores import ops

from helpers import tiny_machine


def setup_machine():
    machine = tiny_machine("bt-hcc-dts-gwb")
    return machine


def run(machine):
    return machine.sim.run()


class TestUliHandshake:
    def test_ack_when_enabled_and_handler_runs(self):
        machine = setup_machine()
        handled = []

        def handler_factory(thief):
            def handler(thief_id=thief):
                handled.append(thief_id)
                yield ops.Work(3)

            return handler()

        machine.cores[2].uli_handler_factory = handler_factory
        acks = []

        def victim():
            yield ops.UliEnable()
            yield ops.Idle(500)

        def thief():
            yield ops.Idle(10)
            ack = yield ops.UliSend(2)
            acks.append(ack)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        assert acks == [True]
        assert handled == [1]

    def test_nack_when_disabled(self):
        machine = setup_machine()
        machine.cores[2].uli_handler_factory = lambda t: iter(())
        acks = []

        def victim():
            yield ops.Idle(500)  # never enables ULI

        def thief():
            ack = yield ops.UliSend(2)
            acks.append(ack)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        assert acks == [False]

    def test_nack_when_no_handler_installed(self):
        machine = setup_machine()
        acks = []

        def victim():
            yield ops.UliEnable()
            yield ops.Idle(200)

        def thief():
            ack = yield ops.UliSend(2)
            acks.append(ack)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        assert acks == [False]

    def test_nack_when_victim_halted(self):
        machine = setup_machine()
        machine.cores[2].uli_handler_factory = lambda t: iter(())
        acks = []

        def victim():
            yield ops.UliEnable()  # halts immediately after

        def thief():
            yield ops.Idle(50)
            ack = yield ops.UliSend(2)
            acks.append(ack)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        assert acks == [False]

    def test_disable_window_nacks(self):
        machine = setup_machine()
        machine.cores[2].uli_handler_factory = lambda t: iter(())
        acks = []

        def victim():
            yield ops.UliEnable()
            yield ops.UliDisable()
            yield ops.Idle(300)

        def thief():
            yield ops.Idle(20)
            ack = yield ops.UliSend(2)
            acks.append(ack)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        assert acks == [False]


class TestUliDelivery:
    def test_handler_runs_at_op_boundary(self):
        machine = setup_machine()
        events = []

        def handler_factory(thief):
            def handler():
                events.append(("handler", machine.sim.now))
                yield ops.Work(1)

            return handler()

        machine.cores[2].uli_handler_factory = handler_factory

        def victim():
            yield ops.UliEnable()
            events.append(("op_start", machine.sim.now))
            yield ops.Work(100)  # request arrives mid-op
            events.append(("op_end", machine.sim.now))
            yield ops.Idle(100)

        def thief():
            yield ops.Idle(5)
            yield ops.UliSend(2)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        timeline = dict(events)
        # The handler waited for the in-flight Work(100) to finish...
        assert timeline["handler"] >= timeline["op_start"] + 100
        # ...and the interrupted thread resumed only after the handler.
        assert timeline["op_end"] > timeline["handler"]

    def test_mutual_steal_does_not_deadlock(self):
        machine = setup_machine()
        acks = []

        def handler_factory(thief):
            def handler():
                yield ops.Work(2)

            return handler()

        for core in machine.cores:
            core.uli_handler_factory = handler_factory

        def mutual(peer):
            yield ops.UliEnable()
            yield ops.Idle(3)
            ack = yield ops.UliSend(peer)
            acks.append(ack)
            yield ops.Idle(50)

        machine.cores[1].start(mutual(2))
        machine.cores[2].start(mutual(1))
        run(machine)
        assert len(acks) == 2
        assert all(acks)  # both serviced while blocked: no deadlock

    def test_second_concurrent_request_nacked(self):
        machine = setup_machine()

        def handler_factory(thief):
            def handler():
                yield ops.Work(400)  # long handler occupies the receiver

            return handler()

        machine.cores[0].uli_handler_factory = handler_factory
        acks = {}

        def victim():
            yield ops.UliEnable()
            yield ops.Idle(2000)

        def thief(tid, delay):
            yield ops.Idle(delay)
            ack = yield ops.UliSend(0)
            acks[tid] = ack

        machine.cores[0].start(victim())
        machine.cores[1].start(thief(1, 5))
        machine.cores[2].start(thief(2, 40))  # lands while handler is busy
        run(machine)
        assert acks[1] is True
        assert acks[2] is False

    def test_uli_stats_recorded(self):
        machine = setup_machine()

        def handler_factory(thief):
            def handler():
                yield ops.Work(1)

            return handler()

        machine.cores[2].uli_handler_factory = handler_factory

        def victim():
            yield ops.UliEnable()
            yield ops.Idle(300)

        def thief():
            yield ops.Idle(5)
            yield ops.UliSend(2)

        machine.cores[2].start(victim())
        machine.cores[1].start(thief())
        run(machine)
        net = machine.stats.child("uli_network")
        assert net.get("messages") == 2  # request + response
        assert machine.cores[1].stats.get("uli_acks") == 1
        assert machine.cores[2].stats.get("uli_handled") == 1
