"""Task deque tests: LIFO/FIFO semantics, locking, overflow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.taskqueue import TaskDeque
from repro.cores import ops
from repro.engine.simulator import SimulationError

from helpers import run_thread, tiny_machine


def setup(kind="bt-mesi", capacity=64):
    machine = tiny_machine(kind)
    rtctx = machine.make_contexts()
    dq = TaskDeque(machine, owner_tid=1, capacity=capacity)
    return machine, rtctx, dq


def drive(machine, core_id, gen):
    result = {}

    def wrapper():
        result["value"] = yield from gen
        if False:
            yield

    run_thread(machine, core_id, wrapper())
    return result.get("value")


class TestDequeSemantics:
    def test_dequeue_tail_is_lifo(self):
        machine, ctxs, dq = setup()

        def thread(ctx):
            for task_id in (1, 2, 3):
                yield from dq.enqueue(ctx, task_id)
            popped = []
            for _ in range(3):
                popped.append((yield from dq.dequeue_tail(ctx)))
            return popped

        assert drive(machine, 1, thread(ctxs[1])) == [3, 2, 1]

    def test_steal_head_is_fifo(self):
        machine, ctxs, dq = setup()

        def thread(ctx):
            for task_id in (1, 2, 3):
                yield from dq.enqueue(ctx, task_id)
            stolen = []
            for _ in range(3):
                stolen.append((yield from dq.steal_head(ctx)))
            return stolen

        assert drive(machine, 1, thread(ctxs[1])) == [1, 2, 3]

    def test_empty_returns_zero(self):
        machine, ctxs, dq = setup()

        def thread(ctx):
            a = yield from dq.dequeue_tail(ctx)
            b = yield from dq.steal_head(ctx)
            return (a, b)

        assert drive(machine, 1, thread(ctxs[1])) == (0, 0)

    def test_mixed_ends(self):
        machine, ctxs, dq = setup()

        def thread(ctx):
            for task_id in (1, 2, 3, 4):
                yield from dq.enqueue(ctx, task_id)
            stolen = yield from dq.steal_head(ctx)
            popped = yield from dq.dequeue_tail(ctx)
            return (stolen, popped)

        assert drive(machine, 1, thread(ctxs[1])) == (1, 4)

    def test_overflow_raises(self):
        machine, ctxs, dq = setup(capacity=4)

        def thread(ctx):
            for task_id in range(1, 7):
                yield from dq.enqueue(ctx, task_id)

        with pytest.raises(SimulationError):
            drive(machine, 1, thread(ctxs[1]))

    def test_circular_reuse_beyond_capacity(self):
        machine, ctxs, dq = setup(capacity=4)

        def thread(ctx):
            out = []
            for round_ in range(5):
                for task_id in (10 + round_, 20 + round_):
                    yield from dq.enqueue(ctx, task_id)
                out.append((yield from dq.dequeue_tail(ctx)))
                out.append((yield from dq.dequeue_tail(ctx)))
            return out

        out = drive(machine, 1, thread(ctxs[1]))
        assert out == [20, 10, 21, 11, 22, 12, 23, 13, 24, 14]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["enq", "deq", "steal"]), max_size=40))
    def test_matches_python_deque_model(self, script):
        from collections import deque as pydeque

        machine, ctxs, dq = setup(capacity=128)
        model = pydeque()
        next_id = [1]

        def thread(ctx):
            results = []
            for action in script:
                if action == "enq":
                    task_id = next_id[0]
                    next_id[0] += 1
                    yield from dq.enqueue(ctx, task_id)
                    model.append(task_id)
                elif action == "deq":
                    got = yield from dq.dequeue_tail(ctx)
                    expected = model.pop() if model else 0
                    results.append((got, expected))
                else:
                    got = yield from dq.steal_head(ctx)
                    expected = model.popleft() if model else 0
                    results.append((got, expected))
            return results

        for got, expected in drive(machine, 1, thread(ctxs[1])) or []:
            assert got == expected


class TestDequeLock:
    def test_lock_provides_mutual_exclusion(self):
        for kind in ("bt-mesi", "bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb"):
            machine, ctxs, dq = setup(kind)
            shared = machine.address_space.alloc_words(1, "shared")
            machine.host_write_word(shared, 0)
            trace = []

            def worker(ctx, tid):
                # The Figure 3b critical-section recipe: invalidate after
                # acquire, flush before release.
                for _ in range(10):
                    yield from dq.lock_acquire(ctx)
                    yield from ctx.cache_invalidate()
                    value = yield from ctx.load(shared)
                    yield from ctx.work(5)  # widen the race window
                    yield from ctx.store(shared, value + 1)
                    yield from ctx.cache_flush()
                    yield from dq.lock_release(ctx)
                trace.append(tid)

            machine.cores[1].start(worker(ctxs[1], 1))
            machine.cores[2].start(worker(ctxs[2], 2))
            machine.cores[3].start(worker(ctxs[3], 3))
            machine.sim.run()
            assert len(trace) == 3
            assert machine.host_read_word(shared) == 30, kind

    def test_lock_release_visible_to_spinners(self):
        machine, ctxs, dq = setup("bt-hcc-gwb")
        order = []

        def holder(ctx):
            yield from dq.lock_acquire(ctx)
            yield from ctx.work(200)
            order.append("release")
            yield from dq.lock_release(ctx)

        def contender(ctx):
            yield from ctx.idle(10)
            yield from dq.lock_acquire(ctx)
            order.append("acquired")
            yield from dq.lock_release(ctx)

        machine.cores[1].start(holder(ctxs[1]))
        machine.cores[2].start(contender(ctxs[2]))
        machine.sim.run()
        assert order == ["release", "acquired"]
