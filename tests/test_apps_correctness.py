"""End-to-end correctness of all 13 kernels across coherence configurations.

These are the strongest tests in the suite: application data lives in
simulated memory, so any missing invalidate/flush in the runtime, any
protocol state machine bug, or any lost ULI handoff produces a wrong
result that ``check()`` catches against a pure-Python reference.
"""

import pytest

from repro.apps import PAPER_APPS, make_app
from repro.core import WorkStealingRuntime

from helpers import tiny_machine

#: Small inputs, sized for the 4-core test machine.
SMALL_PARAMS = {
    "cilk5-cs": dict(n=160, grain=32),
    "cilk5-lu": dict(n=8, grain=4),
    "cilk5-mm": dict(n=8, grain=4),
    "cilk5-mt": dict(n=16, grain=8),
    "cilk5-nq": dict(n=6, cutoff=2),
    "ligra-bc": dict(scale=5, grain=8),
    "ligra-bf": dict(scale=5, grain=8),
    "ligra-bfs": dict(scale=5, grain=8),
    "ligra-bfsbv": dict(scale=5, grain=8),
    "ligra-cc": dict(scale=5, grain=8),
    "ligra-mis": dict(scale=5, grain=8),
    "ligra-radii": dict(scale=4, grain=8),
    "ligra-tc": dict(scale=5, grain=16),
}

#: The four interesting coherence corners for per-app parameterization.
CORNER_KINDS = ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-dnv", "bt-hcc-dts-gwb")


def run_app(name, kind, seed=0xC0FFEE, **extra):
    params = dict(SMALL_PARAMS[name])
    params.update(extra)
    app = make_app(name, **params)
    machine = tiny_machine(kind, seed=seed)
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    cycles = rt.run(app.make_root())
    app.check()
    return app, machine, rt, cycles


@pytest.mark.parametrize("name", PAPER_APPS)
@pytest.mark.parametrize("kind", CORNER_KINDS)
def test_app_correct(name, kind):
    _, _, rt, _ = run_app(name, kind)
    assert rt.stats.get("tasks_executed") > 0


@pytest.mark.parametrize("name", PAPER_APPS)
def test_app_correct_on_remaining_configs(name):
    for kind in ("bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-dts-gwt"):
        run_app(name, kind)


@pytest.mark.parametrize("name", PAPER_APPS)
def test_app_correct_serially(name):
    params = dict(SMALL_PARAMS[name])
    app = make_app(name, **params)
    machine = tiny_machine("bt-mesi")
    app.setup(machine)
    rt = WorkStealingRuntime(machine, serial_elision=True)
    rt.run(app.make_root())
    app.check()


@pytest.mark.parametrize("name", ("cilk5-cs", "ligra-bfs", "ligra-tc"))
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_app_correct_across_schedules(name, seed):
    """Different seeds change victim selection; results must not."""
    run_app(name, "bt-hcc-dts-gwb", seed=seed)


def test_parallel_and_serial_elision_agree():
    app_par = make_app("cilk5-mm", n=8, grain=4)
    machine_par = tiny_machine("bt-hcc-gwb")
    app_par.setup(machine_par)
    WorkStealingRuntime(machine_par).run(app_par.make_root())

    app_ser = make_app("cilk5-mm", n=8, grain=4)
    machine_ser = tiny_machine("bt-hcc-gwb")
    app_ser.setup(machine_ser)
    WorkStealingRuntime(machine_ser, serial_elision=True).run(app_ser.make_root())

    assert app_par.c.host_read() == app_ser.c.host_read()


@pytest.mark.parametrize("kind", CORNER_KINDS)
def test_pagerank_extension_app(kind):
    """PageRank (extension kernel): deterministic float ranks on every config."""
    from repro.apps import make_app
    from repro.core import WorkStealingRuntime

    app = make_app("ligra-pr", scale=5, grain=8, iterations=3)
    machine = tiny_machine(kind)
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    rt.run(app.make_root())
    app.check()
