"""Tests for the parallel experiment grid (repro.harness.grid)."""

import dataclasses

import pytest

from repro.harness import (
    FailedResult,
    GridError,
    GridPoint,
    clear_cache,
    expand_grid,
    memo_key,
    run_experiment,
    set_result_store,
    simulation_count,
)
from repro.harness.grid import default_jobs, run_grid, set_default_jobs
from repro.harness.runner import canonicalize


@pytest.fixture(autouse=True)
def isolated_harness():
    set_result_store(None)
    clear_cache()
    yield
    set_result_store(None)
    set_default_jobs(None)
    clear_cache()


SUB_GRID = expand_grid(
    apps=("cilk5-mt", "ligra-bfs"),
    kinds=("bt-mesi", "bt-hcc-dts-gwb"),
    scales=("quick",),
)


def _run_fresh(points, **kwargs):
    clear_cache()
    return run_grid(points, **kwargs)


class TestGridBasics:
    def test_expand_grid_is_app_major(self):
        points = expand_grid(("a", "b"), ("k1", "k2"), ("s",))
        assert [(p.app, p.kind) for p in points] == [
            ("a", "k1"), ("a", "k2"), ("b", "k1"), ("b", "k2"),
        ]

    def test_empty_grid(self):
        assert run_grid([]) == []

    def test_default_jobs_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        set_default_jobs(6)
        assert default_jobs() == 6
        with pytest.raises(ValueError):
            set_default_jobs(0)

    def test_point_label_mentions_overrides(self):
        point = GridPoint("a", "k", "s", app_overrides={"grain": 2})
        assert "grain" in point.label()
        assert point.as_fields()["app_overrides"] == {"grain": 2}


class TestDeterminism:
    def test_parallel_grid_bit_identical_to_serial(self):
        """Acceptance: run_grid(jobs=4) over a quick-scale sub-grid is
        bit-identical, field by field, to a jobs=1 serial run."""
        serial = _run_fresh(SUB_GRID, jobs=1)
        parallel = _run_fresh(SUB_GRID, jobs=4)
        assert len(serial) == len(parallel) == len(SUB_GRID)
        for point, s, p in zip(SUB_GRID, serial, parallel):
            assert s == p, f"mismatch at {point.label()}"
            # Equality is dataclass-wide, but check the tricky fields
            # (floats and nested dicts) explicitly.
            assert s.cycles == p.cycles
            assert s.instructions == p.instructions
            assert s.traffic_bytes == p.traffic_bytes
            assert s.l1_hit_rate_tiny == p.l1_hit_rate_tiny
            assert s.tiny_breakdown == p.tiny_breakdown
            assert s.energy.total_pj == p.energy.total_pj
            assert s.energy.breakdown_pj == p.energy.breakdown_pj
        for s, p in zip(serial, parallel):
            assert dataclasses.asdict(s) == dataclasses.asdict(p)

    def test_parallel_results_seed_the_memo_cache(self):
        _run_fresh(SUB_GRID[:2], jobs=2)
        sims = simulation_count()
        for point in SUB_GRID[:2]:
            run_experiment(**point.run_kwargs())
        assert simulation_count() == sims

    def test_parallel_results_land_in_the_store(self, tmp_path):
        store = set_result_store(tmp_path / "results")
        _run_fresh(SUB_GRID[:2], jobs=2)
        assert len(store) == 2


class TestMpContext:
    def test_spawn_override_is_honored(self, monkeypatch):
        from repro.harness.grid import _mp_context

        monkeypatch.setenv("REPRO_MP", "spawn")
        assert _mp_context().get_start_method() == "spawn"

    def test_unknown_method_is_rejected(self, monkeypatch):
        from repro.harness.grid import _mp_context

        monkeypatch.setenv("REPRO_MP", "threads")
        with pytest.raises(ValueError, match="REPRO_MP"):
            _mp_context()

    def test_forced_fork_refuses_live_helper_threads(self, monkeypatch):
        """Regression: fork used to be picked unconditionally; with a live
        non-daemon helper thread the forked child inherits any lock the
        helper holds — held forever.  A *forced* fork must refuse loudly."""
        import threading

        from repro.harness.grid import _mp_context

        release = threading.Event()
        helper = threading.Thread(
            target=release.wait, name="obs-helper", daemon=False
        )
        helper.start()
        try:
            monkeypatch.setenv("REPRO_MP", "fork")
            with pytest.raises(RuntimeError, match="obs-helper"):
                _mp_context()
        finally:
            release.set()
            helper.join()

    def test_auto_mode_falls_back_to_spawn_around_helper_threads(
        self, monkeypatch
    ):
        import threading

        from repro.harness.grid import _mp_context

        monkeypatch.delenv("REPRO_MP", raising=False)
        release = threading.Event()
        helper = threading.Thread(
            target=release.wait, name="ledger-appender", daemon=False
        )
        helper.start()
        try:
            assert _mp_context().get_start_method() == "spawn"
        finally:
            release.set()
            helper.join()

    def test_grid_bit_identical_under_spawn(self, monkeypatch):
        """One grid sweep must run green — and bit-identical to serial —
        under ``REPRO_MP=spawn`` (workers re-import instead of forking)."""
        points = expand_grid(
            apps=("cilk5-mt",), kinds=("bt-mesi", "bt-hcc-dnv"),
            scales=("tiny",),
        )
        serial = _run_fresh(points, jobs=1)
        monkeypatch.setenv("REPRO_MP", "spawn")
        spawned = _run_fresh(points, jobs=2)
        for a, b in zip(serial, spawned):
            for field in dataclasses.fields(a):
                assert getattr(a, field.name) == getattr(b, field.name), field.name


class TestShardedPoints:
    def test_sharded_point_matches_plain_point_under_parallel_grid(self):
        """A shards=2 point spawns its own replica workers inside a grid
        worker (which therefore must not be daemonic) and still lands the
        same result as the plain point in the same slot."""
        plain = [
            GridPoint("cilk5-mt", "bt-mesi", "tiny"),
            GridPoint("cilk5-mt", "bt-hcc-dnv", "tiny"),
        ]
        sharded = [dataclasses.replace(p, shards=2) for p in plain]
        assert sharded[0].label().endswith("shards=2")
        reference = _run_fresh(plain, jobs=1)
        got = _run_fresh(sharded, jobs=4)
        for a, b in zip(reference, got):
            for field in dataclasses.fields(a):
                if field.name == "extras":
                    continue  # pdes_* provenance lands here by design
                assert getattr(a, field.name) == getattr(b, field.name), field.name
        assert got[0].extras["pdes_shards"] == 2.0

    def test_worker_budget_is_divided_by_widest_point(self, monkeypatch):
        from repro.harness import grid as grid_mod

        seen = {}
        real = grid_mod._run_parallel

        def spy(points, jobs, *args, **kwargs):
            seen["jobs"] = jobs
            return real(points, jobs, *args, **kwargs)

        monkeypatch.setattr(grid_mod, "_run_parallel", spy)
        points = [
            GridPoint("cilk5-mt", "bt-mesi", "tiny", shards=2),
            GridPoint("cilk5-mt", "bt-hcc-dnv", "tiny", shards=2),
        ]
        _run_fresh(points, jobs=4)
        assert seen["jobs"] == 2  # 4 jobs / 2-shard points


class TestFailureHandling:
    def test_bad_point_raises_grid_error(self):
        bad = GridPoint(
            "cilk5-mt", "bt-mesi", "quick",
            app_overrides={"no_such_param": 1},
        )
        with pytest.raises(GridError, match="no_such_param"):
            run_grid([SUB_GRID[0], bad], jobs=2, retries=1)

    def test_timeout_raises_grid_error(self):
        point = GridPoint("cilk5-mt", "bt-mesi", "quick")
        with pytest.raises(GridError, match="timed out"):
            run_grid([point, SUB_GRID[1]], jobs=2, timeout=1e-9, retries=0)

    def test_serial_path_propagates_exceptions(self):
        bad = GridPoint(
            "cilk5-mt", "bt-mesi", "quick",
            app_overrides={"no_such_param": 1},
        )
        with pytest.raises(TypeError):
            run_grid([bad], jobs=1)


DEADLOCK_POINT = GridPoint("kernel-deadlock", "bt-mesi", "tiny", watchdog=20_000)


class TestCrashTolerantSweeps:
    """on_error="record": one wedged cell must not sink the sweep."""

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_grid([], on_error="ignore")

    @pytest.mark.parametrize("jobs", (1, 3))
    def test_deadlock_recorded_in_slot(self, jobs):
        points = [SUB_GRID[0], DEADLOCK_POINT, SUB_GRID[1]]
        results = _run_fresh(points, jobs=jobs, on_error="record")
        assert len(results) == 3
        ok_first, failed, ok_last = results
        assert ok_first.cycles > 0 and ok_last.cycles > 0
        assert isinstance(failed, FailedResult)
        assert failed.failed and failed.error == "deadlock"
        assert failed.app == "kernel-deadlock"
        assert "no runtime progress" in failed.message
        assert failed.diagnostic["done"] is False
        assert "cores" in failed.diagnostic

    def test_deadlock_not_retried(self):
        # Deadlocks are deterministic; retries would just re-wedge.
        results = _run_fresh([DEADLOCK_POINT], jobs=2, retries=3,
                             on_error="record")
        assert results[0].attempts == 1

    def test_deadlock_raises_by_default(self):
        with pytest.raises((GridError, Exception)) as exc_info:
            _run_fresh([DEADLOCK_POINT], jobs=1)
        assert "no runtime progress" in str(exc_info.value)

    def test_watchdog_point_label_and_kwargs(self):
        assert "kernel-deadlock" in DEADLOCK_POINT.label()
        kwargs = DEADLOCK_POINT.run_kwargs()
        assert kwargs["watchdog"] == 20_000

    def test_adopt_result_refuses_failures(self):
        """Regression: adopting a FailedResult would persist the failure
        as a success, and every later probe of that key would silently
        skip the simulation."""
        from repro.harness.runner import adopt_result

        failure = FailedResult(
            app="kernel-deadlock", kind="bt-mesi", scale="tiny",
            label="kernel-deadlock bt-mesi tiny", error="deadlock",
            message="no runtime progress",
        )
        with pytest.raises(TypeError, match="refusing to adopt"):
            adopt_result(failure)
        with pytest.raises(TypeError, match="refusing to adopt"):
            adopt_result("not a result at all")

    def test_recorded_failure_never_lands_in_the_store(self, tmp_path):
        """A failed cell must leave no store entry: a sweep rerun has to
        re-attempt it, not warm-hit a bogus 'success'."""
        store = set_result_store(tmp_path / "results")
        results = _run_fresh(
            [SUB_GRID[0], DEADLOCK_POINT], jobs=2, on_error="record"
        )
        assert isinstance(results[1], FailedResult)
        assert len(store) == 1  # only the successful point persisted
        # A rerun of the same sweep re-attempts (and re-records) the
        # failed cell instead of loading it as a success.
        rerun = _run_fresh(
            [SUB_GRID[0], DEADLOCK_POINT], jobs=1, on_error="record"
        )
        assert isinstance(rerun[1], FailedResult)
        assert rerun[0].cycles == results[0].cycles

    def test_faulted_point_runs_through_grid(self):
        point = GridPoint(
            "cilk5-mt", "bt-mesi", "quick", faults="timing", sanitize=True
        )
        clean = GridPoint("cilk5-mt", "bt-mesi", "quick")
        faulted_res, clean_res = _run_fresh([point, clean], jobs=2)
        assert faulted_res.extras["faults_fired"] > 0
        assert faulted_res.extras["sanitizer_walks"] > 0
        assert "faults_fired" not in clean_res.extras
        assert "faults" in point.label() and "sanitize" in point.label()


class TestMemoKeyCanonicalization:
    """Regression: dict/list-valued overrides used to raise TypeError
    ("unhashable type") when run_experiment built its memo key."""

    def test_canonicalize_handles_nested_containers(self):
        value = {"b": [1, {"c": 2}], "a": (3, 4)}
        canon = canonicalize(value)
        hash(canon)  # must be hashable
        reordered = canonicalize({"a": (3, 4), "b": [1, {"c": 2}]})
        assert canon == reordered

    def test_memo_key_with_dict_overrides_is_hashable(self):
        key = memo_key(
            "cilk5-mt", "bt-mesi", "quick",
            app_overrides={"grain": 2},
            config_overrides={"tiny_l1": {"size_bytes": 8192, "assoc": 2}},
            runtime_kwargs={"steal_policy": "big-first"},
        )
        hash(key)
        again = memo_key(
            "cilk5-mt", "bt-mesi", "quick",
            app_overrides={"grain": 2},
            config_overrides={"tiny_l1": {"assoc": 2, "size_bytes": 8192}},
            runtime_kwargs={"steal_policy": "big-first"},
        )
        assert key == again
        assert key != memo_key("cilk5-mt", "bt-mesi", "quick")

    def test_run_experiment_accepts_dict_valued_config_override(self):
        result = run_experiment(
            "cilk5-mt", "bt-mesi", "quick",
            config_overrides={"tiny_l1": {"size_bytes": 8192, "assoc": 2}},
        )
        assert result.cycles > 0
        sims = simulation_count()
        # Memoized on the second call despite the dict-valued override.
        run_experiment(
            "cilk5-mt", "bt-mesi", "quick",
            config_overrides={"tiny_l1": {"assoc": 2, "size_bytes": 8192}},
        )
        assert simulation_count() == sims
