"""Cross-protocol coherence integration scenarios on running cores.

Unlike the per-protocol unit tests, these execute multi-core programs
through the full machine (cores + caches + directory + NoC) and verify the
DAG-consistency recipes of Section III end to end.
"""

import pytest

from repro.cores import ops

from helpers import ALL_BIGTINY, tiny_machine


def run_all(machine):
    machine.sim.run()


PROTO_KINDS = ("bt-mesi", "bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb")


class TestProducerConsumer:
    @pytest.mark.parametrize("kind", PROTO_KINDS)
    def test_flush_then_invalidate_transfers_data(self, kind):
        machine = tiny_machine(kind)
        base = machine.address_space.alloc_words(16, "buf")
        flag = machine.address_space.alloc_words(1, "flag")
        seen = []

        def producer():
            for i in range(16):
                yield ops.Store(base + i * 8, i * i)
            yield ops.FlushAll()
            yield ops.Amo("xchg", flag, 1)  # release via AMO

        def consumer():
            while True:
                ready = yield ops.Amo("or", flag, 0)  # acquire via AMO
                if ready:
                    break
                yield ops.Idle(20)
            yield ops.InvAll()
            values = []
            for i in range(16):
                value = yield ops.Load(base + i * 8)
                values.append(value)
            seen.append(values)

        machine.cores[1].start(producer())
        machine.cores[2].start(consumer())
        run_all(machine)
        assert seen == [[i * i for i in range(16)]]

    def test_gwb_consumer_sees_stale_without_invalidate(self):
        """Negative test: omitting the invalidate really breaks GPU-WB."""
        machine = tiny_machine("bt-hcc-gwb")
        addr = machine.address_space.alloc_words(1, "x")
        machine.host_write_word(addr, 1)
        seen = []

        def consumer():
            first = yield ops.Load(addr)  # warm the stale copy
            yield ops.Idle(500)
            second = yield ops.Load(addr)  # NO invalidate: stays stale
            seen.append((first, second))

        def producer():
            yield ops.Idle(50)
            yield ops.Store(addr, 2)
            yield ops.FlushAll()

        machine.cores[1].start(consumer())
        machine.cores[2].start(producer())
        run_all(machine)
        assert seen == [(1, 1)]


class TestFalseSharingGranularity:
    @pytest.mark.parametrize("kind", PROTO_KINDS)
    def test_word_writes_to_one_line_merge(self, kind):
        """Two cores write different words of the same line; both survive."""
        machine = tiny_machine(kind)
        base = machine.address_space.alloc_words(8, "line")

        def writer(core_id, word):
            yield ops.Idle(core_id * 3)
            yield ops.Store(base + word * 8, 100 + word)
            yield ops.FlushAll()

        machine.cores[1].start(writer(1, 0))
        machine.cores[2].start(writer(2, 5))
        run_all(machine)
        assert machine.host_read_word(base) == 100
        assert machine.host_read_word(base + 40) == 105


class TestAtomicsAcrossProtocols:
    @pytest.mark.parametrize("kind", ALL_BIGTINY)
    def test_concurrent_amo_increments_never_lost(self, kind):
        machine = tiny_machine(kind)
        counter = machine.address_space.alloc_words(1, "ctr")
        machine.host_write_word(counter, 0)

        def incrementer():
            for _ in range(25):
                yield ops.Amo("add", counter, 1)
                yield ops.Idle(3)

        for core_id in range(4):
            machine.cores[core_id].start(incrementer())
        run_all(machine)
        assert machine.host_read_word(counter) == 100

    @pytest.mark.parametrize("kind", PROTO_KINDS)
    def test_cas_claims_exactly_once(self, kind):
        machine = tiny_machine(kind)
        slot = machine.address_space.alloc_words(1, "slot")
        machine.host_write_word(slot, 0)
        winners = []

        def claimer(core_id):
            old = yield ops.Amo("cas", slot, (0, core_id))
            if old == 0:
                winners.append(core_id)

        for core_id in range(1, 4):
            machine.cores[core_id].start(claimer(core_id))
        run_all(machine)
        assert len(winners) == 1
        assert machine.host_read_word(slot) == winners[0]


class TestBigTinyInterplay:
    @pytest.mark.parametrize("kind", ("bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb"))
    def test_big_core_sees_tiny_core_flushed_writes(self, kind):
        machine = tiny_machine(kind)
        addr = machine.address_space.alloc_words(1, "x")
        flag = machine.address_space.alloc_words(1, "f")
        seen = []

        def tiny_writer():
            yield ops.Store(addr, 9)
            yield ops.FlushAll()
            yield ops.Amo("xchg", flag, 1)

        def big_reader():  # big core: hardware MESI, no invalidate needed
            while True:
                ready = yield ops.Amo("or", flag, 0)
                if ready:
                    break
                yield ops.Idle(10)
            value = yield ops.Load(addr)
            seen.append(value)

        machine.cores[1].start(tiny_writer())
        machine.cores[0].start(big_reader())
        run_all(machine)
        assert seen == [9]

    @pytest.mark.parametrize("kind", ("bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb"))
    def test_tiny_core_sees_big_core_writes_after_invalidate(self, kind):
        machine = tiny_machine(kind)
        addr = machine.address_space.alloc_words(1, "x")
        flag = machine.address_space.alloc_words(1, "f")
        seen = []

        def big_writer():
            yield ops.Store(addr, 13)  # MESI: coherent, no flush needed
            yield ops.Amo("xchg", flag, 1)

        def tiny_reader():
            yield ops.Load(addr)  # warm a (possibly stale) copy
            while True:
                ready = yield ops.Amo("or", flag, 0)
                if ready:
                    break
                yield ops.Idle(10)
            yield ops.InvAll()
            value = yield ops.Load(addr)
            seen.append(value)

        machine.cores[0].start(big_writer())
        machine.cores[1].start(tiny_reader())
        run_all(machine)
        assert seen == [13]
