"""Tests for the crash-tolerant job service (repro.serve).

Three layers, increasingly integrated:

* pure-logic units (queue ordering, admission policy, journal replay)
  with no processes and no clocks;
* the supervisor against a *fake* spawn function and an injected clock —
  every failure verdict (death, timeout, wedged, park, poison job)
  exercised in milliseconds;
* end-to-end runs on real forked grid workers, including the kill-recovery
  invariant: a server "crash" mid-run loses no job, re-runs at most what
  never completed, and parked jobs resume from their snapshots.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.harness import clear_cache, set_result_store
from repro.harness.retry import NO_BACKOFF, BackoffPolicy
from repro.serve import (
    Job,
    JobQueue,
    JobRecord,
    Journal,
    ServePolicy,
    Supervisor,
    admission_reason,
    recover,
    replay,
)


@pytest.fixture(autouse=True)
def isolated_harness():
    set_result_store(None)
    clear_cache()
    yield
    set_result_store(None)
    clear_cache()


def job(**overrides) -> Job:
    fields = dict(app="cilk5-mt", kind="bt-mesi", scale="tiny")
    fields.update(overrides)
    return Job(**fields)


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_order_with_deadline_tiebreak(self):
        queue = JobQueue()
        batch = JobRecord(id="j-1", job=job(priority=5), submitted_at=0.0)
        urgent = JobRecord(id="j-2", job=job(priority=1), submitted_at=1.0)
        deadline = JobRecord(
            id="j-3", job=job(priority=5, deadline_s=10.0), submitted_at=2.0
        )
        for record in (batch, urgent, deadline):
            queue.add(record)
        assert queue.pop_runnable().id == "j-2"  # lowest priority number
        assert queue.pop_runnable().id == "j-3"  # deadline beats batch
        assert queue.pop_runnable().id == "j-1"
        assert queue.pop_runnable() is None

    def test_work_key_identifies_the_experiment(self):
        assert job().work_key() == job().work_key()
        assert job().work_key() != job(scale="quick").work_key()
        assert job().work_key() != job(serial=True).work_key()
        # Service metadata is not part of the experiment's identity.
        assert (
            job(priority=1, tenant="a", deadline_s=5.0).work_key()
            == job(priority=9, tenant="b").work_key()
        )

    def test_pop_skips_records_that_moved_on(self):
        queue = JobQueue()
        record = JobRecord(id="j-1", job=job())
        queue.add(record)
        record.state = "done"  # moved on while queued
        assert queue.pop_runnable() is None

    def test_tenant_load_counts_non_terminal_only(self):
        queue = JobQueue()
        queue.add(JobRecord(id="j-1", job=job(tenant="t")))
        done = JobRecord(id="j-2", job=job(tenant="t"), state="done")
        queue.add(done)
        assert queue.tenant_load("t") == 1

    def test_ids_monotonic_across_recovery(self):
        queue = JobQueue()
        queue.reserve_id("j-000007")
        assert queue.new_id() == "j-000008"


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
class TestAdmission:
    def test_overload_sheds_explicitly(self):
        policy = ServePolicy(max_pending=2)
        queue = JobQueue()
        for i in range(2):
            queue.add(JobRecord(id=f"j-{i}", job=job()))
        assert admission_reason(policy, queue, job()) == "overload"

    def test_tenant_quota(self):
        policy = ServePolicy(max_per_tenant=1, max_pending=10)
        queue = JobQueue()
        queue.add(JobRecord(id="j-1", job=job(tenant="greedy")))
        assert admission_reason(policy, queue, job(tenant="greedy")) == "quota"
        assert admission_reason(policy, queue, job(tenant="other")) is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServePolicy(slots=0)
        with pytest.raises(ValueError):
            ServePolicy(max_attempts=0)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_replay_folds_full_lifecycle(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("submit", id="j-1", job=job().as_dict())
        journal.append("start", id="j-1", pid=999999, attempt=1)
        journal.append("park", id="j-1", snapshot="/s/j-1.ckpt", cycle=4000)
        journal.append("start", id="j-1", pid=999998, attempt=1, resume=True)
        journal.append("done", id="j-1", outcome="ok")
        journal.append("submit", id="j-2", job=job().as_dict())
        journal.append("reject", id="j-3", job=job().as_dict(), reason="quota")
        records, orphans, stats = replay(journal.path)
        assert records["j-1"].state == "done"
        assert records["j-1"].outcome == "ok"
        assert records["j-2"].state == "pending"
        assert records["j-3"].state == "rejected"
        assert records["j-3"].message == "quota"
        assert orphans == {}  # the done event superseded the start
        assert stats["malformed"] == 0 and not stats["torn_tail"]

    def test_replay_tracks_orphan_of_interrupted_start(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("submit", id="j-1", job=job().as_dict())
        journal.append("start", id="j-1", pid=424242, attempt=1)
        records, orphans, _ = replay(journal.path)
        assert records["j-1"].state == "running"
        assert orphans == {"j-1": 424242}

    def test_replay_tolerates_torn_tail(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("submit", id="j-1", job=job().as_dict())
        with open(journal.path, "a") as fh:
            fh.write('{"ev": "start", "id": "j-1", "p')  # killed mid-append
        records, orphans, stats = replay(journal.path)
        assert records["j-1"].state == "pending"  # torn start never took
        assert stats["torn_tail"] is True
        assert stats["malformed"] == 0

    def test_recover_requeues_and_kills_orphans(self, tmp_path):
        # A genuinely live "orphan worker" the dead server left behind.
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(120)"]
        )
        try:
            journal = Journal(tmp_path / "journal.jsonl")
            journal.append("submit", id="j-1", job=job().as_dict())
            journal.append("start", id="j-1", pid=proc.pid, attempt=1)
            journal.append("submit", id="j-2", job=job(scale="quick").as_dict())
            journal.append(
                "park", id="j-2", snapshot=str(tmp_path / "j-2.ckpt"), cycle=7
            )
            journal.append("submit", id="j-3", job=job(serial=True).as_dict())
            journal.append("done", id="j-3", outcome="ok")
            queue, report = recover(journal)
            assert report["killed"] == [proc.pid]
            proc.wait(timeout=10)  # SIGKILLed by recovery
            assert queue.records["j-1"].state == "pending"
            parked = queue.records["j-2"]
            assert parked.state == "pending"
            assert parked.snapshot == str(tmp_path / "j-2.ckpt")  # resume source
            assert queue.records["j-3"].state == "done"  # terminal stays
            # Recovery is itself journaled, and a second replay sees the
            # marker (no orphan double-kill on the next restart).
            _, orphans, _ = replay(journal.path)
            assert orphans == {}
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_recover_clears_stale_park_files(self, tmp_path):
        snap = tmp_path / "j-1.ckpt"
        park = tmp_path / "j-1.ckpt.park"
        park.write_text("")
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append("submit", id="j-1", job=job().as_dict())
        journal.append("park", id="j-1", snapshot=str(snap), cycle=3)
        recover(journal)
        assert not park.exists()


# ----------------------------------------------------------------------
# Supervisor (fake workers, fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeHandle:
    _next_pid = 50_000

    def __init__(self):
        FakeHandle._next_pid += 1
        self.pid = FakeHandle._next_pid
        self._alive = True
        self.killed = False
        self.messages = []

    def alive(self):
        return self._alive

    def poll_message(self):
        if self.messages:
            return self.messages.pop(0)
        return None

    def kill(self):
        self.killed = True
        self._alive = False

    def close(self):
        self._alive = False

    # Test helpers -----------------------------------------------------
    def finish_ok(self, result=None):
        self.messages.append(("ok", {"result": result or {"cycles": 1}}))
        self._alive = False

    def die_silently(self):
        self._alive = False


class FakeSpawner:
    def __init__(self):
        self.calls = []  # (record id, checkpoint dict, handle)

    def __call__(self, record, checkpoint):
        handle = FakeHandle()
        self.calls.append((record.id, checkpoint, handle))
        return handle

    def handle_for(self, jid):
        for rid, _ckpt, handle in reversed(self.calls):
            if rid == jid:
                return handle
        raise KeyError(jid)


def make_supervisor(tmp_path, **policy_overrides):
    policy_fields = dict(
        slots=2, max_attempts=3, backoff=NO_BACKOFF, wedged_after_s=None
    )
    policy_fields.update(policy_overrides)
    clock = FakeClock()
    spawner = FakeSpawner()
    supervisor = Supervisor(
        JobQueue(),
        Journal(tmp_path / "journal.jsonl"),
        ServePolicy(**policy_fields),
        str(tmp_path),
        spawn=spawner,
        clock=clock,
        heartbeat_age=lambda pid: None,
    )
    return supervisor, spawner, clock


class TestSupervisor:
    def test_dispatch_fills_slots_and_completes(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(tmp_path, slots=2)
        records = [supervisor.submit(job(app_overrides={"n": i})) for i in range(3)]
        supervisor.poll()
        assert len(supervisor.active) == 2  # third job waits for a slot
        spawner.handle_for(records[0].id).finish_ok()
        supervisor.poll()
        assert records[0].state == "done"
        assert records[0].outcome == "ok"
        assert records[2].id in supervisor.active  # backfilled
        for record in records[1:]:
            spawner.handle_for(record.id).finish_ok()
        supervisor.poll()
        assert supervisor.idle()

    def test_rejected_submission_is_terminal_and_journaled(self, tmp_path):
        supervisor, _, _ = make_supervisor(tmp_path, max_pending=1, slots=1)
        supervisor.submit(job())
        rejected = supervisor.submit(job(app_overrides={"n": 2}))
        assert rejected.state == "rejected"
        assert rejected.message == "overload"
        records, _, _ = replay(supervisor.journal.path)
        assert records[rejected.id].state == "rejected"

    def test_worker_death_retries_then_quarantines(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(
            tmp_path, slots=1, max_attempts=3
        )
        record = supervisor.submit(job())
        for attempt in range(1, 4):
            supervisor.poll()  # dispatch (NO_BACKOFF: instantly eligible)
            assert record.attempts == attempt
            spawner.handle_for(record.id).die_silently()
            supervisor.poll()  # reap the death
        assert record.state == "failed"
        assert "quarantined after 3 attempts" in record.message
        assert len(spawner.calls) == 3

    def test_backoff_delays_the_retry(self, tmp_path):
        supervisor, spawner, clock = make_supervisor(
            tmp_path, slots=1,
            backoff=BackoffPolicy(base_s=5.0, cap_s=5.0, multiplier=1.0),
        )
        record = supervisor.submit(job())
        supervisor.poll()
        spawner.handle_for(record.id).die_silently()
        supervisor.poll()  # reap; retry scheduled 5s out
        supervisor.poll()
        assert len(spawner.calls) == 1  # not yet eligible
        assert record.id in supervisor.delayed
        clock.advance(5.1)
        supervisor.poll()
        assert len(spawner.calls) == 2  # respawned after the backoff

    def test_deterministic_failure_never_retries(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(tmp_path, slots=1)
        record = supervisor.submit(job())
        supervisor.poll()
        spawner.handle_for(record.id).messages.append(
            ("deadlock", {"message": "all cores idle", "diagnostic": {}})
        )
        supervisor.poll()
        assert record.state == "failed"
        assert record.outcome == "deadlock"
        assert len(spawner.calls) == 1

    def test_timeout_kills_and_retries(self, tmp_path):
        supervisor, spawner, clock = make_supervisor(
            tmp_path, slots=1, timeout_s=30.0
        )
        record = supervisor.submit(job())
        supervisor.poll()
        handle = spawner.handle_for(record.id)
        clock.advance(31.0)
        supervisor.poll()  # kill + (NO_BACKOFF) immediate redispatch
        assert handle.killed
        assert len(spawner.calls) == 2
        assert record.attempts == 2
        events = [json.loads(line) for line in
                  open(supervisor.journal.path, encoding="utf-8")]
        retries = [e for e in events if e["ev"] == "retry"]
        assert retries and retries[0]["error"] == "timeout"

    def test_wedged_worker_detected_via_heartbeat_age(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(
            tmp_path, slots=1, wedged_after_s=10.0
        )
        supervisor.heartbeat_age = lambda pid: 60.0  # ancient heartbeat
        record = supervisor.submit(job())
        supervisor.poll()
        handle = spawner.handle_for(record.id)
        supervisor.poll()
        assert handle.killed
        events = [json.loads(line) for line in
                  open(supervisor.journal.path, encoding="utf-8")]
        retries = [e for e in events if e["ev"] == "retry"]
        assert retries and retries[0]["error"] == "wedged"

    def test_wedged_verdict_runs_on_the_injected_clock(
        self, tmp_path, monkeypatch
    ):
        """Regression: heartbeat ages used to be ``time.time() - mtime``
        while every other verdict ran on the injected clock — untestable
        under a fake clock, and one NTP step could false-kill a healthy
        worker.  With the default tracker the whole wedged path now runs
        on the supervisor's own clock against real snapshot files."""
        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(hb_dir))
        clock = FakeClock()
        spawner = FakeSpawner()
        supervisor = Supervisor(
            JobQueue(),
            Journal(tmp_path / "journal.jsonl"),
            ServePolicy(slots=1, max_attempts=3, backoff=NO_BACKOFF,
                        wedged_after_s=10.0),
            str(tmp_path),
            spawn=spawner,
            clock=clock,  # heartbeat_age not injected: default tracker
        )
        record = supervisor.submit(job())
        supervisor.poll()
        handle = spawner.handle_for(record.id)
        snapshot = hb_dir / f"{handle.pid}-1.json"
        # Snapshot written in the *wall* clock's past: an mtime-vs-wall
        # subtraction would see it as ancient and kill instantly.
        snapshot.write_text("{}")
        os.utime(snapshot, (time.time() - 3600, time.time() - 3600))
        supervisor.poll()
        assert not handle.killed  # first observation counts as fresh
        clock.advance(9.0)
        supervisor.poll()
        assert not handle.killed  # 9s < wedged_after_s on the fake clock
        # A fresh beat (mtime changes) resets the age even though the fake
        # clock keeps marching.
        os.utime(snapshot, (time.time() - 1800, time.time() - 1800))
        clock.advance(9.0)
        supervisor.poll()
        assert not handle.killed
        clock.advance(11.0)  # now 11s of fake time with no new beat
        supervisor.poll()
        assert handle.killed
        events = [json.loads(line) for line in
                  open(supervisor.journal.path, encoding="utf-8")]
        retries = [e for e in events if e["ev"] == "retry"]
        assert retries and retries[0]["error"] == "wedged"

    def test_heartbeat_tracker_forgets_reaped_pids(self, tmp_path, monkeypatch):
        from repro.serve.supervisor import HeartbeatAgeTracker

        hb_dir = tmp_path / "heartbeats"
        hb_dir.mkdir()
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(hb_dir))
        clock = FakeClock()
        tracker = HeartbeatAgeTracker(clock)
        snapshot = hb_dir / "123-1.json"
        snapshot.write_text("{}")
        assert tracker(123) == 0.0
        clock.advance(5.0)
        assert tracker(123) == 5.0
        tracker.forget(123)
        clock.advance(5.0)
        # Same mtime, but a recycled pid starts a fresh observation window.
        assert tracker(123) == 0.0
        snapshot.unlink()
        assert tracker(123) is None  # no snapshot -> no wedged verdict

    def test_dedup_coalesces_identical_jobs(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(tmp_path, slots=2)
        leader = supervisor.submit(job())
        follower = supervisor.submit(job())  # identical work key
        supervisor.poll()
        assert len(spawner.calls) == 1  # only the leader runs
        assert follower.dedup_of == leader.id
        spawner.handle_for(leader.id).finish_ok({"cycles": 42})
        supervisor.poll()
        assert leader.state == "done" and leader.outcome == "ok"
        assert follower.state == "done" and follower.outcome == "dedup"
        assert follower.result == {"cycles": 42}

    def test_follower_runs_itself_when_leader_quarantined(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(
            tmp_path, slots=2, max_attempts=1
        )
        leader = supervisor.submit(job())
        follower = supervisor.submit(job())
        supervisor.poll()
        assert follower.dedup_of == leader.id  # coalesced first
        spawner.handle_for(leader.id).die_silently()
        supervisor.poll()  # leader quarantined (max_attempts=1)
        assert leader.state == "failed"
        supervisor.poll()
        assert follower.id in supervisor.active  # promoted to run itself
        assert follower.dedup_of is None

    def test_preemption_parks_batch_for_deadline_job(self, tmp_path):
        supervisor, spawner, clock = make_supervisor(tmp_path, slots=1)
        batch = supervisor.submit(job(priority=5))
        supervisor.poll()
        assert batch.id in supervisor.active
        deadline = supervisor.submit(
            job(app_overrides={"n": 2}, deadline_s=30.0)
        )
        supervisor.poll()  # requests the park
        active = supervisor.active[batch.id]
        assert active.park_deadline is not None
        assert os.path.exists(active.park_path)
        # The worker's ParkDaemon sees the file, snapshots, and reports.
        snapshot = active.snapshot_path
        spawner.handle_for(batch.id).messages.append(
            ("parked", {"cycle": 4000, "snapshot": snapshot})
        )
        supervisor.poll()
        assert batch.state in ("parked", "running")  # may already redispatch
        assert batch.parks == 1 and batch.snapshot == snapshot
        assert deadline.id in supervisor.active  # the slot changed hands
        # Park request consumed: a resume won't immediately re-park.
        assert not os.path.exists(active.park_path)
        spawner.handle_for(deadline.id).finish_ok()
        supervisor.poll()
        assert deadline.state == "done"
        # The parked batch job is redispatched with resume semantics.
        assert batch.id in supervisor.active

    def test_park_grace_expiry_kills_without_burning_attempt(self, tmp_path):
        supervisor, spawner, clock = make_supervisor(
            tmp_path, slots=1, park_grace_s=2.0
        )
        batch = supervisor.submit(job())
        supervisor.poll()
        supervisor.submit(job(app_overrides={"n": 2}, deadline_s=5.0))
        supervisor.poll()  # park requested
        handle = spawner.handle_for(batch.id)
        clock.advance(2.5)  # grace expires without a park message
        supervisor.poll()
        assert handle.killed
        assert batch.attempts == 1  # park-timeout burns no attempt
        records, _, _ = replay(supervisor.journal.path)
        assert records[batch.id].state in ("pending", "running")

    def test_non_preemptible_job_is_never_parked(self, tmp_path):
        supervisor, spawner, _ = make_supervisor(tmp_path, slots=1)
        pinned = supervisor.submit(job(preemptible=False))
        supervisor.poll()
        supervisor.submit(job(app_overrides={"n": 2}, deadline_s=5.0))
        supervisor.poll()
        active = supervisor.active[pinned.id]
        assert active.park_path is None
        assert active.park_deadline is None  # no park was requested

    def test_status_snapshot_shape(self, tmp_path):
        supervisor, _, _ = make_supervisor(tmp_path)
        supervisor.submit(job())
        supervisor.poll()
        status = supervisor.status()
        assert status["counts"]["running"] == 1
        assert status["slots"] == 2
        assert len(status["active"]) == 1
        assert status["jobs"][0]["state"] == "running"


# ----------------------------------------------------------------------
# End-to-end on real grid workers
# ----------------------------------------------------------------------
def drive(supervisor, until, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while not until():
        supervisor.poll()
        if time.monotonic() > deadline:
            pytest.fail("supervisor did not converge in time")
        time.sleep(0.02)


class TestEndToEnd:
    def test_job_runs_to_done_and_adopts_into_store(self, tmp_path):
        from repro.obs.ledger import set_ledger

        store = set_result_store(tmp_path / "results")
        set_ledger(tmp_path / "ledger.jsonl")
        try:
            supervisor = Supervisor(
                JobQueue(),
                Journal(tmp_path / "journal.jsonl"),
                ServePolicy(slots=2, backoff=NO_BACKOFF),
                str(tmp_path),
            )
            record = supervisor.submit(job())
            drive(supervisor, lambda: record.terminal)
        finally:
            set_ledger(None)
        assert record.state == "done", record.message
        assert record.result["cycles"] > 0
        assert len(store) == 1  # worker persisted the result
        lines = [json.loads(line)
                 for line in open(tmp_path / "ledger.jsonl", encoding="utf-8")]
        assert lines and all(e["source"] == "serve" for e in lines)

    def test_crash_recovery_loses_nothing_and_runs_once(self, tmp_path):
        """The kill-recovery invariant, in-process: a supervisor dies
        mid-run; a second one recovers the journal, finishes everything,
        and the duplicate pair costs one simulation."""
        store = set_result_store(tmp_path / "results")
        journal = Journal(tmp_path / "journal.jsonl")
        supervisor1 = Supervisor(
            JobQueue(), journal,
            ServePolicy(slots=2, backoff=NO_BACKOFF), str(tmp_path),
        )
        supervisor1.submit(job())                       # duplicate pair...
        supervisor1.submit(job())                       # ...same work key
        supervisor1.submit(job(app_overrides={"n": 32}))  # distinct
        deadline = time.monotonic() + 60.0
        while not supervisor1.active:
            supervisor1.poll()
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # "SIGKILL": abandon the supervisor, killing its workers the way
        # a dead server's orphans would be killed by recovery.
        supervisor1.shutdown()

        queue, report = recover(journal)
        assert report["jobs"] == 3
        supervisor2 = Supervisor(
            queue, journal,
            ServePolicy(slots=2, backoff=NO_BACKOFF), str(tmp_path),
        )
        records = [queue.records[jid] for jid in sorted(queue.records)]
        drive(supervisor2, lambda: all(r.terminal for r in records))
        # Every job reached exactly one terminal state; nothing lost.
        assert [r.state for r in records] == ["done", "done", "done"]
        # Exactly one simulation per distinct work key: the pair shares
        # one stored result (via dedup or the store), the distinct job
        # has its own.
        assert len(store) == 2
        outcomes = sorted(r.outcome for r in records)
        assert outcomes in (["dedup", "ok", "ok"], ["ok", "ok", "ok"])

    def test_preempt_park_resume_end_to_end(self, tmp_path):
        """A real worker parks on request and the resumed run finishes
        with the same result a cold run produces."""
        from repro.harness import run_experiment

        reference = run_experiment(
            "cilk5-cs", "bt-hcc-dts-gwb", "tiny", use_cache=False
        )
        clear_cache()
        set_result_store(tmp_path / "results")
        supervisor = Supervisor(
            JobQueue(),
            Journal(tmp_path / "journal.jsonl"),
            ServePolicy(
                slots=1, backoff=NO_BACKOFF,
                checkpoint_interval=2000, park_poll=500, park_grace_s=60.0,
            ),
            str(tmp_path),
        )
        batch = supervisor.submit(job(app="cilk5-cs", kind="bt-hcc-dts-gwb"))
        deadline_job = supervisor.submit(
            job(app="cilk5-mt", deadline_s=120.0, priority=1)
        )
        drive(supervisor, lambda: batch.terminal and deadline_job.terminal)
        assert deadline_job.state == "done"
        assert batch.state == "done", batch.message
        # Byte-identical to the uninterrupted run (whether or not the
        # park raced the run's completion, the result must match).
        assert batch.result["cycles"] == reference.cycles
        assert batch.result["tasks"] == reference.tasks
        assert batch.result["spawns"] == reference.spawns
