"""Structural drift guard for the ``Core._resume`` twins.

``Core._resume_profiled`` mirrors ``Core._resume`` line for line (the
profiler must not change simulated outcomes), and nothing but code review
enforced that — a branch fixed in one loop and not the other would skew
profiled runs silently.  This test normalizes both methods' ASTs (strip
docstrings, drop the twin-dispatch guards from ``_resume``, splice out
the profiler brackets from ``_resume_profiled``) and requires the
remainder to be *identical*.  Any future edit to one loop now fails here
until it is mirrored in the other.
"""

import ast
import inspect
import textwrap

from repro.cores.core import Core

#: Profiler plumbing locals whose assignments exist only in the twin.
_PROF_NAMES = {"prof", "enter", "leave"}


def _method_ast(name: str) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(getattr(Core, name)))
    tree = ast.parse(source)
    return tree.body[0]


def _is_docstring(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


def _is_prof_assign(stmt: ast.stmt) -> bool:
    """``prof = self._prof`` / ``enter = prof.enter`` / ``leave = prof.exit``."""
    return (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
        and stmt.targets[0].id in _PROF_NAMES
    )


def _is_call_to(stmt: ast.stmt, names) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Name)
        and stmt.value.func.id in names
    )


def _is_twin_dispatch(stmt: ast.stmt) -> bool:
    """The guards at the top of ``_resume`` that route to the twins:
    ``if self._ff is not None: return self._resume_ff(value)`` and the
    ``_prof``/``_resume_profiled`` equivalent."""
    if not (isinstance(stmt, ast.If) and len(stmt.body) == 1):
        return False
    ret = stmt.body[0]
    return (
        isinstance(ret, ast.Return)
        and isinstance(ret.value, ast.Call)
        and isinstance(ret.value.func, ast.Attribute)
        and ret.value.func.attr in ("_resume_ff", "_resume_profiled")
    )


def _strip(stmts):
    """Normalize a statement list: drop docstrings, twin dispatch, and
    profiler statements; unwrap ``enter(..)``/``try: X finally: leave()``
    probe brackets; recurse into every nested block."""
    out = []
    for stmt in stmts:
        if _is_docstring(stmt) or _is_twin_dispatch(stmt):
            continue
        if _is_prof_assign(stmt) or _is_call_to(stmt, {"enter"}):
            continue
        if (
            isinstance(stmt, ast.Try)
            and not stmt.handlers
            and not stmt.orelse
            and len(stmt.finalbody) == 1
            and _is_call_to(stmt.finalbody[0], {"leave"})
        ):
            # The probe bracket: splice the guarded body back inline.
            out.extend(_strip(stmt.body))
            continue
        for field in ("body", "orelse", "finalbody"):
            if hasattr(stmt, field) and getattr(stmt, field):
                setattr(stmt, field, _strip(getattr(stmt, field)))
        if hasattr(stmt, "handlers"):
            for handler in stmt.handlers:
                handler.body = _strip(handler.body)
        out.append(stmt)
    return out


def _normalized(name: str) -> str:
    fn = _method_ast(name)
    fn.name = "resume"
    fn.body = _strip(fn.body)
    return ast.dump(
        ast.fix_missing_locations(fn), annotate_fields=False, include_attributes=False
    )


def test_resume_profiled_mirrors_resume():
    plain = _normalized("_resume")
    profiled = _normalized("_resume_profiled")
    assert plain == profiled, (
        "Core._resume and Core._resume_profiled have structurally diverged "
        "beyond the profiler probes; mirror the change in both loops "
        "(and in Core._resume_ff if it affects architectural behaviour)"
    )


def test_normalization_sees_real_code():
    """Guard the guard: normalization must leave the shared loop intact,
    not strip both methods down to nothing."""
    plain = _normalized("_resume")
    assert "StopIteration" in plain
    assert "_enter_handler" in plain
    assert "events_fused" in plain
