"""Tests for sampled simulation (repro.sampling).

Covers the controller phase machine, the functional fast-forward path's
architectural exactness, the estimator (work-instruction measure +
jackknife CIs), and — critically — the exact/sampled firewall: a sampled
estimate must never satisfy a cache or store probe for an exact result.
"""

import dataclasses

import pytest

from repro.harness import (
    clear_cache,
    memo_key,
    run_experiment,
    set_result_store,
    simulation_count,
)
from repro.harness.runner import _experiment_store_key
from repro.sampling import SamplingController, SamplingError, SamplingSpec
from repro.sampling.estimate import mean_ci, ratio_ci, t95

APP = "cilk5-cs"
KIND = "bt-hcc-dts-dnv"
#: Produces ~4 measurement windows on the tiny cilk5-cs run (~4.7k instr).
SPEC = "600:400:200"


@pytest.fixture(autouse=True)
def isolated_harness():
    set_result_store(None)
    clear_cache()
    yield
    set_result_store(None)
    clear_cache()


def _sampled(spec=SPEC, **kwargs):
    return run_experiment(
        APP, KIND, "tiny", use_cache=False, sampling=spec, **kwargs
    )


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestSpec:
    def test_parse_roundtrip(self):
        spec = SamplingSpec.parse("60000:20000:6000")
        assert (spec.interval, spec.warmup, spec.window) == (60000, 20000, 6000)
        assert spec.spec_str() == "60000:20000:6000"

    def test_quantum_suffix(self):
        spec = SamplingSpec.parse("60000:20000:6000:2048")
        assert spec.quantum == 2048
        assert spec.spec_str() == "60000:20000:6000:2048"

    def test_coerce_identity_and_errors(self):
        spec = SamplingSpec.parse(SPEC)
        assert SamplingSpec.coerce(spec) is spec
        for bad in ("", "10:20", "0:1:1", "-5:1:1", "a:b:c"):
            with pytest.raises(SamplingError):
                SamplingSpec.coerce(bad)


# ----------------------------------------------------------------------
# Sampled runs: determinism + architectural exactness
# ----------------------------------------------------------------------
class TestSampledRuns:
    def test_sampled_run_is_deterministic(self):
        a, b = _sampled(), _sampled()
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_architectural_state_is_exact(self):
        """Fast-forward must change timing, never outcomes: the sampled
        run executes the same program (app.check() passes inside
        run_experiment — check=True default) with the same task count
        and the same instruction count up to schedule-dependent spin."""
        exact = run_experiment(APP, KIND, "tiny", use_cache=False)
        sampled = _sampled()
        assert sampled.tasks == exact.tasks
        assert sampled.spawns == exact.spawns
        assert sampled.mode == "sampled"
        assert exact.mode == "exact"

    def test_estimates_replace_timing_fields(self):
        sampled = _sampled()
        s = sampled.sampling
        assert s["windows"] >= 2
        assert s["ff_periods"] >= 1
        assert 0.0 < s["coverage"] < 1.0
        assert s["measure"] in ("work", "instructions")
        ci = s["cycles_ci95_pct"]
        assert ci is None or ci >= 0.0

    def test_run_ending_inside_fastforward_is_coherent(self):
        """Regression: a run whose tail is fast-forwarded leaves stale
        L2 copies of FF-written lines until finalize purges them.  The
        interval here exceeds the whole program, so the tail after the
        single window is pure fast-forward — and app.check() (coherent
        host reads) still passes inside run_experiment."""
        result = _sampled(spec="1000000:400:200")
        assert result.sampling["ff_periods"] == 1

    def test_exact_fallback_when_no_window_closes(self):
        """A warmup longer than the program never closes a window; the
        run is then plain detailed simulation reported as such."""
        result = _sampled(spec="1000:1000000:1000")
        exact = run_experiment(APP, KIND, "tiny", use_cache=False)
        assert result.sampling.get("exact_fallback") is True
        assert result.cycles == exact.cycles

    def test_sampling_refuses_checkpointed_runs(self, tmp_path):
        with pytest.raises(SamplingError):
            _sampled(checkpoint={"path": str(tmp_path / "run.ckpt")})


# ----------------------------------------------------------------------
# The exact/sampled firewall
# ----------------------------------------------------------------------
class TestModeFirewall:
    def test_memo_keys_differ_by_mode_and_spec(self):
        exact = memo_key(APP, KIND, "tiny")
        a = memo_key(APP, KIND, "tiny", sampling=SamplingSpec.parse(SPEC))
        b = memo_key(APP, KIND, "tiny", sampling=SamplingSpec.parse("601:400:200"))
        assert len({exact, a, b}) == 3

    def test_store_keys_differ_by_mode_and_spec(self):
        def key(sampling=None):
            return _experiment_store_key(
                APP, KIND, "tiny", False, None, None, None, sampling=sampling
            )

        exact = key()
        sampled = key(SamplingSpec.parse(SPEC))
        assert exact["experiment"]["mode"]["mode"] == "exact"
        assert sampled["experiment"]["mode"]["mode"] == "sampled"
        assert sampled["experiment"]["mode"]["sampling"] is not None
        assert exact != sampled

    def test_sampled_result_never_satisfies_exact_probe(self, tmp_path):
        """End to end through memo cache and persistent store: exact and
        sampled runs of the same experiment each simulate."""
        set_result_store(tmp_path / "results")
        before = simulation_count()
        run_experiment(APP, KIND, "tiny", sampling=SPEC)
        assert simulation_count() == before + 1
        run_experiment(APP, KIND, "tiny")
        assert simulation_count() == before + 2  # exact probe missed
        # Warm reruns now hit their own mode's entry (memo and store).
        run_experiment(APP, KIND, "tiny", sampling=SPEC)
        run_experiment(APP, KIND, "tiny")
        assert simulation_count() == before + 2
        # A fresh process (cleared memo) still can't cross modes.
        clear_cache()
        run_experiment(APP, KIND, "tiny", sampling=SPEC)
        run_experiment(APP, KIND, "tiny")
        assert simulation_count() == before + 2  # both store hits

    def test_ledger_lines_carry_mode_and_spec(self, tmp_path):
        import json

        from repro.obs.ledger import set_ledger

        path = tmp_path / "ledger.jsonl"
        set_ledger(str(path))
        try:
            run_experiment(APP, KIND, "tiny", use_cache=False, sampling=SPEC)
            run_experiment(APP, KIND, "tiny", use_cache=False)
        finally:
            set_ledger(None)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["mode"] for e in lines] == ["sampled", "exact"]
        assert lines[0]["sampling"] == SPEC
        assert lines[1]["sampling"] is None


# ----------------------------------------------------------------------
# Warm-start init images are mode-independent (satellite: sampled runs
# may reuse an init image an exact run wrote, and vice versa)
# ----------------------------------------------------------------------
class TestWarmStartAcrossModes:
    def test_init_image_reused_across_modes(self, tmp_path):
        """The init phase runs before the first event — before sampling
        arms anything — so a sampled run warm-started from an image an
        exact run wrote is bit-identical to a cold sampled run."""
        cold = _sampled()
        spec = {"init_dir": str(tmp_path / "init")}
        writer = run_experiment(APP, KIND, "tiny", use_cache=False, checkpoint=spec)
        assert "ckpt_warm_start" not in writer.extras  # wrote the image
        warm = _sampled(checkpoint=spec)
        assert warm.extras.get("ckpt_warm_start") == 1.0
        a, b = dataclasses.asdict(cold), dataclasses.asdict(warm)
        a.pop("extras"), b.pop("extras")
        assert a == b

    def test_grid_point_carries_sampling(self):
        from repro.harness.grid import GridPoint, run_grid

        point = GridPoint(app=APP, kind=KIND, scale="tiny", sampling=SPEC)
        assert "sample=" in point.label()
        (result,) = run_grid([point], jobs=1)
        assert result.mode == "sampled"
        direct = _sampled()
        assert result.cycles == direct.cycles

    def test_grid_mixed_modes_stay_separate(self):
        from repro.harness.grid import GridPoint, run_grid

        points = [
            GridPoint(app=APP, kind=KIND, scale="tiny"),
            GridPoint(app=APP, kind=KIND, scale="tiny", sampling=SPEC),
        ]
        exact, sampled = run_grid(points, jobs=1)
        assert exact.mode == "exact"
        assert sampled.mode == "sampled"
        assert exact.cycles != sampled.cycles


# ----------------------------------------------------------------------
# Estimator statistics
# ----------------------------------------------------------------------
class TestEstimatorStats:
    def test_t95_interpolates_conservatively(self):
        assert t95(1) == pytest.approx(12.706)
        assert t95(10) == pytest.approx(2.228)
        assert t95(10**6) == pytest.approx(1.96)
        # Between table rows, use the smaller dof's (wider) quantile.
        assert t95(45) == t95(40)

    def test_mean_ci_basics(self):
        mean, half = mean_ci([5.0, 5.0, 5.0])
        assert mean == 5.0 and half == 0.0
        mean, half = mean_ci([1.0, 2.0, 3.0])
        assert mean == 2.0 and half > 0.0
        assert mean_ci([4.0]) == (4.0, None)

    def test_ratio_ci_constant_ratio_has_zero_width(self):
        ratio, half = ratio_ci([10.0, 20.0, 30.0], [1.0, 2.0, 3.0])
        assert ratio == pytest.approx(10.0)
        assert half == pytest.approx(0.0)

    def test_ratio_ci_degenerate_inputs(self):
        assert ratio_ci([1.0], [1.0])[1] is None
        # A leave-one-out denominator of zero makes replicates undefined.
        assert ratio_ci([1.0, 2.0], [0.0, 5.0])[1] is None

    def test_windows_record_work_instructions(self):
        sampled = _sampled()
        s = sampled.sampling
        assert s["work_instructions"] + s["spin_instructions"] <= (
            sampled.instructions
        )
        assert s["work_instructions"] > 0


# ----------------------------------------------------------------------
# Observability integration
# ----------------------------------------------------------------------
class TestObservability:
    def test_heartbeat_snapshot_includes_sampling(self, tmp_path):
        from repro.apps import make_app
        from repro.config import make_config
        from repro.core import WorkStealingRuntime
        from repro.harness.params import app_params
        from repro.machine import Machine
        from repro.obs.heartbeat import HeartbeatWriter

        app = make_app(APP, **app_params(APP, "tiny"))
        machine = Machine(make_config(KIND, "tiny"))
        app.setup(machine)
        runtime = WorkStealingRuntime(machine)
        controller = SamplingController(machine, SamplingSpec.parse(SPEC))
        controller.start()
        writer = HeartbeatWriter(machine, runtime, str(tmp_path / "hb.json"))
        writer.start()
        runtime.run(app.make_root(serial=False))
        controller.finalize()
        snap = writer.snapshot("done")
        assert snap["sampling"]["phase"] == "done"
        assert snap["sampling"]["spec"] == SPEC
        assert snap["sampling"]["windows"] >= 2
        # Exact runs report no sampling block at all.
        plain = Machine(make_config(KIND, "tiny"))
        assert (
            HeartbeatWriter(plain, runtime, str(tmp_path / "hb2.json"))
            .snapshot("running")["sampling"]
            is None
        )

    def test_report_accounts_modes_separately(self, tmp_path):
        import json

        from repro.obs.ledger import set_ledger
        from repro.obs.report import aggregate

        path = tmp_path / "ledger.jsonl"
        set_ledger(str(path))
        try:
            run_experiment(APP, KIND, "tiny", use_cache=False, sampling=SPEC)
            run_experiment(APP, KIND, "tiny", use_cache=False)
        finally:
            set_ledger(None)
        entries = [json.loads(l) for l in path.read_text().splitlines()]
        summary = aggregate(entries)
        assert set(summary["modes"]) == {"exact", "sampled"}
        assert summary["modes"]["sampled"]["runs"] == 1
        assert summary["modes"]["sampled"]["specs"] == [SPEC]
        group_modes = {g["mode"] for g in summary["groups"]}
        assert group_modes == {"exact", "sampled"}

    def test_controller_progress_fields(self):
        from repro.apps import make_app
        from repro.config import make_config
        from repro.core import WorkStealingRuntime
        from repro.harness.params import app_params
        from repro.machine import Machine

        app = make_app(APP, **app_params(APP, "tiny"))
        machine = Machine(make_config(KIND, "tiny"))
        app.setup(machine)
        runtime = WorkStealingRuntime(machine)
        controller = SamplingController(machine, SamplingSpec.parse(SPEC))
        assert machine.sampling is controller
        controller.start()
        runtime.run(app.make_root(serial=False))
        controller.finalize()
        progress = controller.progress()
        assert progress["phase"] == "done"
        assert progress["ff_instructions"] > 0
        assert progress["windows"] == len(controller.windows)


# ----------------------------------------------------------------------
# Differential validation harness
# ----------------------------------------------------------------------
class TestDifferential:
    def test_validate_entry_fields(self):
        from repro.sampling.differential import validate_entry

        entry = validate_entry(APP, KIND, "tiny", SamplingSpec.parse(SPEC))
        assert entry["tasks_identical"] is True
        assert entry["cycles_error"] >= 0.0
        assert entry["traffic_error"] >= 0.0
        assert entry["wall_exact_s"] > 0.0
        assert entry["sampling"]["windows"] >= 2

    def test_format_validation_mentions_every_app(self):
        from repro.sampling.differential import format_validation, validate_mix

        payload = validate_mix(mix=[(APP, KIND, "tiny")], spec=SPEC)
        text = format_validation(payload)
        assert APP in text
        assert "speedup" in text


# ----------------------------------------------------------------------
# Perf baseline comparison (repro perf --baseline)
# ----------------------------------------------------------------------
def _perf_payload(evps, mix_evps, speedup, sampled_speedup=None):
    payload = {
        "entries": [
            {
                "app": "kernel-spin",
                "kind": "serial-io",
                "scale": "tiny",
                "serial": True,
                "events_per_sec": evps,
            }
        ],
        "aggregate": {"events_per_sec": mix_evps, "speedup": speedup},
    }
    if sampled_speedup is not None:
        payload["sampled"] = {"aggregate": {"speedup": sampled_speedup}}
    return payload


class TestPerfBaseline:
    def test_within_tolerance_passes(self):
        from repro.harness.perf import compare_baseline

        base = _perf_payload(1000.0, 2000.0, 2.0, sampled_speedup=10.0)
        fresh = _perf_payload(900.0, 1900.0, 1.9, sampled_speedup=9.5)
        report = compare_baseline(fresh, base, tolerance=0.15)
        assert report["ok"] and not report["regressions"]
        # Every tracked metric produced a comparison row.
        labels = {row["label"] for row in report["comparisons"]}
        assert "mix events/s" in labels
        assert "sampled mix speedup" in labels

    def test_regression_flagged_and_formatted(self):
        from repro.harness.perf import compare_baseline, format_baseline_report

        base = _perf_payload(1000.0, 2000.0, 2.0)
        fresh = _perf_payload(700.0, 1950.0, 1.95)  # entry dropped 30%
        report = compare_baseline(fresh, base, tolerance=0.15)
        assert not report["ok"]
        assert [r["label"] for r in report["regressions"]] == [
            "kernel-spin/serial-io/tiny events/s"
        ]
        text = format_baseline_report(report)
        assert "REGRESSION" in text and "FAIL" in text

    def test_improvements_and_missing_entries_never_flagged(self):
        from repro.harness.perf import compare_baseline

        base = _perf_payload(1000.0, 2000.0, 2.0)
        fresh = _perf_payload(5000.0, 9000.0, 3.0)
        fresh["entries"].append(
            {
                "app": "new-entry",
                "kind": "serial-io",
                "scale": "tiny",
                "serial": False,
                "events_per_sec": 1.0,  # not in baseline: reported, not flagged
            }
        )
        report = compare_baseline(fresh, base, tolerance=0.0)
        assert report["ok"]

    def test_bad_tolerance_rejected(self):
        from repro.harness.perf import compare_baseline

        with pytest.raises(ValueError):
            compare_baseline(_perf_payload(1, 1, 1), _perf_payload(1, 1, 1), -0.1)
