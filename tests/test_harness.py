"""Experiment harness tests (tiny scale so they stay fast)."""

import pytest

from repro.harness import (
    app_params,
    clear_cache,
    dts_overhead,
    fig4_granularity,
    fig5_speedup,
    fig6_hitrate,
    fig7_breakdown,
    fig8_traffic,
    format_dts_overhead,
    format_fig4,
    format_series,
    format_stacked,
    format_table1,
    format_table3,
    format_table4,
    geomean,
    run_experiment,
    run_serial_baseline,
    table1_taxonomy,
    table3,
    table4,
    workspan,
)
from repro.cores.core import TIME_CATEGORIES
from repro.mem.traffic import CATEGORIES

APPS2 = ("cilk5-mt", "ligra-bfs")


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRunner:
    def test_run_experiment_result_fields(self):
        res = run_experiment("cilk5-mt", "bt-hcc-gwb", "tiny")
        assert res.cycles > 0
        assert res.instructions > 0
        assert res.tasks > 0
        assert 0.0 <= res.l1_hit_rate_tiny <= 1.0
        assert set(res.traffic_bytes) == set(CATEGORIES)
        assert set(res.tiny_breakdown) == set(TIME_CATEGORIES)
        assert res.energy.total_pj > 0

    def test_cache_returns_same_object(self):
        a = run_experiment("cilk5-mt", "bt-mesi", "tiny")
        b = run_experiment("cilk5-mt", "bt-mesi", "tiny")
        assert a is b

    def test_serial_baseline_runs_one_core(self):
        res = run_serial_baseline("cilk5-mt", "tiny")
        assert res.kind == "serial-io"
        assert res.steals == 0

    def test_workspan_cached_and_sane(self):
        ws = workspan("cilk5-mt", "tiny")
        assert ws.work > ws.span > 0
        assert workspan("cilk5-mt", "tiny") is ws

    def test_app_params_overrides(self):
        params = app_params("cilk5-mt", "tiny", grain=2)
        assert params["grain"] == 2


class TestTables:
    def test_table1_covers_four_protocols(self):
        rows = table1_taxonomy()
        assert [r["protocol"] for r in rows] == ["mesi", "denovo", "gpu-wt", "gpu-wb"]
        mesi = rows[0]
        assert mesi["invalidation"] == "writer" and not mesi["needs_flush"]
        gwb = rows[3]
        assert gwb["needs_flush"] and gwb["amo_at_l2"]
        assert "MESI" in format_table1(rows).upper()

    def test_table3_rows_and_geomean(self):
        rows = table3("tiny", apps=APPS2)
        assert len(rows) == len(APPS2) + 1
        assert rows[-1]["app"] == "geomean"
        for row in rows[:-1]:
            assert row["speedup_o3x1"] > 0
            assert row["rel_bt-hcc-gwb"] > 0
        text = format_table3(rows)
        assert "cilk5-mt" in text and "geomean" in text

    def test_table4_percentages(self):
        rows = table4("tiny", apps=("cilk5-mt",))
        row = rows[0]
        assert "invdec_dnv" in row and "flsdec_gwb" in row
        assert row["invdec_gwb"] <= 100.0
        assert "cilk5-mt" in format_table4(rows)

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestFigures:
    def test_fig4_sweep(self):
        rows = fig4_granularity("tiny", grains=(8, 32))
        assert [r["grain"] for r in rows] == [8, 32]
        assert all(r["parallelism"] > 0 for r in rows)
        assert "Figure 4" in format_fig4(rows)

    def test_fig5_and_fig6_shapes(self):
        speed = fig5_speedup("tiny", apps=APPS2)
        hit = fig6_hitrate("tiny", apps=APPS2)
        for app in APPS2:
            assert speed[app]["bt-mesi"] == pytest.approx(1.0)
            assert 0.0 <= hit[app]["bt-hcc-gwb"] <= 1.0
        assert "MESI" in format_series("Figure 5", speed)

    def test_fig7_normalized_to_mesi(self):
        data = fig7_breakdown("tiny", apps=("cilk5-mt",))
        mesi_stack = data["cilk5-mt"]["bt-mesi"]
        assert sum(mesi_stack.values()) == pytest.approx(1.0)
        text = format_stacked("Figure 7", data, TIME_CATEGORIES)
        assert "cilk5-mt" in text

    def test_fig8_traffic_normalized(self):
        data = fig8_traffic("tiny", apps=("cilk5-mt",))
        mesi_stack = data["cilk5-mt"]["bt-mesi"]
        assert sum(mesi_stack.values()) == pytest.approx(1.0)

    def test_dts_overhead_report(self):
        rows = dts_overhead("tiny", apps=("cilk5-mt",))
        row = rows[0]
        assert 0.0 <= row["uli_utilization_pct"] <= 100.0
        assert row["uli_avg_latency"] >= 0.0
        assert "ULI" in format_dts_overhead(rows)
