"""CLI smoke tests (python -m repro …)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cilk5-cs" in out and "bt-hcc-dts-gwb" in out and "quick" in out


def test_run_tiny(capsys):
    assert main(["run", "cilk5-mt", "--config", "bt-hcc-gwb", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "tiny L1 hit" in out


def test_run_with_baseline(capsys):
    code = main([
        "run", "cilk5-mt", "--config", "bt-mesi", "--scale", "tiny", "--baseline",
    ])
    assert code == 0
    assert "speedup vs serial-IO" in capsys.readouterr().out


def test_table1(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "mesi" in out and "gpu-wb" in out


def test_workspan(capsys):
    assert main(["workspan", "cilk5-mt", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "parallelism" in out


def test_bad_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-an-app"])


def test_bad_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_run_with_faults_and_sanitizer(capsys):
    code = main([
        "run", "cilk5-mt", "--config", "bt-mesi", "--scale", "tiny",
        "--faults", "timing,seed=3", "--sanitize", "--watchdog", "500000",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "faults fired" in out and "sanitizer walks" in out


def test_fuzz_smoke(capsys, tmp_path):
    report_path = tmp_path / "fuzz.json"
    code = main([
        "fuzz", "--app", "cilk5-mt", "--config", "bt-mesi", "--scale", "tiny",
        "--seeds", "2", "--out", str(report_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "end state identical" in out or "ok" in out.lower()
    import json

    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["app"] == "cilk5-mt"
    assert len(report["cases"]) == 2
    assert all(case["digest_match"] for case in report["cases"])


def test_fuzz_positive_control(capsys):
    code = main([
        "fuzz", "--app", "cilk5-cs", "--config", "bt-hcc-dts-gwb",
        "--scale", "tiny", "--seeds", "1", "--break-coherence",
        "no-thief-flush", "--expect-violations",
    ])
    assert code == 0  # violations expected and found
