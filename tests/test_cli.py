"""CLI smoke tests (python -m repro …)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cilk5-cs" in out and "bt-hcc-dts-gwb" in out and "quick" in out


def test_run_tiny(capsys):
    assert main(["run", "cilk5-mt", "--config", "bt-hcc-gwb", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "tiny L1 hit" in out


def test_run_with_baseline(capsys):
    code = main([
        "run", "cilk5-mt", "--config", "bt-mesi", "--scale", "tiny", "--baseline",
    ])
    assert code == 0
    assert "speedup vs serial-IO" in capsys.readouterr().out


def test_table1(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "mesi" in out and "gpu-wb" in out


def test_workspan(capsys):
    assert main(["workspan", "cilk5-mt", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "parallelism" in out


def test_bad_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "not-an-app"])


def test_bad_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
