"""Fault-injection subsystem (repro.faults): plans, sites, determinism."""

import pytest

from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.faults import FaultPlan
from repro.machine import Machine
from repro.mem.address import WORD_BYTES

from helpers import ALL_BIGTINY, tiny_machine


# ----------------------------------------------------------------------
# FaultPlan parsing / presets
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_inactive_by_default(self):
        assert not FaultPlan().active
        assert FaultPlan().timing_only

    def test_presets(self):
        timing = FaultPlan.preset("timing")
        assert timing.active and timing.timing_only
        full = FaultPlan.preset("full")
        assert full.active and not full.timing_only
        assert full.l1_evict_prob > 0 and full.steal_abort_prob > 0
        assert FaultPlan.preset("evict").l1_evict_prob > 0
        assert FaultPlan.preset("steal").steal_abort_prob > 0
        assert not FaultPlan.preset("none").active

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.preset("nope")

    def test_parse_spec_with_overrides(self):
        plan = FaultPlan.parse("timing,seed=7,noc_jitter_cycles=3")
        assert plan.seed == 7
        assert plan.noc_jitter_cycles == 3
        assert plan.noc_jitter_prob == FaultPlan.preset("timing").noc_jitter_prob

    def test_parse_none_forms(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("off") is None

    def test_parse_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("timing,bogus=1")

    def test_coerce_round_trips_dict(self):
        plan = FaultPlan.preset("full", seed=9)
        again = FaultPlan.coerce(plan.as_dict())
        assert again == plan
        assert FaultPlan.coerce(plan) is plan

    def test_replace_reseeds(self):
        plan = FaultPlan.preset("timing")
        assert plan.replace(seed=5).seed == 5
        assert plan.replace(seed=5).noc_jitter_prob == plan.noc_jitter_prob


# ----------------------------------------------------------------------
# Wiring and the off switch
# ----------------------------------------------------------------------

class TestWiring:
    def test_no_plan_means_no_injector_anywhere(self):
        machine = tiny_machine()
        assert machine.fault_injector is None
        assert machine.mesh.fault_injector is None
        assert machine.uli_network.fault_injector is None
        assert all(l1.fault_injector is None for l1 in machine.l1s)

    def test_inactive_plan_means_no_injector(self):
        machine = tiny_machine(faults=FaultPlan())
        assert machine.fault_injector is None

    def test_active_plan_wires_every_site(self):
        machine = tiny_machine(faults="timing")
        fi = machine.fault_injector
        assert fi is not None
        assert machine.mesh.fault_injector is fi
        assert machine.uli_network.fault_injector is fi
        assert all(l1.fault_injector is fi for l1 in machine.l1s)
        assert all(c.fault_injector is fi for c in machine.l2.dram)

    def test_machine_rng_stream_untouched(self):
        """The injector must fork a private RNG, not machine.rng."""
        clean = tiny_machine().rng.next_u64()
        faulted = tiny_machine(faults="full").rng.next_u64()
        assert clean == faulted


# ----------------------------------------------------------------------
# Determinism and end-to-end behaviour
# ----------------------------------------------------------------------

def _fib_run(kind, faults=None, **rt_kwargs):
    """fib(8) on a tiny machine; returns (cycles, answer, machine)."""
    from repro.core import Task

    class FibTask(Task):
        ARG_WORDS = 2

        def __init__(self, n, out_addr):
            super().__init__()
            self.n = n
            self.out_addr = out_addr

        def execute(self, rt, ctx):
            if self.n < 2:
                yield from ctx.store(self.out_addr, self.n)
                return
            scratch = rt.machine.address_space.alloc_words(2, "fib_scratch")
            children = [
                FibTask(self.n - 1, scratch),
                FibTask(self.n - 2, scratch + WORD_BYTES),
            ]
            yield from rt.fork_join(ctx, self, children)
            x = yield from ctx.load(scratch)
            y = yield from ctx.load(scratch + WORD_BYTES)
            yield from ctx.store(self.out_addr, x + y)

    machine = tiny_machine(kind, faults=faults)
    rt = WorkStealingRuntime(machine, **rt_kwargs)
    out = machine.address_space.alloc_words(1, "out")
    cycles = rt.run(FibTask(8, out))
    return cycles, machine.host_read_word(out), machine


class TestInjection:
    def test_same_seed_same_outcome(self):
        a = _fib_run("bt-mesi", faults="timing,seed=3")
        b = _fib_run("bt-mesi", faults="timing,seed=3")
        assert a[0] == b[0] and a[1] == b[1]

    def test_timing_faults_perturb_cycles_not_answer(self):
        clean_cycles, clean_answer, _ = _fib_run("bt-mesi")
        cycles, answer, machine = _fib_run("bt-mesi", faults="timing,seed=2")
        assert answer == clean_answer == 21
        assert machine.fault_injector.total_fired() > 0
        assert cycles != clean_cycles  # jitter moved the schedule

    @pytest.mark.parametrize("kind", ALL_BIGTINY)
    def test_forced_evictions_preserve_correctness(self, kind):
        plan = "evict,seed=4,l1_evict_prob=0.2"
        cycles, answer, machine = _fib_run(kind, faults=plan)
        assert answer == 21
        forced = sum(l1.stats.get("forced_evictions") for l1 in machine.l1s)
        assert forced > 0

    def test_steal_aborts_fire_on_chase_lev(self):
        cycles, answer, machine = _fib_run(
            "bt-mesi", faults="steal,seed=1", deque_kind="chase-lev"
        )
        assert answer == 21
        assert machine.stats.child("faults").get("steal_abort") > 0

    def test_dram_throttle_is_deterministic_window(self):
        plan = FaultPlan.parse("timing,seed=1,dram_throttle_period=100,"
                               "dram_throttle_window=50")
        machine = tiny_machine(faults=plan)
        fi = machine.fault_injector
        assert fi.dram_service(10, 8) == 8 * plan.dram_throttle_factor
        assert fi.dram_service(60, 8) == 8
        assert machine.stats.child("faults").get("dram_throttle") == 1

    def test_fired_faults_land_on_the_trace_fault_track(self):
        from repro.trace import Tracer

        tracer = Tracer()
        machine = Machine(
            make_config("bt-mesi", "tiny"), tracer=tracer, faults="timing,seed=6"
        )
        fi = machine.fault_injector
        # 200 draws at prob 0.2 fire with near-certainty.
        for _ in range(200):
            fi.noc_extra()
        assert tracer.faults
        site, cycle, detail = tracer.faults[0]
        assert site == "noc" and detail > 0
