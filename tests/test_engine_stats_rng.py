"""Unit and property tests for the stats registry and the deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import StatGroup, XorShift64


# ----------------------------------------------------------------------
# StatGroup
# ----------------------------------------------------------------------
class TestStatGroup:
    def test_counters_default_to_zero(self):
        g = StatGroup("g")
        assert g.get("missing") == 0

    def test_add_and_get(self):
        g = StatGroup("g")
        g.add("hits")
        g.add("hits", 4)
        assert g.get("hits") == 5

    def test_set_overwrites(self):
        g = StatGroup("g")
        g.add("x", 3)
        g.set("x", 1)
        assert g.get("x") == 1

    def test_maximize(self):
        g = StatGroup("g")
        g.maximize("peak", 5)
        g.maximize("peak", 3)
        g.maximize("peak", 9)
        assert g.get("peak") == 9

    def test_children_are_memoized(self):
        g = StatGroup("root")
        assert g.child("a") is g.child("a")

    def test_flatten_paths(self):
        g = StatGroup("root")
        g.add("top", 1)
        g.child("sub").add("inner", 2)
        flat = g.flatten()
        assert flat == {"root.top": 1, "root.sub.inner": 2}

    def test_total_sums_over_descendants(self):
        g = StatGroup("root")
        g.add("n", 1)
        g.child("a").add("n", 2)
        g.child("a").child("b").add("n", 3)
        assert g.total("n") == 6


# ----------------------------------------------------------------------
# XorShift64
# ----------------------------------------------------------------------
class TestXorShift64:
    def test_deterministic_for_same_seed(self):
        a = XorShift64(123)
        b = XorShift64(123)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_diverge(self):
        a = XorShift64(1)
        b = XorShift64(2)
        assert [a.next_u64() for _ in range(5)] != [b.next_u64() for _ in range(5)]

    def test_zero_seed_is_usable(self):
        rng = XorShift64(0)
        values = {rng.next_u64() for _ in range(10)}
        assert len(values) == 10

    @given(st.integers(0, 2**64 - 1), st.integers(-50, 50), st.integers(0, 100))
    def test_randint_in_range(self, seed, lo, span):
        rng = XorShift64(seed)
        hi = lo + span
        for _ in range(20):
            assert lo <= rng.randint(lo, hi) <= hi

    def test_randint_empty_range_rejected(self):
        with pytest.raises(ValueError):
            XorShift64(1).randint(5, 4)

    @given(st.integers(0, 2**64 - 1))
    def test_random_unit_interval(self, seed):
        rng = XorShift64(seed)
        for _ in range(20):
            assert 0.0 <= rng.random() < 1.0

    @given(st.integers(0, 2**64 - 1), st.integers(2, 64))
    def test_choice_excluding_never_returns_excluded(self, seed, n):
        rng = XorShift64(seed)
        exclude = seed % n
        for _ in range(30):
            value = rng.choice_excluding(n, exclude)
            assert 0 <= value < n
            assert value != exclude

    def test_choice_excluding_needs_two_options(self):
        with pytest.raises(ValueError):
            XorShift64(1).choice_excluding(1, 0)

    def test_fork_produces_independent_stream(self):
        parent = XorShift64(77)
        child = parent.fork()
        assert [parent.next_u64() for _ in range(5)] != [
            child.next_u64() for _ in range(5)
        ]

    def test_choice_excluding_covers_all_other_values(self):
        rng = XorShift64(9)
        seen = {rng.choice_excluding(4, 2) for _ in range(200)}
        assert seen == {0, 1, 3}
