"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry and exporters, heartbeat snapshots, the run
ledger (exactly one line per ``run_experiment`` outcome), the engine
profiler's attribution, the ``repro top`` / ``repro profile`` /
``repro report`` CLI surfaces, the grid progress ETA estimator, the
interval sampler's tail-flush invariant, and termlog's JSON mode.
"""

import json
import os

import pytest

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.engine.simulator import Simulator
from repro.engine.stats import StatGroup
from repro.harness import clear_cache, run_experiment, set_result_store
from repro.harness import termlog
from repro.machine import Machine
from repro.obs import (
    HeartbeatWriter,
    MetricsRegistry,
    RunLedger,
    host_fingerprint,
    machine_metrics,
    prometheus_lines,
    set_ledger,
    write_prometheus_textfile,
)
from repro.obs.ledger import read_ledger, read_ledger_with_errors, reset_ledger
from repro.trace.sampler import IntervalSampler


@pytest.fixture(autouse=True)
def isolated_harness():
    set_result_store(None)
    set_ledger(None)
    clear_cache()
    yield
    set_result_store(None)
    reset_ledger()
    clear_cache()


def tiny_machine(app_name="cilk5-cs", kind="bt-mesi", **params):
    app = make_app(app_name, **(params or dict(n=48, grain=16)))
    machine = Machine(make_config(kind, "tiny", seed=7))
    app.setup(machine)
    return app, machine


# ----------------------------------------------------------------------
# Metrics registry + exporters
# ----------------------------------------------------------------------
class TestMetrics:
    def test_registry_merges_sources_later_wins(self):
        stats = StatGroup("m")
        stats.add("x", 3)
        registry = (
            MetricsRegistry()
            .register(stats)
            .register(lambda: {"extra.y": 1.5, "m.x": 99}, prefix="")
            .register_gauge("g", lambda: 7)
        )
        snap = registry.collect()
        assert snap == {"m.x": 99, "extra.y": 1.5, "g": 7}

    def test_machine_metrics_engine_flag(self):
        _app, machine = tiny_machine()
        with_engine = machine_metrics(machine, engine=True).collect()
        without = machine_metrics(machine, engine=False).collect()
        assert "engine.events_executed" in with_engine
        assert "engine.events_fused" in with_engine
        assert not any(key.startswith("engine.") for key in without)

    def test_prometheus_lines_sanitized_sorted_labeled(self):
        text = prometheus_lines(
            {"mem.l1-hits": 4, "a": 1.5}, labels={"app": "cs"}
        )
        lines = text.strip().split("\n")
        assert lines == [
            'repro_a{app="cs"} 1.5',
            'repro_mem_l1_hits{app="cs"} 4',
        ]

    def test_prometheus_textfile_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus_textfile(str(path), {"top.runs": 2})
        assert path.read_text() == "repro_top_runs 2\n"
        # No temp litter left behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_host_fingerprint_shape(self):
        fp = host_fingerprint()
        assert fp["python"] and fp["machine"] is not None
        assert "node" in fp and "cpu_count" in fp


# ----------------------------------------------------------------------
# Heartbeat
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_snapshot_file_lifecycle(self, tmp_path):
        app, machine = tiny_machine()
        rt = WorkStealingRuntime(machine)
        path = tmp_path / "beat.json"
        hb = HeartbeatWriter(
            machine, rt, str(path), interval=500, min_wall_s=0.0,
            meta={"app": "cilk5-cs"},
        )
        hb.start()
        snap = json.loads(path.read_text())
        assert snap["status"] == "running" and snap["cycle"] == 0
        cycles = rt.run(app.make_root())
        app.check()
        hb.finalize("done")
        snap = json.loads(path.read_text())
        assert snap["status"] == "done"
        assert snap["cycle"] == cycles
        assert snap["beats"] >= 2
        assert snap["meta"]["app"] == "cilk5-cs"
        assert snap["tasks"]["executed"] > 0
        assert len(snap["cores"]) == len(machine.cores)
        assert snap["events"]["events_total"] > 0
        # Atomic replace: no temp file survives.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["beat.json"]

    def test_for_run_names_are_per_process_unique(self, tmp_path):
        _app, machine = tiny_machine()
        rt = WorkStealingRuntime(machine)
        a = HeartbeatWriter.for_run(machine, rt, str(tmp_path), {"app": "x"})
        b = HeartbeatWriter.for_run(machine, rt, str(tmp_path), {"app": "x"})
        assert a.path != b.path

    def test_rejects_bad_interval(self, tmp_path):
        _app, machine = tiny_machine()
        rt = WorkStealingRuntime(machine)
        with pytest.raises(ValueError):
            HeartbeatWriter(machine, rt, str(tmp_path / "b.json"), interval=0)

    def test_run_experiment_emits_heartbeat(self, tmp_path, monkeypatch):
        hb_dir = tmp_path / "hb"
        monkeypatch.setenv("REPRO_HEARTBEAT_DIR", str(hb_dir))
        run_experiment("cilk5-mt", "bt-mesi", "tiny", use_cache=False)
        files = list(hb_dir.glob("*.json"))
        assert len(files) == 1
        snap = json.loads(files[0].read_text())
        assert snap["status"] == "done"
        assert snap["meta"] == {
            "app": "cilk5-mt", "kind": "bt-mesi", "scale": "tiny",
            "serial": False,
        }


# ----------------------------------------------------------------------
# Run ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_record_appends_one_wellformed_line(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.record(outcome="ok", app="a")
        ledger.record(outcome="failed", app="b", error="deadlock")
        entries = read_ledger(tmp_path / "ledger.jsonl")
        assert [e["outcome"] for e in entries] == ["ok", "failed"]
        assert all(
            e["schema"] == 1 and e["pid"] and e["host"]["python"]
            for e in entries
        )
        assert ledger.lines_written == 2

    def test_malformed_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        RunLedger(path).record(outcome="ok")
        with open(path, "a") as fh:
            fh.write("{torn line\n[1,2]\n")
        entries, bad, torn = read_ledger_with_errors(path)
        assert len(entries) == 1 and bad == 2
        # Both damaged lines are newline-terminated: that is mid-file
        # corruption, not the crashed-writer torn-tail signature.
        assert torn is False

    def test_torn_final_line_is_recoverable_damage(self, tmp_path):
        """A trailing line cut mid-JSON (no newline) is classified as a
        torn tail — recoverable crashed-writer damage — not malformed."""
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.record(outcome="ok", app="a")
        ledger.record(outcome="ok", app="b")
        whole = path.read_bytes()
        # Truncate mid-way through the final line, as SIGKILL during the
        # append would (O_APPEND writes are atomic, but the test models a
        # partially flushed page after a power cut).
        path.write_bytes(whole[: len(whole) - 17])
        entries, bad, torn = read_ledger_with_errors(path)
        assert [e["app"] for e in entries] == ["a"]
        assert bad == 0 and torn is True

    def test_torn_tail_reported_by_report(self, tmp_path):
        from repro.obs.report import report_from_file

        path = tmp_path / "ledger.jsonl"
        RunLedger(path).record(outcome="ok", app="a", kind="k", scale="s")
        with open(path, "a") as fh:
            fh.write('{"outcome": "ok", "app":')  # no newline
        summary = report_from_file(str(path))
        assert summary["torn_tail"] is True
        assert summary["runs"] == 1
        assert summary["malformed_lines"] == 0

    def test_one_line_per_outcome(self, tmp_path):
        """ok, memo-hit, store-hit, and failed each append exactly one line."""
        store = set_result_store(tmp_path / "results")
        path = tmp_path / "ledger.jsonl"
        set_ledger(str(path))

        run_experiment("cilk5-mt", "bt-mesi", "tiny")          # cold: ok
        run_experiment("cilk5-mt", "bt-mesi", "tiny")          # memo-hit
        clear_cache()
        run_experiment("cilk5-mt", "bt-mesi", "tiny")          # store-hit
        with pytest.raises(Exception):
            run_experiment(
                "kernel-deadlock", "bt-mesi", "tiny",
                watchdog=20_000, use_cache=False,
            )                                                   # failed

        entries = read_ledger(path)
        assert [e["outcome"] for e in entries] == [
            "ok", "memo-hit", "store-hit", "failed",
        ]
        ok, memo, hit, failed = entries
        assert ok["app"] == "cilk5-mt" and ok["cycles"] > 0
        assert ok["store_key"] == hit["store_key"]  # same SHA-256 digest
        assert ok["seed"] is not None
        assert ok["wall_s"] > 0 and memo["wall_s"] >= 0
        assert failed["error"] == "deadlock"
        assert failed["message"]
        assert all(e["source"] == "runner" for e in entries)
        assert store is not None  # store really was configured

    def test_store_adjacent_ledger_via_env(self, tmp_path, monkeypatch):
        set_result_store(tmp_path / "results")
        monkeypatch.setenv("REPRO_LEDGER", "1")
        reset_ledger()
        run_experiment("cilk5-mt", "bt-mesi", "tiny")
        entries = read_ledger(tmp_path / "results" / "ledger.jsonl")
        assert len(entries) == 1 and entries[0]["outcome"] == "ok"

    def test_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        reset_ledger()
        run_experiment("cilk5-mt", "bt-mesi", "tiny", use_cache=False)
        assert not list(tmp_path.iterdir())


# ----------------------------------------------------------------------
# Engine profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_wall_profiler_exclusive_attribution(self):
        from repro.obs.profile import WallProfiler

        prof = WallProfiler()
        prof.enter("outer")
        prof.enter("inner")
        prof.exit()
        prof.exit()
        assert prof.calls == {"outer": 1, "inner": 1}
        assert all(s >= 0 for s in prof.seconds.values())
        assert prof.op_label("load") is prof.op_label("load")

    def test_quick_profile_attributes_wall_time(self):
        from repro.obs.profile import (
            RESIDUAL_LABEL, chrome_trace, format_profile, run_profile,
        )

        payload = run_profile(quick=True)
        components = {r["component"]: r for r in payload["components"]}
        # Everything is attributed to *named* components: direct probes
        # plus the explicitly named residual cover >= 90% by construction,
        # and direct probes alone must carry real weight.
        assert sum(r["share"] for r in payload["components"]) >= 0.9
        assert payload["coverage"] > 0.4
        assert RESIDUAL_LABEL in components
        assert "runtime.coroutine" in components
        assert "mem.l1" in components and components["mem.l1"]["calls"] > 0
        assert any(name.startswith("op.") for name in components)
        text = format_profile(payload)
        assert "runtime.coroutine" in text and "coverage" in text
        trace = chrome_trace(payload)
        assert trace["traceEvents"] and all(
            e["dur"] > 0 for e in trace["traceEvents"]
        )


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
class TestTop:
    def _write_snap(self, directory, name, **overrides):
        # Default pid is our own (a live writer); dead-writer tests
        # override it with a reaped child's pid.
        snap = {
            "schema": 1, "pid": os.getpid(), "status": "running", "error": None,
            "meta": {"app": "cilk5-cs", "kind": "bt-mesi", "scale": "tiny"},
            "started_at": 0.0, "updated_at": 100.0, "wall_s": 100.0,
            "beats": 3, "cycle": 5000, "max_cycles": 10000,
            "events": {"events_total": 10, "events_fused": 5,
                       "fused_ratio": 0.5},
            "events_per_sec": 2e6, "cycles_per_sec": 1e6,
            "tasks": {"spawned": 4, "executed": 2, "outstanding": 2,
                      "steals": 1, "steal_attempts": 3},
            "cores": [
                {"id": 0, "big": True, "busy": 90, "idle": 10, "deque": 0},
                {"id": 1, "big": False, "busy": 10, "idle": 90, "deque": 2},
            ],
            "sanitizer": None, "watchdog": None,
        }
        snap.update(overrides)
        (directory / name).write_text(json.dumps(snap))
        return snap

    def test_read_snapshots_skips_foreign_files(self, tmp_path):
        from repro.obs.top import read_snapshots

        self._write_snap(tmp_path, "a.json")
        (tmp_path / "junk.json").write_text("{not json")
        (tmp_path / "other-schema.json").write_text('{"schema": 99}')
        (tmp_path / "notes.txt").write_text("ignored")
        snaps, skipped = read_snapshots(str(tmp_path))
        assert len(snaps) == 1 and skipped == 2

    def test_render_rows_and_staleness(self, tmp_path):
        from repro.obs.top import read_snapshots, render

        self._write_snap(tmp_path, "a.json")
        self._write_snap(
            tmp_path, "b.json", status="done", updated_at=200.0,
            meta={"app": "ligra-bfs", "kind": "bt-hcc-gwb", "scale": "quick"},
        )
        snaps, skipped = read_snapshots(str(tmp_path))
        frame = render(snaps, skipped, now=210.0)
        assert "2 run(s)" in frame and "done:1" in frame
        assert "ligra-bfs" in frame and "cilk5-cs" in frame
        # a.json last updated at t=100, rendered at t=210 → stale.
        assert "stale?" in frame
        # Core bar: core0 >=75% busy (#), core1 idle with queued work (!).
        assert "#!" in frame

    def test_shard_group_heartbeats_merge_into_one_row(self, tmp_path):
        from repro.obs.top import merge_shard_groups, read_snapshots, render

        meta = {"app": "cilk5-cs", "kind": "bt-hcc-dnv", "scale": "tiny",
                "pdes_group": "77-1"}
        self._write_snap(
            tmp_path, "s0.json", cycle=4000, events_per_sec=1e6,
            updated_at=100.0, meta={**meta, "shard": 0},
        )
        self._write_snap(
            tmp_path, "s1.json", cycle=5000, events_per_sec=2e6,
            updated_at=120.0, meta={**meta, "shard": 1},
        )
        self._write_snap(tmp_path, "solo.json")  # no group: passes through
        snaps, _ = read_snapshots(str(tmp_path))
        merged = merge_shard_groups(snaps)
        assert len(merged) == 2
        group_row = next(
            s for s in merged if "pdes_group" in (s.get("meta") or {})
        )
        assert group_row["meta"]["app"] == "cilk5-cs x2"
        assert group_row["cycle"] == 4000  # min: slowest replica's progress
        assert group_row["events_per_sec"] == 3e6  # summed host throughput
        assert group_row["updated_at"] == 120.0
        frame = render(snaps, now=130.0)
        assert "2 run(s)" in frame and "cilk5-cs x2" in frame

    def test_shard_group_status_prefers_running_then_failed(self, tmp_path):
        from repro.obs.top import merge_shard_groups, read_snapshots

        meta = {"app": "cilk5-cs", "kind": "bt-mesi", "scale": "tiny",
                "pdes_group": "77-2"}
        self._write_snap(tmp_path, "s0.json", status="done",
                         meta={**meta, "shard": 0})
        self._write_snap(tmp_path, "s1.json", status="failed",
                         meta={**meta, "shard": 1})
        snaps, _ = read_snapshots(str(tmp_path))
        (row,) = merge_shard_groups(snaps)
        assert row["status"] == "failed"

    def test_stale_threshold_configurable(self, tmp_path):
        from repro.obs.top import read_snapshots, render

        self._write_snap(tmp_path, "a.json", updated_at=100.0)
        snaps, _ = read_snapshots(str(tmp_path))
        # 110s of silence: stale under the default 30s, fine under 500s.
        assert "stale?" in render(snaps, now=210.0)
        assert "stale?" not in render(snaps, now=210.0, stale_after=500.0)

    @staticmethod
    def _dead_pid():
        """A pid guaranteed dead: fork a child and reap it."""
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        return pid

    def test_dead_writer_labeled_dead_not_stale(self, tmp_path):
        from repro.obs.top import read_snapshots, render

        self._write_snap(tmp_path, "a.json", pid=self._dead_pid())
        snaps, _ = read_snapshots(str(tmp_path))
        frame = render(snaps, now=1e12)  # far beyond any stale threshold
        assert "dead" in frame and "stale?" not in frame

    def test_gc_dead_snapshots(self, tmp_path):
        from repro.obs.top import gc_dead_snapshots, read_snapshots

        self._write_snap(tmp_path, "live.json")
        self._write_snap(tmp_path, "orphan.json", pid=self._dead_pid())
        # A *finished* run's writer is expected to be gone: keep the file.
        self._write_snap(
            tmp_path, "finished.json", pid=self._dead_pid(), status="done"
        )
        removed = gc_dead_snapshots(str(tmp_path))
        assert removed == ["orphan.json"]
        names = {s["_file"] for s in read_snapshots(str(tmp_path))[0]}
        assert names == {"live.json", "finished.json"}

    def test_cli_top_clean_flag(self, tmp_path, capsys):
        from repro.__main__ import main

        self._write_snap(tmp_path, "orphan.json", pid=self._dead_pid())
        self._write_snap(tmp_path, "live.json")
        assert main(["top", "--dir", str(tmp_path), "--once", "--clean"]) == 0
        out = capsys.readouterr().out
        assert "collected dead snapshot orphan.json" in out
        assert not (tmp_path / "orphan.json").exists()
        assert (tmp_path / "live.json").exists()

    def test_sweep_gauges(self, tmp_path):
        from repro.obs.top import read_snapshots, sweep_gauges

        self._write_snap(tmp_path, "a.json")
        self._write_snap(tmp_path, "b.json", status="done")
        gauges = sweep_gauges(read_snapshots(str(tmp_path))[0])
        assert gauges["top.runs"] == 2
        assert gauges["top.runs_running"] == 1
        assert gauges["top.runs_done"] == 1
        assert gauges["top.events_per_sec"] == 2e6

    def test_cli_top_once(self, tmp_path, capsys):
        from repro.__main__ import main

        self._write_snap(tmp_path, "a.json")
        assert main(["top", "--dir", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "cilk5-cs" in out

    def test_cli_top_without_dir_fails(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.delenv("REPRO_HEARTBEAT_DIR", raising=False)
        assert main(["top", "--once"]) == 2


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------
class TestReport:
    def test_aggregate_counts_and_failures(self):
        from repro.obs.report import aggregate

        entries = [
            {"outcome": "ok", "app": "a", "kind": "k", "scale": "s",
             "wall_s": 2.0, "host": {"node": "h1", "python": "3"}},
            {"outcome": "store-hit", "app": "a", "kind": "k", "scale": "s",
             "wall_s": 0.01, "host": {"node": "h1", "python": "3"}},
            {"outcome": "failed", "app": "b", "kind": "k", "scale": "s",
             "error": "deadlock", "message": "stuck",
             "host": {"node": "h2", "python": "3"}},
            {"outcome": "???", "app": "c", "kind": "k", "scale": "s"},
        ]
        summary = aggregate(entries, malformed=1)
        assert summary["runs"] == 4
        assert summary["totals"] == {
            "ok": 1, "store-hit": 1, "memo-hit": 0, "failed": 1,
            "parked": 0, "other": 1,
        }
        assert summary["simulated"] == 2 and summary["hits"] == 1
        assert summary["hosts"] == 3  # h1/h2 plus the host-less entry
        assert summary["malformed_lines"] == 1
        assert summary["failures"] == [{
            "app": "b", "kind": "k", "scale": "s", "error": "deadlock",
            "message": "stuck", "source": "runner", "ts": None,
        }]
        assert summary["wall_total_s"] == pytest.approx(2.01)

    def test_report_reproduces_grid_accounting_from_ledger_alone(
        self, tmp_path, capsys
    ):
        """Acceptance: a grid's hit/miss counts rebuild from the ledger."""
        from repro.harness.grid import GridPoint, run_grid
        from repro.obs.report import report_from_file

        set_result_store(tmp_path / "results")
        path = tmp_path / "ledger.jsonl"
        set_ledger(str(path))
        points = [
            GridPoint("cilk5-mt", "bt-mesi", "tiny"),
            GridPoint("kernel-spin", "serial-io", "tiny", serial=True),
        ]
        run_grid(points, jobs=1)
        clear_cache()
        run_grid(points, jobs=1)  # warm pass: all store hits

        summary = report_from_file(str(path))
        assert summary["runs"] == 4
        assert summary["totals"]["ok"] == 2
        assert summary["totals"]["store-hit"] == 2
        assert summary["totals"]["failed"] == 0
        assert len(summary["groups"]) == 2

        from repro.__main__ import main

        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runs: 4" in out and "store-hit:2" in out

    def test_cli_report_json_and_missing_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "ledger.jsonl"
        RunLedger(path).record(outcome="ok", app="a", kind="k", scale="s")
        assert main(["report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 1
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2


# ----------------------------------------------------------------------
# Grid progress ETA
# ----------------------------------------------------------------------
class TestProgressEta:
    def make(self, total):
        from repro.harness.grid import _Progress

        clock = [0.0]
        meter = _Progress(total, enabled=False, clock=lambda: clock[0])
        return meter, clock

    def test_steady_rate(self):
        meter, clock = self.make(10)
        for i in range(4):
            clock[0] += 2.0
            meter.step("p", instant=False)
        # 4 done at 2s each → 6 remaining ≈ 12s.
        assert meter.last_eta == pytest.approx(12.0)

    def test_hits_do_not_crater_the_estimate(self):
        meter, clock = self.make(10)
        clock[0] = 2.0
        meter.step("p", instant=False)
        # A burst of instant store hits: done advances, rate evidence
        # doesn't, so the ETA still reflects the 2 s/point simulation cost.
        for _ in range(4):
            clock[0] += 0.001
            meter.step("p", instant=True)
        assert meter.hits == 4 and meter.done == 5
        assert meter.last_eta == pytest.approx(5 * 2.0, rel=0.05)

    def test_all_hits_fall_back_to_naive_rate(self):
        meter, clock = self.make(4)
        clock[0] = 0.1
        meter.step("p", instant=True)
        # One hit in 0.1s → 3 remaining ≈ 0.3s.
        assert meter.last_eta == pytest.approx(0.3)

    def test_window_tracks_rate_drift(self):
        from repro.harness.grid import _Progress

        meter, clock = self.make(2 * _Progress.WINDOW + 10)
        for _ in range(_Progress.WINDOW):   # fast early points
            clock[0] += 0.1
            meter.step("p")
        for _ in range(_Progress.WINDOW):   # slow late points
            clock[0] += 5.0
            meter.step("p")
        # Window holds only slow points: ETA reflects 5 s/point, not the mean.
        assert meter.last_eta == pytest.approx(10 * 5.0, rel=0.05)

    def test_done_and_zero_remaining(self):
        meter, clock = self.make(1)
        clock[0] = 1.0
        meter.step("p")
        assert meter.last_eta == 0.0


# ----------------------------------------------------------------------
# Interval sampler tail flush
# ----------------------------------------------------------------------
class TestSamplerFinalize:
    def telescope(self, samples):
        totals = {}
        for _cycle, delta in samples:
            for key, value in delta.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def test_deltas_telescope_to_end_totals(self):
        sim = Simulator()
        stats = StatGroup("m")
        for cycle in (5, 15, 25, 42):
            sim.schedule(cycle, lambda: stats.add("x", 2))
        sampler = IntervalSampler(sim, stats, interval=10)
        sampler.start()
        sim.run()
        sampler.finalize()
        assert self.telescope(sampler.samples) == dict(stats.snapshot())

    def test_same_cycle_tail_not_dropped(self):
        """Daemon ticks run before regular events at the same cycle, so a
        tick at the final cycle is stale; finalize must flush the residue
        without emitting a duplicate cycle."""
        sim = Simulator()
        stats = StatGroup("m")
        sim.schedule(10, lambda: stats.add("x", 7))  # same cycle as the tick
        sink_stream = []
        sampler = IntervalSampler(sim, stats, interval=10)
        sampler.add_sink(lambda cycle, delta: sink_stream.append((cycle, delta)))
        sampler.start()
        assert sim.run() == 10
        sampler.finalize()
        assert sampler.samples == [(10, {"m.x": 7})]
        # The sink saw the stale tick then the residue — also telescoping.
        assert self.telescope(sink_stream) == {"m.x": 7}

    def test_finalize_without_ticks_records_closing_sample(self):
        sim = Simulator()
        stats = StatGroup("m")
        sim.schedule(3, lambda: stats.add("x"))
        sampler = IntervalSampler(sim, stats, interval=100)
        sampler.start()
        sim.run()
        sampler.finalize()
        assert sampler.samples == [(3, {"m.x": 1})]

    def test_finalize_idempotent_when_tail_is_clean(self):
        sim = Simulator()
        stats = StatGroup("m")
        sim.schedule(4, lambda: stats.add("x"))
        sampler = IntervalSampler(sim, stats, interval=2)
        sampler.start()
        sim.run()
        sampler.finalize()
        before = list(sampler.samples)
        sampler.finalize()
        assert sampler.samples == before

    def test_run_fingerprint_matches_totals(self):
        """End-to-end: sampled machine-run deltas telescope to the final
        StatGroup snapshot (the regression the tail-drop bug broke)."""
        app, machine = tiny_machine()
        rt = WorkStealingRuntime(machine)
        sampler = IntervalSampler(machine.sim, machine.stats, interval=1000)
        baseline = dict(machine.stats.snapshot())
        sampler.start()
        rt.run(app.make_root())
        sampler.finalize()
        expected = {
            key: value - baseline.get(key, 0)
            for key, value in machine.stats.snapshot().items()
            if value != baseline.get(key, 0)
        }
        assert self.telescope(sampler.samples) == expected


# ----------------------------------------------------------------------
# Termlog JSON mode
# ----------------------------------------------------------------------
class TestTermlogJson:
    @pytest.fixture(autouse=True)
    def clean_state(self, monkeypatch):
        monkeypatch.setattr(termlog, "_status_active", False)
        monkeypatch.setenv("REPRO_LOG_JSON", "1")
        monkeypatch.setenv("REPRO_VERBOSE", "1")

    def parse(self, err):
        return [json.loads(line) for line in err.strip().split("\n")]

    def test_log_alert_status_are_json_lines(self, capsys):
        termlog.log("plain line")
        termlog.alert("deadlock!")
        termlog.status("[1/2] working")
        records = self.parse(capsys.readouterr().err)
        assert [(r["kind"], r["msg"]) for r in records] == [
            ("log", "plain line"),
            ("alert", "deadlock!"),
            ("status", "[1/2] working"),
        ]
        assert all(
            set(r) == {"ts", "level", "kind", "msg"} and r["ts"] > 0
            for r in records
        )
        assert records[1]["level"] == 0  # alerts always emit

    def test_json_mode_respects_verbosity_for_log(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_VERBOSE", "0")
        termlog.log("hidden")
        termlog.alert("still shown")
        records = self.parse(capsys.readouterr().err)
        assert [r["kind"] for r in records] == ["alert"]

    def test_human_mode_is_the_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_JSON", "0")
        termlog.log("human")
        assert capsys.readouterr().err == "human\n"
