"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_scheduled_from_callbacks():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, second)

    def second():
        seen.append(sim.now)

    sim.schedule(3, first)
    sim.run()
    assert seen == [3, 8]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_zero_delay_event_runs_at_current_cycle():
    sim = Simulator()
    times = []
    sim.schedule(4, lambda: sim.schedule(0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [4]


def test_stop_halts_the_run_loop():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2, lambda: seen.append(2))
    sim.run()
    assert seen == [1]
    assert sim.pending_events == 1


def test_until_predicate_stops_run():
    sim = Simulator()
    seen = []
    for t in range(1, 6):
        sim.schedule(t, lambda t=t: seen.append(t))
    sim.run(until=lambda: len(seen) >= 3)
    assert seen == [1, 2, 3]


def test_max_cycles_guard_raises():
    sim = Simulator(max_cycles=100)

    def rearm():
        sim.schedule(60, rearm)

    sim.schedule(60, rearm)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_returns_final_cycle():
    sim = Simulator()
    sim.schedule(42, lambda: None)
    assert sim.run() == 42


# ----------------------------------------------------------------------
# Event fusion (try_fuse fast path)
# ----------------------------------------------------------------------

def test_try_fuse_rejected_outside_run():
    sim = Simulator(fusion=True)
    assert not sim.try_fuse(10)
    assert sim.now == 0
    assert sim.events_fused == 0


def test_try_fuse_rejected_when_fusion_disabled():
    sim = Simulator(fusion=False)
    results = []
    sim.schedule(1, lambda: results.append(sim.try_fuse(5)))
    sim.run()
    assert results == [False]
    assert sim.events_fused == 0


def test_no_fusion_env_var_disables_fusion(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FUSION", "1")
    assert Simulator().fusion_enabled is False
    monkeypatch.delenv("REPRO_NO_FUSION")
    assert Simulator().fusion_enabled is True


def test_fuse_succeeds_when_strictly_earlier_than_head():
    sim = Simulator(fusion=True)
    seen = []

    def racer():
        # Continuation at cycle 5 < queue head at 10: may fuse.
        assert sim.try_fuse(5)
        seen.append(sim.now)

    sim.schedule(1, racer)
    sim.schedule(10, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5, 10]
    assert sim.events_fused == 1


def test_fuse_refused_on_time_tie_with_queue_head():
    """An inline continuation tying the queue head must lose FIFO order."""
    sim = Simulator(fusion=True)
    seen = []

    def racer():
        # Continuation due exactly at the head's cycle: the queued event
        # holds the smaller sequence number and must run first.
        assert not sim.try_fuse(10)
        sim.schedule_at(10, lambda: seen.append("late"))

    sim.schedule(10, lambda: seen.append("head"))
    sim.schedule(1, racer)
    sim.run()
    assert seen == ["head", "late"]
    assert sim.events_fused == 0


def test_fuse_refused_when_daemon_event_due():
    sim = Simulator(fusion=True)
    ticks = []
    sim.schedule(7, lambda: ticks.append(("daemon", sim.now)), daemon=True)
    results = []
    sim.schedule(1, lambda: results.append(sim.try_fuse(7)))
    sim.schedule(1, lambda: results.append(sim.try_fuse(8)))
    sim.schedule(9, lambda: ticks.append(("real", sim.now)))
    sim.run()
    # Both attempts tie or pass the daemon due time 7: refused.
    assert results == [False, False]
    assert ticks == [("daemon", 7), ("real", 9)]


def test_daemon_interleaving_identical_with_and_without_fusion():
    """Daemon observers fire at the same points regardless of fusion."""
    def scenario(fusion: bool):
        sim = Simulator(fusion=fusion)
        log = []

        def chain(step: int):
            log.append(("ev", sim.now))
            if step >= 6:
                return
            target = sim.now + 4
            if sim.try_fuse(target):
                chain(step + 1)
            else:
                sim.schedule_at(target, lambda: chain(step + 1))

        for due in (9, 18):
            sim.schedule(due, lambda d=due: log.append(("daemon", sim.now)),
                         daemon=True)
        sim.schedule(2, lambda: chain(0))
        sim.schedule(10, lambda: log.append(("other", sim.now)))
        sim.run()
        return log, sim.events_fused

    fused_log, n_fused = scenario(True)
    unfused_log, n_unfused = scenario(False)
    assert fused_log == unfused_log
    assert n_unfused == 0 and n_fused > 0


def test_fuse_refused_after_stop():
    sim = Simulator(fusion=True)
    results = []

    def first():
        sim.stop()
        results.append(sim.try_fuse(5))

    sim.schedule(1, first)
    sim.schedule(20, lambda: results.append("unreachable"))
    sim.run()
    assert results == [False]


def test_until_predicate_disables_fusion_for_the_whole_run():
    sim = Simulator(fusion=True)
    results = []
    sim.schedule(1, lambda: results.append(sim.try_fuse(5)))
    sim.schedule(30, lambda: None)
    sim.run(until=lambda: False)
    assert results == [False]
    assert sim.events_fused == 0


def test_fuse_refused_beyond_max_cycles():
    sim = Simulator(max_cycles=100, fusion=True)
    results = []
    sim.schedule(1, lambda: results.append(sim.try_fuse(101)))
    sim.run()
    assert results == [False]


# ----------------------------------------------------------------------
# Daemon events interacting with stop() (watchdog-style usage)
# ----------------------------------------------------------------------

def test_stop_from_daemon_preempts_popped_regular_event():
    """A daemon stopping the run must prevent the co-due regular event."""
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: (seen.append("daemon"), sim.stop()), daemon=True)
    sim.schedule(5, lambda: seen.append("regular"))
    sim.run()
    assert seen == ["daemon"]
    # The regular event went back on the queue unexecuted.
    assert sim.pending_events == 1
    assert sim.now == 5


def test_stop_from_daemon_suppresses_later_same_due_daemon():
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: (seen.append("d1"), sim.stop()), daemon=True)
    sim.schedule(5, lambda: seen.append("d2"), daemon=True)
    sim.schedule(6, lambda: seen.append("regular"))
    sim.run()
    assert seen == ["d1"]
    assert sim.pending_events == 1


def test_run_resumes_cleanly_after_daemon_stop():
    """The pushed-back event runs on the next run() call."""
    sim = Simulator()
    seen = []
    sim.schedule(5, lambda: (seen.append("daemon"), sim.stop()), daemon=True)
    sim.schedule(5, lambda: seen.append("regular"))
    sim.run()
    sim.run()
    assert seen == ["daemon", "regular"]
    assert sim.pending_events == 0


def test_daemon_exception_propagates_without_running_regular_event():
    """A raising daemon (the watchdog) must preempt the co-due event."""
    sim = Simulator()
    seen = []

    def boom():
        raise SimulationError("watchdog fired")

    sim.schedule(5, boom, daemon=True)
    sim.schedule(5, lambda: seen.append("regular"))
    with pytest.raises(SimulationError, match="watchdog fired"):
        sim.run()
    assert seen == []


def test_rearming_daemon_ticks_alongside_event_chain():
    """A self-re-arming daemon (watchdog idiom) observes every interval."""
    def scenario(fusion: bool):
        sim = Simulator(fusion=fusion)
        log = []

        def tick():
            log.append(("tick", sim.now))
            sim.schedule(10, tick, daemon=True)

        def chain(step: int):
            log.append(("ev", sim.now))
            if step >= 8:
                return
            target = sim.now + 4
            if sim.try_fuse(target):
                chain(step + 1)
            else:
                sim.schedule_at(target, lambda: chain(step + 1))

        sim.schedule(10, tick, daemon=True)
        sim.schedule(1, lambda: chain(0))
        sim.run()
        return log, sim.events_fused

    fused_log, n_fused = scenario(True)
    unfused_log, n_unfused = scenario(False)
    assert fused_log == unfused_log
    assert n_unfused == 0 and n_fused > 0
    # Daemon ticks interleave with the chain but never outlive it: the
    # last logged entry is a regular event, not a daemon tick.
    assert fused_log[-1][0] == "ev"
    assert ("tick", 10) in fused_log and ("tick", 20) in fused_log


def test_fusion_stats_accounting():
    sim = Simulator(fusion=True)

    def fuser():
        assert sim.try_fuse(sim.now + 1)

    sim.schedule(1, fuser)
    sim.schedule(10, lambda: None)
    sim.run()
    stats = sim.fusion_stats()
    assert stats["events_executed"] == 2
    assert stats["events_fused"] == 1
    assert stats["events_total"] == 3
    assert stats["fused_ratio"] == pytest.approx(1 / 3)
