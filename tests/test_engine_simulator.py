"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_events_scheduled_from_callbacks():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, second)

    def second():
        seen.append(sim.now)

    sim.schedule(3, first)
    sim.run()
    assert seen == [3, 8]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_zero_delay_event_runs_at_current_cycle():
    sim = Simulator()
    times = []
    sim.schedule(4, lambda: sim.schedule(0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [4]


def test_stop_halts_the_run_loop():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda: (seen.append(1), sim.stop()))
    sim.schedule(2, lambda: seen.append(2))
    sim.run()
    assert seen == [1]
    assert sim.pending_events == 1


def test_until_predicate_stops_run():
    sim = Simulator()
    seen = []
    for t in range(1, 6):
        sim.schedule(t, lambda t=t: seen.append(t))
    sim.run(until=lambda: len(seen) >= 3)
    assert seen == [1, 2, 3]


def test_max_cycles_guard_raises():
    sim = Simulator(max_cycles=100)

    def rearm():
        sim.schedule(60, rearm)

    sim.schedule(60, rearm)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_returns_final_cycle():
    sim = Simulator()
    sim.schedule(42, lambda: None)
    assert sim.run() == 42
