"""Tests for the repro.trace subsystem (tracer, sampler, exporters, CLI)."""

import json

import pytest

from repro.__main__ import main
from repro.apps import resolve_app
from repro.config.system import resolve_kind
from repro.engine.simulator import Simulator
from repro.engine.stats import StatGroup
from repro.harness import run_experiment
from repro.trace import (
    NULL_TRACER,
    IntervalSampler,
    Tracer,
    chrome_trace_events,
    export_chrome_trace,
    format_activity_report,
    samples_to_csv,
    validate_chrome_trace,
    validate_trace_file,
)

POINT = dict(app_name="cilk5-cs", kind="bt-hcc-dts-dnv", scale="tiny")


def traced_run():
    tracer = Tracer()
    result = run_experiment(tracer=tracer, sample_interval=500, **POINT)
    return tracer, result


# ----------------------------------------------------------------------
# Tracing must not perturb the simulation
# ----------------------------------------------------------------------
def test_traced_run_matches_untraced():
    untraced = run_experiment(**POINT)
    tracer, traced = traced_run()
    assert traced.cycles == untraced.cycles
    assert traced.instructions == untraced.instructions
    assert traced.steals == untraced.steals
    assert tracer.final_cycle == untraced.cycles


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    # Every hook is callable and returns None.
    NULL_TRACER.core_state(0, 0, "idle")
    NULL_TRACER.push_state(0, 0, "uli-handler")
    NULL_TRACER.pop_state(0, 0)
    NULL_TRACER.task_begin(0, 0, 1, "T")
    NULL_TRACER.task_end(0, 0)
    NULL_TRACER.steal(1, 0, 2, 10, 20, "dts")
    NULL_TRACER.uli_message(0, 1, 5, 3)
    NULL_TRACER.mem_burst(0, 5, "flush", 2, 8)
    NULL_TRACER.dram_sample(0, 5, 1)
    NULL_TRACER.counter_sample(5, {})
    NULL_TRACER.finish(100)


# ----------------------------------------------------------------------
# Determinism: same config + seed -> byte-identical exports
# ----------------------------------------------------------------------
def test_trace_export_byte_identical_across_runs():
    tracer_a, _ = traced_run()
    tracer_b, _ = traced_run()
    assert export_chrome_trace(tracer_a) == export_chrome_trace(tracer_b)
    assert samples_to_csv(tracer_a.samples) == samples_to_csv(tracer_b.samples)


# ----------------------------------------------------------------------
# Exporter output shape
# ----------------------------------------------------------------------
def test_export_is_valid_chrome_trace(tmp_path):
    tracer, result = traced_run()
    path = tmp_path / "trace.json"
    text = export_chrome_trace(tracer, str(path))
    obj = json.loads(text)
    validate_chrome_trace(obj)
    assert validate_trace_file(str(path)) > 0

    events = obj["traceEvents"]
    state_spans = [e for e in events if e["ph"] == "X" and e["pid"] == 0]
    assert state_spans, "expected core-state spans"
    assert {e["name"] for e in state_spans} <= {
        "running-task", "steal-attempt", "waiting", "idle", "uli-handler"
    }
    # Steal + ULI flow events come in begin/end pairs.
    starts = [e for e in events if e["ph"] == "s"]
    ends = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(ends) > 0
    assert {e["id"] for e in starts} == {e["id"] for e in ends}
    # Counter samples from the interval sampler.
    assert any(e["ph"] == "C" for e in events)
    assert obj["otherData"]["final_cycle"] == result.cycles


def test_activity_report_mentions_every_core():
    tracer, _ = traced_run()
    report = format_activity_report(tracer)
    assert "core 0 (big)" in report
    assert "core 3 (tiny)" in report
    assert "running-task" in report


# ----------------------------------------------------------------------
# Interval sampler
# ----------------------------------------------------------------------
def test_sampler_delta_correctness():
    sim = Simulator()
    stats = StatGroup("m")
    sim.schedule(5, lambda: stats.add("x", 3))
    sim.schedule(15, lambda: stats.add("x", 4))
    sim.schedule(25, lambda: stats.add("y", 1))
    sampler = IntervalSampler(sim, stats, interval=10)
    sampler.start()
    sim.run()
    sampler.finalize()
    assert sampler.samples == [
        (10, {"m.x": 3}),
        (20, {"m.x": 4}),
        (25, {"m.y": 1}),
    ]
    csv = samples_to_csv(sampler.samples)
    lines = csv.strip().split("\n")
    assert lines[0] == "cycle,m.x,m.y"
    assert lines[1] == "10,3,0"
    assert lines[3] == "25,0,1"


def test_sampler_does_not_extend_the_run():
    sim = Simulator()
    stats = StatGroup("m")
    sim.schedule(3, lambda: stats.add("x"))
    sampler = IntervalSampler(sim, stats, interval=100)
    sampler.start()
    assert sim.run() == 3
    sampler.finalize()
    assert sampler.samples == [(3, {"m.x": 1})]


def test_daemon_events_do_not_keep_simulator_alive():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append("daemon"), daemon=True)
    assert sim.run() == 0
    assert fired == []
    # With a later real event, the earlier daemon event does run.
    sim.schedule(20, lambda: fired.append("real"))
    sim.run()
    assert fired == ["daemon", "real"]


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        IntervalSampler(Simulator(), StatGroup("m"), interval=0)


# ----------------------------------------------------------------------
# StatGroup snapshot / reset / deterministic flatten
# ----------------------------------------------------------------------
def test_statgroup_snapshot_and_reset():
    root = StatGroup("machine")
    root.add("a", 2)
    root.child("c1").add("k", 5)
    snap = root.snapshot()
    assert snap == {"machine.a": 2, "machine.c1.k": 5}
    root.reset()
    assert root.snapshot() == {"machine.a": 0, "machine.c1.k": 0}


def test_flatten_independent_of_insertion_order():
    a = StatGroup("m")
    a.child("zz").add("k", 1)
    a.child("aa").add("k", 2)
    b = StatGroup("m")
    b.child("aa").add("k", 2)
    b.child("zz").add("k", 1)
    assert list(a.flatten()) == list(b.flatten())


# ----------------------------------------------------------------------
# Alias resolution
# ----------------------------------------------------------------------
def test_resolve_app_aliases():
    assert resolve_app("cilksort") == "cilk5-cs"
    assert resolve_app("cilk5-cs") == "cilk5-cs"
    assert resolve_app("cs") == "cilk5-cs"
    assert resolve_app("cc") == "ligra-cc"
    with pytest.raises(ValueError):
        resolve_app("not-an-app")


def test_resolve_kind_aliases():
    assert resolve_kind("hcc-dts-dnv") == "bt-hcc-dts-dnv"
    assert resolve_kind("bt-mesi") == "bt-mesi"
    with pytest.raises(ValueError):
        resolve_kind("not-a-kind")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_trace_subcommand(tmp_path, capsys):
    out = tmp_path / "t.json"
    csv = tmp_path / "t.csv"
    argv = [
        "trace", "cilksort", "--kind", "hcc-dts-dnv", "--scale", "tiny",
        "--out", str(out), "--csv", str(csv),
    ]
    assert main(argv) == 0
    stdout = capsys.readouterr().out
    assert "per-core activity breakdown" in stdout
    assert validate_trace_file(str(out)) > 0
    first = out.read_bytes()
    assert main(argv) == 0
    assert out.read_bytes() == first, "trace must be byte-identical on re-run"
    assert csv.read_text().startswith("cycle,")


def test_cli_run_json(capsys):
    assert main([
        "run", "cilk5-cs", "--config", "bt-hcc-dts-dnv", "--scale", "tiny",
        "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["app"] == "cilk5-cs"
    assert payload["cycles"] > 0


def test_cli_run_trace_flag(tmp_path):
    out = tmp_path / "r.json"
    assert main([
        "run", "cilk5-mt", "--config", "bt-mesi", "--scale", "tiny",
        "--trace", str(out), "--trace-interval", "500",
    ]) == 0
    assert validate_trace_file(str(out)) > 0
