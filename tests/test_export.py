"""Tests for the JSON/CSV result export module."""

import csv
import io
import json

from repro.harness import (
    result_from_dict,
    result_to_dict,
    results_to_json,
    rows_to_csv,
    run_experiment,
    series_to_csv,
)


def test_result_roundtrips_through_json():
    result = run_experiment("cilk5-mt", "bt-hcc-gwb", "tiny")
    payload = json.loads(results_to_json([result]))
    assert len(payload) == 1
    entry = payload[0]
    assert entry["app"] == "cilk5-mt"
    assert entry["kind"] == "bt-hcc-gwb"
    assert entry["cycles"] == result.cycles
    assert entry["energy_pj"] > 0
    assert "wb_req" in entry["traffic_bytes"]


def test_result_to_dict_flattens_energy():
    result = run_experiment("cilk5-mt", "bt-mesi", "tiny")
    entry = result_to_dict(result)
    assert "energy" not in entry
    assert set(entry["energy_breakdown_pj"]) >= {"cores", "l1", "l2"}


def test_rows_to_csv():
    rows = [{"app": "a", "x": 1.23456789}, {"app": "b", "x": 2, "extra": "y"}]
    text = rows_to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[0]["app"] == "a"
    assert parsed[0]["x"].startswith("1.2345")
    assert parsed[1]["extra"] == "y"
    assert parsed[0]["extra"] == ""


def test_rows_to_csv_empty():
    assert rows_to_csv([]) == ""


def test_series_to_csv():
    data = {"app1": {"bt-mesi": 1.0, "bt-hcc-gwb": 1.2}}
    text = series_to_csv(data)
    lines = text.strip().splitlines()
    assert lines[0] == "app,bt-mesi,bt-hcc-gwb"
    assert lines[1] == "app1,1,1.2"


def test_series_to_csv_rounds_like_rows_to_csv():
    # Figure CSVs must apply the same %.6g formatting as table CSVs.
    value = 1.2345678901234567
    series_text = series_to_csv({"a": {"bt-mesi": value}})
    rows_text = rows_to_csv([{"app": "a", "bt-mesi": value}])
    assert series_text.splitlines()[1] == "a,1.23457"
    assert rows_text.splitlines()[1] == "a,1.23457"


def test_series_to_csv_empty():
    assert series_to_csv({}) == ""


def test_result_from_dict_roundtrip_is_lossless():
    result = run_experiment("cilk5-mt", "bt-hcc-dts-gwb", "tiny")
    # Through plain dicts and through actual JSON text.
    assert result_from_dict(result_to_dict(result)) == result
    revived = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
    assert revived == result
    assert revived.energy.total_pj == result.energy.total_pj
    assert revived.energy.breakdown_pj == result.energy.breakdown_pj
    assert revived.traffic_bytes == result.traffic_bytes
    assert revived.l1_hit_rate_tiny == result.l1_hit_rate_tiny
