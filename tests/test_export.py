"""Tests for the JSON/CSV result export module."""

import csv
import io
import json

from repro.harness import (
    result_to_dict,
    results_to_json,
    rows_to_csv,
    run_experiment,
    series_to_csv,
)


def test_result_roundtrips_through_json():
    result = run_experiment("cilk5-mt", "bt-hcc-gwb", "tiny")
    payload = json.loads(results_to_json([result]))
    assert len(payload) == 1
    entry = payload[0]
    assert entry["app"] == "cilk5-mt"
    assert entry["kind"] == "bt-hcc-gwb"
    assert entry["cycles"] == result.cycles
    assert entry["energy_pj"] > 0
    assert "wb_req" in entry["traffic_bytes"]


def test_result_to_dict_flattens_energy():
    result = run_experiment("cilk5-mt", "bt-mesi", "tiny")
    entry = result_to_dict(result)
    assert "energy" not in entry
    assert set(entry["energy_breakdown_pj"]) >= {"cores", "l1", "l2"}


def test_rows_to_csv():
    rows = [{"app": "a", "x": 1.23456789}, {"app": "b", "x": 2, "extra": "y"}]
    text = rows_to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert parsed[0]["app"] == "a"
    assert parsed[0]["x"].startswith("1.2345")
    assert parsed[1]["extra"] == "y"
    assert parsed[0]["extra"] == ""


def test_rows_to_csv_empty():
    assert rows_to_csv([]) == ""


def test_series_to_csv():
    data = {"app1": {"bt-mesi": 1.0, "bt-hcc-gwb": 1.2}}
    text = series_to_csv(data)
    lines = text.strip().splitlines()
    assert lines[0] == "app,bt-mesi,bt-hcc-gwb"
    assert lines[1].startswith("app1,1.0,1.2")


def test_series_to_csv_empty():
    assert series_to_csv({}) == ""
