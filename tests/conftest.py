"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

#: Make sibling test helper modules importable regardless of invocation dir.
sys.path.insert(0, os.path.dirname(__file__))

import pytest

from helpers import ALL_BIGTINY, tiny_machine


@pytest.fixture
def machine():
    return tiny_machine()


@pytest.fixture(params=ALL_BIGTINY)
def any_bigtiny_machine(request):
    return tiny_machine(request.param)
