"""Coherence-invariant sanitizer (repro.sanitize): clean runs stay silent,
planted bugs get caught."""

import pickle

import pytest

from repro.core import Task, WorkStealingRuntime
from repro.cores import ops
from repro.mem.address import WORD_BYTES, line_addr
from repro.sanitize import Sanitizer, SanitizerError

from helpers import ALL_BIGTINY, VARIANT_KINDS, tiny_machine


class FibTask(Task):
    ARG_WORDS = 2

    def __init__(self, n, out_addr):
        super().__init__()
        self.n = n
        self.out_addr = out_addr

    def execute(self, rt, ctx):
        if self.n < 2:
            yield from ctx.store(self.out_addr, self.n)
            return
        scratch = rt.machine.address_space.alloc_words(2, "fib_scratch")
        children = [
            FibTask(self.n - 1, scratch),
            FibTask(self.n - 2, scratch + WORD_BYTES),
        ]
        yield from rt.fork_join(ctx, self, children)
        x = yield from ctx.load(scratch)
        y = yield from ctx.load(scratch + WORD_BYTES)
        yield from ctx.store(self.out_addr, x + y)


def _fib(kind, n=9, sanitize=True, **rt_kwargs):
    machine = tiny_machine(kind, sanitize=sanitize)
    rt = WorkStealingRuntime(machine, **rt_kwargs)
    out = machine.address_space.alloc_words(1, "out")
    cycles = rt.run(FibTask(n, out))
    return machine, rt, machine.host_read_word(out), cycles


# ----------------------------------------------------------------------
# Off switch and non-perturbation
# ----------------------------------------------------------------------

class TestOffSwitch:
    def test_off_by_default_and_unwrapped(self):
        machine = tiny_machine()
        assert machine.sanitizer is None
        # No instance-level wrappers: the L1 methods are the class's own.
        assert all("load" not in l1.__dict__ for l1 in machine.l1s)

    def test_on_wraps_every_l1(self):
        machine = tiny_machine(sanitize=True)
        assert machine.sanitizer is not None
        assert all("load" in l1.__dict__ for l1 in machine.l1s)

    @pytest.mark.parametrize("kind", VARIANT_KINDS)
    def test_sanitizer_never_perturbs_timing(self, kind):
        """peek-only walks + pure observation: cycle counts must match."""
        _, _, clean_result, clean_cycles = _fib(kind, sanitize=False)
        machine, rt, result, cycles = _fib(kind, sanitize=True)
        assert (result, cycles) == (clean_result, clean_cycles)
        assert machine.sanitizer.finish(rt) == []


# ----------------------------------------------------------------------
# Clean runs are silent
# ----------------------------------------------------------------------

class TestCleanRuns:
    @pytest.mark.parametrize("kind", ALL_BIGTINY)
    def test_fib_is_violation_free(self, kind):
        machine, rt, result, _ = _fib(kind)
        assert result == 34
        assert machine.sanitizer.finish(rt) == []
        assert machine.sanitizer.stats.get("walks") > 0

    def test_flush_publish_is_clean_on_gwb(self):
        machine = tiny_machine("bt-hcc-gwb", sanitize=True)
        data = machine.address_space.alloc_words(1, "data")

        def publisher():
            yield ops.Store(data, 42)
            yield ops.FlushAll()

        def reader():
            yield ops.Idle(400)
            yield ops.InvAll()
            got = yield ops.Load(data)
            assert got == 42

        machine.cores[1].start(publisher())
        machine.cores[2].start(reader())
        machine.sim.run()
        assert machine.sanitizer.finish() == []


# ----------------------------------------------------------------------
# Positive controls: planted bugs must be flagged
# ----------------------------------------------------------------------

class TestPositiveControls:
    def test_unflushed_read_detected_on_gwb(self):
        """A reader racing an unflushed write-back store is the bug class."""
        machine = tiny_machine("bt-hcc-gwb", sanitize=True)
        data = machine.address_space.alloc_words(1, "data")

        def sloppy_publisher():
            yield ops.Store(data, 42)
            # No FlushAll: the dirty word never becomes globally visible.

        def reader():
            yield ops.Idle(400)
            yield ops.Load(data)

        machine.cores[1].start(sloppy_publisher())
        machine.cores[2].start(reader())
        machine.sim.run()
        kinds = [v["kind"] for v in machine.sanitizer.violations]
        assert "unflushed-read" in kinds
        with pytest.raises(SanitizerError):
            machine.sanitizer.finish()

    def test_write_through_needs_no_flush(self):
        """GPU-WT publishes at the store itself: same race, no violation."""
        machine = tiny_machine("bt-hcc-gwt", sanitize=True)
        data = machine.address_space.alloc_words(1, "data")

        def publisher():
            yield ops.Store(data, 42)

        def reader():
            yield ops.Idle(400)
            yield ops.Load(data)

        machine.cores[1].start(publisher())
        machine.cores[2].start(reader())
        machine.sim.run()
        assert machine.sanitizer.finish() == []

    def test_broken_dts_runtime_is_flagged(self):
        """The deliberately-broken runtime variant trips the race detector."""
        machine, rt, _, _ = _fib(
            "bt-hcc-dts-gwb", n=10, break_coherence="no-thief-flush"
        )
        assert rt.stats.get("steals") > 0
        violations = machine.sanitizer.finish(rt, strict=False)
        assert any(v["kind"] == "unflushed-read" for v in violations)

    def test_swmr_walk_catches_corrupted_directory(self):
        machine = tiny_machine("bt-mesi", sanitize=True)
        data = machine.address_space.alloc_words(1, "data")

        def writer():
            yield ops.Store(data, 7)

        machine.cores[0].start(writer())
        machine.sim.run()
        entry = machine.l2.directory_entry(line_addr(data))
        assert entry is not None and entry.owner == 0
        entry.owner = 2  # corrupt: nobody's L1 backs this claim
        n_new = machine.sanitizer.check_now()
        kinds = [v["kind"] for v in machine.sanitizer.violations]
        assert n_new >= 2
        assert "directory-owner-mismatch" in kinds  # core 0 owns, dir says 2
        assert "stale-directory-owner" in kinds     # dir says 2, L1 2 is empty


# ----------------------------------------------------------------------
# Conservation checks
# ----------------------------------------------------------------------

class TestConservation:
    def test_task_conservation_violation(self):
        machine, rt, _, _ = _fib("bt-mesi")
        rt.stats.add("spawns")  # fake a spawn that never executed
        violations = machine.sanitizer.finish(rt, strict=False)
        assert [v["kind"] for v in violations] == ["task-conservation"]

    def test_undrained_deque_violation(self):
        """A runtime whose deque pointers end unequal is reported."""
        machine = tiny_machine("bt-mesi", sanitize=True)
        words = machine.address_space.alloc_words(2, "stub_deque")
        machine.host_write_word(words, 3)               # head
        machine.host_write_word(words + WORD_BYTES, 5)  # tail: 2 tasks stranded

        class _StubDeque:
            head_addr = words
            tail_addr = words + WORD_BYTES

        class _StubRuntime:
            serial_elision = False
            done = True
            deques = [_StubDeque()]

            class stats:
                @staticmethod
                def get(key, default=0):
                    return {"spawns": 4, "tasks_executed": 5}[key]

        violations = machine.sanitizer.finish(_StubRuntime(), strict=False)
        assert [v["kind"] for v in violations] == ["deque-not-drained"]
        assert violations[0]["head"] == 3 and violations[0]["tail"] == 5

    def test_serial_elision_skips_conservation(self):
        machine, rt, result, _ = _fib("bt-mesi", serial_elision=True)
        assert result == 34
        assert machine.sanitizer.finish(rt) == []


# ----------------------------------------------------------------------
# SanitizerError plumbing
# ----------------------------------------------------------------------

class TestSanitizerError:
    def test_pickles_with_violations(self):
        err = SanitizerError("2 violations", [{"kind": "unflushed-read"}])
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, SanitizerError)
        assert back.violations == [{"kind": "unflushed-read"}]
        assert "2 violations" in str(back)

    def test_violation_records_are_json_able(self):
        import json

        machine = tiny_machine("bt-hcc-gwb", sanitize=True)
        data = machine.address_space.alloc_words(1, "data")

        def racer(core_id, delay):
            yield ops.Idle(delay)
            if core_id == 1:
                yield ops.Store(data, 1)
            else:
                yield ops.Load(data)

        machine.cores[1].start(racer(1, 0))
        machine.cores[2].start(racer(2, 300))
        machine.sim.run()
        violations = machine.sanitizer.finish(strict=False)
        assert violations
        json.dumps(violations)  # must not raise
