"""Protocol fuzzing: random multi-core op sequences vs an oracle.

Two invariant suites:

* **AMO linearizability** — AMOs are coherent on every protocol (ownership
  RMW or RMW-at-L2), so a random interleaving of AMOs from many cores must
  produce exactly the result of *some* serial order; for commutative ops
  (add/or) the final value is order-independent and checkable exactly.
* **Publish/subscribe discipline** — writers that follow the flush+AMO
  publication recipe and readers that follow the AMO+invalidate
  subscription recipe always read the published value, on every protocol,
  for arbitrary random addresses and values.

A third suite repeats both under an active :class:`repro.faults.FaultPlan`
with the sanitizer watching: injected NoC jitter, DRAM throttling, forced
evictions, and steal aborts must change neither the linearized answer nor
any coherence invariant, and timing-only plans must leave the end-state
memory identical word for word.
"""

from hypothesis import given, settings, strategies as st

from repro.cores import ops
from repro.faults import FaultPlan

from helpers import tiny_machine

KINDS = ("bt-mesi", "bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb")


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from(KINDS),
    st.lists(  # per-core sequences of (word_index, delta)
        st.lists(st.tuples(st.integers(0, 7), st.integers(-5, 5)), max_size=15),
        min_size=2,
        max_size=4,
    ),
    st.integers(0, 2**32),
)
def test_amo_adds_linearize(kind, per_core_sequences, seed):
    machine = tiny_machine(kind, seed=seed)
    base = machine.address_space.alloc_words(8, "words")
    expected = [0] * 8
    for sequence in per_core_sequences:
        for word, delta in sequence:
            expected[word] += delta

    def worker(sequence, stagger):
        yield ops.Idle(1 + stagger)
        for word, delta in sequence:
            yield ops.Amo("add", base + word * 8, delta)
            yield ops.Work(2)

    for core_id, sequence in enumerate(per_core_sequences):
        machine.cores[core_id % 4].start(worker(sequence, core_id * 3))
        if core_id % 4 == 3:
            break
    machine.sim.run()
    got = machine.host_read_array(base, 8)
    # Cores beyond the machine's 4 were not started; recompute expected
    # for the sequences actually run.
    ran = per_core_sequences[:4]
    expected = [0] * 8
    for sequence in ran:
        for word, delta in sequence:
            expected[word] += delta
    assert got == expected


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from(KINDS),
    st.lists(st.integers(0, 2**30), min_size=1, max_size=12),
    st.integers(0, 2**32),
)
def test_publish_subscribe_discipline(kind, values, seed):
    machine = tiny_machine(kind, seed=seed)
    data = machine.address_space.alloc_words(len(values), "data")
    flag = machine.address_space.alloc_words(1, "flag")
    observed = []

    def publisher():
        for i, value in enumerate(values):
            yield ops.Store(data + i * 8, value)
        yield ops.FlushAll()
        yield ops.Amo("xchg", flag, 1)

    def subscriber():
        while True:
            ready = yield ops.Amo("or", flag, 0)
            if ready:
                break
            yield ops.Idle(13)
        yield ops.InvAll()
        for i in range(len(values)):
            got = yield ops.Load(data + i * 8)
            observed.append(got)

    machine.cores[1].start(publisher())
    machine.cores[2].start(subscriber())
    machine.sim.run()
    assert observed == values


# ----------------------------------------------------------------------
# The same invariants under fault injection + sanitizer
# ----------------------------------------------------------------------

def _amo_storm(machine, per_core_sequences, base):
    def worker(sequence, stagger):
        yield ops.Idle(1 + stagger)
        for word, delta in sequence:
            yield ops.Amo("add", base + word * 8, delta)
            yield ops.Work(2)

    for core_id, sequence in enumerate(per_core_sequences[:4]):
        machine.cores[core_id].start(worker(sequence, core_id * 3))
    machine.sim.run()


@settings(max_examples=8, deadline=None)
@given(
    st.sampled_from(KINDS),
    st.lists(
        st.lists(st.tuples(st.integers(0, 7), st.integers(-5, 5)), max_size=12),
        min_size=2,
        max_size=4,
    ),
    st.integers(1, 2**16),
)
def test_amo_adds_linearize_under_faults(kind, per_core_sequences, fault_seed):
    """Full fault plan + sanitizer: the commutative answer never changes."""
    plan = FaultPlan.preset("full", seed=fault_seed)
    machine = tiny_machine(kind, faults=plan, sanitize=True)
    base = machine.address_space.alloc_words(8, "words")
    _amo_storm(machine, per_core_sequences, base)
    expected = [0] * 8
    for sequence in per_core_sequences[:4]:
        for word, delta in sequence:
            expected[word] += delta
    assert machine.host_read_array(base, 8) == expected
    assert machine.sanitizer.finish(strict=False) == []


@settings(max_examples=6, deadline=None)
@given(
    st.sampled_from(KINDS),
    st.lists(
        st.lists(st.tuples(st.integers(0, 7), st.integers(-5, 5)), max_size=12),
        min_size=2,
        max_size=4,
    ),
    st.integers(1, 2**16),
)
def test_timing_faults_leave_end_state_identical(kind, per_core_sequences, fault_seed):
    """A timing-only plan may move cycles but not a single memory word."""
    def run(faults):
        machine = tiny_machine(kind, faults=faults, sanitize=True)
        base = machine.address_space.alloc_words(8, "words")
        _amo_storm(machine, per_core_sequences, base)
        violations = machine.sanitizer.finish(strict=False)
        return machine.host_read_array(base, 8), violations

    plan = FaultPlan.preset("timing", seed=fault_seed)
    assert plan.timing_only
    clean_words, clean_violations = run(None)
    fault_words, fault_violations = run(plan)
    assert clean_violations == [] and fault_violations == []
    assert fault_words == clean_words


@settings(max_examples=8, deadline=None)
@given(
    st.sampled_from(KINDS),
    st.lists(st.integers(0, 2**30), min_size=1, max_size=10),
    st.integers(1, 2**16),
)
def test_publish_subscribe_survives_faults(kind, values, fault_seed):
    """Forced evictions cannot break a correctly-synchronized program."""
    plan = FaultPlan.preset("full", seed=fault_seed)
    machine = tiny_machine(kind, faults=plan, sanitize=True)
    data = machine.address_space.alloc_words(len(values), "data")
    flag = machine.address_space.alloc_words(1, "flag")
    observed = []

    def publisher():
        for i, value in enumerate(values):
            yield ops.Store(data + i * 8, value)
        yield ops.FlushAll()
        yield ops.Amo("xchg", flag, 1)

    def subscriber():
        while True:
            ready = yield ops.Amo("or", flag, 0)
            if ready:
                break
            yield ops.Idle(13)
        yield ops.InvAll()
        for i in range(len(values)):
            got = yield ops.Load(data + i * 8)
            observed.append(got)

    machine.cores[1].start(publisher())
    machine.cores[2].start(subscriber())
    machine.sim.run()
    assert observed == values
    assert machine.sanitizer.finish(strict=False) == []
