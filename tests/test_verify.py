"""Model checker (`repro.verify`) unit + exhaustive-smoke tests."""

import inspect
import json

import pytest

from repro.sanitize.checker import Sanitizer
from repro.trace.perfetto import validate_trace_file
from repro.verify.counterexample import (
    Counterexample,
    export_counterexample_trace,
    minimize_counterexample,
    replay_counterexample,
)
from repro.verify.explore import build_handoff_scripts, explore
from repro.verify.invariants import (
    CHECKER_ONLY_KINDS,
    WALK_KINDS,
    check_l2_clean_words_match_memory,
    check_swmr_walk,
)
from repro.verify.model import (
    Ghost,
    LINE_BASE,
    MIXES,
    MicroMachine,
    apply_op,
    canonical_key,
    check_state_invariants,
    mix_protocols,
    store_value,
)


def machine_key(mm, ghost=None, pcs=()):
    mm.normalize_timing()
    ghost = ghost or Ghost()
    return canonical_key(mm.snapshot(), ghost.export(), pcs)


class TestCanonicalization:
    def test_op_order_with_same_final_state_collapses(self):
        # c0 then c1 vs c1 then c0 loading the same line end in the same
        # architectural state (both SHARED, sharers {0, 1}).
        a = MicroMachine(("mesi", "mesi"))
        apply_op(a, Ghost(), ("load", 0, 0))
        apply_op(a, Ghost(), ("load", 1, 0))
        b = MicroMachine(("mesi", "mesi"))
        apply_op(b, Ghost(), ("load", 1, 0))
        apply_op(b, Ghost(), ("load", 0, 0))
        assert machine_key(a) == machine_key(b)

    def test_timing_state_does_not_split_states(self):
        a = MicroMachine(("mesi", "mesi"))
        apply_op(a, Ghost(), ("load", 0, 0))
        key = machine_key(a)
        # Hits bump LRU ticks and DRAM/bank clocks moved; normalization
        # must fold these back into the same canonical state.
        apply_op(a, Ghost(), ("load", 0, 0))
        assert machine_key(a) == key

    def test_distinct_architectural_states_stay_distinct(self):
        a = MicroMachine(("mesi", "mesi"))
        apply_op(a, Ghost(), ("load", 0, 0))
        b = MicroMachine(("mesi", "mesi"))
        apply_op(b, Ghost(), ("store", 0, 0, store_value(0, 0)))
        assert machine_key(a) != machine_key(b)

    def test_ghost_and_script_pcs_are_part_of_the_state(self):
        mm = MicroMachine(("mesi", "mesi"))
        base = machine_key(mm)
        assert machine_key(mm, ghost=Ghost({0: 7})) != base
        assert machine_key(mm, pcs=(1, 0)) != base


class TestInvariantTable:
    def test_sanitizer_walk_is_the_shared_table(self):
        # The sanitizer's periodic walk must be the same code the checker
        # proves exhaustively — not a drifting copy.
        source = inspect.getsource(Sanitizer.check_now)
        assert "check_swmr_walk" in source

    def test_walk_and_checker_only_kinds_are_disjoint(self):
        assert not (WALK_KINDS & CHECKER_ONLY_KINDS)

    def test_walk_flags_double_owner(self):
        mm = MicroMachine(("mesi", "mesi"))
        apply_op(mm, Ghost(), ("store", 0, 0, 11))
        # Corrupt: clone the owned line into the other core's tags.
        line = mm.l1s[0].resident(LINE_BASE)
        import copy

        mm.l1s[1].tags.insert(copy.deepcopy(line))
        kinds = {v["kind"] for v in check_swmr_walk(mm.l1s, mm.l2)}
        assert "multiple-owners" in kinds
        assert kinds <= WALK_KINDS

    def test_walk_flags_inclusion_violation(self):
        mm = MicroMachine(("mesi", "mesi"))
        apply_op(mm, Ghost(), ("store", 0, 0, 11))
        mm.l2.banks[0].tags.remove(LINE_BASE)
        kinds = {v["kind"] for v in check_swmr_walk(mm.l1s, mm.l2)}
        assert "inclusion-violation" in kinds

    def test_walk_flags_mesi_m_clean(self):
        mm = MicroMachine(("mesi", "mesi"))
        apply_op(mm, Ghost(), ("store", 0, 0, 11))
        mm.l1s[0].resident(LINE_BASE).dirty_mask = 0
        kinds = {v["kind"] for v in check_swmr_walk(mm.l1s, mm.l2)}
        assert "mesi-m-clean" in kinds

    def test_clean_l2_word_must_match_dram(self):
        mm = MicroMachine(("mesi", "mesi"))
        apply_op(mm, Ghost(), ("load", 0, 0))
        entry = mm.l2.directory_entry(LINE_BASE)
        entry.data[0] = 999  # clean word diverges from DRAM
        violations = check_l2_clean_words_match_memory(mm.l2, mm.memory)
        assert [v["kind"] for v in violations] == ["l2-clean-word-mismatch"]

    def test_clean_micro_machine_passes_everything(self):
        mm = MicroMachine(("mesi", "gpu-wb"))
        ghost = Ghost()
        for op in (("store", 0, 0, 11), ("load", 1, 0),
                   ("store", 1, 0, 21), ("flush", 1), ("load", 0, 0)):
            assert apply_op(mm, ghost, op) == []
            assert check_state_invariants(mm) == []


class TestExhaustive:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_free_mode_exhausts_clean(self, mix):
        result = explore(mix, words=1, scenario="free")
        assert result.complete and result.counterexample is None
        assert result.states > 100  # actually explored, not a stub

    @pytest.mark.parametrize("mix", sorted(MIXES))
    def test_handoff_exhausts_clean(self, mix):
        result = explore(mix, scenario="handoff")
        assert result.complete and result.counterexample is None

    def test_max_states_overflow_reports_incomplete(self):
        result = explore("mesi", words=1, scenario="free", max_states=10)
        assert not result.complete and not result.ok

    def test_three_core_heterogeneous_mix(self):
        protocols = mix_protocols("hcc-gwb", 3)
        assert protocols == ("mesi", "gpu-wb", "gpu-wb")
        result = explore("hcc-gwb", cores=3, scenario="handoff")
        assert result.complete and result.counterexample is None


class TestPositiveControls:
    def test_no_thief_flush_yields_minimal_counterexample(self, tmp_path):
        result = explore("hcc-gwb", scenario="handoff",
                         break_coherence="no-thief-flush")
        cx = result.counterexample
        assert cx is not None
        assert cx.kind == "handoff-stale-read"
        # Minimal: an unpublished thief store and the stale parent read.
        assert len(cx.steps) == 2
        # The counterexample replays from scratch to the same violation.
        observed = replay_counterexample(cx)
        assert any(v["kind"] == cx.kind for v in observed)
        # ... and exports through the standard Perfetto pipeline.
        trace = tmp_path / "cx.trace.json"
        export_counterexample_trace(cx, str(trace))
        assert validate_trace_file(str(trace)) > 0
        meta = json.loads(trace.read_text())["metadata"]
        assert meta["violation_kind"] == "handoff-stale-read"

    def test_no_parent_invalidate_caught_on_gpu_wb(self):
        result = explore("gpu-wb", scenario="handoff",
                         break_coherence="no-parent-invalidate")
        cx = result.counterexample
        assert cx is not None and cx.kind == "handoff-stale-read"

    def test_no_parent_invalidate_immune_on_denovo(self):
        # DeNovo reads re-register through the directory, so a missing
        # self-invalidate cannot return stale payload data.
        result = explore("hcc-dnv", scenario="handoff",
                         break_coherence="no-parent-invalidate")
        assert result.complete and result.counterexample is None

    def test_break_mode_skips_the_named_step(self):
        intact = build_handoff_scripts(("mesi", "gpu-wb"), None)
        broken = build_handoff_scripts(("mesi", "gpu-wb"), "no-thief-flush")
        flat = lambda scripts: [op for script in scripts for _, op in script]
        assert ("flush", 1) in flat(intact)
        assert ("flush", 1) not in flat(broken)


class TestMinimization:
    def _cx(self, steps):
        return Counterexample(
            mix="hcc-gwb", protocols=("mesi", "gpu-wb"), words=2,
            scenario="handoff", break_coherence="no-thief-flush",
            steps=steps,
            violations=[{"kind": "handoff-stale-read", "message": "seed"}],
        )

    def test_minimization_strips_irrelevant_steps(self):
        # Noise (loads, an eviction) around the 2-step core bug.
        cx = self._cx([
            ("load", 0, 0),
            ("store", 1, 0, store_value(1, 0)),
            ("load", 1, 1),
            ("l2evict",),
            ("check", 0, 0),
        ])
        small = minimize_counterexample(cx)
        assert small.steps == [("store", 1, 0, store_value(1, 0)),
                               ("check", 0, 0)]
        assert small.violations[0]["kind"] == "handoff-stale-read"

    def test_minimization_preserves_violation_kind(self):
        cx = self._cx([("store", 1, 0, store_value(1, 0)), ("check", 0, 0)])
        small = minimize_counterexample(cx)
        # Already minimal: dropping either step kills the violation.
        assert small.steps == cx.steps

    def test_counterexample_json_round_trip(self):
        cx = self._cx([("store", 1, 0, 21), ("check", 0, 0)])
        back = Counterexample.from_json(json.loads(json.dumps(cx.to_json())))
        assert back.steps == cx.steps
        assert back.protocols == cx.protocols
        assert back.kind == cx.kind
