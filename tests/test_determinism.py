"""Simulation determinism: identical configs produce bit-identical results.

Determinism is a first-class property of the simulator (the paper's gem5
runs are deterministic too): the event queue breaks ties FIFO, all
randomness flows from the config seed, and Python dict ordering never
influences timing.
"""

import pytest

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.machine import Machine


def full_fingerprint(kind, app_name, params, seed):
    app = make_app(app_name, **params)
    machine = Machine(make_config(kind, "tiny", seed=seed))
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    cycles = rt.run(app.make_root())
    app.check()
    return (
        cycles,
        machine.total_instructions(),
        rt.stats.get("steals"),
        tuple(sorted(machine.traffic.snapshot().items())),
        machine.l1_hit_rate(),
    )


@pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb"))
@pytest.mark.parametrize(
    "app_name,params",
    [
        ("cilk5-cs", dict(n=96, grain=32)),
        ("ligra-bfs", dict(scale=5, grain=8)),
    ],
)
def test_identical_runs_are_bit_identical(kind, app_name, params):
    a = full_fingerprint(kind, app_name, params, seed=42)
    b = full_fingerprint(kind, app_name, params, seed=42)
    assert a == b


def test_seed_changes_schedule_but_not_results():
    cycles = set()
    for seed in (1, 2, 3, 4):
        fp = full_fingerprint("bt-hcc-dts-gwb", "cilk5-cs", dict(n=96, grain=16), seed)
        cycles.add(fp[0])
    # Different victim-selection streams give different timings...
    assert len(cycles) > 1
    # ...but every run passed check() inside full_fingerprint.


# ----------------------------------------------------------------------
# Observability instruments must be invisible to the simulation
# ----------------------------------------------------------------------
#: app×config pairs for the instrument-transparency matrix (>= 3 pairs).
OBS_MATRIX = [
    ("bt-mesi", "cilk5-cs", dict(n=96, grain=32)),
    ("bt-hcc-gwb", "ligra-bfs", dict(scale=5, grain=8)),
    ("bt-hcc-dts-gwb", "cilk5-cs", dict(n=96, grain=32)),
]


def observed_fingerprint(kind, app_name, params, seed, instrument=None):
    """Like :func:`full_fingerprint` but with a memory digest, and with an
    optional ``instrument(machine, runtime)`` hook called before the run
    (returning an optional ``finalize()`` callable for after it)."""
    app = make_app(app_name, **params)
    machine = Machine(make_config(kind, "tiny", seed=seed))
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    finalize = instrument(machine, rt) if instrument is not None else None
    cycles = rt.run(app.make_root())
    if finalize is not None:
        finalize()
    app.check()
    return (
        cycles,
        machine.total_instructions(),
        rt.stats.get("steals"),
        tuple(sorted(machine.traffic.snapshot().items())),
        machine.memory_digest(machine.address_space.regions()),
    )


@pytest.mark.parametrize("kind,app_name,params", OBS_MATRIX)
def test_heartbeat_runs_are_bit_identical_to_bare_runs(
    kind, app_name, params, tmp_path
):
    """A heartbeat-instrumented run (daemon-event telemetry writing JSON
    snapshots) is cycle- and memory-digest-identical to a bare run."""
    from repro.obs import HeartbeatWriter

    def instrument(machine, rt):
        hb = HeartbeatWriter(
            machine,
            rt,
            str(tmp_path / f"{kind}-{app_name}.json"),
            interval=500,  # aggressive cadence: many daemon ticks per run
            min_wall_s=0.0,  # write every beat, never throttle
        )
        hb.start()
        return lambda: hb.finalize("done")

    bare = observed_fingerprint(kind, app_name, params, seed=42)
    beating = observed_fingerprint(kind, app_name, params, seed=42, instrument=instrument)
    assert bare == beating
    # The instrument genuinely ran: the snapshot file exists and beat often.
    import json

    snap = json.loads((tmp_path / f"{kind}-{app_name}.json").read_text())
    assert snap["status"] == "done"
    assert snap["beats"] >= 2
    assert snap["cycle"] == bare[0]


@pytest.mark.parametrize("kind,app_name,params", OBS_MATRIX)
def test_profiled_runs_are_bit_identical_to_bare_runs(kind, app_name, params):
    """An engine-profiled run (wall-clock attribution probes in _resume and
    wrapped memory/NoC methods) is cycle- and digest-identical to bare."""
    from repro.obs import EngineProfiler

    profilers = []

    def instrument(machine, rt):
        profilers.append(EngineProfiler().install(machine))
        return None

    bare = observed_fingerprint(kind, app_name, params, seed=42)
    profiled = observed_fingerprint(kind, app_name, params, seed=42, instrument=instrument)
    assert bare == profiled
    # The profiler genuinely measured: it charged wall time somewhere.
    attribution = profilers[0].attribution()
    assert attribution["measured_wall_s"] > 0


def test_workspan_analysis_deterministic():
    from repro.analysis import CilkviewAnalyzer

    reports = []
    for _ in range(2):
        app = make_app("ligra-tc", scale=4, grain=4)
        analyzer = CilkviewAnalyzer()
        app.setup(analyzer.machine)
        reports.append(analyzer.analyze(app.make_root()))
    assert reports[0].work == reports[1].work
    assert reports[0].span == reports[1].span
    assert reports[0].n_tasks == reports[1].n_tasks
