"""Simulation determinism: identical configs produce bit-identical results.

Determinism is a first-class property of the simulator (the paper's gem5
runs are deterministic too): the event queue breaks ties FIFO, all
randomness flows from the config seed, and Python dict ordering never
influences timing.
"""

import pytest

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.machine import Machine


def full_fingerprint(kind, app_name, params, seed):
    app = make_app(app_name, **params)
    machine = Machine(make_config(kind, "tiny", seed=seed))
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    cycles = rt.run(app.make_root())
    app.check()
    return (
        cycles,
        machine.total_instructions(),
        rt.stats.get("steals"),
        tuple(sorted(machine.traffic.snapshot().items())),
        machine.l1_hit_rate(),
    )


@pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb"))
@pytest.mark.parametrize(
    "app_name,params",
    [
        ("cilk5-cs", dict(n=96, grain=32)),
        ("ligra-bfs", dict(scale=5, grain=8)),
    ],
)
def test_identical_runs_are_bit_identical(kind, app_name, params):
    a = full_fingerprint(kind, app_name, params, seed=42)
    b = full_fingerprint(kind, app_name, params, seed=42)
    assert a == b


def test_seed_changes_schedule_but_not_results():
    cycles = set()
    for seed in (1, 2, 3, 4):
        fp = full_fingerprint("bt-hcc-dts-gwb", "cilk5-cs", dict(n=96, grain=16), seed)
        cycles.add(fp[0])
    # Different victim-selection streams give different timings...
    assert len(cycles) > 1
    # ...but every run passed check() inside full_fingerprint.


def test_workspan_analysis_deterministic():
    from repro.analysis import CilkviewAnalyzer

    reports = []
    for _ in range(2):
        app = make_app("ligra-tc", scale=4, grain=4)
        analyzer = CilkviewAnalyzer()
        app.setup(analyzer.machine)
        reports.append(analyzer.analyze(app.make_root()))
    assert reports[0].work == reports[1].work
    assert reports[0].span == reports[1].span
    assert reports[0].n_tasks == reports[1].n_tasks
