"""Unit and property tests for the mesh NoC, ULI network, and DRAM model."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import StatGroup
from repro.mem.dram import DramController
from repro.noc import Mesh, MeshConfig, UliNetwork


def mesh(rows=4, cols=4):
    return Mesh(MeshConfig(rows=rows, cols=cols))


class TestMesh:
    def test_core_positions_row_major(self):
        m = mesh()
        assert m.core_position(0) == (0, 0)
        assert m.core_position(5) == (1, 1)
        assert m.core_position(15) == (3, 3)

    def test_core_position_bounds(self):
        with pytest.raises(ValueError):
            mesh().core_position(16)

    def test_bank_positions_below_core_rows(self):
        m = mesh()
        for b in range(4):
            row, col = m.bank_position(b, 4)
            assert row == 4
            assert 0 <= col < 4

    def test_banks_spread_across_columns(self):
        m = mesh()
        cols = {m.bank_position(b, 4)[1] for b in range(4)}
        assert cols == {0, 1, 2, 3}

    def test_paper_8x8_bank_mapping_unchanged(self):
        """Regression: the paper's one-bank-per-column mapping (Figure 1)
        must stay exactly (rows, bank_id)."""
        m = mesh(rows=8, cols=8)
        for b in range(8):
            assert m.bank_position(b, 8) == (8, b)

    @pytest.mark.parametrize("cols,n_banks", [
        (8, 3), (8, 5), (8, 6), (7, 3), (12, 5), (5, 4), (3, 2),
    ])
    def test_uneven_bank_counts_get_distinct_spread_columns(self, cols, n_banks):
        """Regression: ``cols % n_banks != 0`` used to cluster banks on the
        leftmost columns (stride floor); the mapping must keep columns
        distinct, monotone, and spread with cyclic gaps differing by <= 1."""
        m = mesh(rows=2, cols=cols)
        positions = [m.bank_position(b, n_banks)[1] for b in range(n_banks)]
        assert len(set(positions)) == n_banks
        assert positions == sorted(positions)
        gaps = [
            (positions[(i + 1) % n_banks] - positions[i]) % cols
            for i in range(n_banks)
        ]
        assert max(gaps) - min(gaps) <= 1

    def test_more_banks_than_columns_is_refused(self):
        """Regression: ``n_banks > cols`` used to silently collapse several
        banks onto one column, skewing NoC distance for every consumer."""
        with pytest.raises(ValueError, match="distinct columns"):
            mesh(rows=2, cols=4).bank_position(0, 6)

    def test_bank_id_out_of_range_is_refused(self):
        with pytest.raises(ValueError):
            mesh().bank_position(4, 4)

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_hops_symmetric_and_triangle(self, a, b):
        m = mesh()
        pa, pb = m.core_position(a), m.core_position(b)
        assert m.hops(pa, pb) == m.hops(pb, pa)
        assert m.hops(pa, pa) == 0
        origin = m.core_position(0)
        assert m.hops(pa, pb) <= m.hops(pa, origin) + m.hops(origin, pb)

    def test_latency_grows_with_distance(self):
        m = mesh(8, 8)
        near = m.latency((0, 0), (0, 1), 8)
        far = m.latency((0, 0), (7, 7), 8)
        assert far > near

    def test_latency_grows_with_message_size(self):
        m = mesh()
        small = m.latency((0, 0), (2, 2), 8)
        large = m.latency((0, 0), (2, 2), 72)
        assert large > small
        # 72B at 16B flits = 5 flits -> 4 extra body cycles.
        assert large - small == 4

    def test_zero_hop_message_costs_only_serialization(self):
        m = mesh()
        assert m.latency((1, 1), (1, 1), 8) == 0
        assert m.latency((1, 1), (1, 1), 72) == 4

    def test_n_links_positive(self):
        assert mesh().n_links > 0


class TestUliNetwork:
    def test_send_latency_and_stats(self):
        stats = StatGroup("m")
        net = UliNetwork(mesh(), stats)
        lat = net.send_latency(0, 15)
        assert lat == 6 * 2  # 6 hops x (router+channel)
        assert net.average_latency() == lat
        assert stats.child("uli_network").get("messages") == 1

    def test_utilization_bounded(self):
        net = UliNetwork(mesh(), StatGroup("m"))
        for _ in range(10):
            net.send_latency(0, 15)
        util = net.utilization(1000)
        assert 0.0 <= util < 1.0

    def test_utilization_zero_without_traffic(self):
        net = UliNetwork(mesh(), StatGroup("m"))
        assert net.utilization(100) == 0.0
        assert net.average_latency() == 0.0


class TestDramController:
    def test_fixed_latency_plus_service(self):
        mc = DramController(0, StatGroup("m"), access_latency=60, bytes_per_cycle=2.0)
        assert mc.access(now=0, n_bytes=64) == 32 + 60

    def test_back_to_back_requests_queue(self):
        mc = DramController(0, StatGroup("m"), access_latency=60, bytes_per_cycle=2.0)
        first = mc.access(0, 64)
        second = mc.access(0, 64)
        assert second == first + 32  # queued behind the first

    def test_bandwidth_limits_throughput(self):
        mc = DramController(0, StatGroup("m"), access_latency=0, bytes_per_cycle=1.0)
        total = 0
        for _ in range(10):
            total = mc.access(0, 64)
        assert total == 640  # 10 lines at 1 B/cycle

    def test_idle_gap_resets_queue(self):
        mc = DramController(0, StatGroup("m"), access_latency=10, bytes_per_cycle=2.0)
        mc.access(0, 64)
        assert mc.access(10_000, 64) == 32 + 10
