"""Unit and property tests for the address space and backing memory."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import (
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    AddressSpace,
    align_up,
    line_addr,
    word_addr,
    word_index,
)
from repro.mem.backing import MainMemory


# ----------------------------------------------------------------------
# Address helpers
# ----------------------------------------------------------------------
@given(st.integers(0, 2**48))
def test_line_addr_is_aligned_and_contains(addr):
    base = line_addr(addr)
    assert base % LINE_BYTES == 0
    assert base <= addr < base + LINE_BYTES


@given(st.integers(0, 2**48))
def test_word_index_consistent_with_word_addr(addr):
    idx = word_index(addr)
    assert 0 <= idx < WORDS_PER_LINE
    assert line_addr(addr) + idx * WORD_BYTES == word_addr(addr)


def test_align_up():
    assert align_up(0, 64) == 0
    assert align_up(1, 64) == 64
    assert align_up(64, 64) == 64
    assert align_up(65, 64) == 128


# ----------------------------------------------------------------------
# AddressSpace
# ----------------------------------------------------------------------
class TestAddressSpace:
    def test_allocations_are_line_aligned(self):
        space = AddressSpace()
        for size in (1, 7, 8, 63, 64, 65):
            assert space.alloc(size) % LINE_BYTES == 0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().alloc(0)

    @given(st.lists(st.integers(1, 4096), min_size=1, max_size=50))
    def test_allocations_never_overlap(self, sizes):
        space = AddressSpace()
        spans = []
        for i, size in enumerate(sizes):
            base = space.alloc(size, f"r{i}")
            spans.append((base, base + align_up(size, LINE_BYTES)))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_null_address_never_allocated(self):
        space = AddressSpace()
        assert space.alloc(8) >= AddressSpace.BASE > 0

    def test_owner_of(self):
        space = AddressSpace()
        base = space.alloc(100, "blob")
        assert space.owner_of(base) == "blob"
        assert space.owner_of(base + 99) == "blob"
        assert space.owner_of(0) == "<unmapped>"

    def test_alloc_words(self):
        space = AddressSpace()
        base = space.alloc_words(10, "arr")
        region = space.region("arr")
        assert region.size >= 10 * WORD_BYTES
        assert region.contains(base + 9 * WORD_BYTES)


# ----------------------------------------------------------------------
# MainMemory
# ----------------------------------------------------------------------
class TestMainMemory:
    def test_uninitialized_memory_reads_zero(self):
        mem = MainMemory()
        assert mem.read_word(0x1000) == 0
        assert mem.read_line(0x1000) == [0] * WORDS_PER_LINE

    def test_word_roundtrip(self):
        mem = MainMemory()
        mem.write_word(0x2008, 77)
        assert mem.read_word(0x2008) == 77
        assert mem.read_word(0x2000) == 0

    def test_line_roundtrip_returns_copy(self):
        mem = MainMemory()
        words = list(range(8))
        mem.write_line(0x3000, words)
        got = mem.read_line(0x3000)
        assert got == words
        got[0] = 999
        assert mem.read_word(0x3000) == 0

    def test_write_line_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            MainMemory().write_line(0x1000, [1, 2, 3])

    def test_masked_write_merges(self):
        mem = MainMemory()
        mem.write_line(0x1000, [1, 2, 3, 4, 5, 6, 7, 8])
        mem.write_words(0x1000, [10, 20, 30, 40, 50, 60, 70, 80], mask=0b00000101)
        assert mem.read_line(0x1000) == [10, 2, 30, 4, 5, 6, 7, 8]

    @given(
        st.dictionaries(
            st.integers(0, 63).map(lambda w: 0x4000 + w * WORD_BYTES),
            st.integers(-(2**62), 2**62),
            max_size=30,
        )
    )
    def test_random_word_writes_read_back(self, writes):
        mem = MainMemory()
        for addr, value in writes.items():
            mem.write_word(addr, value)
        for addr, value in writes.items():
            assert mem.read_word(addr) == value

    def test_footprint(self):
        mem = MainMemory()
        mem.write_word(0x1000, 1)
        mem.write_word(0x1008, 1)  # same line
        mem.write_word(0x2000, 1)  # new line
        assert mem.footprint_bytes == 2 * LINE_BYTES
