"""Tests for extension features: Chase-Lev lock-free deques and the
asymmetry-aware ("big-first") steal policy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.system import SCALES, make_config
from repro.core import Task, WorkStealingRuntime
from repro.core.chaselev import ChaseLevDeque
from repro.core.taskqueue import TaskDeque
from repro.cores import ops
from repro.engine.simulator import SimulationError
from repro.machine import Machine
from repro.mem.address import WORD_BYTES

from helpers import run_thread, tiny_machine


def pyfib(n):
    return n if n < 2 else pyfib(n - 1) + pyfib(n - 2)


class FibTask(Task):
    def __init__(self, n, out_addr):
        super().__init__()
        self.n = n
        self.out_addr = out_addr

    def execute(self, rt, ctx):
        if self.n < 2:
            yield from ctx.store(self.out_addr, self.n)
            return
        scratch = rt.machine.address_space.alloc_words(2, "s")
        yield from rt.fork_join(
            ctx, self,
            [FibTask(self.n - 1, scratch), FibTask(self.n - 2, scratch + WORD_BYTES)],
        )
        x = yield from ctx.load(scratch)
        y = yield from ctx.load(scratch + WORD_BYTES)
        yield from ctx.store(self.out_addr, x + y)


def drive(machine, core_id, gen):
    result = {}

    def wrapper():
        result["value"] = yield from gen
        if False:
            yield

    run_thread(machine, core_id, wrapper())
    return result.get("value")


class TestChaseLevDeque:
    def test_push_take_lifo(self):
        machine = tiny_machine()
        dq = ChaseLevDeque(machine, 1, capacity=16)
        ctxs = machine.make_contexts()

        def body(ctx):
            for task_id in (1, 2, 3):
                yield from dq.push(ctx, task_id)
            out = []
            for _ in range(4):
                out.append((yield from dq.take(ctx)))
            return out

        assert drive(machine, 1, body(ctxs[1])) == [3, 2, 1, 0]

    def test_steal_fifo(self):
        machine = tiny_machine()
        dq = ChaseLevDeque(machine, 1, capacity=16)
        ctxs = machine.make_contexts()

        def body(ctx):
            for task_id in (1, 2, 3):
                yield from dq.push(ctx, task_id)
            out = []
            for _ in range(4):
                out.append((yield from dq.steal(ctx)))
            return out

        assert drive(machine, 1, body(ctxs[1])) == [1, 2, 3, 0]

    def test_overflow_raises(self):
        machine = tiny_machine()
        dq = ChaseLevDeque(machine, 1, capacity=2)
        ctxs = machine.make_contexts()

        def body(ctx):
            for task_id in (1, 2, 3):
                yield from dq.push(ctx, task_id)

        with pytest.raises(SimulationError):
            drive(machine, 1, body(ctxs[1]))

    @pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-gwb"))
    def test_concurrent_owner_and_thieves_claim_each_item_once(self, kind):
        machine = tiny_machine(kind)
        dq = ChaseLevDeque(machine, 1, capacity=256)
        claimed_addr = machine.address_space.alloc_words(64, "claimed")
        ctxs = machine.make_contexts()

        def owner(ctx):
            for task_id in range(1, 33):
                yield from dq.push(ctx, task_id)
                yield from ctx.work(3)
            while True:
                got = yield from dq.take(ctx)
                if not got:
                    break
                yield from ctx.amo_add(claimed_addr + (got - 1) * 8, 1)
                yield from ctx.work(5)

        def thief(ctx):
            misses = 0
            while misses < 30:
                got = yield from dq.steal(ctx)
                if got:
                    misses = 0
                    yield from ctx.amo_add(claimed_addr + (got - 1) * 8, 1)
                    yield from ctx.work(5)
                else:
                    misses += 1
                    yield from ctx.idle(7)

        machine.cores[1].start(owner(ctxs[1]))
        machine.cores[2].start(thief(ctxs[2]))
        machine.cores[3].start(thief(ctxs[3]))
        machine.sim.run()
        counts = machine.host_read_array(claimed_addr, 32)
        assert counts == [1] * 32  # every task claimed exactly once

    @pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb"))
    def test_runtime_with_chase_lev_correct(self, kind):
        machine = tiny_machine(kind)
        rt = WorkStealingRuntime(machine, deque_kind="chase-lev")
        out = machine.address_space.alloc_words(1, "out")
        rt.run(FibTask(9, out))
        assert machine.host_read_word(out) == pyfib(9)

    @pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-gwb"))
    def test_last_element_owner_thief_cas_race(self, kind):
        """Owner take() and thief steal() race for the single remaining
        item; the head CAS must hand it to exactly one of them."""
        machine = tiny_machine(kind)
        dq = ChaseLevDeque(machine, 1, capacity=16)
        ctxs = machine.make_contexts()
        got = {}

        def owner(ctx):
            yield from dq.push(ctx, 7)
            yield from ctx.work(2)  # window for the thief to move in
            got["owner"] = yield from dq.take(ctx)

        def thief(ctx):
            for _ in range(64):
                task_id = yield from dq.steal(ctx)
                if task_id:
                    got["thief"] = task_id
                    return
                yield from ctx.idle(3)
            got["thief"] = 0

        machine.cores[1].start(owner(ctxs[1]))
        machine.cores[2].start(thief(ctxs[2]))
        machine.sim.run()
        winners = [v for v in (got["owner"], got["thief"]) if v]
        assert winners == [7]  # claimed exactly once, by whoever won

        # The deque must still be consistent: empty for both sides.
        machine2 = machine  # same machine, fresh generators
        assert drive(machine2, 1, dq.take(ctxs[1])) == 0
        assert drive(machine2, 2, dq.steal(ctxs[2])) == 0

    def test_slot_wraparound_beyond_capacity(self):
        """head/tail grow without bound; slot indices wrap mod capacity."""
        machine = tiny_machine()
        dq = ChaseLevDeque(machine, 1, capacity=4)
        ctxs = machine.make_contexts()

        def body(ctx):
            out = []
            for task_id in (1, 2, 3, 4):
                yield from dq.push(ctx, task_id)
            out.append((yield from dq.steal(ctx)))  # 1 (head slot 0 freed)
            out.append((yield from dq.steal(ctx)))  # 2 (head slot 1 freed)
            yield from dq.push(ctx, 5)  # tail=4 -> physical slot 0
            yield from dq.push(ctx, 6)  # tail=5 -> physical slot 1
            for _ in range(5):
                out.append((yield from dq.take(ctx)))
            return out

        assert drive(machine, 1, body(ctxs[1])) == [1, 2, 6, 5, 4, 3, 0]

    def test_chase_lev_overflow_message_names_owner_and_capacity(self):
        machine = tiny_machine()
        dq = ChaseLevDeque(machine, 3, capacity=2)
        ctxs = machine.make_contexts()

        def body(ctx):
            for task_id in (1, 2, 3):
                yield from dq.push(ctx, task_id)

        with pytest.raises(
            SimulationError, match=r"chase-lev deque 3 overflow \(capacity 2\)"
        ):
            drive(machine, 3, body(ctxs[3]))

    def test_chase_lev_rejected_with_dts(self):
        with pytest.raises(ValueError):
            WorkStealingRuntime(tiny_machine("bt-hcc-dts-gwb"), deque_kind="chase-lev")

    def test_unknown_deque_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingRuntime(tiny_machine(), deque_kind="ring")


class TestTaskDequeOverflow:
    def test_enqueue_past_capacity_raises_with_owner_and_capacity(self):
        machine = tiny_machine()
        dq = TaskDeque(machine, 2, capacity=2)
        ctxs = machine.make_contexts()

        def body(ctx):
            for task_id in (1, 2, 3):
                yield from dq.enqueue(ctx, task_id)

        with pytest.raises(
            SimulationError, match=r"task deque 2 overflow \(capacity 2\)"
        ):
            drive(machine, 2, body(ctxs[2]))


class _ForcedRng:
    """Deterministic rng stub: always takes the big-first branch and picks
    the candidate at a fixed offset."""

    def __init__(self, pick: int = 0):
        self.pick = pick

    def random(self) -> float:
        return 0.0  # < 0.5, so the policy probes a big core

    def randint(self, a: int, b: int) -> int:
        return min(a + self.pick, b)

    def choice_excluding(self, n: int, excluded: int) -> int:
        return 0 if excluded != 0 else 1


class TestStealPolicy:
    @pytest.mark.parametrize("kind", ("bt-mesi", "bt-hcc-dts-gwb"))
    def test_big_first_policy_correct(self, kind):
        machine = tiny_machine(kind)
        rt = WorkStealingRuntime(machine, steal_policy="big-first")
        out = machine.address_space.alloc_words(1, "out")
        rt.run(FibTask(9, out))
        assert machine.host_read_word(out) == pyfib(9)
        assert rt.stats.get("steals") > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingRuntime(tiny_machine(), steal_policy="chaotic")

    def test_big_first_never_selects_self(self):
        machine = tiny_machine()
        rt = WorkStealingRuntime(machine, steal_policy="big-first")
        ctx = rt.contexts[0]  # the only big core: must not pick itself
        for _ in range(100):
            assert rt._choose_victim(ctx) != 0

    @pytest.mark.parametrize("scale", sorted(SCALES))
    def test_big_first_probes_a_real_big_core_at_every_scale(self, scale):
        """Regression: the policy must draw candidates from the machine's
        actual big-core id list, not an assumed 0..n_big-1 range."""
        machine = Machine(make_config("bt-mesi", scale))
        rt = WorkStealingRuntime(machine, steal_policy="big-first")
        big_ids = machine.big_core_ids()
        tiny_ids = machine.tiny_core_ids()
        assert big_ids and tiny_ids

        # From a tiny core, every candidate offset lands on a real big core.
        ctx = rt.contexts[tiny_ids[0]]
        for pick in range(len(big_ids)):
            ctx.rng = _ForcedRng(pick)
            victim = rt._choose_victim(ctx)
            assert victim in big_ids
            assert victim != ctx.tid

        # From a big core, the policy never probes itself.
        big_ctx = rt.contexts[big_ids[0]]
        big_ctx.rng = _ForcedRng(0)
        victim = rt._choose_victim(big_ctx)
        assert victim != big_ctx.tid
        if len(big_ids) > 1:
            assert victim in big_ids
