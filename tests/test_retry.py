"""Unit tests for the shared retry/backoff helper (repro.harness.retry).

Everything runs against an injected clock and RNG — no sleeping, no wall
time: the helper itself never sleeps, it only answers "when is the next
attempt eligible?".
"""

import random

import pytest

from repro.harness.retry import NO_BACKOFF, Backoff, BackoffPolicy


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TopRng(random.Random):
    """uniform() always returns the upper bound — deterministic worst case."""

    def uniform(self, a, b):
        return b


class BottomRng(random.Random):
    """uniform() always returns the lower bound."""

    def uniform(self, a, b):
        return a


class TestBackoffPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="base_s"):
            BackoffPolicy(base_s=-1.0)
        with pytest.raises(ValueError, match="cap_s"):
            BackoffPolicy(base_s=2.0, cap_s=1.0)
        with pytest.raises(ValueError, match="multiplier"):
            BackoffPolicy(multiplier=0.5)

    def test_delays_bounded_by_base_and_cap(self):
        policy = BackoffPolicy(base_s=0.25, cap_s=10.0, multiplier=3.0)
        rng = random.Random(7)
        prev = None
        for _ in range(50):
            delay = policy.next_delay(prev, rng)
            assert policy.base_s <= delay <= policy.cap_s
            prev = delay

    def test_decorrelated_growth_is_geometric_at_worst_case(self):
        """With uniform() pinned to its upper bound, delays follow
        base * multiplier^k exactly until the cap clamps them."""
        policy = BackoffPolicy(base_s=1.0, cap_s=100.0, multiplier=3.0)
        rng = TopRng()
        delays = []
        prev = None
        for _ in range(6):
            prev = policy.next_delay(prev, rng)
            delays.append(prev)
        assert delays == [3.0, 9.0, 27.0, 81.0, 100.0, 100.0]

    def test_floor_is_base_at_best_case(self):
        policy = BackoffPolicy(base_s=1.0, cap_s=100.0, multiplier=3.0)
        rng = BottomRng()
        prev = None
        for _ in range(5):
            prev = policy.next_delay(prev, rng)
            assert prev == 1.0

    def test_no_backoff_is_always_zero(self):
        rng = random.Random(1)
        assert NO_BACKOFF.next_delay(None, rng) == 0.0
        assert NO_BACKOFF.next_delay(5.0, rng) == 0.0


class TestBackoffState:
    def test_ready_tracks_injected_clock(self):
        clock = FakeClock()
        backoff = Backoff(
            BackoffPolicy(base_s=1.0, cap_s=100.0, multiplier=3.0),
            rng=TopRng(),
            clock=clock,
        )
        assert backoff.ready()  # never failed: immediately eligible
        delay = backoff.fail()
        assert delay == 3.0
        assert not backoff.ready()
        assert backoff.remaining() == pytest.approx(3.0)
        clock.advance(2.9)
        assert not backoff.ready()
        clock.advance(0.2)
        assert backoff.ready()
        assert backoff.remaining() == 0.0

    def test_attempts_accumulate_and_reset(self):
        clock = FakeClock()
        backoff = Backoff(NO_BACKOFF, clock=clock)
        backoff.fail()
        backoff.fail()
        assert backoff.attempts == 2
        assert backoff.ready()  # NO_BACKOFF: zero delay
        backoff.reset()
        assert backoff.attempts == 0
        assert backoff.last_delay is None

    def test_successive_failures_compound(self):
        clock = FakeClock()
        backoff = Backoff(
            BackoffPolicy(base_s=1.0, cap_s=100.0, multiplier=3.0),
            rng=TopRng(),
            clock=clock,
        )
        assert backoff.fail() == 3.0
        clock.advance(3.0)
        assert backoff.fail() == 9.0  # grows from the previous delay
        assert backoff.eligible_at == pytest.approx(clock.t + 9.0)


class TestGridIntegration:
    def test_grid_retries_wait_out_backoff(self, tmp_path):
        """A failing grid point's retry is delayed by the policy: with a
        genuine (tiny) backoff the retry still happens and the point is
        recorded after its attempts are exhausted."""
        from repro.harness.grid import GridPoint, run_grid

        # A bad app parameter raises inside the worker: a retryable
        # "error" (unlike deadlock/violation, which never retry).
        point = GridPoint(
            "cilk5-mt", "bt-mesi", "tiny", app_overrides={"no_such_param": 1}
        )
        results = run_grid(
            [point, point], jobs=2, retries=1, on_error="record",
            backoff=BackoffPolicy(base_s=0.01, cap_s=0.05, multiplier=2.0),
        )
        assert all(getattr(r, "failed", False) for r in results)
        assert all(r.attempts == 2 for r in results)

    def test_grid_no_backoff_matches_old_behaviour(self):
        from repro.harness.grid import GridPoint, run_grid

        point = GridPoint(
            "cilk5-mt", "bt-mesi", "tiny", app_overrides={"no_such_param": 1}
        )
        # Two points: a single-point grid takes the serial path, which
        # never retries.
        results = run_grid(
            [point, point], jobs=2, retries=2, on_error="record",
            backoff=NO_BACKOFF,
        )
        assert all(r.failed and r.attempts == 3 for r in results)
