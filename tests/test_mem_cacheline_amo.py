"""Unit and property tests for cache line storage, tag arrays, and AMOs."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.amo import AMO_OPS, apply_amo
from repro.mem.cacheline import CacheLine, FULL_MASK, TagArray, VALID


# ----------------------------------------------------------------------
# CacheLine
# ----------------------------------------------------------------------
class TestCacheLine:
    def test_fresh_line_is_fully_valid_and_clean(self):
        line = CacheLine(0x1000, VALID)
        assert line.valid_mask == FULL_MASK
        assert line.dirty_mask == 0

    def test_set_word_dirty(self):
        line = CacheLine(0x1000, VALID)
        line.set_word(3, 42, dirty=True)
        assert line.data[3] == 42
        assert line.word_dirty(3)
        assert not line.word_dirty(2)
        assert line.dirty_word_count() == 1

    def test_set_word_clean_does_not_dirty(self):
        line = CacheLine(0x1000, VALID)
        line.set_word(1, 5, dirty=False)
        assert line.word_valid(1)
        assert not line.word_dirty(1)


# ----------------------------------------------------------------------
# TagArray
# ----------------------------------------------------------------------
class TestTagArray:
    def make(self, size=1024, assoc=2):
        return TagArray(size, assoc)  # 8 sets of 2 ways

    def test_miss_returns_none(self):
        tags = self.make()
        assert tags.lookup(0x1000) is None

    def test_insert_then_hit(self):
        tags = self.make()
        tags.insert(CacheLine(0x1000, VALID))
        assert tags.lookup(0x1000) is not None

    def test_lru_eviction_within_set(self):
        tags = self.make(size=256, assoc=2)  # 2 sets
        set_stride = 2 * 64  # lines mapping to the same set
        a, b, c = 0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride
        tags.insert(CacheLine(a, VALID))
        tags.insert(CacheLine(b, VALID))
        tags.lookup(a)  # touch a: b becomes LRU
        victim = tags.insert(CacheLine(c, VALID))
        assert victim is not None and victim.addr == b
        assert tags.peek(a) is not None
        assert tags.peek(b) is None

    def test_reinsert_same_line_does_not_evict(self):
        tags = self.make(size=256, assoc=2)
        tags.insert(CacheLine(0x1000, VALID))
        assert tags.insert(CacheLine(0x1000, VALID)) is None

    def test_peek_does_not_touch_lru(self):
        tags = self.make(size=256, assoc=2)
        set_stride = 2 * 64
        a, b, c = 0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride
        tags.insert(CacheLine(a, VALID))
        tags.insert(CacheLine(b, VALID))
        tags.peek(a)  # must NOT make b the LRU victim
        victim = tags.insert(CacheLine(c, VALID))
        assert victim.addr == a

    def test_clear_returns_all_lines(self):
        tags = self.make()
        for i in range(5):
            tags.insert(CacheLine(0x1000 + i * 64, VALID))
        dropped = tags.clear()
        assert len(dropped) == 5
        assert tags.resident_count() == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            TagArray(1000, 3)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, line_indices):
        tags = TagArray(2048, 2)  # 16 sets x 2 ways = 32 lines
        for idx in line_indices:
            tags.insert(CacheLine(idx * 64, VALID))
        assert tags.resident_count() <= 32
        per_set = {}
        for line in tags.lines():
            per_set.setdefault((line.addr // 64) % 16, []).append(line)
        assert all(len(lines) <= 2 for lines in per_set.values())


# ----------------------------------------------------------------------
# AMO semantics
# ----------------------------------------------------------------------
class TestApplyAmo:
    @pytest.mark.parametrize(
        "op,old,operand,new",
        [
            ("add", 5, 3, 8),
            ("sub", 5, 3, 2),
            ("or", 0b1010, 0b0110, 0b1110),
            ("and", 0b1010, 0b0110, 0b0010),
            ("xor", 0b1010, 0b0110, 0b1100),
            ("xchg", 5, 9, 9),
            ("min", 5, 3, 3),
            ("min", 3, 5, 3),
            ("max", 3, 5, 5),
        ],
    )
    def test_ops(self, op, old, operand, new):
        got_new, got_old = apply_amo(op, old, operand)
        assert got_new == new
        assert got_old == old

    def test_cas_success(self):
        new, old = apply_amo("cas", 7, (7, 99))
        assert (new, old) == (99, 7)

    def test_cas_failure_leaves_value(self):
        new, old = apply_amo("cas", 8, (7, 99))
        assert (new, old) == (8, 8)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            apply_amo("nope", 1, 2)

    @given(st.sampled_from([op for op in AMO_OPS if op != "cas"]),
           st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_returned_old_is_always_pre_value(self, op, old, operand):
        _, returned = apply_amo(op, old, operand)
        assert returned == old

    @given(st.integers(-100, 100), st.integers(-100, 100), st.integers(-100, 100))
    def test_cas_semantics(self, old, expected, desired):
        new, returned = apply_amo("cas", old, (expected, desired))
        assert returned == old
        assert new == (desired if old == expected else old)
