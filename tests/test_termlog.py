"""Tests for the shared stderr telemetry helper (repro.harness.termlog)."""

import pytest

from repro.harness import termlog


@pytest.fixture(autouse=True)
def clean_state(monkeypatch):
    monkeypatch.setattr(termlog, "_status_active", False)
    yield


def test_verbosity_default_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_VERBOSE", raising=False)
    assert termlog.verbosity() == 1
    monkeypatch.setenv("REPRO_VERBOSE", "2")
    assert termlog.verbosity() == 2
    monkeypatch.setenv("REPRO_VERBOSE", "junk")
    assert termlog.verbosity() == 1


def test_log_respects_verbosity(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_VERBOSE", "0")
    termlog.log("hidden")
    assert capsys.readouterr().err == ""
    monkeypatch.setenv("REPRO_VERBOSE", "1")
    termlog.log("shown")
    termlog.log("debug-only", level=2)
    assert capsys.readouterr().err == "shown\n"


def test_status_line_is_terminated_before_log(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_VERBOSE", "1")
    termlog.status("[1/2] working")
    termlog.log("a full line")
    err = capsys.readouterr().err
    assert err == "\r[1/2] working\na full line\n"


def test_end_status_writes_single_newline(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_VERBOSE", "1")
    termlog.status("[2/2] done")
    termlog.end_status()
    termlog.end_status()  # idempotent
    assert capsys.readouterr().err == "\r[2/2] done\n"


def test_status_silenced_at_verbosity_zero(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_VERBOSE", "0")
    termlog.status("nope")
    assert capsys.readouterr().err == ""


def test_progress_enabled_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_PROGRESS", raising=False)
    monkeypatch.delenv("REPRO_VERBOSE", raising=False)
    assert termlog.progress_enabled(None) is False
    assert termlog.progress_enabled(True) is True
    monkeypatch.setenv("REPRO_PROGRESS", "1")
    assert termlog.progress_enabled(None) is True
    assert termlog.progress_enabled(False) is False
    monkeypatch.setenv("REPRO_VERBOSE", "0")
    assert termlog.progress_enabled(True) is False


def test_alert_prints_even_when_silenced(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_VERBOSE", "0")
    termlog.alert("deadlock: kernel-deadlock/bt-mesi/tiny")
    assert capsys.readouterr().err == "!! deadlock: kernel-deadlock/bt-mesi/tiny\n"


def test_alert_terminates_an_active_status_line(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_VERBOSE", "1")
    termlog.status("[1/3] sweeping")
    termlog.alert("violation: unflushed-read")
    termlog.log("next line starts clean")
    err = capsys.readouterr().err
    assert err == "\r[1/3] sweeping\n!! violation: unflushed-read\nnext line starts clean\n"
