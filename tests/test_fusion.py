"""Differential determinism proof for the event-fusion fast path.

Every test runs the same experiment twice — once with the fast path
enabled and once forced through the heap (``REPRO_NO_FUSION`` or
``fusion_enabled=False``) — and asserts that every observable output is
identical: final cycle count, the full flattened statistics tree, and
(for traced runs) the exported Perfetto JSON byte-for-byte.
"""

import pytest

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.machine import Machine


def run_once(app_name, kind, params, *, fusion, serial=False, tracer=None,
             seed=42):
    app = make_app(app_name, **params)
    machine = Machine(make_config(kind, "tiny", seed=seed), tracer=tracer)
    machine.sim.fusion_enabled = fusion
    app.setup(machine)
    kwargs = {"serial_elision": True} if serial else {}
    rt = WorkStealingRuntime(machine, **kwargs)
    cycles = rt.run(app.make_root(serial=False))
    app.check()
    return {
        "cycles": cycles,
        "flatten": machine.stats.flatten(),
        "traffic": tuple(sorted(machine.traffic.snapshot().items())),
        "fusion": machine.sim.fusion_stats(),
        "steals": rt.stats.get("steals"),
    }


#: (app, config kind, params, serial) — spans MESI hardware coherence,
#: software-centric HCC, DTS (ULI steal delivery), and the throughput
#: kernels whose event streams fuse ~100%.
DIFFERENTIAL_PAIRS = [
    ("cilk5-cs", "bt-mesi", dict(n=96, grain=32), False),
    ("ligra-bfs", "bt-hcc-gwt", dict(scale=5, grain=8), False),
    ("cilk5-cs", "bt-hcc-dts-dnv", dict(n=96, grain=16), False),
    ("kernel-spin", "serial-io", dict(iters=4000, grain=512), True),
    ("kernel-stream", "serial-io", dict(n=64, passes=4, grain=32), True),
]


@pytest.mark.parametrize(
    "app_name,kind,params,serial", DIFFERENTIAL_PAIRS,
    ids=[f"{p[0]}/{p[1]}" for p in DIFFERENTIAL_PAIRS],
)
def test_fused_and_unfused_runs_are_identical(app_name, kind, params, serial):
    fused = run_once(app_name, kind, params, fusion=True, serial=serial)
    unfused = run_once(app_name, kind, params, fusion=False, serial=serial)
    assert fused["cycles"] == unfused["cycles"]
    assert fused["flatten"] == unfused["flatten"]
    assert fused["traffic"] == unfused["traffic"]
    # The slow path never fuses; the fast path must actually engage
    # (else the test proves nothing).
    assert unfused["fusion"]["events_fused"] == 0
    assert fused["fusion"]["events_fused"] > 0
    # Both paths execute the same set of continuations in total.
    assert (
        fused["fusion"]["events_total"] == unfused["fusion"]["events_total"]
    )


def test_dts_run_exercises_uli_steals():
    """The DTS differential pair must actually deliver ULI steals, so the
    fused/unfused identity above covers handler entry at op boundaries."""
    result = run_once(
        "cilk5-cs", "bt-hcc-dts-dnv", dict(n=96, grain=16), fusion=True
    )
    assert result["steals"] > 0
    flat = result["flatten"]
    uli_keys = [k for k in flat if "uli" in k and flat[k]]
    assert uli_keys, "DTS run recorded no ULI activity"


def test_no_fusion_env_var_matches_fused_run(monkeypatch):
    """The documented REPRO_NO_FUSION knob goes through the same proof."""
    from repro.harness import run_experiment

    fused = run_experiment("cilk5-cs", "bt-hcc-dts-gwb", "tiny",
                           use_cache=False)
    monkeypatch.setenv("REPRO_NO_FUSION", "1")
    unfused = run_experiment("cilk5-cs", "bt-hcc-dts-gwb", "tiny",
                             use_cache=False)
    assert fused.cycles == unfused.cycles
    assert fused.instructions == unfused.instructions
    assert fused.total_traffic == unfused.total_traffic


@pytest.mark.parametrize("app_name,kind,params,serial", [
    ("cilk5-cs", "bt-hcc-dts-dnv", dict(n=96, grain=16), False),
    ("kernel-stream", "serial-io", dict(n=64, passes=4, grain=32), True),
], ids=["cilk5-cs/dts", "kernel-stream/serial"])
def test_traced_runs_byte_identical_across_modes(tmp_path, app_name, kind,
                                                 params, serial):
    """Perfetto export is byte-identical whether or not fusion ran —
    including the interval sampler's daemon events."""
    from repro.trace import Tracer, export_chrome_trace
    from repro.trace.sampler import IntervalSampler

    texts = []
    for fusion in (True, False):
        app = make_app(app_name, **params)
        tracer = Tracer()
        machine = Machine(make_config(kind, "tiny", seed=42), tracer=tracer)
        machine.sim.fusion_enabled = fusion
        app.setup(machine)
        kwargs = {"serial_elision": True} if serial else {}
        rt = WorkStealingRuntime(machine, **kwargs)
        sampler = IntervalSampler(
            machine.sim, machine.stats.snapshot, 500, tracer=tracer
        )
        sampler.start()
        rt.run(app.make_root(serial=False))
        sampler.finalize()
        tracer.finish(machine.sim.now)
        app.check()
        texts.append(export_chrome_trace(tracer))
    assert texts[0] == texts[1]
    assert texts[0].encode() == texts[1].encode()


def test_perf_harness_smoke():
    """repro.harness.perf runs an entry in both modes and verifies stats."""
    from repro.harness.perf import PerfEntry, run_entry

    entry = PerfEntry("kernel-spin", "serial-io", "tiny", serial=True)
    row = run_entry(entry, repeats=1)
    assert row["stats_identical"] is True
    assert row["events_fused"] > 0
    assert row["fused_ratio"] > 0.9
    assert row["wall_fused_s"] > 0 and row["wall_unfused_s"] > 0
