"""Tests for the Ligra edgeMap/vertexMap framework layer."""

import pytest

from repro.apps import make_app
from repro.apps.ligra.edgemap import DenseFrontier, vertex_map
from repro.core import Task, WorkStealingRuntime

from helpers import run_thread, tiny_machine


def drive(machine, core_id, gen):
    def wrapper():
        yield from gen

    run_thread(machine, core_id, wrapper())


class TestDenseFrontier:
    def test_add_then_test_and_clear(self):
        machine = tiny_machine()
        frontier = DenseFrontier(machine, 8, "f")
        ctx = machine.make_contexts()[1]
        results = []

        def body():
            yield from frontier.add(ctx, 3)
            results.append((yield from frontier.test_and_clear(ctx, 3)))
            results.append((yield from frontier.test_and_clear(ctx, 3)))
            results.append((yield from frontier.test_and_clear(ctx, 5)))

        drive(machine, 1, body())
        assert results == [True, False, False]

    def test_size_counter(self):
        machine = tiny_machine()
        frontier = DenseFrontier(machine, 8, "f")
        ctx = machine.make_contexts()[1]
        sizes = []

        def body():
            yield from frontier.reset_size(ctx)
            yield from frontier.add_size(ctx, 3)
            yield from frontier.add_size(ctx, 0)  # no-op
            yield from frontier.add_size(ctx, 2)
            sizes.append((yield from frontier.read_size(ctx)))
            yield from frontier.reset_size(ctx)
            sizes.append((yield from frontier.read_size(ctx)))

        drive(machine, 1, body())
        assert sizes == [5, 0]


class TestVertexMap:
    def test_applies_to_every_vertex(self):
        machine = tiny_machine("bt-hcc-gwb")
        rt = WorkStealingRuntime(machine)
        out = machine.address_space.alloc_words(10, "out")

        class Root(Task):
            def execute(self, rt, ctx):
                def functor(ctx, v):
                    yield from ctx.store(out + v * 8, v * v)

                yield from vertex_map(rt, ctx, 10, functor, grain=3)

        rt.run(Root())
        assert machine.host_read_array(out, 10) == [v * v for v in range(10)]


@pytest.mark.parametrize(
    "kind", ("bt-mesi", "bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb", "bt-hcc-dts-gwb")
)
def test_edgemap_bfs_on_every_config(kind):
    app = make_app("ligra-bfs-em", scale=5, grain=8)
    machine = tiny_machine(kind)
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    rt.run(app.make_root())
    app.check()


def test_edgemap_bfs_matches_inline_bfs_reachability():
    """The framework BFS and the hand-inlined BFS agree on reachability."""
    em = make_app("ligra-bfs-em", scale=5, grain=8)
    machine_a = tiny_machine("bt-hcc-gwb")
    em.setup(machine_a)
    WorkStealingRuntime(machine_a).run(em.make_root())
    em.check()

    inline = make_app("ligra-bfs", scale=5, grain=8)
    machine_b = tiny_machine("bt-hcc-gwb")
    inline.setup(machine_b)
    WorkStealingRuntime(machine_b).run(inline.make_root())
    inline.check()

    reach_em = [p != -1 for p in em.parent.host_read()]
    reach_inline = [p != -1 for p in inline.parent.host_read()]
    assert reach_em == reach_inline
