"""Core model tests: op timing, big-core parameters, cycle accounting."""

from repro.cores import ops

from helpers import run_thread, tiny_machine


def make():
    machine = tiny_machine()
    addr = machine.address_space.alloc_words(8, "x")
    machine.host_write_word(addr, 9)
    return machine, addr


class TestTinyCoreExecution:
    def test_work_costs_its_cycles(self):
        machine, _ = make()

        def thread():
            yield ops.Work(10)

        cycles = run_thread(machine, 1, thread())
        assert cycles == 10

    def test_load_returns_value(self):
        machine, addr = make()
        seen = []

        def thread():
            value = yield ops.Load(addr)
            seen.append(value)

        run_thread(machine, 1, thread())
        assert seen == [9]

    def test_instruction_counting(self):
        machine, addr = make()

        def thread():
            yield ops.Work(5)
            yield ops.Load(addr)
            yield ops.Store(addr, 1)
            yield ops.Amo("add", addr, 1)
            yield ops.Idle(3)  # idle is not an instruction

        run_thread(machine, 1, thread())
        assert machine.cores[1].stats.get("instructions") == 8

    def test_cycle_breakdown_categories(self):
        machine, addr = make()

        def thread():
            yield ops.Work(5)
            yield ops.Load(addr)
            yield ops.Store(addr, 2)
            yield ops.Idle(7)

        run_thread(machine, 1, thread())
        breakdown = machine.cores[1].cycle_breakdown()
        assert breakdown["compute"] == 5
        assert breakdown["idle"] == 7
        assert breakdown["load"] >= 1
        assert breakdown["store"] >= 1
        assert sum(breakdown.values()) == machine.sim.now

    def test_busy_excludes_idle(self):
        machine, _ = make()

        def thread():
            yield ops.Work(5)
            yield ops.Idle(100)

        run_thread(machine, 1, thread())
        assert machine.cores[1].busy_cycles() == 5

    def test_core_halts_after_thread(self):
        machine, _ = make()

        def thread():
            yield ops.Work(1)

        run_thread(machine, 1, thread())
        assert machine.cores[1].halted


class TestBigCoreModel:
    def test_issue_width_divides_compute(self):
        machine, _ = make()

        def thread():
            yield ops.Work(40)

        cycles = run_thread(machine, 0, thread())  # core 0 is big (width 4)
        assert cycles == 10

    def test_mlp_reduces_exposed_miss_latency(self):
        big_machine, big_addr = make()

        def thread(addr):
            yield ops.Load(addr)

        big_cycles = run_thread(big_machine, 0, thread(big_addr))
        tiny_machine_, tiny_addr = make()
        tiny_cycles = run_thread(tiny_machine_, 1, thread(tiny_addr))
        assert big_cycles < tiny_cycles

    def test_hits_not_scaled_below_one_cycle(self):
        machine, addr = make()

        def thread():
            yield ops.Load(addr)  # miss
            yield ops.Load(addr)  # hit

        run_thread(machine, 0, thread())
        # a hit costs exactly 1 cycle even on the big core
        assert machine.cores[0].stats.get("cycles_load") >= 2


class TestBypassLoad:
    def test_bypass_load_skips_l1(self):
        machine, addr = make()
        seen = []

        def thread():
            value = yield ops.Load(addr, bypass=True)
            seen.append(value)

        run_thread(machine, 1, thread())
        assert seen == [9]
        assert machine.l1s[1].resident(addr) is None
        assert machine.l1s[1].stats.get("loads") == 0
