"""Tests for the persistent result store and its runner integration."""

import json

import pytest

from repro.harness import (
    ResultStore,
    clear_cache,
    run_experiment,
    set_result_store,
    simulation_count,
    table3,
    workspan,
)
from repro.harness.resultstore import hash_key


@pytest.fixture
def store(tmp_path):
    store = set_result_store(tmp_path / "results")
    clear_cache()
    yield store
    set_result_store(None)
    clear_cache()


class TestResultStore:
    def test_hash_key_is_order_independent(self):
        a = {"x": 1, "y": {"b": 2, "a": 3}}
        b = {"y": {"a": 3, "b": 2}, "x": 1}
        assert hash_key(a) == hash_key(b)
        assert hash_key(a) != hash_key({"x": 1, "y": {"b": 2, "a": 4}})

    def test_store_and_load_payload(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = {"app": "x", "scale": "tiny"}
        assert store.load(key) is None
        assert store.misses == 1
        store.store(key, {"key": key, "result": {"cycles": 7}})
        assert store.contains(key)
        assert store.load(key)["result"]["cycles"] == 7
        assert store.hits == 1
        assert len(store) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        key = {"app": "x"}
        path = store.store(key, {"key": key, "result": {}})
        path.write_text("{ truncated", encoding="utf-8")
        assert store.load(key) is None
        assert store.misses == 1

    def test_hash_key_canonicalizes_dataclasses(self):
        """Regression: non-JSON key components used to fall back to
        ``default=repr``, so two equal dataclass instances hashed to the
        same key only by luck of their repr — and anything whose repr
        embeds an object address silently missed on every probe."""
        import dataclasses

        @dataclasses.dataclass
        class Override:
            size_bytes: int
            assoc: int

        a = hash_key({"cfg": Override(8192, 2)})
        b = hash_key({"cfg": Override(8192, 2)})
        assert a == b
        assert a != hash_key({"cfg": Override(8192, 4)})
        # The dataclass hashes like its plain field dict.
        assert a == hash_key({"cfg": {"size_bytes": 8192, "assoc": 2}})

    def test_hash_key_rejects_address_reprs(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="address-based repr"):
            hash_key({"cfg": Opaque()})


class TestRunnerIntegration:
    def test_warm_store_skips_simulation(self, store):
        cold = run_experiment("cilk5-mt", "bt-mesi", "tiny")
        assert store.misses == 1 and store.hits == 0
        sims = simulation_count()
        clear_cache()  # drop the in-process memo; only the disk copy remains
        warm = run_experiment("cilk5-mt", "bt-mesi", "tiny")
        assert simulation_count() == sims
        assert store.hits == 1
        assert warm == cold  # field-by-field dataclass equality

    def test_store_distinguishes_overrides(self, store):
        run_experiment("cilk5-mt", "bt-mesi", "tiny")
        run_experiment("cilk5-mt", "bt-mesi", "tiny", app_overrides={"grain": 2})
        run_experiment(
            "cilk5-mt", "bt-mesi", "tiny", config_overrides={"seed": 1234}
        )
        assert len(store) == 3

    def test_dict_valued_config_override_round_trips(self, store):
        # Dict-valued overrides (the memo-key regression case) are legal
        # all the way down to make_config and the store key.
        res = run_experiment(
            "cilk5-mt",
            "bt-mesi",
            "tiny",
            config_overrides={"tiny_l1": {"size_bytes": 8192, "assoc": 2}},
        )
        sims = simulation_count()
        clear_cache()
        warm = run_experiment(
            "cilk5-mt",
            "bt-mesi",
            "tiny",
            # same override, different key insertion order
            config_overrides={"tiny_l1": {"assoc": 2, "size_bytes": 8192}},
        )
        assert simulation_count() == sims
        assert warm == res

    def test_store_distinguishes_robustness_settings(self, store):
        # Fault plans, the sanitizer, and the watchdog all shape what a
        # run measures; each combination must get its own store slot.
        run_experiment("cilk5-mt", "bt-mesi", "tiny")
        run_experiment("cilk5-mt", "bt-mesi", "tiny", faults="timing")
        run_experiment("cilk5-mt", "bt-mesi", "tiny", faults="timing,seed=7")
        run_experiment("cilk5-mt", "bt-mesi", "tiny", sanitize=True)
        run_experiment("cilk5-mt", "bt-mesi", "tiny", watchdog=1_000_000)
        assert len(store) == 5

    def test_faulted_run_does_not_poison_clean_cache(self, store):
        clean = run_experiment("cilk5-mt", "bt-mesi", "tiny")
        faulted = run_experiment("cilk5-mt", "bt-mesi", "tiny", faults="timing")
        assert faulted.extras["faults_fired"] > 0
        clear_cache()
        warm = run_experiment("cilk5-mt", "bt-mesi", "tiny")
        assert warm == clean
        assert "faults_fired" not in warm.extras

    def test_equivalent_fault_plan_forms_share_a_slot(self, store):
        from repro.faults import FaultPlan

        a = run_experiment("cilk5-mt", "bt-mesi", "tiny", faults="timing")
        sims = simulation_count()
        clear_cache()
        b = run_experiment(
            "cilk5-mt", "bt-mesi", "tiny", faults=FaultPlan.preset("timing")
        )
        assert simulation_count() == sims  # warm hit: same canonical key
        assert b == a

    def test_robustness_block_lands_in_payload_key(self, store):
        run_experiment("cilk5-mt", "bt-mesi", "tiny", faults="timing", sanitize=True)
        files = list(store.root.glob("*/*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text(encoding="utf-8"))
        robustness = payload["key"]["experiment"]["robustness"]
        assert robustness["sanitize"] is True
        assert robustness["faults"]["noc_jitter_prob"] > 0

    def test_use_cache_false_bypasses_store(self, store):
        run_experiment("cilk5-mt", "bt-mesi", "tiny", use_cache=False)
        assert len(store) == 0
        assert store.hits == 0 and store.misses == 0

    def test_workspan_persisted(self, store):
        report = workspan("cilk5-mt", "tiny")
        clear_cache()
        again = workspan("cilk5-mt", "tiny")
        assert again == report
        assert store.hits == 1

    def test_payload_is_json_with_readable_key(self, store):
        run_experiment("cilk5-mt", "bt-hcc-gwb", "tiny")
        files = list(store.root.glob("*/*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text(encoding="utf-8"))
        assert payload["key"]["experiment"]["app"] == "cilk5-mt"
        assert payload["key"]["experiment"]["kind"] == "bt-hcc-gwb"
        assert payload["result"]["cycles"] > 0

    def test_warm_table3_does_zero_simulations(self, store):
        # The acceptance scenario: a table regenerated against a warm
        # results dir performs zero simulations and renders identically.
        apps = ("cilk5-mt",)
        rows_cold = table3("tiny", apps=apps)
        sims = simulation_count()
        clear_cache()
        store.reset_counters()
        rows_warm = table3("tiny", apps=apps)
        assert simulation_count() == sims
        assert store.misses == 0
        assert store.hits > 0
        assert rows_warm == rows_cold
