"""Tests for the shared application infrastructure (SimArray, registry,
SimGraph accessors, kernel helper generators)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import app_names, make_app
from repro.apps.common import SimArray
from repro.apps.ligra.graph import SimGraph, rmat_graph
from repro.cores import ops

from helpers import run_thread, tiny_machine


def drive(machine, core_id, gen):
    result = {}

    def wrapper():
        result["value"] = yield from gen
        if False:
            yield

    run_thread(machine, core_id, wrapper())
    return result.get("value")


class TestSimArray:
    def test_host_roundtrip(self, machine):
        arr = SimArray(machine, 5, "a")
        arr.host_init([1, 2, 3, 4, 5])
        assert arr.host_read() == [1, 2, 3, 4, 5]

    def test_host_init_wrong_length_rejected(self, machine):
        arr = SimArray(machine, 3, "a")
        with pytest.raises(ValueError):
            arr.host_init([1, 2])

    def test_zero_length_rejected(self, machine):
        with pytest.raises(ValueError):
            SimArray(machine, 0, "a")

    def test_simulated_load_store(self, machine):
        arr = SimArray(machine, 4, "a")
        arr.host_fill(7)
        ctxs = machine.make_contexts()

        def body(ctx):
            value = yield from arr.load(ctx, 2)
            yield from arr.store(ctx, 3, value + 1)
            return value

        assert drive(machine, 1, body(ctxs[1])) == 7
        assert machine.host_read_word(arr.addr(3)) == 8

    def test_amo_and_cas(self, machine):
        arr = SimArray(machine, 2, "a")
        arr.host_init([10, 0])
        ctxs = machine.make_contexts()

        def body(ctx):
            old = yield from arr.amo(ctx, "add", 0, 5)
            cas_old = yield from arr.cas(ctx, 1, 0, 99)
            return old, cas_old

        assert drive(machine, 1, body(ctxs[1])) == (10, 0)
        assert arr.host_read() == [15, 99]

    def test_arrays_are_disjoint(self, machine):
        a = SimArray(machine, 8, "a")
        b = SimArray(machine, 8, "b")
        spans = sorted([(a.base, a.addr(8)), (b.base, b.addr(8))])
        assert spans[0][1] <= spans[1][0]


class TestRegistry:
    def test_all_thirteen_apps_registered(self):
        from repro.apps import PAPER_APPS

        assert set(PAPER_APPS) <= set(app_names())
        assert len(PAPER_APPS) == 13

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            make_app("nope")

    def test_factory_kwargs_forwarded(self):
        app = make_app("cilk5-cs", n=64, grain=8, seed=3)
        assert app.n == 64 and app.grain == 8 and app.seed == 3

    def test_suffix_resolution(self):
        from repro.apps import resolve_app

        assert resolve_app("cs") == "cilk5-cs"
        assert resolve_app("cilksort") == "cilk5-cs"
        assert resolve_app("ligra-cc") == "ligra-cc"

    def test_ambiguous_suffix_lists_candidates(self, monkeypatch):
        """Regression: a suffix matching several apps used to fall through
        to the generic "unknown application" error, hiding the real
        problem (the user named real apps, just not uniquely)."""
        from repro.apps import common, resolve_app

        monkeypatch.setitem(common._REGISTRY, "other5-cs", lambda **kw: None)
        with pytest.raises(ValueError, match="ambiguous") as exc_info:
            resolve_app("cs")
        message = str(exc_info.value)
        assert "cilk5-cs" in message and "other5-cs" in message
        assert "unknown application" not in message

    def test_unknown_name_still_rejected(self):
        from repro.apps import resolve_app

        with pytest.raises(ValueError, match="unknown application"):
            resolve_app("definitely-not-an-app")


class TestSimGraph:
    def test_csr_accessors(self, machine):
        graph = rmat_graph(4, 4, seed=5, weighted=True)
        sim_graph = SimGraph(machine, graph, "g")
        ctxs = machine.make_contexts()

        def body(ctx):
            out = []
            for v in range(graph.n):
                start, end = yield from sim_graph.edge_range(ctx, v)
                nbrs = []
                for e in range(start, end):
                    target = yield from sim_graph.edge_target(ctx, e)
                    weight = yield from sim_graph.edge_weight(ctx, e)
                    assert weight >= 1
                    nbrs.append(target)
                out.append(nbrs)
            return out

        adjacency = drive(machine, 1, body(ctxs[1]))
        assert adjacency == graph.adj

    def test_unweighted_graph_weight_is_one(self, machine):
        graph = rmat_graph(3, 2, seed=5, weighted=False)
        sim_graph = SimGraph(machine, graph, "g")
        ctxs = machine.make_contexts()

        def body(ctx):
            weight = yield from sim_graph.edge_weight(ctx, 0)
            return weight

        assert drive(machine, 1, body(ctxs[1])) == 1


class TestCilksortHelpers:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=40), st.integers(0, 1000))
    def test_lower_bound_matches_bisect(self, values, key):
        import bisect

        values.sort()
        machine = tiny_machine()
        app = make_app("cilk5-cs", n=len(values), grain=4)
        app.setup(machine)
        app.data.host_init(values)
        ctxs = machine.make_contexts()

        def body(ctx):
            index = yield from app.lower_bound(ctx, app.data, 0, len(values), key)
            return index

        assert drive(machine, 1, body(ctxs[1])) == bisect.bisect_left(values, key)

    def test_serial_merge_merges(self):
        machine = tiny_machine()
        left, right = [1, 4, 9], [2, 3, 10]
        app = make_app("cilk5-cs", n=6, grain=4)
        app.setup(machine)
        app.data.host_init(left + right)
        ctxs = machine.make_contexts()

        def body(ctx):
            yield from app.serial_merge(ctx, app.data, app.temp, 0, 3, 3, 6, 0)

        drive(machine, 1, body(ctxs[1]))
        assert app.temp.host_read() == sorted(left + right)
