"""Determinism proofs for checkpoint/restore (repro.engine.checkpoint).

The central claim: a snapshot taken at an arbitrary cycle, restored into a
freshly built machine (same process or not), resumes to a final state
byte-identical to the uninterrupted run — cycle count, the full flattened
statistics tree, task/spawn counts, the memory digest over the app's own
allocations, and (for traced runs) the exported Perfetto JSON.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointDaemon,
    CheckpointError,
    ParkDaemon,
    ParkedRun,
    capture_init_state,
    load_snapshot,
    save_snapshot,
)
from repro.harness import clear_cache, set_result_store, simulation_count
from repro.machine import Machine

APP = "cilk5-cs"
PARAMS = dict(n=96, grain=16)
SEED = 42

#: The protocol matrix of ISSUE 5: hardware MESI, the three software-centric
#: HCC protocols, and DTS (ULI steal delivery) on the paper's best protocol.
KINDS = ["bt-mesi", "bt-hcc-dnv", "bt-hcc-gwt", "bt-hcc-gwb", "bt-hcc-dts-gwb"]


@pytest.fixture(autouse=True)
def isolated_harness():
    set_result_store(None)
    clear_cache()
    yield
    set_result_store(None)
    clear_cache()


def build(kind, *, fusion=True, tracer=None):
    app = make_app(APP, **PARAMS)
    machine = Machine(make_config(kind, "tiny", seed=SEED), tracer=tracer)
    machine.sim.fusion_enabled = fusion
    machine.enable_checkpointing()
    app.setup(machine)
    rt = WorkStealingRuntime(machine)
    return app, machine, rt


def end_state(machine, rt, cycles):
    return {
        "cycles": cycles,
        "flatten": machine.stats.flatten(),
        "digest": machine.memory_digest(machine.address_space.regions()),
        "tasks": rt.stats.get("tasks_executed"),
        "spawns": rt.stats.get("spawns"),
    }


def reference(kind, *, fusion=True):
    app, machine, rt = build(kind, fusion=fusion)
    cycles = rt.run(app.make_root(serial=False))
    app.check()
    return end_state(machine, rt, cycles)


def run_with_daemon(kind, interval, *, fusion=True):
    snaps = []
    app, machine, rt = build(kind, fusion=fusion)
    daemon = CheckpointDaemon(
        machine, interval, lambda m: snaps.append(m.snapshot())
    )
    daemon.arm()
    cycles = rt.run(app.make_root(serial=False))
    daemon.cancel()
    app.check()
    return end_state(machine, rt, cycles), snaps


def restore_and_finish(kind, snap, *, fusion=True):
    app, machine, rt = build(kind, fusion=fusion)
    machine.restore(snap, app.make_root(serial=False))
    cycles = rt.resume_run()
    app.check()
    return end_state(machine, rt, cycles)


class TestRoundTrip:
    @pytest.mark.parametrize("fusion", (True, False), ids=("fused", "unfused"))
    @pytest.mark.parametrize("kind", KINDS)
    def test_every_snapshot_resumes_identically(self, kind, fusion):
        ref = reference(kind, fusion=fusion)
        daemon_ref, snaps = run_with_daemon(kind, 2000, fusion=fusion)
        # Taking snapshots never perturbs the run itself.
        assert daemon_ref == ref
        assert snaps, "run too short: no snapshots taken"
        for snap in snaps:
            resumed = restore_and_finish(kind, snap, fusion=fusion)
            assert resumed == ref, f"divergence from snapshot@{snap['cycle']}"

    def test_snapshot_survives_pickle_round_trip(self, tmp_path):
        _, snaps = run_with_daemon("bt-mesi", 2000)
        path = str(tmp_path / "run.ckpt")
        save_snapshot(path, snaps[0])
        resumed = restore_and_finish("bt-mesi", load_snapshot(path))
        assert resumed == reference("bt-mesi")

    def test_uli_steal_in_flight_snapshots(self):
        """DTS steals live on the wire as heap events (uli_req/uli_resp
        descriptors); snapshots taken mid-flight must restore them."""
        ref = reference("bt-hcc-dts-gwb")
        _, snaps = run_with_daemon("bt-hcc-dts-gwb", 250)
        in_flight = [
            s for s in snaps
            if any(e[2] in ("uli_req", "uli_resp") for e in s["sim"]["queue"])
        ]
        assert in_flight, "no snapshot caught a ULI message in flight"
        for snap in in_flight:
            resumed = restore_and_finish("bt-hcc-dts-gwb", snap)
            assert resumed == ref, f"divergence from snapshot@{snap['cycle']}"

    def test_fresh_process_restore_is_byte_identical(self, tmp_path):
        """ISSUE acceptance: restore in a process that shares nothing with
        the snapshotting one (hash randomization, object ids, ...)."""
        ref = reference("bt-hcc-dts-gwb")
        _, snaps = run_with_daemon("bt-hcc-dts-gwb", 2000)
        path = str(tmp_path / "mid.ckpt")
        save_snapshot(path, snaps[len(snaps) // 2])
        script = (
            "import json, sys\n"
            "from repro.apps import make_app\n"
            "from repro.config import make_config\n"
            "from repro.core import WorkStealingRuntime\n"
            "from repro.engine.checkpoint import load_snapshot\n"
            "from repro.machine import Machine\n"
            f"app = make_app({APP!r}, **{PARAMS!r})\n"
            f"machine = Machine(make_config('bt-hcc-dts-gwb', 'tiny', seed={SEED}))\n"
            "machine.enable_checkpointing()\n"
            "app.setup(machine)\n"
            "rt = WorkStealingRuntime(machine)\n"
            "machine.restore(load_snapshot(sys.argv[1]), app.make_root(serial=False))\n"
            "cycles = rt.resume_run()\n"
            "app.check()\n"
            "print(json.dumps({'cycles': cycles,\n"
            "    'digest': machine.memory_digest(machine.address_space.regions()),\n"
            "    'tasks': rt.stats.get('tasks_executed'),\n"
            "    'spawns': rt.stats.get('spawns'),\n"
            "    'stats': sorted(machine.stats.flatten().items())}))\n"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", script, path],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        remote = json.loads(out.stdout)
        assert remote["cycles"] == ref["cycles"]
        assert remote["digest"] == ref["digest"]
        assert remote["tasks"] == ref["tasks"]
        assert remote["spawns"] == ref["spawns"]
        assert remote["stats"] == [list(kv) for kv in sorted(ref["flatten"].items())]

    def test_traced_resume_exports_identical_perfetto(self):
        """The tracer's event log is part of the snapshot: a resumed traced
        run exports the same Perfetto JSON, byte for byte — including the
        checkpoint instant markers."""
        from repro.trace import Tracer, export_chrome_trace

        def traced_run(interval, resume_snap=None):
            snaps = []
            tracer = Tracer()
            app, machine, rt = build("bt-hcc-dts-gwb", tracer=tracer)
            daemon = CheckpointDaemon(
                machine, interval, lambda m: snaps.append(m.snapshot())
            )
            if resume_snap is not None:
                machine.restore(resume_snap, app.make_root(serial=False))
                daemon.arm()
                rt.resume_run()
            else:
                daemon.arm()
                rt.run(app.make_root(serial=False))
            daemon.cancel()
            app.check()
            return export_chrome_trace(tracer), snaps

        ref_text, snaps = traced_run(2000)
        assert snaps
        for snap in snaps:
            resumed_text, _ = traced_run(2000, resume_snap=snap)
            assert resumed_text.encode() == ref_text.encode(), (
                f"trace divergence from snapshot@{snap['cycle']}"
            )


class TestHarnessIntegration:
    def test_run_experiment_resume_matches_cold(self, tmp_path):
        from repro.harness import run_experiment

        path = str(tmp_path / "run.ckpt")
        cold = run_experiment(APP, "bt-hcc-dts-gwb", "tiny", use_cache=False)
        first = run_experiment(
            APP, "bt-hcc-dts-gwb", "tiny", use_cache=False,
            checkpoint={"path": path, "interval": 2000, "keep": True},
        )
        assert os.path.exists(path)
        assert first.extras["ckpt_snapshots"] >= 1
        resumed = run_experiment(
            APP, "bt-hcc-dts-gwb", "tiny", use_cache=False,
            checkpoint={"path": path, "interval": 2000, "resume": True},
        )
        assert "ckpt_resumed_from" in resumed.extras
        assert not os.path.exists(path)  # consumed on success
        for result in (first, resumed):
            a = dataclasses.asdict(cold)
            b = dataclasses.asdict(result)
            a.pop("extras"), b.pop("extras")
            assert a == b

    def test_warm_start_shares_init_across_configs(self, tmp_path):
        """The init signature deliberately excludes the config kind: one
        post-setup image fans out to every coherence protocol variant."""
        from repro.harness import run_experiment

        cold = run_experiment(APP, "bt-hcc-gwt", "tiny", use_cache=False)
        spec = {"init_dir": str(tmp_path / "init")}
        first = run_experiment(
            APP, "bt-mesi", "tiny", use_cache=False, checkpoint=spec
        )
        assert "ckpt_warm_start" not in first.extras  # it wrote the image
        warm = run_experiment(
            APP, "bt-hcc-gwt", "tiny", use_cache=False, checkpoint=spec
        )
        assert warm.extras.get("ckpt_warm_start") == 1.0
        a, b = dataclasses.asdict(cold), dataclasses.asdict(warm)
        a.pop("extras"), b.pop("extras")
        assert a == b

    def test_checkpointing_absent_from_cache_and_store_keys(self, tmp_path):
        """Checkpointing never perturbs outcomes, so a checkpointed run
        must share its memo/store slot with a plain one."""
        from repro.harness import run_experiment

        set_result_store(tmp_path / "results")
        run_experiment(APP, "bt-mesi", "tiny")
        sims = simulation_count()
        clear_cache()  # drop the memo; only the disk copy remains
        hit = run_experiment(
            APP, "bt-mesi", "tiny",
            checkpoint={"path": str(tmp_path / "never.ckpt"), "interval": 2000},
        )
        assert simulation_count() == sims  # store hit, no simulation
        assert hit.cycles > 0

    def test_grid_resume_picks_up_interrupted_point(self, tmp_path):
        """A killed sweep's leftover snapshot is found by the rerun: the
        point resumes mid-run instead of starting over."""
        from repro.harness import run_experiment
        from repro.harness.grid import (
            GridPoint,
            _point_checkpoint_spec,
            run_grid,
        )

        point = GridPoint(APP, "bt-hcc-dts-gwb", "tiny")
        cold = run_experiment(APP, "bt-hcc-dts-gwb", "tiny", use_cache=False)
        ckpt_dir = str(tmp_path / "ckpts")
        spec = _point_checkpoint_spec(
            point, ckpt_dir, 2000, resume=False, warm_init=False
        )
        # Simulate the "killed mid-sweep" state: a run that left its
        # snapshot behind (keep=True stands in for the kill).
        clear_cache()
        run_experiment(
            **dict(point.run_kwargs(), use_cache=False,
                   checkpoint=dict(spec, keep=True)),
        )
        assert os.path.exists(spec["path"])
        clear_cache()
        (resumed,) = run_grid(
            [point], jobs=1, checkpoint_dir=ckpt_dir,
            checkpoint_interval=2000, on_error="resume",
        )
        assert "ckpt_resumed_from" in resumed.extras
        a, b = dataclasses.asdict(cold), dataclasses.asdict(resumed)
        a.pop("extras"), b.pop("extras")
        assert a == b

    def test_grid_warm_init_fan_out(self, tmp_path):
        """ISSUE acceptance (scaled down): warm_init precomputes each app's
        init once and every configuration variant warm-starts from it,
        with results identical to the cold sweep."""
        from repro.harness.grid import expand_grid, run_grid

        points = expand_grid(
            (APP, "cilk5-mt"), ("bt-mesi", "bt-hcc-gwt"), ("tiny",)
        )
        cold = run_grid(points, jobs=1)
        clear_cache()
        warm = run_grid(
            points, jobs=1,
            checkpoint_dir=str(tmp_path / "ckpts"), warm_init=True,
        )
        init_dir = tmp_path / "ckpts" / "init"
        assert len(list(init_dir.glob("*.init"))) == 2  # one per app
        warm_started = [r for r in warm if "ckpt_warm_start" in r.extras]
        assert len(warm_started) == len(points)  # parent precomputed all
        for c, w in zip(cold, warm):
            a, b = dataclasses.asdict(c), dataclasses.asdict(w)
            a.pop("extras"), b.pop("extras")
            assert a == b


def park_run(kind, park_path, *, poll=2000, fusion=True):
    """Run until the ParkDaemon sees ``park_path``; return the snapshot
    it captured and the ParkedRun it raised."""
    captured = []
    app, machine, rt = build(kind, fusion=fusion)
    daemon = ParkDaemon(
        machine, poll, str(park_path), lambda m: captured.append(m.snapshot())
    )
    daemon.arm()
    with pytest.raises(ParkedRun) as excinfo:
        rt.run(app.make_root(serial=False))
    assert len(captured) == 1
    return captured[0], excinfo.value


class TestPreemption:
    """Satellite of ISSUE 9: park a run mid-flight, service other work,
    resume — the resumed run must be byte-identical to an uninterrupted
    one (same digest, stats, task/spawn counts)."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_park_service_resume_is_byte_identical(self, kind, tmp_path):
        ref = reference(kind)
        park_path = tmp_path / "park-request"
        park_path.write_text("")  # supervisor touched the park file
        snap, parked = park_run(kind, park_path)
        assert parked.cycle == snap["cycle"]
        assert parked.cycle < ref["cycles"], "parked after the run ended"
        # The slot now services a different job (the preempting one).
        other = reference("bt-mesi" if kind != "bt-mesi" else "bt-hcc-gwb")
        assert other["cycles"] > 0
        # Resume the parked run: end state identical to never parking.
        resumed = restore_and_finish(kind, snap)
        assert resumed == ref

    def test_park_mid_steal_in_flight(self, tmp_path):
        """A park can land while a DTS steal is on the wire; the snapshot
        carries the in-flight ULI descriptors and resumes identically."""
        ref = reference("bt-hcc-dts-gwb")
        park_path = tmp_path / "park-request"
        park_path.write_text("")
        # A fine poll makes the park land early, while steals are active.
        snap, _ = park_run("bt-hcc-dts-gwb", park_path, poll=250)
        resumed = restore_and_finish("bt-hcc-dts-gwb", snap)
        assert resumed == ref

    def test_double_park_resume_chain(self, tmp_path):
        """Parked, resumed, parked again, resumed again — state survives
        arbitrarily many preemption cycles."""
        kind = "bt-hcc-dts-gwb"
        ref = reference(kind)
        park_path = tmp_path / "park-request"
        park_path.write_text("")
        snap1, parked1 = park_run(kind, park_path, poll=2000)
        # Resume with the park request still standing: a finer poll lands
        # the second park strictly after the first, before the run ends.
        captured = []
        app, machine, rt = build(kind)
        daemon = ParkDaemon(
            machine, 1000, str(park_path), lambda m: captured.append(m.snapshot())
        )
        machine.restore(snap1, app.make_root(serial=False))
        daemon.arm()
        with pytest.raises(ParkedRun) as excinfo:
            rt.resume_run()
        assert excinfo.value.cycle > parked1.cycle
        resumed = restore_and_finish(kind, captured[0])
        assert resumed == ref

    def test_no_park_file_means_no_park(self, tmp_path):
        """An armed ParkDaemon with no park request perturbs nothing."""
        ref = reference("bt-mesi")
        app, machine, rt = build("bt-mesi")
        daemon = ParkDaemon(
            machine, 2000, str(tmp_path / "never-created"), lambda m: None
        )
        daemon.arm()
        cycles = rt.run(app.make_root(serial=False))
        daemon.cancel()
        app.check()
        assert end_state(machine, rt, cycles) == ref

    def test_run_experiment_park_and_resume(self, tmp_path):
        """Harness integration: run_experiment raises ParkedRun, leaves
        the snapshot behind, and a resume finishes with the cold result."""
        from repro.harness import run_experiment

        cold = run_experiment(APP, "bt-hcc-dts-gwb", "tiny", use_cache=False)
        snap_path = str(tmp_path / "job.ckpt")
        park_path = f"{snap_path}.park"
        with open(park_path, "w"):
            pass
        with pytest.raises(ParkedRun) as excinfo:
            run_experiment(
                APP, "bt-hcc-dts-gwb", "tiny", use_cache=False,
                checkpoint={
                    "path": snap_path, "park_path": park_path,
                    "park_poll": 2000,
                },
            )
        assert excinfo.value.path == snap_path
        assert os.path.exists(snap_path)
        os.unlink(park_path)  # supervisor consumes the request
        resumed = run_experiment(
            APP, "bt-hcc-dts-gwb", "tiny", use_cache=False,
            checkpoint={"path": snap_path, "resume": True},
        )
        assert resumed.extras["ckpt_resumed_from"] == excinfo.value.cycle
        a, b = dataclasses.asdict(cold), dataclasses.asdict(resumed)
        a.pop("extras"), b.pop("extras")
        assert a == b

    def test_parked_run_records_ledger_outcome(self, tmp_path):
        from repro.harness import run_experiment
        from repro.obs.ledger import read_ledger, set_ledger

        ledger_path = tmp_path / "ledger.jsonl"
        set_ledger(str(ledger_path))
        try:
            snap_path = str(tmp_path / "job.ckpt")
            park_path = f"{snap_path}.park"
            with open(park_path, "w"):
                pass
            with pytest.raises(ParkedRun):
                run_experiment(
                    APP, "bt-mesi", "tiny", use_cache=False,
                    checkpoint={"path": snap_path, "park_path": park_path},
                )
        finally:
            set_ledger(None)
        entries = read_ledger(ledger_path)
        assert [e["outcome"] for e in entries] == ["parked"]
        assert entries[0]["cycles"] > 0  # the park cycle

    def test_sampled_runs_are_not_parkable(self):
        from repro.harness import run_experiment
        from repro.sampling import SamplingError

        with pytest.raises(SamplingError, match="parked"):
            run_experiment(
                APP, "bt-mesi", "tiny", use_cache=False,
                sampling="2000:200:200",
                checkpoint={"path": "x.ckpt", "park_path": "x.park"},
            )

    def test_park_without_snapshot_path_rejected(self):
        from repro.harness import run_experiment

        with pytest.raises(CheckpointError, match="park"):
            run_experiment(
                APP, "bt-mesi", "tiny", use_cache=False,
                checkpoint={"park_path": "x.park"},
            )


class TestGuards:
    def test_coerce_forms(self):
        assert CheckpointConfig.coerce(None) is None
        cfg = CheckpointConfig(path="x.ckpt")
        assert CheckpointConfig.coerce(cfg) is cfg
        assert CheckpointConfig.coerce("x.ckpt").path == "x.ckpt"
        assert CheckpointConfig.coerce({"interval": 5}).interval == 5
        with pytest.raises(TypeError):
            CheckpointConfig.coerce(42)

    def test_load_rejects_non_checkpoints(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_snapshot(str(path))

    def test_load_rejects_future_format_versions(self, tmp_path):
        import gzip
        import pickle

        from repro.engine.checkpoint import MAGIC

        path = tmp_path / "future.ckpt"
        snap = {"magic": MAGIC, "version": 999, "kind": "run"}
        path.write_bytes(gzip.compress(pickle.dumps(snap)))
        with pytest.raises(CheckpointError, match="version 999"):
            load_snapshot(str(path))

    def test_enable_checkpointing_must_precede_run(self):
        app = make_app(APP, **PARAMS)
        machine = Machine(make_config("bt-mesi", "tiny", seed=SEED))
        app.setup(machine)
        rt = WorkStealingRuntime(machine)
        rt.run(app.make_root(serial=False))
        with pytest.raises(RuntimeError, match="before the run starts"):
            machine.enable_checkpointing()

    def test_snapshot_requires_enabled_log(self):
        machine = Machine(make_config("bt-mesi", "tiny", seed=SEED))
        with pytest.raises(CheckpointError):
            machine.snapshot()

    def test_restore_requires_fresh_machine(self):
        _, snaps = run_with_daemon("bt-mesi", 2000)
        app, machine, rt = build("bt-mesi")
        rt.run(app.make_root(serial=False))  # machine now used
        with pytest.raises(CheckpointError):
            machine.restore(snaps[0], app.make_root(serial=False))

    def test_daemon_rejects_bad_interval(self):
        _, machine, _ = build("bt-mesi")
        with pytest.raises(ValueError):
            CheckpointDaemon(machine, 0, lambda m: None)

    def test_init_capture_rejects_consumed_rng(self):
        """An init phase that consumed the machine RNG is not
        configuration-invariant; warm-starting from it would be unsound."""
        app = make_app(APP, **PARAMS)
        machine = Machine(make_config("bt-mesi", "tiny", seed=SEED))
        app.setup(machine)
        machine.rng.next_u64()
        with pytest.raises(CheckpointError, match="consumed machine.rng"):
            capture_init_state(machine, app, "sig")

    def test_grid_checkpoint_argument_validation(self):
        from repro.harness.grid import run_grid

        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            run_grid([], on_error="resume")
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            run_grid([], warm_init=True)
