"""Parallel simulation (``repro.engine.pdes``): kernel, planner, replicas.

Three layers, three obligations:

* the conservative (Chandy–Misra–Bryant) kernel must execute exactly the
  events a single global heap would, in the same per-LP order, and must
  refuse topologies that break its progress guarantee (zero lookahead,
  causality violations);
* the shard planner must partition every preset mesh geometry into
  column blocks with a strictly positive cross-shard lookahead, and
  refuse geometries it cannot cut;
* ``--shards N`` execution must be byte-identical to serial across the
  full seven-configuration big.TINY matrix — result fields, memory
  digest, statistics, and Perfetto trace bytes — and must refuse, before
  any cache probe, every feature combination it cannot validate.
"""

from __future__ import annotations

import dataclasses
import heapq
import json

import pytest

from helpers import ALL_BIGTINY
from repro.config import make_config
from repro.engine.pdes import (
    Channel,
    ConservativeKernel,
    LogicalProcess,
    PdesDivergenceError,
    PdesError,
    PdesKernelError,
    ShardUnsupportedError,
    plan_shards,
    run_sharded,
)
from repro.engine.pdes.plan import _column_blocks
from repro.engine.pdes.replicate import _check_supported, _validate
from repro.harness import runner
from repro.harness.runner import run_experiment


# ----------------------------------------------------------------------
# Conservative kernel vs a global-heap reference
# ----------------------------------------------------------------------
def _build_ring(n_lps: int, lookahead: int, hops: int, tick_times=()):
    """A ring of LPs passing one decrementing token, plus local ticks.

    Returns (kernel, logs) where ``logs[i]`` is LP i's execution log of
    ``(time, tag)`` entries — the observable a global heap must match.
    """
    kernel = ConservativeKernel()
    logs = [[] for _ in range(n_lps)]

    def make_handler(idx):
        def handler(lp, payload):
            logs[idx].append((lp.now, ("msg", payload)))
            if payload > 0:
                lp.send(f"lp{(idx + 1) % n_lps}", payload - 1)

        return handler

    lps = []
    for i in range(n_lps):
        lp = LogicalProcess(f"lp{i}")
        lp.handler = make_handler(i)
        kernel.add(lp)
        lps.append(lp)
    for i, lp in enumerate(lps):
        lp.connect(lps[(i + 1) % n_lps], lookahead)
    for i, lp in enumerate(lps):
        for t in tick_times:
            lp.schedule_at(
                t, (lambda idx=i, when=t: logs[idx].append((when, ("tick",))))
            )
    # Seed: lp0 emits the token at t=0 (arrives at lp1 at t=lookahead).
    lps[0].schedule_at(0, lambda: lps[0].send("lp1", hops))
    return kernel, logs


def _reference_ring(n_lps: int, lookahead: int, hops: int, tick_times=()):
    """The same ring executed on one global event heap (no channels)."""
    logs = [[] for _ in range(n_lps)]
    heap = []
    seq = 0

    def push(when, fn):
        nonlocal seq
        heapq.heappush(heap, (when, seq, fn))
        seq += 1

    def deliver(idx, when, payload):
        logs[idx].append((when, ("msg", payload)))
        if payload > 0:
            push(when + lookahead, lambda: deliver((idx + 1) % n_lps,
                                                   when + lookahead,
                                                   payload - 1))

    for i in range(n_lps):
        for t in tick_times:
            push(t, (lambda idx=i, when=t: logs[idx].append((when, ("tick",)))))
    push(lookahead, lambda: deliver(1, lookahead, hops))
    while heap:
        _when, _seq, fn = heapq.heappop(heap)
        fn()
    return logs


@pytest.mark.parametrize(
    "n_lps,lookahead,hops",
    [(2, 1, 7), (2, 3, 10), (4, 2, 13), (4, 5, 4)],
)
def test_kernel_ring_matches_global_heap(n_lps, lookahead, hops):
    kernel, logs = _build_ring(n_lps, lookahead, hops)
    final = kernel.run()
    assert logs == _reference_ring(n_lps, lookahead, hops)
    # The token visits `hops + 1` LPs; the last visit is the max clock.
    assert sum(len(log) for log in logs) == hops + 1
    assert final == (hops + 1) * lookahead
    # Progress came from null messages, not luck.
    assert kernel.null_messages > 0
    assert kernel.idle()


def test_kernel_interleaves_local_events_with_messages():
    ticks = (1, 4, 6, 9, 15)
    kernel, logs = _build_ring(3, 2, 8, tick_times=ticks)
    kernel.run()
    assert logs == _reference_ring(3, 2, 8, tick_times=ticks)
    for log in logs:
        times = [when for when, _tag in log]
        assert times == sorted(times)  # per-LP execution is in time order


def test_kernel_until_bound_stops_early():
    kernel, logs = _build_ring(2, 4, 20)
    kernel.run(until=17)
    # Only message deliveries at t <= 17 executed: t = 4, 8, 12, 16.
    assert sum(len(log) for log in logs) == 4
    assert not kernel.idle()  # the token is still in flight


def test_zero_lookahead_channel_is_refused():
    a, b = LogicalProcess("a"), LogicalProcess("b")
    with pytest.raises(PdesKernelError, match="lookahead must be positive"):
        a.connect(b, 0)
    with pytest.raises(PdesKernelError, match="lookahead must be positive"):
        Channel(a, b, -3)


def test_causality_violation_is_refused():
    a, b = LogicalProcess("a"), LogicalProcess("b")
    channel = a.connect(b, 2)
    channel.advance(10.0)
    with pytest.raises(PdesKernelError, match="causality violation"):
        channel.send(5.0, "late")


def test_scheduling_into_the_past_is_refused():
    lp = LogicalProcess("lp")
    lp.now = 50.0
    with pytest.raises(PdesKernelError, match="cannot schedule"):
        lp.schedule_at(49.0, lambda: None)
    with pytest.raises(PdesKernelError, match="negative extra_delay"):
        lp.outputs["x"] = Channel(lp, LogicalProcess("x"), 1)
        lp.send("x", None, extra_delay=-1.0)


def test_message_without_handler_is_refused():
    a, b = LogicalProcess("a"), LogicalProcess("b")
    a.connect(b, 1)
    a.schedule_at(0, lambda: a.send("b", "ping"))
    kernel = ConservativeKernel()
    kernel.add(a)
    kernel.add(b)
    with pytest.raises(PdesKernelError, match="no message handler"):
        kernel.run()


# ----------------------------------------------------------------------
# Shard planner
# ----------------------------------------------------------------------
def test_column_blocks_are_balanced_and_contiguous():
    assert _column_blocks(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
    assert _column_blocks(7, 3) == [(0, 3), (3, 5), (5, 7)]
    assert _column_blocks(4, 1) == [(0, 4)]
    blocks = _column_blocks(32, 5)
    assert blocks[0][0] == 0 and blocks[-1][1] == 32
    widths = [stop - start for start, stop in blocks]
    assert max(widths) - min(widths) <= 1
    for (_, stop), (start, _) in zip(blocks, blocks[1:]):
        assert stop == start


def test_tiny_two_shard_plan_geometry():
    plan = plan_shards(make_config("bt-mesi", "tiny"), 2)
    assert plan.columns == ((0, 1), (1, 2))
    # Every core and bank is owned by exactly one shard.
    assert sorted(c for shard in plan.cores for c in shard) == [0, 1, 2, 3]
    assert sorted(b for shard in plan.banks for b in shard) == [0, 1]
    assert plan.shard_of_core(plan.cores[1][0]) == 1
    assert plan.shard_of_bank(plan.banks[0][0]) == 0
    # Adjacent column blocks: one hop each way, priced identically.
    assert plan.lookahead[(0, 1)] == plan.lookahead[(1, 0)]
    assert plan.min_cross_shard_latency > 0


@pytest.mark.parametrize("scale,n_shards", [
    ("tiny", 2), ("quick", 2), ("quick", 4), ("paper", 4), ("paper", 8),
    ("large", 8),
])
def test_every_preset_geometry_plans_with_positive_lookahead(scale, n_shards):
    config = make_config("bt-mesi", scale)
    plan = plan_shards(config, n_shards)
    assert plan.n_shards == n_shards
    assert sorted(c for shard in plan.cores for c in shard) == list(
        range(config.n_cores)
    )
    assert sorted(b for shard in plan.banks for b in shard) == list(
        range(config.n_l2_banks)
    )
    assert all(shard for shard in plan.cores), "a shard owns no cores"
    assert plan.min_cross_shard_latency > 0
    # Distant shards can never be cheaper to reach than adjacent ones.
    assert plan.lookahead[(0, n_shards - 1)] >= plan.min_cross_shard_latency


def test_more_shards_than_columns_is_refused():
    with pytest.raises(ValueError, match="at most one shard per column"):
        plan_shards(make_config("bt-mesi", "tiny"), 3)
    with pytest.raises(ValueError, match="at least one shard"):
        plan_shards(make_config("bt-mesi", "tiny"), 0)


# ----------------------------------------------------------------------
# Differential byte-identity: --shards N vs serial, full config matrix
# ----------------------------------------------------------------------
def _strip_provenance(result) -> dict:
    fields = dataclasses.asdict(result)
    fields.pop("extras")
    return fields


@pytest.mark.parametrize("kind", ALL_BIGTINY)
def test_sharded_run_is_identical_to_serial_on_every_config(kind):
    serial = run_experiment("cilk5-cs", kind, "tiny", use_cache=False)
    sharded = run_experiment(
        "cilk5-cs", kind, "tiny", use_cache=False, shards=2
    )
    assert _strip_provenance(sharded) == _strip_provenance(serial)
    assert sharded.extras["pdes_shards"] == 2.0
    assert sharded.extras["pdes_validated"] == 1.0
    assert sharded.extras["pdes_min_lookahead"] > 0
    # Work stealing (ULI-mediated on dts kinds) actually happened, so the
    # validated observables cover cross-tile steal traffic, not idle cores.
    assert serial.steals > 0


def test_four_shards_on_quick_scale():
    serial = run_experiment(
        "cilk5-cs", "bt-hcc-dts-dnv", "quick", use_cache=False
    )
    sharded = run_experiment(
        "cilk5-cs", "bt-hcc-dts-dnv", "quick", use_cache=False, shards=4
    )
    assert _strip_provenance(sharded) == _strip_provenance(serial)
    assert sharded.extras["pdes_shards"] == 4.0
    assert serial.steals > 0


def test_sharded_trace_bytes_match_serial_trace(tmp_path):
    from repro.trace import Tracer, export_chrome_trace

    serial_trace = tmp_path / "serial.json"
    tracer = Tracer()
    run_experiment(
        "cilk5-cs", "bt-hcc-dnv", "tiny", use_cache=False,
        tracer=tracer, sample_interval=500,
    )
    serial_trace.write_text(export_chrome_trace(tracer), newline="\n")

    sharded_trace = tmp_path / "sharded.json"
    run_sharded(
        dict(app_name="cilk5-cs", kind="bt-hcc-dnv", scale="tiny"),
        2, trace_path=str(sharded_trace), sample_interval=500,
    )
    assert sharded_trace.read_bytes() == serial_trace.read_bytes()
    meta = json.loads(sharded_trace.read_text())["metadata"]
    assert meta["sample_interval"] == 500


def test_memo_key_is_shard_blind_in_both_directions():
    """Sharding is an execution strategy, not an experiment parameter:
    a sharded run must satisfy a later serial probe and vice versa."""
    runner._CACHE.clear()
    sharded = run_experiment("cilk5-mt", "bt-hcc-gwt", "tiny", shards=2)
    sims_after_sharded = runner._SIM_COUNT
    serial = run_experiment("cilk5-mt", "bt-hcc-gwt", "tiny")
    assert runner._SIM_COUNT == sims_after_sharded  # memo hit, no re-run
    assert serial is sharded

    runner._CACHE.clear()
    serial = run_experiment("cilk5-mt", "bt-hcc-gwt", "tiny")
    sims_after_serial = runner._SIM_COUNT
    sharded = run_experiment("cilk5-mt", "bt-hcc-gwt", "tiny", shards=2)
    assert runner._SIM_COUNT == sims_after_serial
    assert sharded is serial


# ----------------------------------------------------------------------
# Loud refusals: what replicas cannot validate they must not run
# ----------------------------------------------------------------------
def test_checkpoint_under_shards_is_refused_before_any_probe(tmp_path):
    with pytest.raises(ShardUnsupportedError, match="checkpointed"):
        run_experiment(
            "cilk5-cs", "bt-mesi", "tiny", shards=2,
            checkpoint={"path": str(tmp_path / "snap.ckpt")},
        )
    with pytest.raises(ShardUnsupportedError, match="checkpointed"):
        _check_supported({"checkpoint": str(tmp_path / "snap.ckpt")})


def test_sampling_faults_sanitize_tracer_under_shards_are_refused():
    with pytest.raises(ShardUnsupportedError, match="sampled"):
        run_experiment("cilk5-cs", "bt-mesi", "tiny", shards=2, sampling="s1")
    with pytest.raises(ShardUnsupportedError, match="faulted"):
        run_experiment(
            "cilk5-cs", "bt-mesi", "tiny", shards=2, faults="timing"
        )
    with pytest.raises(ShardUnsupportedError, match="sanitized"):
        run_experiment("cilk5-cs", "bt-mesi", "tiny", shards=2, sanitize=True)
    from repro.trace import Tracer

    with pytest.raises(ShardUnsupportedError, match="in-process tracer"):
        run_experiment(
            "cilk5-cs", "bt-mesi", "tiny", shards=2, tracer=Tracer()
        )


def test_run_sharded_requires_at_least_two_shards():
    with pytest.raises(PdesError, match=">= 2 shards"):
        run_sharded(dict(app_name="cilk5-cs", kind="bt-mesi",
                         scale="tiny"), 1)


def test_shards_beyond_mesh_columns_is_refused():
    # tiny is a 2x2 mesh: 3 shards cannot each own a column.
    with pytest.raises(ValueError, match="at most one shard per column"):
        run_experiment("cilk5-cs", "bt-mesi", "tiny", use_cache=False,
                       shards=3)


# ----------------------------------------------------------------------
# Divergence detection
# ----------------------------------------------------------------------
def _payload(shard, digest="d0", flat=None, result=None, sha="s0"):
    return {
        "shard": shard,
        "fusion": shard % 2 == 0,
        "digest": digest,
        "flatten": dict(flat or {"steals": 2.0}),
        "result": dict(result or {"cycles": 100, "extras": {}}),
        "trace_sha": sha,
    }


def test_validate_accepts_identical_replicas():
    _validate([_payload(0), _payload(1)], want_trace=True)


def test_validate_reports_every_divergent_observable():
    bad = _payload(1, digest="dX", flat={"steals": 3.0},
                   result={"cycles": 101, "extras": {}}, sha="sX")
    with pytest.raises(PdesDivergenceError) as err:
        _validate([_payload(0), bad], want_trace=True)
    message = str(err.value)
    assert "memory digest differs" in message
    assert "StatGroup.flatten differs (steals)" in message
    assert "result fields differ (cycles)" in message
    assert "Perfetto trace differs" in message


def test_validate_ignores_provenance_extras_but_not_results():
    # extras are lineage, not simulation output: they may differ freely.
    a = _payload(0, result={"cycles": 100, "extras": {"ckpt_resumed": 1.0}})
    b = _payload(1, result={"cycles": 100, "extras": {}})
    _validate([a, b], want_trace=False)
