"""Examples stay importable/compilable (full runs are exercised manually)."""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "graph_analytics.py", "coherence_comparison.py",
            "granularity_tuning.py", "custom_application.py"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    source = path.read_text()
    assert '__main__' in source
    assert source.lstrip().startswith(('#!/usr/bin/env python\n"""', '"""'))
