"""MESI protocol unit tests (driven directly against the L1/L2 models)."""

from repro.mem.cacheline import EXCLUSIVE, MODIFIED, SHARED

from helpers import tiny_machine


def addr_of(machine):
    return machine.address_space.alloc_words(8, "x")


class TestMesiStates:
    def setup_method(self, _):
        self.machine = tiny_machine("bt-mesi")
        self.l1s = self.machine.l1s
        self.addr = addr_of(self.machine)
        self.machine.host_write_word(self.addr, 11)

    def test_first_load_grants_exclusive(self):
        value, _ = self.l1s[0].load(self.addr, now=0)
        assert value == 11
        assert self.l1s[0].resident(self.addr).state == EXCLUSIVE

    def test_second_reader_downgrades_to_shared(self):
        self.l1s[0].load(self.addr, 0)
        self.l1s[1].load(self.addr, 10)
        assert self.l1s[0].resident(self.addr).state == SHARED
        assert self.l1s[1].resident(self.addr).state == SHARED

    def test_silent_e_to_m_upgrade(self):
        self.l1s[0].load(self.addr, 0)
        latency = self.l1s[0].store(self.addr, 22, 1)
        assert latency == self.l1s[0].hit_latency
        assert self.l1s[0].resident(self.addr).state == MODIFIED

    def test_store_invalidates_other_sharers(self):
        self.l1s[0].load(self.addr, 0)
        self.l1s[1].load(self.addr, 1)
        self.l1s[2].store(self.addr, 33, 2)
        assert self.l1s[0].resident(self.addr) is None
        assert self.l1s[1].resident(self.addr) is None
        value, _ = self.l1s[2].load(self.addr, 3)
        assert value == 33

    def test_remote_load_recalls_dirty_owner(self):
        self.l1s[0].store(self.addr, 44, 0)
        value, _ = self.l1s[1].load(self.addr, 1)
        assert value == 44
        # Owner downgraded to S, stays resident.
        assert self.l1s[0].resident(self.addr).state == SHARED

    def test_amo_is_atomic_and_returns_old(self):
        old, _ = self.l1s[0].amo("add", self.addr, 5, 0)
        assert old == 11
        old, _ = self.l1s[1].amo("add", self.addr, 1, 1)
        assert old == 16
        value, _ = self.l1s[2].load(self.addr, 2)
        assert value == 17

    def test_coherence_ops_are_noops(self):
        self.l1s[0].store(self.addr, 55, 0)
        assert self.l1s[0].invalidate_all(1) == 0
        assert self.l1s[0].flush_all(2) == 0
        assert self.l1s[0].resident(self.addr) is not None

    def test_miss_latency_exceeds_hit_latency(self):
        _, miss_latency = self.l1s[0].load(self.addr, 0)
        _, hit_latency = self.l1s[0].load(self.addr, miss_latency)
        assert hit_latency == self.l1s[0].hit_latency
        assert miss_latency > hit_latency

    def test_dirty_eviction_writes_back(self):
        l1 = self.l1s[1]  # tiny core: 4KB, 2-way, 32 sets
        set_stride = 32 * 64
        base = self.machine.address_space.alloc(set_stride * 4, "evict")
        l1.store(base, 1, 0)
        l1.store(base + set_stride, 2, 1)
        l1.store(base + 2 * set_stride, 3, 2)  # evicts the LRU dirty line
        assert l1.stats.get("evictions") == 1
        assert self.machine.l2.peek_word(base) == 1

    def test_hit_rate_tracks_hits(self):
        self.l1s[0].load(self.addr, 0)
        self.l1s[0].load(self.addr, 1)
        self.l1s[0].load(self.addr, 2)
        assert abs(self.l1s[0].hit_rate() - 2 / 3) < 1e-9
