"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.config import make_config
from repro.machine import Machine

#: All big.TINY configurations (tiny scale) exercised by integration tests.
ALL_BIGTINY = (
    "bt-mesi",
    "bt-hcc-dnv",
    "bt-hcc-gwt",
    "bt-hcc-gwb",
    "bt-hcc-dts-dnv",
    "bt-hcc-dts-gwt",
    "bt-hcc-dts-gwb",
)

#: One representative configuration per runtime variant.
VARIANT_KINDS = ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb")


def tiny_machine(
    kind: str = "bt-mesi", faults=None, sanitize: bool = False, **overrides
) -> Machine:
    """A 4-core (1 big + 3 tiny) machine for unit/integration tests."""
    return Machine(
        make_config(kind, "tiny", **overrides), faults=faults, sanitize=sanitize
    )


def run_thread(machine: Machine, core_id: int, gen) -> int:
    """Run a single generator thread to completion; return elapsed cycles."""
    machine.cores[core_id].start(gen)
    return machine.sim.run()
