"""System configuration presets (Table II of the paper)."""

from repro.config.system import (
    BIGTINY_KINDS,
    CONFIG_KINDS,
    DTS_KINDS,
    HCC_KINDS,
    SCALES,
    CacheParams,
    SystemConfig,
    make_config,
)

__all__ = [
    "SystemConfig",
    "CacheParams",
    "make_config",
    "CONFIG_KINDS",
    "BIGTINY_KINDS",
    "HCC_KINDS",
    "DTS_KINDS",
    "SCALES",
]
