"""System configurations: the paper's Table II machines at several scales.

A :class:`SystemConfig` fully describes one simulated machine.  The named
presets reproduce the paper's evaluated configurations:

* ``o3x1`` / ``o3x4`` / ``o3x8`` — traditional multicores of 1/4/8 big
  out-of-order cores with MESI everywhere (``O3x8`` is area-equivalent to
  the 64-core big.TINY per the CACTI argument in Section V-A).
* ``bt-mesi`` — big.TINY with hardware MESI on every core.
* ``bt-hcc-dnv`` / ``bt-hcc-gwt`` / ``bt-hcc-gwb`` — big.TINY with HCC:
  MESI big cores + DeNovo / GPU-WT / GPU-WB tiny cores.
* ``bt-hcc-dts-dnv`` / ``-gwt`` / ``-gwb`` — the same plus Direct Task
  Stealing.

Scales (``SCALES``) shrink or grow the machine: ``tiny`` for unit tests,
``quick`` for CI benchmarks, ``paper`` for the 64-core Table II system, and
``large`` for the 256-core Table V system.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

KB = 1024


@dataclass(frozen=True)
class CacheParams:
    size_bytes: int
    assoc: int = 2


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine."""

    name: str
    n_big: int
    n_tiny: int
    mesh_rows: int
    mesh_cols: int
    tiny_protocol: str = "mesi"  # mesi | denovo | gpu-wt | gpu-wb
    big_protocol: str = "mesi"
    dts: bool = False
    big_l1: CacheParams = field(default_factory=lambda: CacheParams(64 * KB, 2))
    tiny_l1: CacheParams = field(default_factory=lambda: CacheParams(4 * KB, 2))
    l2_bank_bytes: int = 512 * KB
    l2_assoc: int = 8
    n_l2_banks: int = 8
    dram_latency: int = 60
    dram_total_bytes_per_cycle: float = 16.0
    big_issue_width: int = 4
    big_mlp_factor: float = 0.4
    uli_entry_latency_tiny: int = 5
    uli_entry_latency_big: int = 30
    seed: int = 0xC0FFEE
    max_cycles: int = 400_000_000

    @property
    def n_cores(self) -> int:
        return self.n_big + self.n_tiny

    def is_big_core(self, core_id: int) -> bool:
        """Big cores occupy the lowest core ids (tile row 0)."""
        return core_id < self.n_big

    def protocol_for(self, core_id: int) -> str:
        return self.big_protocol if self.is_big_core(core_id) else self.tiny_protocol

    def l1_params_for(self, core_id: int) -> CacheParams:
        return self.big_l1 if self.is_big_core(core_id) else self.tiny_l1

    def validate(self) -> None:
        if self.n_cores > self.mesh_rows * self.mesh_cols:
            raise ValueError(
                f"{self.n_cores} cores do not fit a "
                f"{self.mesh_rows}x{self.mesh_cols} mesh"
            )
        if self.tiny_protocol not in ("mesi", "denovo", "gpu-wt", "gpu-wb"):
            raise ValueError(f"unknown tiny protocol {self.tiny_protocol!r}")
        if self.big_protocol != "mesi":
            raise ValueError("big cores use hardware-based MESI in all configs")


#: Shorthand protocol names used in config keys (paper's dnv/gwt/gwb).
_PROTO_ALIASES = {"dnv": "denovo", "gwt": "gpu-wt", "gwb": "gpu-wb"}

#: scale -> (n_big, n_tiny, rows, cols, banks, dram_bytes_per_cycle)
SCALES: Dict[str, Tuple[int, int, int, int, int, float]] = {
    "tiny": (1, 3, 2, 2, 2, 8.0),
    "quick": (4, 12, 4, 4, 4, 16.0),
    "paper": (4, 60, 8, 8, 8, 16.0),
    "large": (4, 252, 8, 32, 32, 64.0),
}

#: All configurations evaluated in the paper's Section VI.  ``serial-io``
#: is the Table III baseline: one in-order (tiny) core running the serial
#: elision of each program.
CONFIG_KINDS = (
    "serial-io",
    "o3x1",
    "o3x4",
    "o3x8",
    "bt-mesi",
    "bt-hcc-dnv",
    "bt-hcc-gwt",
    "bt-hcc-gwb",
    "bt-hcc-dts-dnv",
    "bt-hcc-dts-gwt",
    "bt-hcc-dts-gwb",
)

#: The paper's big.TINY config keys in presentation order (Figures 5-8).
BIGTINY_KINDS = CONFIG_KINDS[4:]
HCC_KINDS = CONFIG_KINDS[5:8]
DTS_KINDS = CONFIG_KINDS[8:]


def resolve_kind(kind: str) -> str:
    """Resolve a configuration name, accepting the ``bt-``-less shorthand
    (``hcc-dts-dnv`` → ``bt-hcc-dts-dnv``)."""
    if kind in CONFIG_KINDS:
        return kind
    prefixed = f"bt-{kind}"
    if prefixed in CONFIG_KINDS:
        return prefixed
    raise ValueError(f"unknown config {kind!r}; known: {', '.join(CONFIG_KINDS)}")


def make_config(kind: str, scale: str = "quick", **overrides) -> SystemConfig:
    """Build a named configuration at a named scale.

    ``overrides`` are forwarded to :func:`dataclasses.replace` so callers
    can tweak individual parameters (seed, cache sizes, latencies).
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    n_big, n_tiny, rows, cols, banks, dram_bpc = SCALES[scale]

    if kind == "serial-io":
        config = SystemConfig(
            name=f"{kind}-{scale}",
            n_big=0,
            n_tiny=1,
            mesh_rows=1,
            mesh_cols=1,
            n_l2_banks=1,
            dram_total_bytes_per_cycle=dram_bpc,
        )
    elif kind.startswith("o3x"):
        n = int(kind[3:])
        if n < 1:
            raise ValueError(f"bad O3 config {kind!r}")
        o3_rows, o3_cols = _square_mesh(n)
        config = SystemConfig(
            name=f"{kind}-{scale}",
            n_big=n,
            n_tiny=0,
            mesh_rows=o3_rows,
            mesh_cols=o3_cols,
            n_l2_banks=max(1, o3_cols),
            dram_total_bytes_per_cycle=dram_bpc,
        )
    elif kind == "bt-mesi":
        config = SystemConfig(
            name=f"{kind}-{scale}",
            n_big=n_big,
            n_tiny=n_tiny,
            mesh_rows=rows,
            mesh_cols=cols,
            n_l2_banks=banks,
            dram_total_bytes_per_cycle=dram_bpc,
        )
    elif kind.startswith("bt-hcc-"):
        suffix = kind[len("bt-hcc-"):]
        dts = suffix.startswith("dts-")
        proto_key = suffix[4:] if dts else suffix
        if proto_key not in _PROTO_ALIASES:
            raise ValueError(f"unknown HCC protocol key {proto_key!r}")
        config = SystemConfig(
            name=f"{kind}-{scale}",
            n_big=n_big,
            n_tiny=n_tiny,
            mesh_rows=rows,
            mesh_cols=cols,
            n_l2_banks=banks,
            tiny_protocol=_PROTO_ALIASES[proto_key],
            dts=dts,
            dram_total_bytes_per_cycle=dram_bpc,
        )
    else:
        raise ValueError(f"unknown config kind {kind!r}; choose from {CONFIG_KINDS}")

    if overrides:
        overrides = {
            key: CacheParams(**value)
            if key in ("big_l1", "tiny_l1") and isinstance(value, dict)
            else value
            for key, value in overrides.items()
        }
        config = replace(config, **overrides)
    config.validate()
    return config


def _square_mesh(n_cores: int) -> Tuple[int, int]:
    """Smallest near-square mesh holding ``n_cores`` tiles."""
    rows = 1
    while rows * rows < n_cores:
        rows += 1
    cols = rows
    while (rows - 1) * cols >= n_cores:
        rows -= 1
    return rows, cols
