"""On-chip networks: data mesh and the dedicated ULI mesh."""

from repro.noc.mesh import Mesh, MeshConfig, Position
from repro.noc.uli import ULI_MESSAGE_BYTES, UliNetwork

__all__ = ["Mesh", "MeshConfig", "Position", "UliNetwork", "ULI_MESSAGE_BYTES"]
