"""User-level interrupt (ULI) network.

The paper models the ULI fabric as a dedicated mesh with two virtual
channels (request and response, to avoid protocol deadlock), 1-cycle router
and channel latency, and single-word messages.  Each core has a one-entry
request buffer and a one-entry response buffer; a core whose buffer is full
NACKs the sender.

This module provides latency and statistics for that fabric.  Delivery
semantics (enable/disable, handler execution, ACK/NACK) live in
``repro.cores.uli_unit``; this class is purely the wires.

Checkpointing note: a message "in flight" on this network exists only as
a pending delivery event on the simulator heap (``deliver_uli_request`` /
``deliver_uli_response`` partials scheduled ``send_latency()`` cycles
out).  ``repro.engine.checkpoint`` therefore snapshots in-flight ULI
traffic as heap-event descriptors (``uli_req`` / ``uli_resp`` with their
victim/thief operands and due times) rather than anything held here —
this class is stateless apart from its counters, which are captured with
the rest of the stats tree.
"""

from __future__ import annotations

from repro.engine.stats import StatGroup
from repro.noc.mesh import Mesh
from repro.trace.tracer import NULL_TRACER

#: Each ULI message is a single word: destination + payload.
ULI_MESSAGE_BYTES = 8


class UliNetwork:
    """Dedicated request/response mesh for user-level interrupts."""

    #: Fault-injection hook (repro.faults), set by the machine when a
    #: plan with ULI delays is active.
    fault_injector = None

    def __init__(self, mesh: Mesh, stats: StatGroup, sim=None, tracer=NULL_TRACER):
        self.mesh = mesh
        self.stats = stats.child("uli_network")
        self.sim = sim
        self.tracer = tracer
        self._tracing = tracer.enabled and sim is not None

    def send_latency(self, src_core: int, dst_core: int) -> int:
        """Latency in cycles for one ULI message between two cores."""
        a = self.mesh.core_position(src_core)
        b = self.mesh.core_position(dst_core)
        latency = self.mesh.latency(a, b, ULI_MESSAGE_BYTES)
        if self.fault_injector is not None:
            latency += self.fault_injector.uli_extra(src_core, dst_core)
        hops = self.mesh.hops(a, b)
        self.stats.add("messages")
        self.stats.add("total_hops", hops)
        self.stats.add("total_latency", latency)
        self.stats.add("bytes", ULI_MESSAGE_BYTES)
        if self._tracing:
            self.tracer.uli_message(src_core, dst_core, self.sim.now, latency)
        return latency

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of link-cycles carrying ULI flits (paper reports <5%)."""
        if elapsed_cycles <= 0:
            return 0.0
        flit_hops = self.stats.get("total_hops")
        capacity = self.mesh.n_links * elapsed_cycles
        if capacity == 0:
            return 0.0
        return flit_hops / capacity

    def average_latency(self) -> float:
        messages = self.stats.get("messages")
        if messages == 0:
            return 0.0
        return self.stats.get("total_latency") / messages
