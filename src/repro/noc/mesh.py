"""2D mesh on-chip network with XY routing (latency + traffic model).

Matches the paper's Garnet configuration at the structural level: an
``rows x cols`` mesh of routers (one per core tile), 16B flits, 1-cycle
channel and 1-cycle router latency, XY dimension-ordered routing.  L2 cache
banks and DRAM controllers sit one virtual row below the core mesh, one per
column (Figure 1 of the paper).

The model is analytic: a message's latency is per-hop router+channel delay
plus body-flit serialization.  Link-level contention is not simulated
flit-by-flit (endpoint contention is modeled at L2 banks and DRAM
controllers instead); injected bytes and byte-hops are accounted exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

Position = Tuple[int, int]


@dataclass(frozen=True)
class MeshConfig:
    rows: int
    cols: int
    flit_bytes: int = 16
    router_latency: int = 1
    channel_latency: int = 1


class Mesh:
    """Mesh geometry, hop counts, and message latency."""

    #: Fault-injection hook (repro.faults); the machine replaces this on
    #: its instance when a plan is active, so the default path pays one
    #: ``is not None`` branch per message.
    fault_injector = None

    def __init__(self, config: MeshConfig):
        self.config = config
        self.rows = config.rows
        self.cols = config.cols

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def core_position(self, core_id: int) -> Position:
        """Tile coordinates of a core (row-major placement)."""
        n = self.rows * self.cols
        if not 0 <= core_id < n:
            raise ValueError(f"core {core_id} outside {self.rows}x{self.cols} mesh")
        return (core_id // self.cols, core_id % self.cols)

    def bank_position(self, bank_id: int, n_banks: int) -> Position:
        """Tile coordinates of an L2 bank / memory controller.

        Banks live in a virtual row below the core mesh and are spread
        across columns (one bank per column in the paper's 8-bank, 8-column
        configuration).
        """
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        if n_banks > self.cols:
            raise ValueError(
                f"{n_banks} banks cannot occupy distinct columns of a "
                f"{self.rows}x{self.cols} mesh"
            )
        if not 0 <= bank_id < n_banks:
            raise ValueError(f"bank {bank_id} outside 0..{n_banks - 1}")
        # Evenly spread banks across columns, distributing any remainder
        # (floor of the ideal fractional position keeps positions distinct
        # and strictly increasing whenever n_banks <= cols).
        col = bank_id * self.cols // n_banks
        return (self.rows, col)

    # ------------------------------------------------------------------
    # Latency / distance
    # ------------------------------------------------------------------
    def hops(self, a: Position, b: Position) -> int:
        """Number of router-to-router hops on the XY route from a to b."""
        if a == b:
            return 0
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def latency(self, a: Position, b: Position, n_bytes: int) -> int:
        """End-to-end latency in cycles of an ``n_bytes`` message a -> b."""
        hop_count = self.hops(a, b)
        cfg = self.config
        per_hop = cfg.router_latency + cfg.channel_latency
        flits = max(1, math.ceil(n_bytes / cfg.flit_bytes))
        # Head flit pays per-hop latency; body flits pipeline behind it.
        latency = hop_count * per_hop + (flits - 1)
        if self.fault_injector is not None:
            latency += self.fault_injector.noc_extra()
        return latency

    @property
    def n_links(self) -> int:
        """Number of unidirectional inter-router links (for utilization)."""
        horizontal = 2 * self.rows * (self.cols - 1)
        vertical = 2 * (self.rows - 1) * self.cols
        # plus the links down to the bank row
        bank_links = 2 * self.cols
        return horizontal + vertical + bank_links
