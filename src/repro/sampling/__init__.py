"""Periodic-sampling simulation (SMARTS-style fast-forward + windows).

A sampled run alternates functional fast-forward (architectural state
exact, timing skipped — ``Core._resume_ff``) with detailed warmup and
measurement windows run by the unchanged fused engine, then extrapolates
per-window rates to full-run estimates with confidence intervals.

Entry points:

* ``run_experiment(..., sampling="U:W:D")`` / ``repro run --sample U:W:D``
* :class:`SamplingSpec` — the parsed ``U:W:D[:Q]`` knob
* :class:`SamplingController` — phase machine driven by daemon events
* :func:`validate_mix` — differential exact-vs-sampled error harness

Sampled results are firewalled from exact ones end to end: ``mode`` and
the spec enter the memo key, the store key (STORE_SCHEMA bump), the run
ledger, and `repro report` accounting.
"""

from repro.sampling.controller import SamplingController
from repro.sampling.differential import (
    DEFAULT_VALIDATION_MIX,
    DEFAULT_VALIDATION_SPEC,
    format_validation,
    validate_entry,
    validate_mix,
)
from repro.sampling.estimate import extrapolate, mean_ci, t95
from repro.sampling.ff import FastForwardState
from repro.sampling.spec import DEFAULT_QUANTUM, SamplingError, SamplingSpec

__all__ = [
    "DEFAULT_QUANTUM",
    "DEFAULT_VALIDATION_MIX",
    "DEFAULT_VALIDATION_SPEC",
    "FastForwardState",
    "SamplingController",
    "SamplingError",
    "SamplingSpec",
    "extrapolate",
    "format_validation",
    "mean_ci",
    "t95",
    "validate_entry",
    "validate_mix",
]
