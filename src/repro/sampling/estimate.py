"""Extrapolate full-run statistics from detailed measurement windows.

SMARTS-style ratio estimation over a *work-instruction* measure.  The
controller places measurement windows periodically (with jitter) in
instruction space and bounds each window at ``D`` machine-wide
instructions; for any counter ``X`` the full-run estimate is the
ratio-of-sums

    X_est = G_total x (sum_k X_k / sum_k g_k)

where ``g_k`` is the window's **work instructions** — instructions
retired outside the runtime's scheduler-spin loops (hunt/steal/join
polling, ULI handlers, worker idle loops; tagged via ``Core.spinning``)
— and ``G_total`` the exact full-run work-instruction count.

Why the work measure and not raw instructions: the sampled run is a
different legal schedule, and the *spin* portion of its instruction
stream is not timing-invariant — spin loops retire instructions for as
long as the condition they poll stays false, so their counts scale with
wait durations, which fast-forward distorts.  Extrapolating along raw
instructions multiplies an accurate per-instruction rate by a drifted
total (observed: signed cycle error tracked signed instruction drift
almost exactly, app by app).  Work instructions — task bodies plus the
fixed per-task bookkeeping (spawn, descriptor init, join decrements) —
are a property of the *program*, not the schedule: both runs retire the
same work, so ``G_total`` is exact and drift cancels.  Spin cycles are
still charged — a window's cycles include everything that happened
while its work retired; they are just charged *per unit of work* rather
than per spin iteration.

Windows are instruction-bounded (never cycle-bounded) for the classic
SMARTS reason: task-parallel runs oscillate between instruction-dense
bursts and spin-heavy stalls, and cycle-bounded windows force a choice
between the harmonic (Jensen-biased) ratio and an unbounded-variance
mean-of-CPIs.  Instruction-bounded windows dissolve both horns and
cannot phase-lock onto the oscillation (see the controller docstring).
Under the work measure window weights ``g_k`` are *unequal* (spin share
varies), so confidence intervals use the delete-one jackknife on the
ratio-of-sums rather than the unweighted t-interval.

What is exact vs estimated in a sampled result:

* **exact** — instructions, tasks, spawns, steals, steal attempts, ULI
  handler runs and NACK counts (all architectural, counted during
  fast-forward too), plus the end-state memory contents ``app.check()``
  verifies.
* **estimated** — cycles, traffic bytes, L1 hit rate and
  invalidation/flush/AMO counts, the cycle breakdown, handler cycles,
  and energy.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.analysis.energy import energy_from_counts

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}

def t95(dof: int) -> float:
    """95% two-sided Student-t critical value.

    Between table rows the value for the next-*smaller* dof is used
    (larger t — conservative); above 120 dof the normal limit applies.
    """
    if dof <= 0:
        return float("nan")
    if dof > 120:
        return 1.960
    best = _T95[1]
    for d in sorted(_T95):
        if d > dof:
            break
        best = _T95[d]
    return best


def mean_ci(values: List[float]) -> Tuple[float, Optional[float]]:
    """Sample mean and 95% CI half-width (None when n < 2)."""
    n = len(values)
    if n == 0:
        return 0.0, None
    m = sum(values) / n
    if n < 2:
        return m, None
    var = sum((v - m) ** 2 for v in values) / (n - 1)
    return m, t95(n - 1) * math.sqrt(var / n)


def _rel_pct(half: Optional[float], mean: float) -> Optional[float]:
    if half is None or mean == 0:
        return None
    return 100.0 * half / abs(mean)


def ratio_ci(nums: List[float], dens: List[float]) -> Tuple[float, Optional[float]]:
    """Ratio-of-sums ``sum(nums)/sum(dens)`` and jackknife 95% half-width.

    The delete-one jackknife is the standard interval for a ratio of
    sums with unequal weights: each leave-one-out replicate
    ``R_(i) = (N - n_i) / (D - d_i)`` perturbs the ratio by that
    window's influence, and the jackknife variance
    ``(n-1)/n * sum (R_(i) - mean R_(.))^2`` feeds a Student-t interval
    with n-1 degrees of freedom.  Returns half-width ``None`` when
    n < 2 or any leave-one-out denominator is non-positive.
    """
    n = len(nums)
    num_total = float(sum(nums))
    den_total = float(sum(dens))
    if den_total <= 0:
        return 0.0, None
    ratio = num_total / den_total
    if n < 2:
        return ratio, None
    reps = []
    for num, den in zip(nums, dens):
        rest = den_total - den
        if rest <= 0:
            return ratio, None
        reps.append((num_total - num) / rest)
    rep_mean = sum(reps) / n
    var = (n - 1) / n * sum((r - rep_mean) ** 2 for r in reps)
    return ratio, t95(n - 1) * math.sqrt(var)


def extrapolate(machine, spec, windows: List[dict], gaps: List[dict],
                end_cycle: Optional[int]) -> Optional[dict]:
    """Full-run estimates from window + gap records (SamplingController).

    Returns None when no measurement window completed — that only happens
    when the app finished during the *initial* detailed warmup, in which
    case the raw machine statistics are already exact and the caller
    should use them unmodified.
    """
    if not windows:
        return None

    total_instr = machine.total_instructions()
    total_spin = sum(core.stats.get("instructions_spin") for core in machine.cores)
    total_work = total_instr - total_spin
    tiny = machine.tiny_core_ids() or list(range(machine.config.n_cores))

    # Work-instruction-weighted ratio-of-sums over the measurement
    # windows (see module docstring).  Falls back to the raw instruction
    # measure only in the degenerate case where the detailed windows
    # retired no work at all (pure-spin windows).
    instr_w = sum(w["instructions"] for w in windows)
    cycles_w = sum(w["cycles"] for w in windows)
    work_weights = [w.get("work_instructions", w["instructions"]) for w in windows]
    work_w = sum(work_weights)
    if total_work > 0 and work_w > 0:
        measure = "work"
        scale = total_work / work_w
        weights = work_weights
    else:
        measure = "instructions"
        scale = total_instr / instr_w
        weights = [w["instructions"] for w in windows]
    stat_sum: Dict[str, float] = defaultdict(float)
    traffic_sum: Dict[str, float] = defaultdict(float)
    energy_sum: Dict[str, float] = defaultdict(float)
    for w in windows:
        for k, v in w["stats"].items():
            stat_sum[k] += v
        for k, v in w["traffic"].items():
            traffic_sum[k] += v
        for k, v in w["energy"].items():
            energy_sum[k] += v

    cycles_est = int(round(cycles_w * scale))
    ipc_est = total_instr / cycles_est if cycles_est else 0.0

    def stat_est(key: str) -> float:
        return stat_sum.get(key, 0.0) * scale

    def l1_est(key: str) -> float:
        return sum(stat_est(f"machine.l1d_{cid}.{key}") for cid in tiny)

    def core_est(key: str) -> float:
        return sum(stat_est(f"machine.core_{cid}.{key}") for cid in tiny)

    l1_accesses = l1_est("loads") + l1_est("stores")
    l1_hits = l1_est("load_hits") + l1_est("store_hits")
    l1_hit_rate = l1_hits / l1_accesses if l1_accesses else 1.0

    traffic_est = {k: int(round(v * scale)) for k, v in traffic_sum.items()}

    from repro.cores.core import TIME_CATEGORIES

    breakdown_est = {
        cat: int(round(core_est(f"cycles_{cat}"))) for cat in TIME_CATEGORIES
    }

    energy_scaled = {k: v * scale for k, v in energy_sum.items()}

    # ------------------------------------------------------------------
    # Confidence intervals: delete-one jackknife on the ratio-of-sums.
    # Window weights are unequal under the work measure (spin share
    # varies window to window), so the unweighted t-interval over
    # per-window rates no longer covers the point estimate; the
    # jackknife handles arbitrary weights.
    # ------------------------------------------------------------------
    cpi_mean, cpi_half = ratio_ci([w["cycles"] for w in windows], weights)
    traffic_mean, traffic_half = ratio_ci(
        [sum(w["traffic"].values()) for w in windows], weights
    )

    ff_instructions = sum(g["ff_instr"] for g in gaps)
    pseudo_cycles = sum(g["pseudo_cycles"] for g in gaps)
    return {
        "cycles": cycles_est,
        "l1_hit_rate_tiny": l1_hit_rate,
        "lines_invalidated": int(round(l1_est("lines_invalidated"))),
        "lines_flushed": int(round(l1_est("lines_flushed"))),
        "invalidate_ops": int(round(l1_est("invalidate_ops"))),
        "flush_ops": int(round(l1_est("flush_ops"))),
        "amos": int(round(l1_est("amos"))),
        "traffic_bytes": traffic_est,
        "tiny_breakdown": breakdown_est,
        "energy": energy_from_counts(energy_scaled),
        "uli_handler_cycles": int(round(core_est("cycles_uli_handler"))),
        "summary": {
            "spec": spec.as_dict(),
            "windows": len(windows),
            "ff_periods": len(gaps),
            "ff_instructions": ff_instructions,
            "detailed_instructions": instr_w,
            "detailed_cycles": cycles_w,
            # Extrapolation measure: "work" (instructions outside
            # scheduler-spin loops) or the raw-instruction fallback.
            "measure": measure,
            "work_instructions": total_work,
            "spin_instructions": total_spin,
            "detailed_work_instructions": work_w,
            # Fraction of the run simulated in detail (warmup + windows).
            "coverage": (
                (total_instr - ff_instructions) / total_instr
                if total_instr
                else 1.0
            ),
            # Cycles the detailed engine never simulated: the pseudo-time
            # the fast-forward clock covered.
            "pseudo_cycles": pseudo_cycles,
            "ipc_mean": ipc_est,
            "cycles_ci95_pct": _rel_pct(cpi_half, cpi_mean),
            "traffic_ci95_pct": _rel_pct(traffic_half, traffic_mean),
        },
    }
