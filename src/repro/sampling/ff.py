"""Fast-forward period state shared by every core's ``_resume_ff`` slice.

One :class:`FastForwardState` exists per fast-forward period.  Cores hold a
reference in ``Core._ff`` (arming the redirect in ``Core._resume``); each
slice charges the instructions it executed through :meth:`consume`, and the
slice that crosses the period's global instruction budget fires the
``on_exhausted`` callback synchronously — the sampling controller then
disarms every core so the already-parked slice continuations resume in
detailed mode.

Calibrated pseudo-time
----------------------
Fast-forward must preserve the *relative* speeds of work and
synchronization or the schedule it produces is not representative: task
execution in a dynamic work-stealing runtime races against steal
round-trips, wake-ups, and idle backoff, all of which fast-forward models
with their real latencies.  Charging every instruction one pseudo-cycle
would make work and — critically — the steal protocol's memory
operations (deque AMOs, handler loads) ~CPI-times too fast: task
redistribution that in detail is gated by contended memory round-trips
becomes nearly free, the fast-forwarded machine reaches a far
better-balanced state than the detailed one ever does, and measurement
windows then measure a fiction.  Instead each period carries ``costs``,
the per-op-kind average latencies observed in the *previous* measurement
window (cycles_load / loads, cycles_amo / amos, ...), and every
fast-forwarded op charges its kind's calibrated cost.  The slice
instruction cap is derived from ``quantum`` and the blended per
-instruction cost ``cpi`` so a slice spans roughly ``quantum``
pseudo-*cycles* regardless of calibration, keeping cores interleaved and
ULI delivery responsive.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

#: Op kinds carrying a calibrated per-op pseudo-cycle cost.
COST_KINDS = ("load", "store", "amo", "invalidate", "flush")

#: Pre-calibration defaults (before the first window closes there is
#: nothing to calibrate against; the initial warmup+window always runs
#: before the first fast-forward period, so these only matter as
#: fallbacks for degenerate windows).
DEFAULT_COSTS = {kind: 1.0 for kind in COST_KINDS}

#: Tail of each fast-forward period (fraction of the instruction budget,
#: with an absolute floor) during which idles stay *real* when the spec
#: enables idle stretching (``SamplingSpec.stretch`` > 1).  A core parked
#: in a stretched idle sleeps up to ``stretch * 2 * STEAL_BACKOFF_CAP``
#: pseudo-cycles — longer than a whole warmup on a big machine — so
#: stretching right up to the period boundary hands the next measurement
#: window an artificially depleted machine (idle cores oversleeping the
#: window) and a large systematic overestimate.  The cooldown tail lets
#: every stretched sleeper wake and resume real-rate polling before
#: detailed warmup begins.  (It cannot repair the slower work
#: *redistribution* under stretched polling, which is why stretching is a
#: per-spec throughput knob, off for validation specs — see spec.py.)
FF_COOLDOWN_FRACTION = 0.25
FF_COOLDOWN_MIN = 4096


class FastForwardState:
    """Budgeted functional fast-forward period."""

    __slots__ = (
        "memory",
        "quantum",
        "budget",
        "cpi",
        "costs",
        "slice_budget",
        "idle_scale",
        "stretch_until",
        "consumed",
        "exhausted",
        "on_exhausted",
        "written",
    )

    def __init__(
        self,
        memory,
        budget: int,
        quantum: int,
        cpi: float = 1.0,
        costs: Optional[Dict[str, float]] = None,
        on_exhausted: Optional[Callable[["FastForwardState"], None]] = None,
        stretch: int = 1,
    ):
        #: MainMemory whose flat word store the FF slices read/write.
        self.memory = memory
        self.budget = budget
        self.quantum = quantum
        #: Blended pseudo-cycles per instruction (slice sizing only).
        self.cpi = max(1.0, cpi)
        #: Per-op-kind pseudo-cycle charges (window-calibrated, >= 1).
        self.costs = dict(DEFAULT_COSTS)
        if costs:
            for kind, cost in costs.items():
                self.costs[kind] = max(1.0, cost)
        #: Instructions per slice, sized so a slice covers ~``quantum``
        #: pseudo-cycles: slices stay short in *time* even when each
        #: instruction is expensive, so parked cores never lag far behind
        #: the clock and steal requests keep landing promptly.
        self.slice_budget = max(8, int(quantum / self.cpi))
        #: Idle stretch applied by Core._resume_ff (spec-controlled).
        self.idle_scale = max(1, int(stretch))
        #: Stretch idles only below this consumed-instruction mark; the
        #: remaining tail runs with real backoff (see FF_COOLDOWN_*).
        self.stretch_until = (
            max(
                0,
                budget - max(FF_COOLDOWN_MIN, int(budget * FF_COOLDOWN_FRACTION)),
            )
            if self.idle_scale > 1
            else 0
        )
        self.consumed = 0
        self.exhausted = False
        self.on_exhausted = on_exhausted
        #: Line addresses stores/AMOs mutated this period.  The warm L2
        #: survives fast-forward (see Machine.prepare_fastforward); these
        #: are exactly the lines whose L2 copies went stale and must be
        #: purged on exit (Machine.invalidate_ff_lines).
        self.written = set()

    def consume(self, n: int) -> None:
        """Charge ``n`` executed instructions against the period budget."""
        self.consumed += n
        if not self.exhausted and self.consumed >= self.budget:
            self.exhausted = True
            cb = self.on_exhausted
            if cb is not None:
                cb(self)
