"""Phase controller for periodic-sampling runs.

Drives the warmup → measure → fast-forward cycle with daemon events (which
can never perturb the simulation's outcome — they only bound event fusion
at phase edges, exactly as required for accurate window accounting).

Every phase is bounded in *instructions*, never cycles.  This is the
SMARTS discipline, and it matters: task-parallel runs oscillate between
instruction-dense bursts and spin-heavy stalls, so any cycle-bounded
phase placed after an instruction-bounded fast-forward period phase-locks
onto the oscillation (the fast-forward budget exhausts inside bursts, a
fixed-cycle warmup then carries the window start into the following
stall), and the windows systematically oversample low-IPC spans.  Keeping
warmup and window in instruction space means window placement is periodic
in instruction space end to end, which is exactly the sampling design
under which instruction-weighted ratio estimates are unbiased (see
``repro.sampling.estimate``).  The fast-forward budget additionally gets
a deterministic ±25% jitter per period so placement cannot alias with
instruction-periodic program structure (uniform parallel_for chunks).

* ``start()`` (before the first event) arms the initial warmup; the run
  always begins detailed so startup behaviour anchors the estimate.
* Instruction targets are tracked by an adaptive daemon check: with
  ``r`` instructions remaining and at most one instruction per core per
  cycle, the target is unreachable for another ``ceil(r / n_cores)``
  cycles, so the check re-arms exactly that far ahead — overshoot-free
  placement with O(log) checks per phase, no rate estimation.
* ``_begin_window`` snapshots cumulative statistics; after ``D``
  instructions ``_end_window`` records the deltas, reconciles the cache
  hierarchy with flat memory — L1s dropped, L2 kept warm as clean
  copies (:meth:`repro.machine.Machine.prepare_fastforward`) — and arms
  fast-forward on every core by setting ``Core._ff``.
* The fast-forward slice that exhausts the jittered ``U``-instruction
  budget fires :meth:`_exit_fastforward` synchronously — cores are
  disarmed, stale L2 copies of the lines fast-forward wrote are purged
  (:meth:`repro.machine.Machine.invalidate_ff_lines`), and the next
  warmup of ``W`` instructions begins against cold L1s / warm L2.
* ``finalize()`` (after the run) closes a partially complete window so
  short tails still contribute.

The sampled run is a *valid* execution of the program — deterministic for
a given seed and spec, and ``app.check()`` passes on its end state — but
it is a different legal schedule than the exact run (steal timing shifts
during fast-forward), which is why validation compares statistics, never
event streams.
"""

from __future__ import annotations

from typing import List, Optional

from collections import defaultdict

from repro.analysis.energy import energy_counts
from repro.sampling.estimate import extrapolate
from repro.sampling.ff import COST_KINDS, FastForwardState
from repro.sampling.spec import SamplingError, SamplingSpec

#: Per-core cycle categories that represent a running core doing work —
#: the basis of the fast-forward calibration.  ``idle`` and ``uli`` are
#: excluded: fast-forward already models idle backoff and ULI waits with
#: their real latencies, so folding them into the charges would
#: double-count them.
_BUSY_CATEGORIES = ("compute", "load", "store", "amo", "flush", "invalidate")


class SamplingController:
    """Owns the sampling schedule and window records for one run."""

    def __init__(self, machine, spec: SamplingSpec):
        if machine._ckpt_log is not None:
            raise SamplingError(
                "sampled runs cannot be checkpointed: fast-forward slices "
                "advance many ops per event, so the send log cannot be cut "
                "at an event boundary"
            )
        self.machine = machine
        self.sim = machine.sim
        self.spec = spec
        #: Completed measurement-window delta records (see _close_window).
        self.windows: List[dict] = []
        #: Fast-forward gap records: instructions executed, pseudo-cycles
        #: elapsed, and the indices of the neighbouring windows whose
        #: rates estimate the gap's real duration.
        self.gaps: List[dict] = []
        self.ff_instructions = 0
        #: Final simulator clock (real + pseudo), captured by finalize().
        self.end_cycle: Optional[int] = None
        #: Current phase: idle | warmup | measure | fastforward | done.
        self.phase = "idle"
        self._window_start: Optional[dict] = None
        self._gap: Optional[dict] = None
        self._ff: Optional[FastForwardState] = None
        self._n_cores = max(1, len(machine.cores))
        self._period_index = 0
        self._target: Optional[int] = None
        self._on_target = None
        machine.sampling = self

    # ------------------------------------------------------------------
    # Phase machine
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the initial warmup; must be called before the first event."""
        if self.sim.now != 0 or self.sim.events_executed or self.sim.events_fused:
            raise SamplingError("SamplingController.start() must precede the run")
        self.phase = "warmup"
        self._arm(self.spec.warmup, self._begin_window)

    def _arm(self, instructions: int, action) -> None:
        """Fire ``action`` once ``instructions`` more have executed."""
        self._target = self.machine.total_instructions() + instructions
        self._on_target = action
        self._check_target()

    def _check_target(self) -> None:
        remaining = self._target - self.machine.total_instructions()
        if remaining <= 0:
            action = self._on_target
            self._target = None
            self._on_target = None
            action()
            return
        # One instruction per core per cycle is the machine's hard ceiling,
        # so the target cannot be crossed sooner than this; re-check then.
        delay = -(-remaining // self._n_cores)
        self.sim.schedule(delay, self._check_target, daemon=True)

    def _gap_budget(self) -> int:
        """Jittered fast-forward budget for the next period.

        A fixed 32-bit LCG step keyed by the period index gives a
        deterministic uniform ±25% jitter around ``U`` — identical for
        every run of the same spec, but aperiodic enough that window
        placement cannot alias with instruction-periodic program
        structure.
        """
        idx = self._period_index
        self._period_index += 1
        r = ((idx * 2654435761 + 1013904223) & 0xFFFFFFFF) / 2.0**32
        return max(1, int(round(self.spec.interval * (0.75 + 0.5 * r))))

    def _snapshot(self) -> dict:
        machine = self.machine
        return {
            "cycle": self.sim.now,
            "instructions": machine.total_instructions(),
            "stats": machine.stats.flatten(),
            "traffic": dict(machine.traffic.bytes),
            "energy": energy_counts(machine),
        }

    def _begin_window(self) -> None:
        self.phase = "measure"
        self._window_start = self._snapshot()
        self._arm(self.spec.window, self._end_window)

    def _end_window(self) -> None:
        self._close_window()
        self._enter_fastforward()

    def _close_window(self) -> None:
        start = self._window_start
        if start is None:
            return
        self._window_start = None
        end = self._snapshot()
        cycles = end["cycle"] - start["cycle"]
        instructions = end["instructions"] - start["instructions"]
        if cycles <= 0 or instructions <= 0:
            return
        start_stats = start["stats"]
        start_traffic = start["traffic"]
        start_energy = start["energy"]
        stats_delta = {
            k: v - start_stats.get(k, 0)
            for k, v in end["stats"].items()
            if v != start_stats.get(k, 0)
        }
        # Calibrate the next fast-forward period's pseudo-time from this
        # window: per-op-kind average latencies (cycles_load / ops_load,
        # ...) so the steal protocol's contended AMOs and mailbox loads
        # keep their detailed cost relative to work, plus the blended
        # busy CPI used only to size fast-forward slices (see
        # FastForwardState).
        cyc = defaultdict(float)
        ops = defaultdict(int)
        spin = 0
        for k, v in stats_delta.items():
            if not k.startswith("machine.core_"):
                continue
            leaf = k.rpartition(".")[2]
            if leaf.startswith("cycles_"):
                cyc[leaf[7:]] += v
            elif leaf.startswith("ops_"):
                ops[leaf[4:]] += v
            elif leaf == "instructions_spin":
                spin += v
        busy = sum(cyc[cat] for cat in _BUSY_CATEGORIES)
        self.windows.append(
            {
                "cycles": cycles,
                "instructions": instructions,
                # Timing-invariant share of the window's instructions: what
                # the estimator extrapolates along (repro.sampling.estimate).
                "work_instructions": max(0, instructions - spin),
                "busy_cpi": busy / instructions,
                "ff_costs": {
                    kind: cyc[kind] / ops[kind] if ops.get(kind) else 1.0
                    for kind in COST_KINDS
                },
                "stats": stats_delta,
                "traffic": {
                    k: v - start_traffic.get(k, 0) for k, v in end["traffic"].items()
                },
                "energy": {
                    k: v - start_energy.get(k, 0) for k, v in end["energy"].items()
                },
            }
        )

    def _enter_fastforward(self) -> None:
        machine = self.machine
        machine.prepare_fastforward()
        self.phase = "fastforward"
        self._gap = {
            # Index of the window preceding this gap (None when it was
            # discarded as degenerate) and of the next one to complete.
            "before_idx": len(self.windows) - 1 if self.windows else None,
            "after_idx": len(self.windows),
            "enter_cycle": self.sim.now,
        }
        last = self.windows[-1] if self.windows else None
        ff = FastForwardState(
            machine.memory,
            budget=self._gap_budget(),
            quantum=self.spec.quantum,
            cpi=last["busy_cpi"] if last else 1.0,
            costs=last["ff_costs"] if last else None,
            on_exhausted=self._exit_fastforward,
            stretch=self.spec.stretch,
        )
        self._ff = ff
        for core in machine.cores:
            core._ff = ff

    def _close_gap(self, ff: FastForwardState) -> None:
        self.machine.invalidate_ff_lines(ff.written)
        gap = self._gap
        self._gap = None
        self.ff_instructions += ff.consumed
        if ff.consumed <= 0:
            return
        gap["ff_instr"] = ff.consumed
        gap["pseudo_cycles"] = self.sim.now - gap.pop("enter_cycle")
        self.gaps.append(gap)

    def _exit_fastforward(self, ff: FastForwardState) -> None:
        # Fired synchronously from the slice that crossed the budget; the
        # parked slice continuations then resume in detailed mode.
        self._ff = None
        for core in self.machine.cores:
            core._ff = None
        self._close_gap(ff)
        self.phase = "warmup"
        self._arm(self.spec.warmup, self._begin_window)

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close out the run: disarm fast-forward, keep partial records."""
        if self._ff is not None:
            ff = self._ff
            self._ff = None
            for core in self.machine.cores:
                core._ff = None
            self._close_gap(ff)
        self._close_window()
        self.end_cycle = self.sim.now
        self.phase = "done"

    def estimates(self) -> Optional[dict]:
        """Full-run estimates (None: run never left the initial warmup)."""
        if self.end_cycle is None:
            self.finalize()
        return extrapolate(
            self.machine, self.spec, self.windows, self.gaps, self.end_cycle
        )

    def progress(self) -> dict:
        """Small introspection dict for heartbeats / `repro top`."""
        out = {
            "spec": self.spec.spec_str(),
            "phase": self.phase,
            "windows": len(self.windows),
            "ff_periods": len(self.gaps),
            "ff_instructions": self.ff_instructions,
        }
        if self._ff is not None:
            out["ff_consumed"] = self._ff.consumed
            out["ff_budget"] = self._ff.budget
        return out
