"""Differential validation: sampled estimates vs exact runs.

On scales where exact simulation is affordable, run each entry twice —
once exact, once sampled with the given spec — and report the estimation
error per statistic plus the wall-clock speedup.  This is the harness
behind the acceptance bar (cycles/traffic error <= 5% on validation
scales) and the CI ``sample-smoke`` job.

Both runs go through :func:`repro.harness.runner.run_experiment` with
caching disabled, so the comparison exercises the exact production path
(including the mode firewall in the store key).  The sampled run is a
different legal schedule of the same program — steal timing shifts during
fast-forward — so architectural counts that depend on the schedule (task
count is fixed, steal count is not) are reported but not error-bounded;
the bounded quantities are the *estimated* rates: cycles and traffic.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sampling.spec import SamplingSpec

#: (app, kind, scale) entries where sampling is *accurate*: exact runs
#: are still affordable, the run is long enough for >= 7 measurement
#: windows at the default spec (window variance is the dominant error
#: source below ~5 windows), and the app's phase behaviour is gradual
#: enough that per-window calibration tracks it.  These are the entries
#: the 5% acceptance bar is enforced on — and deliberately *only* these:
#: traversal apps whose per-round cost collapses (ligra-cc, ligra-tc)
#: and steal-storm microbenchmarks (cilk5-cs) exceed the bar at every
#: spec we tried, as do the write-through/MESI configs whose traffic is
#: dominated by rare bursty flush storms the windows undersample.  Those
#: stay exact-only; see DESIGN.md §10 ("Where sampling is allowed").
DEFAULT_VALIDATION_MIX: Tuple[Tuple[str, str, str], ...] = (
    ("ligra-bc", "bt-hcc-dnv", "paper"),
    ("ligra-bfs", "bt-hcc-dnv", "paper"),
)

#: Default spec for validation runs.  The warmup is deliberately long
#: relative to the window: entering a detailed phase from fast-forward
#: the L1s are cold (the L2 stays warm — Machine.prepare_fastforward),
#: and under-warmed windows read as systematic CPI overestimates for
#: cache-resident apps.  Short fast-forward periods bound the schedule
#: divergence each period can accumulate (see DESIGN.md §10).
DEFAULT_VALIDATION_SPEC = "40000:16000:4000"


def _rel_err(estimate: float, exact: float) -> float:
    if exact == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - exact) / abs(exact)


def validate_entry(
    app: str,
    kind: str,
    scale: str,
    spec: SamplingSpec,
    app_overrides: Optional[dict] = None,
) -> Dict:
    """Run one entry exact and sampled; return per-stat errors."""
    from repro.harness.runner import run_experiment

    t0 = time.perf_counter()
    exact = run_experiment(
        app, kind, scale, use_cache=False, app_overrides=app_overrides
    )
    wall_exact = time.perf_counter() - t0
    t0 = time.perf_counter()
    sampled = run_experiment(
        app, kind, scale, use_cache=False, app_overrides=app_overrides,
        sampling=spec,
    )
    wall_sampled = time.perf_counter() - t0
    return {
        "app": app,
        "kind": kind,
        "scale": scale,
        "exact_cycles": exact.cycles,
        "sampled_cycles": sampled.cycles,
        "cycles_error": _rel_err(sampled.cycles, exact.cycles),
        "traffic_error": _rel_err(sampled.total_traffic, exact.total_traffic),
        "l1_hit_rate_error": _rel_err(
            sampled.l1_hit_rate_tiny, exact.l1_hit_rate_tiny
        ),
        "instructions_drift": _rel_err(sampled.instructions, exact.instructions),
        "tasks_identical": sampled.tasks == exact.tasks,
        "wall_exact_s": wall_exact,
        "wall_sampled_s": wall_sampled,
        "speedup": wall_exact / wall_sampled if wall_sampled > 0 else 0.0,
        "sampling": sampled.sampling,
    }


def validate_mix(
    mix: Optional[Sequence[Tuple[str, str, str]]] = None,
    spec=DEFAULT_VALIDATION_SPEC,
    app_overrides: Optional[dict] = None,
) -> Dict:
    """Validate a mix of entries; return errors plus their distribution."""
    spec = SamplingSpec.coerce(spec)
    entries = [
        validate_entry(app, kind, scale, spec, app_overrides=app_overrides)
        for app, kind, scale in (mix or DEFAULT_VALIDATION_MIX)
    ]
    cycle_errors = [e["cycles_error"] for e in entries]
    traffic_errors = [e["traffic_error"] for e in entries]

    def _dist(errors: List[float]) -> Dict[str, float]:
        ordered = sorted(errors)
        return {
            "mean": sum(ordered) / len(ordered),
            "max": ordered[-1],
            "p50": ordered[len(ordered) // 2],
        }

    wall_exact = sum(e["wall_exact_s"] for e in entries)
    wall_sampled = sum(e["wall_sampled_s"] for e in entries)
    return {
        "spec": spec.as_dict(),
        "entries": entries,
        "aggregate": {
            "cycles_error": _dist(cycle_errors),
            "traffic_error": _dist(traffic_errors),
            "wall_exact_s": wall_exact,
            "wall_sampled_s": wall_sampled,
            "speedup": wall_exact / wall_sampled if wall_sampled > 0 else 0.0,
        },
    }


def format_validation(payload: Dict) -> str:
    """Human-readable error table for the CLI / CI logs."""
    lines = [
        f"{'app':<12} {'config':<16} {'scale':<6} {'cyc err':>8} "
        f"{'tfc err':>8} {'windows':>8} {'speedup':>8}"
    ]
    for e in payload["entries"]:
        windows = (e.get("sampling") or {}).get("windows", 0)
        lines.append(
            f"{e['app']:<12} {e['kind']:<16} {e['scale']:<6} "
            f"{100 * e['cycles_error']:>7.2f}% {100 * e['traffic_error']:>7.2f}% "
            f"{windows:>8} {e['speedup']:>7.2f}x"
        )
    agg = payload["aggregate"]
    lines.append(
        f"-- mix: cycles err mean {100 * agg['cycles_error']['mean']:.2f}% "
        f"max {100 * agg['cycles_error']['max']:.2f}%, traffic err mean "
        f"{100 * agg['traffic_error']['mean']:.2f}% max "
        f"{100 * agg['traffic_error']['max']:.2f}%, speedup "
        f"{agg['speedup']:.2f}x"
    )
    return "\n".join(lines)
