"""Sampling specification: the ``U:W:D[:Q[:S]]`` knob.

One periodic-sampling run alternates

* a detailed **warmup** of ``W`` machine-wide instructions (caches
  re-warm after the drain, statistics discarded),
* a detailed **measurement window** of ``D`` machine-wide instructions
  (everything measured),
* a functional **fast-forward period** of ``U`` instructions
  (architectural state advances exactly, no timing), executed in slices
  of ``Q`` instructions per core per event.

All three are *instruction* counts: keeping every phase in instruction
space makes window placement periodic in instruction space end to end,
the design under which the estimators in ``repro.sampling.estimate`` are
unbiased (a cycle-bounded warmup or window would phase-lock onto
burst/stall oscillations of task-parallel runs — see the controller
docstring).

``S`` (default 1 = off) stretches idle backoffs during fast-forward by
that factor, thinning the spin-wait instructions that dominate dynamic
instruction counts on large machines — a *throughput* knob that buys
several extra × of wall-clock speedup at a measurable accuracy cost:
stretched polling redistributes work more slowly, so windows see a
machine the exact schedule never quite produces.  Validation specs keep
``S = 1``; the large-scale benchmark mix uses ``S = 8`` and reports its
error (see DESIGN.md §10).

The run always *starts* detailed (warmup from instruction 0, then the
first window) so early-phase behaviour anchors the estimate, and it ends
wherever the app ends — a partially complete window still counts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

#: Default instructions per fast-forward slice.  Large enough that slice
#: overhead (event dispatch, budget bookkeeping) amortizes; small enough
#: that cores interleave and ULI round-trips stay responsive.
DEFAULT_QUANTUM = 256


class SamplingError(ValueError):
    """Invalid sampling spec or an illegal sampled-run combination."""


@dataclass(frozen=True)
class SamplingSpec:
    """Parsed ``--sample`` specification."""

    interval: int  #: U — instructions fast-forwarded per period (±25% jitter)
    warmup: int  #: W — detailed warmup instructions before each window
    window: int  #: D — detailed measured instructions per window
    quantum: int = DEFAULT_QUANTUM  #: Q — instructions per FF slice
    stretch: int = 1  #: S — idle-backoff stretch during FF (1 = off)

    def __post_init__(self):
        if self.interval <= 0:
            raise SamplingError(f"sampling interval must be > 0, got {self.interval}")
        if self.warmup < 0:
            raise SamplingError(f"sampling warmup must be >= 0, got {self.warmup}")
        if self.window <= 0:
            raise SamplingError(f"sampling window must be > 0, got {self.window}")
        if self.quantum <= 0:
            raise SamplingError(f"sampling quantum must be > 0, got {self.quantum}")
        if self.stretch < 1:
            raise SamplingError(f"sampling stretch must be >= 1, got {self.stretch}")

    @classmethod
    def parse(cls, text: str) -> "SamplingSpec":
        """Parse ``"U:W:D"``, ``"U:W:D:Q"``, or ``"U:W:D:Q:S"``."""
        parts = str(text).split(":")
        if len(parts) not in (3, 4, 5):
            raise SamplingError(
                f"sampling spec must be U:W:D, U:W:D:Q, or U:W:D:Q:S, got {text!r}"
            )
        try:
            numbers = [int(p) for p in parts]
        except ValueError:
            raise SamplingError(f"non-integer field in sampling spec {text!r}") from None
        if len(numbers) == 3:
            numbers.append(DEFAULT_QUANTUM)
        return cls(*numbers)

    @classmethod
    def coerce(cls, value) -> "SamplingSpec | None":
        """Accept None, a spec string, a dict, or a SamplingSpec."""
        if value is None or isinstance(value, SamplingSpec):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls(**value)
        raise SamplingError(f"cannot interpret {value!r} as a sampling spec")

    def as_dict(self) -> dict:
        return asdict(self)

    def spec_str(self) -> str:
        """Canonical ``U:W:D[:Q[:S]]`` form; trailing default fields are
        omitted (round-trips what the user typed on the CLI)."""
        base = f"{self.interval}:{self.warmup}:{self.window}"
        if self.stretch != 1:
            return f"{base}:{self.quantum}:{self.stretch}"
        if self.quantum != DEFAULT_QUANTUM:
            return f"{base}:{self.quantum}"
        return base
