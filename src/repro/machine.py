"""Machine builder: wires a complete simulated system from a SystemConfig.

A :class:`Machine` owns the simulator clock, the data mesh and ULI mesh,
main memory and its allocator, the banked directory L2, one L1 + core per
tile, and the global statistics tree.  Runtimes (``repro.core``) and
applications run on top of it.

The machine also provides *host access* to simulated memory: experiment
setup writes inputs directly into backing DRAM before the program starts
(the way a host would load a binary's data segment), and result checking
reads the coherent view after the program halts.
"""

from __future__ import annotations

from typing import List

from repro.config.system import SystemConfig
from repro.cores.context import ThreadContext
from repro.cores.core import Core
from repro.engine.rng import XorShift64
from repro.engine.simulator import Simulator
from repro.engine.stats import StatGroup
from repro.mem.address import WORD_BYTES, WORDS_PER_LINE, AddressSpace
from repro.mem.backing import MainMemory
from repro.mem.dram import DramController
from repro.mem.l1 import PROTOCOLS
from repro.mem.l2 import SharedL2
from repro.mem.traffic import TrafficMeter
from repro.noc.mesh import Mesh, MeshConfig
from repro.noc.uli import UliNetwork
from repro.trace.tracer import NULL_TRACER


class Machine:
    """A fully wired simulated big.TINY (or pure-big) system."""

    def __init__(self, config: SystemConfig, tracer=None, faults=None, sanitize=False):
        config.validate()
        self.config = config
        self.sim = Simulator(max_cycles=config.max_cycles)
        self.stats = StatGroup("machine")
        self.rng = XorShift64(config.seed)
        #: Event tracer (repro.trace): NULL_TRACER unless a run is traced.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fault injector (repro.faults): None unless a FaultPlan is active.
        #: Uses a private RNG so machine.rng streams (and thus unfaulted
        #: timing) are untouched; wired into components below.
        from repro.faults import FaultPlan, make_injector

        self.fault_plan = FaultPlan.coerce(faults)
        self.fault_injector = make_injector(
            self.fault_plan,
            config,
            config.n_cores,
            self.stats,
            self.sim,
            self.tracer,
        )

        self.memory = MainMemory()
        self.address_space = AddressSpace()
        self.traffic = TrafficMeter()
        self.mesh = Mesh(MeshConfig(rows=config.mesh_rows, cols=config.mesh_cols))
        self.uli_network = UliNetwork(
            self.mesh, self.stats, sim=self.sim, tracer=self.tracer
        )
        if self.fault_injector is not None:
            self.mesh.fault_injector = self.fault_injector
            self.uli_network.fault_injector = self.fault_injector

        per_mc_bandwidth = config.dram_total_bytes_per_cycle / config.n_l2_banks
        dram = [
            DramController(
                b,
                self.stats,
                access_latency=config.dram_latency,
                bytes_per_cycle=per_mc_bandwidth,
            )
            for b in range(config.n_l2_banks)
        ]
        for controller in dram:
            controller.tracer = self.tracer
            if self.fault_injector is not None:
                controller.fault_injector = self.fault_injector
        self.l2 = SharedL2(
            mesh=self.mesh,
            memory=self.memory,
            traffic=self.traffic,
            stats=self.stats,
            n_banks=config.n_l2_banks,
            bank_size_bytes=config.l2_bank_bytes,
            assoc=config.l2_assoc,
            dram_controllers=dram,
        )

        self.cores: List[Core] = []
        self.l1s = []
        for core_id in range(config.n_cores):
            protocol = config.protocol_for(core_id)
            params = config.l1_params_for(core_id)
            l1 = PROTOCOLS[protocol](
                core_id, self.l2, self.stats, params.size_bytes, params.assoc
            )
            l1.tracer = self.tracer
            if self.fault_injector is not None:
                l1.fault_injector = self.fault_injector
            is_big = config.is_big_core(core_id)
            core = Core(
                core_id=core_id,
                sim=self.sim,
                l1=l1,
                stats=self.stats,
                is_big=is_big,
                issue_width=config.big_issue_width if is_big else 1,
                mlp_factor=config.big_mlp_factor if is_big else 1.0,
                uli_network=self.uli_network,
                uli_entry_latency=(
                    config.uli_entry_latency_big if is_big else config.uli_entry_latency_tiny
                ),
                tracer=self.tracer,
            )
            self.l1s.append(l1)
            self.cores.append(core)
        for core in self.cores:
            core.attach_peers(self.cores)

        #: Invariant checker (repro.sanitize): None unless requested.
        self.sanitizer = None
        if sanitize:
            from repro.sanitize import Sanitizer

            self.sanitizer = Sanitizer(self)
            self.sanitizer.install()

        #: Backref set by WorkStealingRuntime.__init__; checkpoints need the
        #: runtime's thread contexts and progress counters.
        self.runtime = None
        #: Machine-wide send log for checkpoint/restore, shared by every
        #: core (see repro.engine.checkpoint).  None = checkpointing off,
        #: which keeps the core hot loop at a single ``is not None`` test.
        self._ckpt_log = None
        #: Sampling controller backref (repro.sampling): None for exact
        #: runs.  Observability (heartbeats) reads phase/progress from it.
        self.sampling = None

    # ------------------------------------------------------------------
    # Checkpoint/restore (repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def enable_checkpointing(self) -> None:
        """Start recording the send log; must precede the first event."""
        if self.sim.now != 0 or self.sim.events_executed or self.sim.events_fused:
            raise RuntimeError(
                "enable_checkpointing() must be called before the run starts"
            )
        if self._ckpt_log is None:
            self._ckpt_log = []
            for core in self.cores:
                core._ckpt_log = self._ckpt_log

    def snapshot(self) -> dict:
        """Capture the complete deterministic run state (between events)."""
        from repro.engine.checkpoint import capture_run_state

        return capture_run_state(self)

    def restore(self, snap: dict, root, main_tid: int = 0) -> None:
        """Restore a run snapshot into this freshly built machine."""
        from repro.engine.checkpoint import restore_run_state

        restore_run_state(self, snap, root, main_tid)

    # ------------------------------------------------------------------
    # Functional fast-forward support (repro.sampling)
    # ------------------------------------------------------------------
    def prepare_fastforward(self) -> None:
        """Make flat memory the single coherent view, keeping the L2 warm.

        Called by the sampling controller when a detailed window ends:
        after this, ``self.memory`` holds the architectural value of every
        word and fast-forward slices can read/write it directly.  Not an
        architectural operation — no latencies, stats, or traffic are
        charged.

        The L1s are dropped entirely (they are small and re-warm within a
        few thousand instructions), but the L2 keeps its resident lines as
        clean, unowned, sharer-free copies — exactly the state
        ``_ensure_line`` creates on a DRAM fill.  Emptying the L2 as well
        would force every measurement window to re-fetch the entire warm
        working set from DRAM, a per-window cold-start bias that for
        cache-resident, high-IPC workloads dwarfs the true window cost.
        Lines fast-forward *writes* are purged on exit
        (:meth:`invalidate_ff_lines`), so surviving lines always match
        memory.

        Order matters: L2 dirty words go to memory first, then L1 dirty
        words overwrite them — under SWMR a dirty L1 copy is strictly
        fresher than any stale L2 copy of the same word.  An L1 dirty
        word is also patched into any resident L2 copy of its line, which
        would otherwise go stale the moment its owner's data is only
        written to memory.
        """
        l2 = self.l2
        for bank in l2.banks:
            for line in bank.tags.lines():
                if line.dirty_mask:
                    self.memory.write_words(line.addr, line.data, line.dirty_mask)
                    line.dirty_mask = 0
                line.sharers.clear()
                line.owner = None
        for l1 in self.l1s:
            for line in l1.tags.lines():
                mask = line.dirty_mask
                if mask:
                    self.memory.write_words(line.addr, line.data, mask)
                    l2line = l2.banks[l2.bank_of(line.addr)].tags.peek(line.addr)
                    if l2line is not None:
                        for i in range(WORDS_PER_LINE):
                            if mask & (1 << i):
                                l2line.data[i] = line.data[i]
            l1.tags.clear()
            l1._store_buffer.clear()

    def invalidate_ff_lines(self, line_addrs) -> None:
        """Purge L2 copies of lines fast-forward wrote (exit-time fixup).

        The L1s are empty throughout a fast-forward period (dropped on
        entry, and fast-forward never fills them), so only the warm L2
        can hold a stale copy of a line whose words fast-forward mutated
        in flat memory.  Removing the line makes the next detailed access
        re-fetch it from memory through the ordinary miss path.
        """
        l2 = self.l2
        for base in line_addrs:
            l2.banks[l2.bank_of(base)].tags.remove(base)

    # ------------------------------------------------------------------
    # Thread contexts
    # ------------------------------------------------------------------
    def make_contexts(self) -> List[ThreadContext]:
        """One hardware thread per core; tid == core id."""
        n = self.config.n_cores
        return [
            ThreadContext(self.cores[tid], tid, n, self.rng.fork()) for tid in range(n)
        ]

    # ------------------------------------------------------------------
    # Host access to simulated memory (setup / checking only)
    # ------------------------------------------------------------------
    def host_write_word(self, addr: int, value: int) -> None:
        """Write a word directly into DRAM (pre-run input loading)."""
        self.memory.write_word(addr, value)

    def host_write_array(self, base: int, values) -> None:
        for i, value in enumerate(values):
            self.memory.write_word(base + i * WORD_BYTES, value)

    def host_read_word(self, addr: int) -> int:
        """Coherent post-run read: checks L1 owners, then L2, then DRAM."""
        for l1 in self.l1s:
            line = l1.resident(addr)
            if line is not None and line.word_dirty(self._word_idx(addr)):
                return line.data[self._word_idx(addr)]
        return self.l2.peek_word(addr)

    def host_read_array(self, base: int, n_words: int) -> List[int]:
        return [self.host_read_word(base + i * WORD_BYTES) for i in range(n_words)]

    def memory_digest(self, regions) -> str:
        """sha256 over the coherent view of ``regions`` (fuzz end-state check).

        Timing-only fault plans must leave this digest — taken over the
        application's own allocations — byte-identical to a fault-free run.
        """
        import hashlib

        h = hashlib.sha256()
        for region in regions:
            h.update(region.name.encode())
            for word in self.host_read_array(region.base, region.size // WORD_BYTES):
                h.update((word & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
        return h.hexdigest()

    @staticmethod
    def _word_idx(addr: int) -> int:
        from repro.mem.address import word_index

        return word_index(addr)

    # ------------------------------------------------------------------
    # Aggregates for the harness
    # ------------------------------------------------------------------
    def tiny_core_ids(self) -> List[int]:
        return [c for c in range(self.config.n_cores) if not self.config.is_big_core(c)]

    def big_core_ids(self) -> List[int]:
        return [c for c in range(self.config.n_cores) if self.config.is_big_core(c)]

    def core_labels(self) -> dict:
        """Display labels for trace tracks: {core_id: "core N (big|tiny)"}."""
        return {
            c: f"core {c} ({'big' if self.config.is_big_core(c) else 'tiny'})"
            for c in range(self.config.n_cores)
        }

    def aggregate_l1_stats(self, core_ids=None) -> dict:
        """Sum L1 counters over a set of cores (default: all)."""
        if core_ids is None:
            core_ids = range(self.config.n_cores)
        keys = (
            "loads",
            "load_hits",
            "stores",
            "store_hits",
            "amos",
            "lines_invalidated",
            "lines_flushed",
            "invalidate_ops",
            "flush_ops",
            "evictions",
        )
        out = {k: 0 for k in keys}
        for cid in core_ids:
            l1_stats = self.l1s[cid].stats
            for k in keys:
                out[k] += l1_stats.get(k)
        return out

    def l1_hit_rate(self, core_ids=None) -> float:
        agg = self.aggregate_l1_stats(core_ids)
        accesses = agg["loads"] + agg["stores"]
        if accesses == 0:
            return 1.0
        return (agg["load_hits"] + agg["store_hits"]) / accesses

    def aggregate_core_breakdown(self, core_ids=None) -> dict:
        """Summed cycle breakdown (Figure 7 categories)."""
        from repro.cores.core import TIME_CATEGORIES

        if core_ids is None:
            core_ids = range(self.config.n_cores)
        out = {cat: 0 for cat in TIME_CATEGORIES}
        for cid in core_ids:
            breakdown = self.cores[cid].cycle_breakdown()
            for cat, cycles in breakdown.items():
                out[cat] += cycles
        return out

    def total_instructions(self) -> int:
        return sum(core.stats.get("instructions") for core in self.cores)
