"""``repro report`` — aggregate a run ledger into per-sweep summaries.

The ledger (``repro.obs.ledger``) records one line per ``run_experiment``;
this module folds those lines into the accounting a sweep owner actually
asks for: how many points ran hot vs. from the store, what failed and how,
where the wall time went, and whether several hosts contributed.  The
summary is computed from the ledger alone — the acceptance check is that
a grid's hit/miss/failure counts reproduce from this file without
consulting the result store.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.ledger import read_ledger_with_errors

#: Outcomes in display order; anything else lands in "other".  "parked"
#: attempts (preempted runs, repro.serve) are accounted but not simulated:
#: the eventual resumed attempt contributes the "ok".
OUTCOMES = ("ok", "store-hit", "memo-hit", "failed", "parked")


def _group_key(entry: dict) -> Tuple[str, str, str, str]:
    return (
        str(entry.get("app", "?")),
        str(entry.get("kind", "?")),
        str(entry.get("scale", "?")),
        str(entry.get("mode") or "exact"),
    )


def aggregate(entries: List[dict], malformed: int = 0) -> dict:
    """Fold ledger entries into the report payload."""
    totals = {outcome: 0 for outcome in OUTCOMES}
    totals["other"] = 0
    wall = {outcome: 0.0 for outcome in OUTCOMES}
    wall["other"] = 0.0
    groups: Dict[Tuple[str, str, str, str], dict] = {}
    failures: List[dict] = []
    hosts = set()
    # Sampled and exact runs are distinct experiments (different memo and
    # store keys) and never aggregate together: wall time and run counts
    # are accounted per mode, and a group row is (app, kind, scale, mode).
    modes: Dict[str, dict] = {}
    for entry in entries:
        outcome = entry.get("outcome", "other")
        bucket = outcome if outcome in totals else "other"
        totals[bucket] += 1
        wall_s = float(entry.get("wall_s") or 0.0)
        wall[bucket] += wall_s
        host = entry.get("host") or {}
        hosts.add((host.get("node"), host.get("python")))
        mode = str(entry.get("mode") or "exact")
        mode_bucket = modes.setdefault(mode, {"runs": 0, "wall_s": 0.0, "specs": set()})
        mode_bucket["runs"] += 1
        mode_bucket["wall_s"] += wall_s
        if entry.get("sampling"):
            mode_bucket["specs"].add(str(entry["sampling"]))
        group = groups.setdefault(
            _group_key(entry),
            {outcome: 0 for outcome in OUTCOMES} | {"other": 0, "wall_s": 0.0},
        )
        group[bucket] += 1
        group["wall_s"] += wall_s
        if bucket == "failed":
            failures.append(
                {
                    "app": entry.get("app"),
                    "kind": entry.get("kind"),
                    "scale": entry.get("scale"),
                    "error": entry.get("error"),
                    "message": entry.get("message"),
                    "source": entry.get("source", "runner"),
                    "ts": entry.get("ts"),
                }
            )
    runs = len(entries)
    simulated = totals["ok"] + totals["failed"]
    return {
        "runs": runs,
        "totals": totals,
        "simulated": simulated,
        "hits": totals["store-hit"] + totals["memo-hit"],
        "wall_s": wall,
        "wall_total_s": sum(wall.values()),
        "modes": {
            mode: {
                "runs": bucket["runs"],
                "wall_s": bucket["wall_s"],
                "specs": sorted(bucket["specs"]),
            }
            for mode, bucket in sorted(modes.items())
        },
        "groups": [
            {
                "app": key[0],
                "kind": key[1],
                "scale": key[2],
                "mode": key[3],
                **counts,
            }
            for key, counts in sorted(groups.items())
        ],
        "failures": failures,
        "hosts": len(hosts),
        "malformed_lines": malformed,
    }


def report_from_file(path: str) -> dict:
    entries, malformed, torn_tail = read_ledger_with_errors(path)
    summary = aggregate(entries, malformed)
    summary["ledger"] = str(path)
    summary["torn_tail"] = torn_tail
    return summary


def format_summary(summary: dict) -> str:
    """Human-readable report for the CLI."""
    totals = summary["totals"]
    wall = summary["wall_s"]
    lines = [
        f"ledger: {summary.get('ledger', '-')}",
        f"runs: {summary['runs']}  "
        f"ok:{totals['ok']}  store-hit:{totals['store-hit']}  "
        f"memo-hit:{totals['memo-hit']}  failed:{totals['failed']}"
        + (f"  parked:{totals['parked']}" if totals.get("parked") else "")
        + (f"  other:{totals['other']}" if totals["other"] else ""),
        f"wall: {summary['wall_total_s']:.2f}s total  "
        f"(simulated {wall['ok'] + wall['failed']:.2f}s, "
        f"hits {wall['store-hit'] + wall['memo-hit']:.2f}s)",
        "modes: "
        + "  ".join(
            f"{mode}:{bucket['runs']} ({bucket['wall_s']:.2f}s"
            + (
                f"; specs {', '.join(bucket['specs'])}"
                if bucket["specs"]
                else ""
            )
            + ")"
            for mode, bucket in summary.get("modes", {}).items()
        ),
        f"hosts: {summary['hosts']}"
        + (
            f"  [{summary['malformed_lines']} malformed line(s) skipped]"
            if summary["malformed_lines"]
            else ""
        )
        + (
            "  [torn final line (crashed writer) skipped]"
            if summary.get("torn_tail")
            else ""
        ),
        "",
        f"{'app':<14} {'config':<16} {'scale':<6} {'mode':<8} {'ok':>4} "
        f"{'store':>5} {'memo':>5} {'fail':>4} {'wall_s':>8}",
    ]
    for group in summary["groups"]:
        lines.append(
            f"{group['app']:<14} {group['kind']:<16} {group['scale']:<6} "
            f"{group.get('mode', 'exact'):<8} "
            f"{group['ok']:>4} {group['store-hit']:>5} {group['memo-hit']:>5} "
            f"{group['failed']:>4} {group['wall_s']:>8.2f}"
        )
    if summary["failures"]:
        lines.append("")
        lines.append("failures:")
        for failure in summary["failures"]:
            lines.append(
                f"  {failure['app']}/{failure['kind']}/{failure['scale']}: "
                f"{failure['error']} ({failure.get('source', 'runner')})"
                + (f" — {failure['message']}" if failure.get("message") else "")
            )
    return "\n".join(lines)


def run_report(
    ledger_path: Optional[str] = None, as_json: bool = False
) -> int:
    """The ``repro report`` entry point; returns a process exit code."""
    if ledger_path is None:
        from repro.harness.runner import get_result_store

        store = get_result_store()
        if store is None:
            print(
                "repro report: no ledger given and no result store configured "
                "(pass a ledger path or set REPRO_RESULTS_DIR)"
            )
            return 2
        ledger_path = str(store.root / "ledger.jsonl")
    try:
        summary = report_from_file(ledger_path)
    except OSError as exc:
        print(f"repro report: cannot read ledger: {exc}")
        return 2
    if as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0
