"""``repro top`` — a live, curses-free view over heartbeat snapshots.

Reads every ``*.json`` heartbeat file in a directory (each one atomically
replaced by a :class:`repro.obs.heartbeat.HeartbeatWriter` in some other
process), renders a top-style table, and repeats.  No curses: one ANSI
home+clear escape per frame keeps the output a plain stdout stream that
works in CI logs, ``watch``, and dumb terminals alike (``--once`` skips
the escape entirely and prints a single frame).

Because writers use temp-file + ``os.replace``, a reader can never observe
a torn snapshot; files that fail to parse anyway (foreign files, future
schemas) are counted and skipped, never fatal.

``--prom FILE`` additionally maintains a Prometheus textfile with sweep
aggregates on every refresh, which is the scrape hook the future sweep
server gets for free.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Tuple

from repro.obs.heartbeat import HEARTBEAT_SCHEMA
from repro.obs.metrics import write_prometheus_textfile

#: Clear screen + cursor home, the whole "TUI".
_ANSI_HOME = "\x1b[H\x1b[J"

#: A run whose file hasn't been replaced for this many seconds is flagged
#: stale (worker wedged but still alive).  Overridable per call
#: (``--stale-after``) or process-wide via ``REPRO_TOP_STALE_S``.
STALE_AFTER_S = 30.0


def stale_after_default() -> float:
    """The effective stale threshold (env override, else the constant)."""
    try:
        return float(os.environ.get("REPRO_TOP_STALE_S", ""))
    except ValueError:
        return STALE_AFTER_S


def _pid_alive(pid) -> bool:
    """Best-effort liveness probe; unknown/foreign pids count as alive
    (never claim a run is dead on weak evidence)."""
    if not pid:
        return True
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return False
    except (OSError, ValueError):
        return True
    return True


def gc_dead_snapshots(directory: str) -> List[str]:
    """Remove snapshots orphaned by dead writers; returns removed names.

    A snapshot claiming ``running`` whose writer pid no longer exists can
    never be replaced or finalized — without collection it would sit in
    the table flagged forever.  Finished runs (``done``/``failed``/
    ``parked``) keep their files: those are informative, not wedged.
    """
    removed: List[str] = []
    snaps, _skipped = read_snapshots(directory)
    for snap in snaps:
        if snap.get("status") == "running" and not _pid_alive(snap.get("pid")):
            try:
                os.unlink(os.path.join(directory, snap["_file"]))
            except OSError:
                continue
            removed.append(snap["_file"])
    return removed


def read_snapshots(directory: str) -> Tuple[List[dict], int]:
    """(parsed snapshots, skipped file count) for one directory sweep."""
    snaps: List[dict] = []
    skipped = 0
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return [], 0
    for name in names:
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                snap = json.load(fh)
        except (OSError, ValueError):
            skipped += 1
            continue
        if not isinstance(snap, dict) or snap.get("schema") != HEARTBEAT_SCHEMA:
            skipped += 1
            continue
        snap["_file"] = name
        snaps.append(snap)
    return snaps, skipped


def _core_bar(snap: dict, width: int = 16) -> str:
    """Compact per-core utilization strip: one glyph per core.

    ``#`` ≥75% busy, ``+`` ≥25%, ``.`` <25%, ``!`` non-empty deque on an
    otherwise idle core (work waiting with nobody running it).
    """
    cores = snap.get("cores") or []
    glyphs = []
    for core in cores[:width]:
        busy = core.get("busy", 0)
        idle = core.get("idle", 0)
        total = busy + idle
        share = busy / total if total else 0.0
        if share >= 0.75:
            glyphs.append("#")
        elif share >= 0.25:
            glyphs.append("+")
        elif core.get("deque", 0) > 0:
            glyphs.append("!")
        else:
            glyphs.append(".")
    if len(cores) > width:
        glyphs.append("…")
    return "".join(glyphs)


def merge_shard_groups(snaps: List[dict]) -> List[dict]:
    """Collapse replica heartbeats of one sharded run into a single row.

    Replicas of a ``--shards N`` run (``repro.engine.pdes``) stamp their
    heartbeats with a shared ``meta["pdes_group"]`` token.  They simulate
    the same machine, so N rows of near-identical progress is noise; the
    merged frame shows the *group's* truth instead: the minimum cycle
    (the validated result can never be further along than its slowest
    replica), the summed host throughput (those events really are being
    executed concurrently), and an ``app xN`` label.  Snapshots without
    a group pass through untouched.
    """
    groups: dict = {}
    out: List[dict] = []
    for snap in snaps:
        group = (snap.get("meta") or {}).get("pdes_group")
        if not group:
            out.append(snap)
            continue
        groups.setdefault(group, []).append(snap)
    for members in groups.values():
        if len(members) == 1:
            out.append(members[0])
            continue
        members = sorted(members, key=lambda s: (s.get("meta") or {}).get("shard", 0))
        lead = dict(members[0])
        meta = dict(lead.get("meta") or {})
        meta["app"] = f"{meta.get('app', '?')} x{len(members)}"
        lead["meta"] = meta
        lead["cycle"] = min(s.get("cycle", 0) for s in members)
        lead["events_per_sec"] = sum(s.get("events_per_sec", 0.0) for s in members)
        lead["updated_at"] = max(s.get("updated_at", 0.0) for s in members)
        # One replica's task pool is the run's task pool; summing would
        # overstate it N-fold.
        lead["tasks"] = max(
            (s.get("tasks") or {} for s in members),
            key=lambda t: t.get("outstanding", 0),
        )
        statuses = {s.get("status") for s in members}
        if "running" in statuses:
            lead["status"] = "running"
        elif "failed" in statuses:
            lead["status"] = "failed"
        out.append(lead)
    return out


def render(
    snaps: List[dict],
    skipped: int = 0,
    now: Optional[float] = None,
    stale_after: Optional[float] = None,
) -> str:
    """One frame of the top view as a plain string."""
    now = time.time() if now is None else now
    stale_after = stale_after_default() if stale_after is None else stale_after
    snaps = merge_shard_groups(snaps)
    by_status: dict = {}
    for snap in snaps:
        by_status[snap["status"]] = by_status.get(snap["status"], 0) + 1
    counts = "  ".join(f"{status}:{n}" for status, n in sorted(by_status.items()))
    header = [
        f"repro top — {len(snaps)} run(s)  {counts}"
        + (f"  [{skipped} unreadable]" if skipped else ""),
        f"{'pid':>7} {'app':<14} {'config':<16} {'scale':<6} {'status':<8} "
        f"{'cycle':>12} {'%':>5} {'Mev/s':>6} {'fused%':>6} {'tasks':>6} "
        f"{'age':>5} cores",
    ]
    rows = []
    # Running first (most recently updated at the top), then the rest.
    order = {"running": 0, "failed": 1, "done": 2}
    for snap in sorted(
        snaps,
        key=lambda s: (order.get(s["status"], 3), -s.get("updated_at", 0.0)),
    ):
        meta = snap.get("meta", {})
        cycle = snap.get("cycle", 0)
        max_cycles = snap.get("max_cycles") or 0
        pct = f"{100 * cycle / max_cycles:.0f}" if max_cycles else "-"
        events = snap.get("events", {})
        fused = events.get("fused_ratio")
        age = now - snap.get("updated_at", now)
        status = snap["status"]
        if status == "running" and not _pid_alive(snap.get("pid")):
            # The writer died without finalizing: this file will never be
            # replaced.  "dead" (not "stale?") — and ``--clean`` collects it.
            status = "dead"
        elif status == "running" and age > stale_after:
            status = "stale?"
        tasks = snap.get("tasks") or {}
        rows.append(
            f"{snap.get('pid', 0):>7} {str(meta.get('app', '?')):<14} "
            f"{str(meta.get('kind', '?')):<16} {str(meta.get('scale', '?')):<6} "
            f"{status:<8} {cycle:>12} {pct:>5} "
            f"{snap.get('events_per_sec', 0.0) / 1e6:>6.2f} "
            f"{100 * fused if fused is not None else 0.0:>5.1f}% "
            f"{tasks.get('outstanding', 0):>6} "
            f"{age:>4.0f}s {_core_bar(snap)}"
        )
    if not rows:
        rows.append("  (no heartbeat snapshots yet — is REPRO_HEARTBEAT_DIR set?)")
    return "\n".join(header + rows)


def sweep_gauges(snaps: List[dict]) -> dict:
    """Aggregate gauges for the Prometheus textfile exporter."""
    gauges = {
        "top.runs": len(snaps),
        "top.runs_running": 0,
        "top.runs_done": 0,
        "top.runs_failed": 0,
        "top.events_per_sec": 0.0,
        "top.tasks_outstanding": 0,
        "top.cycles": 0,
    }
    for snap in snaps:
        key = f"top.runs_{snap['status']}"
        if key in gauges:
            gauges[key] += 1
        if snap["status"] == "running":
            gauges["top.events_per_sec"] += snap.get("events_per_sec", 0.0)
            gauges["top.tasks_outstanding"] += (snap.get("tasks") or {}).get(
                "outstanding", 0
            )
        gauges["top.cycles"] += snap.get("cycle", 0)
    return gauges


def render_serve(workdir: str, now: Optional[float] = None) -> Optional[str]:
    """A service header block from a serve work directory's status file
    (written atomically by ``repro.serve.server``), or None when absent."""
    path = os.path.join(workdir, "serve-status.json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or "counts" not in payload:
        return None
    now = time.time() if now is None else now
    age = now - payload.get("updated_at", now)
    pid = payload.get("pid")
    alive = _pid_alive(pid)
    counts = payload.get("counts", {})
    lines = [
        f"repro serve — pid {pid}"
        + ("" if alive else " (DEAD — journal will recover on restart)")
        + f"  slots {len(payload.get('active', []))}/{payload.get('slots', '?')}"
        + f"  age {age:.0f}s",
        "  jobs: "
        + "  ".join(
            f"{state}:{counts.get(state, 0)}"
            for state in ("pending", "running", "parked", "done", "failed", "rejected")
        ),
    ]
    for worker in payload.get("active", []):
        lines.append(
            f"  worker pid {worker.get('pid'):>7}  {worker.get('id')}  "
            f"{worker.get('app')}  attempt {worker.get('attempt')}"
            + ("  [parking]" if worker.get("parking") else "")
        )
    return "\n".join(lines)


def run_top(
    directory: str,
    interval: float = 1.0,
    once: bool = False,
    prom_path: Optional[str] = None,
    frames: Optional[int] = None,
    clean: bool = False,
    stale_after: Optional[float] = None,
    serve_dir: Optional[str] = None,
) -> int:
    """The ``repro top`` main loop; returns a process exit code."""
    shown = 0
    while True:
        if clean:
            for name in gc_dead_snapshots(directory):
                print(f"repro top: collected dead snapshot {name}")
        snaps, skipped = read_snapshots(directory)
        frame = render(snaps, skipped, stale_after=stale_after)
        if serve_dir:
            serve_frame = render_serve(serve_dir)
            if serve_frame is None:
                serve_frame = f"repro serve — no status file in {serve_dir}"
            frame = f"{serve_frame}\n\n{frame}"
        if once or frames is not None:
            print(frame)
        else:
            print(f"{_ANSI_HOME}{frame}", flush=True)
        if prom_path:
            write_prometheus_textfile(prom_path, sweep_gauges(snaps))
        shown += 1
        if once or (frames is not None and shown >= frames):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
