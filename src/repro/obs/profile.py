"""Engine self-profiling: wall-clock attribution for the hot loop.

The engine floor (~0.4 µs/op on the perf mix) cannot be attacked blind:
"the simulator is slow" is not actionable, "38% of wall time is inside
``frame.send`` and 22% inside the L2 directory" is.  This module measures
where *host* wall-clock time goes during a simulation, per architectural
op kind and per component:

=====================  ====================================================
label                  what it covers
=====================  ====================================================
``runtime.coroutine``  ``frame.send`` — app/runtime generator code between
                       yields (the paper's "software" side)
``op.<kind>``          the ``_op_*`` dispatch body for each op kind,
                       exclusive of the memory system underneath
``mem.l1``             L1 load/store/AMO/flush/invalidate, exclusive of L2
``mem.l2``             shared-L2 directory + bank operations, exclusive of
                       DRAM
``mem.dram``           DRAM controller accesses
``noc.uli``            ULI network latency computation
``trace.tracer``       tracer emission (only when a real tracer is wired)
``sanitize.walk``      coherence-sanitizer walks
``pdes.lookahead``     sharded-run coordinator time blocked on replica
                       barriers (``repro.engine.pdes.run_sharded``)
``engine.loop``        everything not measured directly: heap push/pop,
                       event dispatch, the fusion test, Python interpreter
                       overhead between probes (computed as residual)
=====================  ====================================================

Attribution is **exclusive**: :class:`WallProfiler` keeps an enter/exit
stack and charges elapsed time to the label on top, so nested probes
(``op.load`` → ``mem.l1`` → ``mem.l2`` → ``mem.dram``) split one op's wall
time across the layers that actually spent it.

Cost model: profiling is **off by default** and gated per core by the
``Core._prof`` slot — a bare run pays exactly one ``is not None`` test per
trampoline entry (<3% on the perf mix, enforced by the wall-clock bench).
When on, every op pays a few ``perf_counter`` calls; simulated results are
bit-identical either way, only host time changes
(``tests/test_determinism.py`` asserts this).

``repro profile`` drives :func:`run_profile` over the perf mix and renders
:func:`format_profile`; ``--trace`` additionally writes a Chrome-trace
JSON (:func:`chrome_trace`) that catapult / Perfetto render as a
flamegraph-style timeline.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from typing import Dict, List, Optional

#: Components the acceptance criterion counts as "named": every label the
#: profiler can emit, including the residual.
RESIDUAL_LABEL = "engine.loop"


class WallProfiler:
    """Exclusive wall-time attribution via an enter/exit label stack.

    ``enter(label)`` charges the elapsed slice to the current top-of-stack
    label and pushes ``label``; ``exit()`` charges and pops.  Labels nest
    arbitrarily; the sum over ``seconds`` equals the wall time spent
    between the outermost enter and exit (minus probe overhead, which ends
    up in the enclosing label).
    """

    __slots__ = ("seconds", "calls", "_stack", "op_labels")

    def __init__(self):
        self.seconds: Dict[str, float] = defaultdict(float)
        self.calls: Dict[str, int] = defaultdict(int)
        #: [label, timestamp-of-last-charge] pairs (lists: slot 1 mutates).
        self._stack: List[list] = []
        #: Interned "op.<kind>" strings so the hot loop never formats.
        self.op_labels: Dict[str, str] = {}

    def enter(self, label: str) -> None:
        now = time.perf_counter()
        stack = self._stack
        if stack:
            top = stack[-1]
            self.seconds[top[0]] += now - top[1]
        stack.append([label, now])
        self.calls[label] += 1

    def exit(self) -> None:
        now = time.perf_counter()
        label, since = self._stack.pop()
        self.seconds[label] += now - since
        if self._stack:
            self._stack[-1][1] = now

    def op_label(self, kind: str) -> str:
        label = self.op_labels.get(kind)
        if label is None:
            label = self.op_labels[kind] = f"op.{kind}"
        return label

    def wrap(self, obj, method_names, label: str) -> None:
        """Instance-level wrap of bound methods, charging ``label``."""
        for name in method_names:
            fn = getattr(obj, name)
            setattr(obj, name, _probe(self, label, fn))


def _probe(prof: WallProfiler, label: str, fn):
    def probed(*args, **kwargs):
        prof.enter(label)
        try:
            return fn(*args, **kwargs)
        finally:
            prof.exit()

    return probed


#: Methods wrapped per component.  These are the complete call surface the
#: cores use; anything else (snoop paths) is invoked from within these and
#: lands in the right bucket via nesting.
_L1_METHODS = ("load", "store", "amo", "invalidate_all", "flush_all")
_L2_METHODS = (
    "fetch_shared",
    "fetch_exclusive",
    "upgrade",
    "writeback_line",
    "write_through_word",
    "amo_word",
    "read_word_bypass",
    "eviction_notice",
)
_DRAM_METHODS = ("access",)
_ULI_METHODS = ("send_latency",)
_TRACER_METHODS = ("core_state", "push_state", "pop_state", "counter_sample")
_SANITIZER_METHODS = ("check_now",)


class EngineProfiler:
    """Wires a :class:`WallProfiler` into one machine's hot paths.

    ``install`` arms the per-core trampoline probe (``core._prof``) and
    wraps the memory/NoC/tracer/sanitizer entry points as instance
    attributes — the classes themselves are untouched, so a profiled
    machine coexists with bare machines in one process.
    """

    def __init__(self, profiler: Optional[WallProfiler] = None):
        self.wall = profiler if profiler is not None else WallProfiler()
        #: Host seconds for the whole run (set by the driver around
        #: ``runtime.run``); the residual is measured against this.
        self.total_wall = 0.0

    def install(self, machine) -> "EngineProfiler":
        prof = self.wall
        for core in machine.cores:
            core._prof = prof
        for l1 in machine.l1s:
            prof.wrap(l1, _L1_METHODS, "mem.l1")
        prof.wrap(machine.l2, _L2_METHODS, "mem.l2")
        for dram in machine.l2.dram:
            prof.wrap(dram, _DRAM_METHODS, "mem.dram")
        if machine.uli_network is not None:
            prof.wrap(machine.uli_network, _ULI_METHODS, "noc.uli")
        if machine.tracer is not None and getattr(machine.tracer, "enabled", False):
            prof.wrap(machine.tracer, _TRACER_METHODS, "trace.tracer")
        if machine.sanitizer is not None:
            prof.wrap(machine.sanitizer, _SANITIZER_METHODS, "sanitize.walk")
        return self

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def attribution(self) -> dict:
        """Ranked attribution with the unmeasured residual made explicit."""
        measured = dict(self.wall.seconds)
        measured_total = sum(measured.values())
        total = max(self.total_wall, measured_total)
        residual = max(0.0, total - measured_total)
        rows = [
            {
                "component": label,
                "seconds": secs,
                "calls": self.wall.calls.get(label, 0),
                "share": secs / total if total > 0 else 0.0,
            }
            for label, secs in measured.items()
        ]
        rows.append(
            {
                "component": RESIDUAL_LABEL,
                "seconds": residual,
                "calls": 0,
                "share": residual / total if total > 0 else 0.0,
            }
        )
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return {
            "total_wall_s": total,
            "measured_wall_s": measured_total,
            # Fraction of wall time attributed by direct probes (the
            # residual bucket is named but not *measured*).
            "coverage": measured_total / total if total > 0 else 0.0,
            "components": rows,
        }


# ----------------------------------------------------------------------
# The `repro profile` driver
# ----------------------------------------------------------------------
def profile_entry(entry, profiler: Optional[EngineProfiler] = None) -> EngineProfiler:
    """Run one perf-mix entry under a profiled machine.

    Mirrors ``repro.harness.perf._run_once`` (fresh machine, fusion on) so
    the attribution describes the same workload the wall-clock bench
    measures.  Passing one ``profiler`` across entries accumulates a
    mix-wide attribution.
    """
    from repro.apps import make_app
    from repro.config import make_config
    from repro.core import WorkStealingRuntime
    from repro.harness.params import app_params
    from repro.machine import Machine

    prof = profiler if profiler is not None else EngineProfiler()
    app = make_app(entry.app, **app_params(entry.app, entry.scale))
    machine = Machine(make_config(entry.kind, entry.scale))
    app.setup(machine)
    prof.install(machine)
    kwargs = {"serial_elision": True} if entry.serial else {}
    runtime = WorkStealingRuntime(machine, **kwargs)
    start = time.perf_counter()
    runtime.run(app.make_root(serial=False))
    prof.total_wall += time.perf_counter() - start
    app.check()
    return prof


def run_profile(mix=None, repeats: int = 1, quick: bool = False) -> dict:
    """Profile the perf mix; returns the attribution payload."""
    from repro.harness.perf import DEFAULT_MIX, SMOKE_MIX

    if mix is None:
        mix = list(SMOKE_MIX if quick else DEFAULT_MIX)
    prof = EngineProfiler()
    for entry in mix:
        for _ in range(max(1, repeats)):
            profile_entry(entry, prof)
    payload = prof.attribution()
    payload["mix"] = [
        {"app": e.app, "kind": e.kind, "scale": e.scale, "serial": e.serial}
        for e in mix
    ]
    payload["repeats"] = repeats
    return payload


def format_profile(payload: dict) -> str:
    """Ranked attribution table for the CLI."""
    total = payload["total_wall_s"]
    lines = [
        f"profiled wall time: {total:.3f}s  "
        f"(direct probe coverage {100 * payload['coverage']:.1f}%)",
        f"{'component':<20} {'seconds':>9} {'share':>7} {'calls':>12}",
    ]
    for row in payload["components"]:
        if row["seconds"] <= 0 and row["calls"] == 0:
            continue
        lines.append(
            f"{row['component']:<20} {row['seconds']:>9.4f} "
            f"{100 * row['share']:>6.1f}% {row['calls']:>12}"
        )
    return "\n".join(lines)


def chrome_trace(payload: dict) -> dict:
    """Attribution as Chrome trace-event JSON (flamegraph-style).

    Each component becomes one complete ("X") event laid out sequentially
    on a single track, sized by its exclusive seconds — load the file in
    ``chrome://tracing`` / Perfetto and the width ordering *is* the ranked
    attribution.  (A true call-by-call timeline would be gigabytes for a
    perf-mix run; this is the summary view.)
    """
    events = []
    t_us = 0.0
    for row in payload["components"]:
        dur_us = row["seconds"] * 1e6
        if dur_us <= 0:
            continue
        events.append(
            {
                "name": row["component"],
                "ph": "X",
                "ts": t_us,
                "dur": dur_us,
                "pid": 1,
                "tid": 1,
                "args": {"calls": row["calls"], "share": row["share"]},
            }
        )
        t_us += dur_us
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_profile(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_chrome_trace(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(payload), fh)
        fh.write("\n")
