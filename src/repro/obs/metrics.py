"""Counter/gauge registry over StatGroup, with exporters.

The interval sampler (``repro.trace.sampler``) used to be wired directly to
the tracer: the only consumer of a statistics time series was the Chrome
trace counter track.  The registry decouples *what is sampled* from *where
samples go*: any number of sources (StatGroup subtrees, traffic meters,
fusion counters, ad-hoc gauges) merge into one flat namespace, and any
number of sinks (tracer counter tracks, JSONL, CSV, a Prometheus textfile
for the future sweep server) consume the same snapshots.

Nothing here touches simulated state: ``collect()`` is a pure read, so a
registry-backed sampler run stays cycle-identical to a bare run (the same
argument as ``IntervalSampler`` itself).
"""

from __future__ import annotations

import io
import json
import os
import re
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.engine.stats import StatGroup

Number = Union[int, float]
Snapshot = Dict[str, Number]

#: Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Everything else
#: (dots, dashes) becomes an underscore.
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


class MetricsRegistry:
    """Named snapshot sources merged into one flat metric namespace."""

    def __init__(self):
        #: (prefix, zero-arg callable returning a flat {name: number} dict)
        self._sources: List[Tuple[str, Callable[[], Snapshot]]] = []

    def register(
        self,
        source: Union[StatGroup, Callable[[], Snapshot]],
        prefix: str = "",
    ) -> "MetricsRegistry":
        """Add a snapshot source: a StatGroup subtree or a callable."""
        fn = source.snapshot if isinstance(source, StatGroup) else source
        self._sources.append((prefix, fn))
        return self

    def register_gauge(self, name: str, fn: Callable[[], Number]) -> "MetricsRegistry":
        """Add a single named gauge (a zero-arg callable returning a number)."""
        self._sources.append(("", lambda: {name: fn()}))
        return self

    def collect(self) -> Snapshot:
        """One merged point-in-time snapshot over every source.

        Later registrations win on name collisions; output key order is
        insertion-deterministic (sources in registration order, each
        source's own deterministic order), so exports are stable.
        """
        out: Snapshot = {}
        for prefix, fn in self._sources:
            for key, value in fn().items():
                out[f"{prefix}{key}"] = value
        return out


def machine_metrics(machine, engine: bool = True) -> MetricsRegistry:
    """The standard registry for one simulated machine.

    Covers the whole StatGroup tree (which includes the runtime's counters
    once a runtime is constructed), NoC traffic bytes by category, and —
    with ``engine=True`` — the simulator's event/fusion gauges.  This is
    what ``run_experiment`` samples when a ``sample_interval`` is
    requested; there it passes ``engine=False``, because event/fusion
    counts legitimately differ between fused and unfused runs and sampling
    them would break the fused/unfused byte-identical-trace invariant
    (``tests/test_fusion.py``).  Scrape-oriented consumers (the Prometheus
    textfile, ``repro top``) keep the engine gauges.
    """
    registry = MetricsRegistry()
    registry.register(machine.stats)
    registry.register(
        lambda: {
            f"traffic.{category}": n_bytes
            for category, n_bytes in machine.traffic.snapshot().items()
        }
    )
    if engine:
        sim = machine.sim
        registry.register(
            lambda: {
                "engine.events_executed": sim.events_executed,
                "engine.events_fused": sim.events_fused,
            }
        )
    return registry


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def samples_to_jsonl(samples: List[Tuple[int, Snapshot]]) -> str:
    """Interval samples as JSON lines: ``{"cycle": N, "deltas": {...}}``."""
    buffer = io.StringIO()
    for cycle, delta in samples:
        buffer.write(
            json.dumps({"cycle": cycle, "deltas": delta}, sort_keys=True) + "\n"
        )
    return buffer.getvalue()


def _prom_name(name: str, prefix: str) -> str:
    return _PROM_BAD.sub("_", f"{prefix}{name}")


def prometheus_lines(
    snapshot: Snapshot,
    prefix: str = "repro_",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """A snapshot in the Prometheus text exposition format.

    Every metric is exported as an untyped sample (node-exporter textfile
    collectors accept these); names are sanitized to the Prometheus
    alphabet and optional labels are attached to every sample.  Output is
    sorted by exported name, so files are diff-stable.
    """
    label_text = ""
    if labels:
        pairs = ",".join(
            f'{_PROM_BAD.sub("_", k)}="{str(v).replace(chr(34), chr(39))}"'
            for k, v in sorted(labels.items())
        )
        label_text = "{" + pairs + "}"
    lines = []
    for name, value in sorted(
        (_prom_name(key, prefix), value) for key, value in snapshot.items()
    ):
        lines.append(f"{name}{label_text} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_textfile(
    path: str,
    snapshot: Snapshot,
    prefix: str = "repro_",
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Atomically write ``snapshot`` as a Prometheus textfile.

    Textfile collectors re-read on every scrape, so the write must never be
    observable half-done: write to a sibling temp file, then rename.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(prometheus_lines(snapshot, prefix=prefix, labels=labels))
    os.replace(tmp, path)
