"""Live run telemetry: periodic atomic JSON progress snapshots.

A :class:`HeartbeatWriter` rides the simulation's own event queue as
*daemon* events — exactly the scheduling mechanism of
``repro.trace.sampler.IntervalSampler`` — so an instrumented run executes
the same callbacks at the same cycles as a bare run: daemon events never
keep the run loop alive, never advance the clock past the last real event,
and only *read* simulated state.  (A due daemon event does block the
event-fusion fast path for that cycle, but fusion is itself outcome-neutral
by construction, so cycle counts, statistics, and memory contents are
untouched; ``tests/test_determinism.py`` asserts this.)

Each beat atomically replaces one JSON file (temp file + ``os.replace``)
with the run's progress: simulated cycle, host-side event throughput,
fusion ratio, per-core busy/idle/deque-depth, tasks outstanding, and the
sanitizer/watchdog status.  Grid workers inherit ``REPRO_HEARTBEAT_DIR``
from the parent, so a sweep fans one snapshot file per in-flight run into
a single directory — which ``repro top`` (``repro.obs.top``) tails as a
live top-style view.

Off by default: no environment variable, no heartbeat, zero new work in
the engine.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

#: Schema tag for snapshot files (repro top refuses unknown schemas).
HEARTBEAT_SCHEMA = 1

#: Default beat cadence in *simulated* cycles.
DEFAULT_INTERVAL = 25_000

#: Per-process run sequence so one process (e.g. a serial grid) gets a
#: distinct snapshot file per experiment.
_RUN_SEQ = 0


def heartbeat_dir() -> Optional[str]:
    """The ambient snapshot directory (``REPRO_HEARTBEAT_DIR``), or None."""
    return os.environ.get("REPRO_HEARTBEAT_DIR") or None


def heartbeat_interval() -> int:
    """Beat cadence in cycles (``REPRO_HEARTBEAT_INTERVAL``, default 25000)."""
    try:
        return max(1, int(os.environ.get("REPRO_HEARTBEAT_INTERVAL", "")))
    except ValueError:
        return DEFAULT_INTERVAL


class HeartbeatWriter:
    """Periodic atomic progress snapshots for one simulation run."""

    def __init__(
        self,
        machine,
        runtime,
        path: str,
        interval: Optional[int] = None,
        min_wall_s: float = 0.2,
        meta: Optional[dict] = None,
    ):
        self.machine = machine
        self.runtime = runtime
        self.path = path
        self.interval = interval if interval is not None else heartbeat_interval()
        if self.interval < 1:
            raise ValueError(f"heartbeat interval must be >= 1 cycle, got {self.interval}")
        #: Minimum host seconds between file writes: a tiny simulation can
        #: cross thousands of beat boundaries per wall second, and the
        #: snapshot is only for human/top consumption.
        self.min_wall_s = min_wall_s
        self.meta = dict(meta or {})
        self.beats = 0
        self._started_at = 0.0
        self._last_write = 0.0
        self._last_events = 0
        self._last_cycle = 0

    @classmethod
    def for_run(cls, machine, runtime, directory: str, meta: dict) -> "HeartbeatWriter":
        """A writer with a fresh per-run snapshot file under ``directory``."""
        global _RUN_SEQ
        _RUN_SEQ += 1
        os.makedirs(directory, exist_ok=True)
        app = str(meta.get("app", "run")).replace(os.sep, "_")
        name = f"{os.getpid()}-{_RUN_SEQ:04d}-{app}.json"
        return cls(machine, runtime, os.path.join(directory, name), meta=meta)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Write the initial beat and schedule the first daemon tick."""
        now = time.time()
        self._started_at = now
        sim = self.machine.sim
        self._last_events = sim.events_executed + sim.events_fused
        self._last_cycle = sim.now
        self._write(self.snapshot("running"))
        sim.schedule(self.interval, self._tick, daemon=True)

    def finalize(self, status: str = "done", error: Optional[str] = None) -> None:
        """Write the closing beat (always, regardless of the throttle)."""
        self._write(self.snapshot(status, error=error))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        # Daemon events never keep the run alive; re-arming is always safe.
        self.machine.sim.schedule(self.interval, self._tick, daemon=True)
        now = time.time()
        if now - self._last_write < self.min_wall_s:
            return
        self._write(self.snapshot("running"))

    def _deque_depth(self, deque) -> int:
        head = self.machine.host_read_word(deque.head_addr)
        tail = self.machine.host_read_word(deque.tail_addr)
        return max(0, tail - head)

    def snapshot(self, status: str, error: Optional[str] = None) -> dict:
        """Build the progress snapshot (a pure read of simulated state)."""
        machine = self.machine
        runtime = self.runtime
        sim = machine.sim
        now = time.time()
        wall = now - self._started_at
        events = sim.events_executed + sim.events_fused
        d_wall = now - self._last_write
        d_events = events - self._last_events
        d_cycles = sim.now - self._last_cycle
        self._last_events = events
        self._last_cycle = sim.now
        rt_stats = runtime.stats
        spawned = rt_stats.get("spawns")
        executed = rt_stats.get("tasks_executed")
        cores = []
        for core in machine.cores:
            cores.append(
                {
                    "id": core.core_id,
                    "big": bool(core.is_big),
                    "busy": core.busy_cycles(),
                    "idle": core.stats.get("cycles_idle"),
                    "deque": self._deque_depth(runtime.deques[core.core_id]),
                }
            )
        self.beats += 1
        return {
            "schema": HEARTBEAT_SCHEMA,
            "pid": os.getpid(),
            "meta": self.meta,
            "status": status,
            "error": error,
            "started_at": self._started_at,
            "updated_at": now,
            "wall_s": wall,
            "beats": self.beats,
            "cycle": sim.now,
            "max_cycles": sim.max_cycles,
            "events": dict(sim.fusion_stats()),
            "events_per_sec": (d_events / d_wall) if d_wall > 0 else 0.0,
            "cycles_per_sec": (d_cycles / d_wall) if d_wall > 0 else 0.0,
            "tasks": {
                "spawned": spawned,
                "executed": executed,
                "outstanding": max(0, spawned - executed),
                "steals": rt_stats.get("steals"),
                "steal_attempts": rt_stats.get("steal_attempts"),
            },
            "cores": cores,
            # Periodic-sampling progress (spec, phase, window/period
            # counts) when the run is sampled; None on exact runs.
            "sampling": (
                machine.sampling.progress()
                if getattr(machine, "sampling", None) is not None
                else None
            ),
            "sanitizer": (
                {"walks": machine.sanitizer.stats.get("walks")}
                if machine.sanitizer is not None
                else None
            ),
            "watchdog": runtime.watchdog_grace,
        }

    def _write(self, snap: dict) -> None:
        """Atomic replace so ``repro top`` can never read a torn file."""
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(snap, fh, sort_keys=True)
        os.replace(tmp, self.path)
        self._last_write = time.time()
