"""Unified observability: live telemetry, self-profiling, and a run ledger.

Everything the repo previously knew about a simulation was retrospective —
Perfetto traces and end-of-run ``StatGroup`` aggregates explain a *finished*
run.  This package adds the two lenses HTS and Myrmics motivate for
heterogeneous runtimes (live utilization and wall-time attribution), plus a
durable record of *past* work:

* :mod:`repro.obs.heartbeat` — a daemon-event heartbeat that periodically
  writes an atomic JSON progress snapshot per run; ``repro top`` tails a
  directory of them as a live top-style view of a running simulation or
  sweep.  Instrumented runs stay cycle-identical to bare runs.
* :mod:`repro.obs.profile` — lightweight wall-clock attribution inside the
  engine hot loop (per op kind and per component: coroutines, L1/L2/DRAM,
  NoC, event loop), off by default, driven by ``repro profile``.
* :mod:`repro.obs.ledger` — every ``run_experiment`` appends one
  machine-readable manifest line (keys, seeds, lineage, wall time, host
  fingerprint, outcome) to a JSONL ledger; ``repro report`` aggregates it.
* :mod:`repro.obs.metrics` — a counter/gauge registry over ``StatGroup``
  with JSONL/CSV/Prometheus-textfile exporters, decoupling the interval
  sampler from the tracer.

All three data producers (heartbeat, profiler, ledger) are **off by
default** and none participates in result identity: an observed run is
byte-identical to a bare one.
"""

from __future__ import annotations

import os
import platform
import sys


def host_fingerprint() -> dict:
    """A stable identity block for the executing host + interpreter.

    Embedded in ``BENCH_wallclock.json`` and every ledger line so perf
    trajectories and past runs stay attributable across machines.
    """
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "release": platform.release(),
        "node": platform.node(),
        "cpu_count": os.cpu_count() or 1,
    }


from repro.obs.heartbeat import HeartbeatWriter, heartbeat_dir  # noqa: E402
from repro.obs.ledger import RunLedger, get_ledger, set_ledger  # noqa: E402
from repro.obs.metrics import (  # noqa: E402
    MetricsRegistry,
    machine_metrics,
    prometheus_lines,
    samples_to_jsonl,
    write_prometheus_textfile,
)
from repro.obs.profile import EngineProfiler, WallProfiler  # noqa: E402

__all__ = [
    "host_fingerprint",
    "HeartbeatWriter",
    "heartbeat_dir",
    "RunLedger",
    "get_ledger",
    "set_ledger",
    "MetricsRegistry",
    "machine_metrics",
    "prometheus_lines",
    "samples_to_jsonl",
    "write_prometheus_textfile",
    "EngineProfiler",
    "WallProfiler",
]
