"""Structured run ledger: one JSONL manifest line per ``run_experiment``.

The result store answers "what was the result of experiment X?"; the ledger
answers "what work did this machine actually do, when, and how did it go?"
— the record a sweep server needs for admission control, retry policy, and
wall-time accounting.  Every ``run_experiment`` call appends exactly one
line describing its outcome:

* ``ok``         — a real simulation ran to completion,
* ``memo-hit``   — satisfied from the in-process memo cache,
* ``store-hit``  — satisfied from the persistent result store,
* ``failed``     — the run raised (``error`` holds deadlock / violation /
  timeout / error, matching ``FailedResult.error``).

Timed-out or killed grid workers can't write their own line, so the grid
parent appends one on their behalf (``source: "grid"``).  Workers forked
by the job service inherit ``REPRO_LEDGER_SOURCE=serve`` and label their
lines ``source: "serve"``, so a report over a shared ledger can tell
service work from ad-hoc runs.

Each line carries the store-key digest (the same SHA-256 the result store
shards by), the config seed, the robustness block, checkpoint lineage,
wall time, and the host/python fingerprint — enough for ``repro report``
to rebuild a sweep's hit/miss/failure accounting from the ledger alone.

Configuration (off by default):

* ``REPRO_LEDGER=/path/file.jsonl`` — append to that file;
* ``REPRO_LEDGER=1`` — append to ``ledger.jsonl`` next to the configured
  result store (silently off when no store is configured);
* :func:`set_ledger` — explicit process-wide override (the CLI's
  ``--ledger`` flag).

Appends are single ``write()`` calls on an ``O_APPEND`` descriptor, so
concurrent grid workers sharing one ledger never interleave partial lines
(POSIX guarantees atomicity for appends well past this line size).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional

from repro.obs import host_fingerprint

#: Schema tag carried on every line; bump when the entry shape changes.
LEDGER_SCHEMA = 1

#: Sentinel: "not configured yet, consult REPRO_LEDGER on first use".
_LEDGER_UNSET = object()
_LEDGER = _LEDGER_UNSET

#: Host fingerprint is per-process constant; compute it once.
_HOST: Optional[dict] = None


class RunLedger:
    """Append-only JSONL manifest of experiment runs."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lines_written = 0

    def record(self, **fields) -> dict:
        """Append one manifest line; returns the entry as written."""
        global _HOST
        if _HOST is None:
            _HOST = host_fingerprint()
        entry = {
            "schema": LEDGER_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "host": _HOST,
        }
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=str) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self.lines_written += 1
        return entry


# ----------------------------------------------------------------------
# Process-wide configuration
# ----------------------------------------------------------------------
def set_ledger(ledger) -> Optional[RunLedger]:
    """Install ``ledger`` (a RunLedger, a path, True for store-adjacent,
    or None to disable)."""
    global _LEDGER
    if ledger is None or isinstance(ledger, RunLedger):
        _LEDGER = ledger
    elif ledger is True:
        _LEDGER = _store_adjacent()
    else:
        _LEDGER = RunLedger(ledger)
    return _LEDGER if _LEDGER is not _LEDGER_UNSET else None


def _store_adjacent() -> Optional[RunLedger]:
    from repro.harness.runner import get_result_store

    store = get_result_store()
    if store is None:
        return None
    return RunLedger(store.root / "ledger.jsonl")


def get_ledger() -> Optional[RunLedger]:
    """The process-wide ledger, or None when ledgering is off."""
    global _LEDGER
    if _LEDGER is _LEDGER_UNSET:
        spec = os.environ.get("REPRO_LEDGER", "")
        if not spec or spec == "0":
            _LEDGER = None
        elif spec in ("1", "true", "store"):
            _LEDGER = _store_adjacent()
        else:
            _LEDGER = RunLedger(spec)
    return _LEDGER


def reset_ledger() -> None:
    """Forget the cached configuration (tests; env changes)."""
    global _LEDGER
    _LEDGER = _LEDGER_UNSET


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_ledger(path) -> list:
    """Parse a ledger file into entry dicts, skipping malformed lines.

    A line torn by a crashed writer must not poison the whole history, so
    bad lines are skipped; ``repro report`` surfaces the skip count via
    :func:`read_ledger_with_errors`.
    """
    entries, _bad, _torn = read_ledger_with_errors(path)
    return entries


def read_ledger_with_errors(path):
    """(entries, malformed_line_count, torn_tail) for a ledger file.

    ``torn_tail`` is True when the *final* line fails to parse and the
    file does not end in a newline — the signature of a writer killed
    mid-append.  That line is *recoverable* damage (every complete entry
    before it is intact, and the interrupted run never finished recording
    its outcome anyway), so it is reported separately rather than counted
    among the malformed lines; the serve journal replayer
    (``repro.serve.journal``) relies on this classification to recover
    from a crashed server.
    """
    return read_jsonl_with_errors(path)


def read_jsonl_with_errors(path):
    """Shared tolerant JSONL reader: (dict entries, malformed count,
    torn_tail flag).  Used by the run ledger and the serve job journal —
    both are O_APPEND single-write streams with the same crash modes."""
    entries = []
    bad = 0
    torn = False
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    #: A file ending in "\n" splits into [..., ""]; anything else in the
    #: final slot is an unterminated (possibly torn) tail.
    unterminated = lines[-1] != ""
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            if unterminated and i == len(lines) - 1:
                torn = True
            else:
                bad += 1
            continue
        if isinstance(entry, dict):
            entries.append(entry)
        else:
            bad += 1
    return entries, bad, torn
