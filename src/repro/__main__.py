"""Command-line interface: run single experiments or regenerate results.

Examples::

    python -m repro list
    python -m repro run ligra-bfs --config bt-hcc-dts-gwb --scale quick
    python -m repro table 3 --scale quick
    python -m repro fig 4
    python -m repro workspan cilk5-cs --scale paper
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import PAPER_APPS, app_names, resolve_app
from repro.config.system import CONFIG_KINDS, SCALES, resolve_kind


def _app_arg(text: str) -> str:
    try:
        return resolve_app(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _kind_arg(text: str) -> str:
    try:
        return resolve_kind(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _apply_harness_flags(args) -> None:
    """Wire --jobs / --results-dir / --no-store / observability flags into
    the harness.  The observability knobs go through the environment so
    forked grid workers inherit them."""
    import os

    from repro.harness import set_default_jobs, set_result_store

    if getattr(args, "no_store", False):
        set_result_store(None)
    elif getattr(args, "results_dir", None):
        set_result_store(args.results_dir)
    if getattr(args, "jobs", None) is not None:
        set_default_jobs(args.jobs)
    if getattr(args, "heartbeat_dir", None):
        os.environ["REPRO_HEARTBEAT_DIR"] = args.heartbeat_dir
    if getattr(args, "ledger", None) is not None:
        os.environ["REPRO_LEDGER"] = args.ledger
        from repro.obs.ledger import reset_ledger

        reset_ledger()


def _report_store() -> None:
    """One line of store telemetry on stderr (hits/misses this run)."""
    from repro.harness import get_result_store, termlog

    store = get_result_store()
    if store is not None:
        termlog.log(store.stats_line())


def _cmd_list(_args) -> int:
    print("applications:")
    for name in app_names():
        print(f"  {name}")
    print("\nconfigurations:")
    for kind in CONFIG_KINDS:
        print(f"  {kind}")
    print("\nscales:", ", ".join(sorted(SCALES)))
    return 0


def _cmd_run(args) -> int:
    from repro.harness import run_experiment, run_serial_baseline

    shards = getattr(args, "shards", 1) or 1
    tracer = None
    sample_interval = None
    if args.trace and shards <= 1:
        from repro.trace import Tracer

        tracer = Tracer()
        sample_interval = args.trace_interval
    checkpoint = None
    if args.checkpoint or args.init_dir:
        checkpoint = {
            "path": args.checkpoint,
            "interval": args.checkpoint_interval if args.checkpoint else None,
            "resume": args.resume,
            "init_dir": args.init_dir,
            "keep": args.keep_checkpoint,
        }
    if shards > 1 and args.trace:
        # Traced sharded runs go through the pdes coordinator directly:
        # shard 0's trace (validated byte-identical across replicas) is
        # written where --trace asked.  Like any traced run, this always
        # simulates.
        from repro.engine.pdes import run_sharded

        if checkpoint is not None or args.sample or args.faults or args.sanitize:
            print("repro run: --shards is incompatible with --checkpoint/"
                  "--sample/--faults/--sanitize", file=sys.stderr)
            return 2
        result = run_sharded(
            dict(
                app_name=args.app, kind=args.config, scale=args.scale,
                serial=args.serial, watchdog=args.watchdog,
            ),
            shards,
            trace_path=args.trace,
            sample_interval=args.trace_interval,
        )
        print(f"trace written  : {args.trace} (validated across "
              f"{shards} shards)", file=sys.stderr)
    else:
        result = run_experiment(
            args.app, args.config, args.scale, serial=args.serial,
            tracer=tracer, sample_interval=sample_interval,
            faults=args.faults, sanitize=args.sanitize, watchdog=args.watchdog,
            checkpoint=checkpoint, sampling=args.sample, shards=shards,
        )
    if tracer is not None:
        from repro.trace import export_chrome_trace

        export_chrome_trace(tracer, args.trace)
        print(f"trace written  : {args.trace} ({tracer.n_events()} events)",
              file=sys.stderr)
    if args.json:
        import json

        from repro.harness.export import result_to_dict

        print(json.dumps(result_to_dict(result), indent=2, sort_keys=True))
        return 0
    print(f"app            : {result.app}")
    print(f"config         : {result.kind} @ {result.scale}")
    if result.sampling is not None:
        s = result.sampling
        if s.get("exact_fallback"):
            print("mode           : sampled (run ended in the initial "
                  "warmup; statistics are exact)")
        else:
            spec = s.get("spec", {})
            spec_str = ":".join(
                str(spec.get(k, "?"))
                for k in ("interval", "warmup", "window")
            )
            ci = s.get("cycles_ci95_pct")
            print(f"mode           : sampled (spec {spec_str}, "
                  f"{s.get('windows', 0)} windows, "
                  f"coverage {100 * s.get('coverage', 1.0):.1f}%"
                  + (f", cycles CI95 ±{ci:.1f}%" if ci is not None else "")
                  + ")")
            print("                 cycles/traffic/energy below are "
                  "extrapolated estimates")
    print(f"cycles         : {result.cycles}")
    print(f"instructions   : {result.instructions}")
    print(f"tasks/spawns   : {result.tasks}/{result.spawns}")
    print(f"steals (tries) : {result.steals} ({result.steal_attempts})")
    print(f"tiny L1 hit    : {result.l1_hit_rate_tiny:.3f}")
    print(f"inv/flush lines: {result.lines_invalidated}/{result.lines_flushed}")
    print(f"traffic bytes  : {result.total_traffic}")
    print(f"energy (pJ)    : {result.energy.total_pj:.3e}")
    if "faults_fired" in result.extras:
        print(f"faults fired   : {int(result.extras['faults_fired'])}")
    if "sanitizer_walks" in result.extras:
        print(f"sanitizer walks: {int(result.extras['sanitizer_walks'])} "
              "(0 violations)")
    if "ckpt_resumed_from" in result.extras:
        print(f"resumed from   : cycle {int(result.extras['ckpt_resumed_from'])}")
    if "ckpt_warm_start" in result.extras:
        print("warm start     : init phase restored from snapshot")
    if "ckpt_snapshots" in result.extras:
        print(f"snapshots taken: {int(result.extras['ckpt_snapshots'])}")
    if "pdes_shards" in result.extras:
        print(f"shards         : {int(result.extras['pdes_shards'])} "
              "validated replicas (min lookahead "
              f"{int(result.extras.get('pdes_min_lookahead', 0))} cycles, "
              "barrier wait "
              f"{result.extras.get('pdes_lookahead_wall_s', 0.0):.2f}s)")
    if args.baseline:
        serial = run_serial_baseline(args.app, args.scale)
        print(f"speedup vs serial-IO: {serial.cycles / result.cycles:.2f}x")
    return 0


def _cmd_trace(args) -> int:
    from repro.harness import run_experiment
    from repro.trace import (
        Tracer,
        export_chrome_trace,
        format_activity_report,
        samples_to_csv,
    )

    tracer = Tracer()
    result = run_experiment(
        args.app, args.config, args.scale, serial=args.serial,
        tracer=tracer, sample_interval=args.interval,
    )
    export_chrome_trace(tracer, args.out)
    if args.csv:
        with open(args.csv, "w", newline="\n") as fh:
            fh.write(samples_to_csv(tracer.samples))
    print(format_activity_report(tracer))
    print(f"cycles : {result.cycles}")
    print(f"trace  : {args.out} ({tracer.n_events()} events; "
          f"load in https://ui.perfetto.dev or chrome://tracing)")
    if args.csv:
        print(f"csv    : {args.csv} ({len(tracer.samples)} samples)")
    return 0


def _cmd_table(args) -> int:
    from repro import harness

    scale = args.scale
    if args.number == 1:
        print(harness.format_table1(harness.table1_taxonomy()))
    elif args.number == 3:
        print(harness.format_table3(harness.table3(scale)))
    elif args.number == 4:
        print(harness.format_table4(harness.table4(scale)))
    elif args.number == 5:
        print(harness.format_table5(harness.table5("large")))
    else:
        print(f"no table {args.number} in the paper's evaluation", file=sys.stderr)
        return 2
    return 0


def _cmd_fig(args) -> int:
    from repro import harness
    from repro.cores.core import TIME_CATEGORIES
    from repro.mem.traffic import CATEGORIES

    scale = args.scale
    if args.number == 4:
        print(harness.format_fig4(harness.fig4_granularity(scale)))
    elif args.number == 5:
        print(harness.format_series(
            "Figure 5: speedup vs big.TINY/MESI", harness.fig5_speedup(scale)))
    elif args.number == 6:
        print(harness.format_series(
            "Figure 6: tiny-core L1D hit rate", harness.fig6_hitrate(scale)))
    elif args.number == 7:
        print(harness.format_stacked(
            "Figure 7: tiny-core time breakdown (normalized to MESI)",
            harness.fig7_breakdown(scale), TIME_CATEGORIES))
    elif args.number == 8:
        print(harness.format_stacked(
            "Figure 8: NoC traffic by category (normalized to MESI)",
            harness.fig8_traffic(scale), CATEGORIES))
    else:
        print(f"no figure {args.number} in the paper's evaluation", file=sys.stderr)
        return 2
    return 0


def _cmd_perf(args) -> int:
    from repro.harness.perf import (
        DEFAULT_MIX,
        PARALLEL_MIX,
        SAMPLED_MIX,
        SMOKE_MIX,
        SMOKE_PARALLEL_MIX,
        SMOKE_SAMPLED_MIX,
        compare_baseline,
        format_baseline_report,
        format_parallel_report,
        format_report,
        format_sampled_report,
        read_bench,
        run_mix,
        run_parallel_mix,
        run_sampled_mix,
        write_bench,
    )

    baseline = None
    if args.baseline:
        try:
            baseline = read_bench(args.baseline)
        except OSError as exc:
            print(f"repro perf: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    mix = SMOKE_MIX if args.smoke else DEFAULT_MIX
    payload = run_mix(list(mix), repeats=args.repeats)
    if args.sampled:
        sampled_mix = SMOKE_SAMPLED_MIX if args.smoke else SAMPLED_MIX
        payload["sampled"] = run_sampled_mix(list(sampled_mix), repeats=1)
    if args.parallel:
        parallel_mix = SMOKE_PARALLEL_MIX if args.smoke else PARALLEL_MIX
        payload["parallel"] = run_parallel_mix(list(parallel_mix), repeats=1)
    print(format_report(payload))
    if args.sampled:
        print()
        print(format_sampled_report(payload["sampled"]))
    if args.parallel:
        print()
        print(format_parallel_report(payload["parallel"]))
    if args.out:
        write_bench(payload, args.out)
        print(f"\nbench written  : {args.out}", file=sys.stderr)
    code = 0
    if baseline is not None:
        report = compare_baseline(payload, baseline, tolerance=args.tolerance)
        print()
        print(format_baseline_report(report))
        if not report["ok"]:
            code = 1
    speedup = payload["aggregate"]["speedup"]
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: mix speedup {speedup:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        code = 1
    return code


def _cmd_sample(args) -> int:
    from repro.sampling.differential import (
        DEFAULT_VALIDATION_MIX,
        DEFAULT_VALIDATION_SPEC,
        format_validation,
        validate_mix,
    )

    if args.app:
        mix = [(args.app, args.config, args.scale)]
    else:
        mix = list(DEFAULT_VALIDATION_MIX)
    spec = args.spec or DEFAULT_VALIDATION_SPEC
    payload = validate_mix(mix, spec=spec)
    if args.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_validation(payload))
    worst = max(
        payload["aggregate"]["cycles_error"]["max"],
        payload["aggregate"]["traffic_error"]["max"],
    )
    if args.max_error is not None and 100.0 * worst > args.max_error:
        print(
            f"FAIL: worst cycles/traffic error {100 * worst:.2f}% exceeds "
            f"--max-error {args.max_error:.2f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fuzz(args) -> int:
    from repro.harness.fuzz import run_fuzz

    report = run_fuzz(
        app_name=args.app,
        kind=args.config,
        scale=args.scale,
        seeds=range(args.seed_base, args.seed_base + args.seeds),
        plan=args.plan,
        sanitize=not args.no_sanitize,
        watchdog=args.watchdog,
        break_coherence=args.break_coherence,
    )
    print(report.summary())
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=1, sort_keys=True)
        print(f"report written : {args.out}", file=sys.stderr)
    if args.expect_violations:
        # Positive-control mode: the sweep must FIND something.
        if report.n_violations == 0:
            print("FAIL: expected violations, found none", file=sys.stderr)
            return 1
        return 0
    return 0 if report.ok else 1


def _cmd_verify(args) -> int:
    from repro.verify.cli import run_verify

    return run_verify(
        mixes=args.mixes,
        cores=args.cores,
        words=args.words,
        ops=args.ops,
        scenario=args.scenario,
        break_coherence=args.break_coherence,
        expect_violations=args.expect_violations,
        max_states=args.max_states,
        out=args.out,
    )


def _cmd_checkpoint(args) -> int:
    from repro.engine.checkpoint import load_snapshot

    snap = load_snapshot(args.snapshot)
    print(f"snapshot       : {args.snapshot}")
    print(f"kind           : {snap['kind']}")
    print(f"format version : {snap['version']}")
    if snap["kind"] == "run":
        print(f"cycle          : {snap['cycle']}")
        print(f"cores          : {len(snap['cores'])}")
        print(f"pending events : {len(snap['sim']['queue'])}")
        print(f"replay log     : {len(snap['log'])} entries")
        print(f"program done   : {snap['runtime']['done']}")
        print(f"traced         : {snap['tracer'] is not None}")
    else:
        print(f"init signature : {snap['signature']}")
        print(f"memory lines   : {len(snap['memory'])}")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.heartbeat import heartbeat_dir
    from repro.obs.top import run_top

    directory = args.dir or heartbeat_dir()
    if not directory:
        # With --serve the service frame alone is still useful; without
        # it there is nothing at all to show.
        if not args.serve:
            print(
                "repro top: no snapshot directory "
                "(pass --dir or set REPRO_HEARTBEAT_DIR)",
                file=sys.stderr,
            )
            return 2
        directory = ""
    return run_top(
        directory,
        interval=args.interval,
        once=args.once,
        prom_path=args.prom,
        frames=args.frames,
        clean=args.clean,
        stale_after=args.stale_after,
        serve_dir=args.serve,
    )


def _cmd_serve(args) -> int:
    from repro.harness.retry import BackoffPolicy
    from repro.serve import ServePolicy, run_server

    policy = ServePolicy(
        slots=args.slots,
        max_pending=args.max_pending,
        max_per_tenant=args.max_per_tenant,
        max_attempts=args.max_attempts,
        timeout_s=args.timeout,
        wedged_after_s=args.wedged_after,
        park_grace_s=args.park_grace,
        checkpoint_interval=args.checkpoint_interval,
        backoff=BackoffPolicy(
            base_s=args.backoff_base, cap_s=args.backoff_cap
        ),
    )
    return run_server(args.workdir, policy=policy, socket=args.socket)


def _cmd_submit(args) -> int:
    import json

    from repro.serve import ServeError, connect
    from repro.serve.server import socket_path

    path = args.socket or socket_path(args.workdir)
    job = {
        "app": args.app,
        "kind": args.config,
        "scale": args.scale,
        "serial": args.serial,
        "tenant": args.tenant,
        "priority": args.priority,
        "deadline_s": args.deadline,
        "preemptible": not args.no_preempt,
        "sampling": args.sample,
    }
    try:
        with connect(path, retry_for_s=args.retry_for) as client:
            response = client.submit(job)
            if response["state"] == "rejected":
                print(
                    f"rejected: {response.get('reason')} "
                    f"(id {response['id']})",
                    file=sys.stderr,
                )
                return 1
            print(f"submitted: {response['id']}")
            if not args.wait:
                return 0
            outcome = client.wait(response["id"])
            record = outcome["job"]
            print(
                f"{record['id']}: {record['state']}"
                + (f" ({record['outcome']})" if record.get("outcome") else "")
                + (f" — {record['message']}" if record.get("message") else "")
            )
            if args.json and outcome.get("result") is not None:
                print(json.dumps(outcome["result"], indent=2, sort_keys=True))
            return 0 if record["state"] == "done" else 1
    except (ServeError, OSError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2


def _cmd_profile(args) -> int:
    from repro.obs.profile import (
        format_profile,
        run_profile,
        write_chrome_trace,
        write_profile,
    )

    payload = run_profile(repeats=args.repeats, quick=args.quick)
    print(format_profile(payload))
    if args.out:
        write_profile(payload, args.out)
        print(f"profile written: {args.out}", file=sys.stderr)
    if args.trace:
        write_chrome_trace(payload, args.trace)
        print(f"trace written  : {args.trace} "
              "(load in https://ui.perfetto.dev or chrome://tracing)",
              file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from repro.obs.report import run_report

    return run_report(args.ledger_file, as_json=args.json)


def _cmd_workspan(args) -> int:
    from repro.harness import workspan

    report = workspan(args.app, args.scale)
    print(f"work        : {report.work}")
    print(f"span        : {report.span}")
    print(f"parallelism : {report.parallelism:.2f}")
    print(f"tasks       : {report.n_tasks}")
    print(f"IPT         : {report.instructions_per_task:.1f}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="big.TINY / HCC / DTS reproduction harness (ISCA 2020)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
        return value

    harness_flags = argparse.ArgumentParser(add_help=False)
    harness_flags.add_argument(
        "--jobs", type=positive_int, default=None, metavar="N",
        help="fan experiment grids out over N worker processes (default: "
             "REPRO_JOBS or 1)")
    harness_flags.add_argument(
        "--results-dir", default=None, metavar="DIR",
        help="persist results to DIR so warm reruns skip simulation "
             "(default: REPRO_RESULTS_DIR)")
    harness_flags.add_argument(
        "--no-store", action="store_true",
        help="disable the on-disk result store even if REPRO_RESULTS_DIR is set")
    harness_flags.add_argument(
        "--ledger", nargs="?", const="1", default=None, metavar="FILE",
        help="append one JSONL manifest line per run_experiment; with no "
             "FILE, the ledger lives next to the result store "
             "(ledger.jsonl); equivalent to REPRO_LEDGER")
    harness_flags.add_argument(
        "--heartbeat-dir", default=None, metavar="DIR",
        help="write live per-run progress snapshots into DIR (tail them "
             "with 'repro top'); equivalent to REPRO_HEARTBEAT_DIR")

    sub.add_parser("list", help="list apps, configurations, and scales")

    run_parser = sub.add_parser(
        "run", help="run one app on one configuration", parents=[harness_flags])
    run_parser.add_argument("app", type=_app_arg, metavar="APP",
                            help=f"one of {', '.join(sorted(PAPER_APPS))} (or an alias "
                                 "like 'cilksort')")
    run_parser.add_argument("--config", "--kind", dest="config", type=_kind_arg,
                            default="bt-hcc-dts-gwb", metavar="KIND")
    run_parser.add_argument("--scale", default="quick", choices=sorted(SCALES))
    run_parser.add_argument("--serial", action="store_true", help="serial elision")
    run_parser.add_argument("--baseline", action="store_true",
                            help="also run the serial-IO baseline and report speedup")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the full ExperimentResult as JSON on stdout")
    run_parser.add_argument("--trace", default=None, metavar="FILE",
                            help="record a cycle-accurate trace to FILE "
                                 "(Chrome trace-event JSON; bypasses the result "
                                 "store and memo cache)")
    run_parser.add_argument("--trace-interval", type=positive_int, default=10_000,
                            metavar="N", help="stat sampling interval in cycles "
                                              "for --trace (default: 10000)")
    run_parser.add_argument("--faults", default=None, metavar="SPEC",
                            help="inject faults: a preset (timing, full, evict, "
                                 "steal) optionally followed by key=value "
                                 "overrides, e.g. 'timing,seed=7' "
                                 "(bypasses nothing; faulted runs get their own "
                                 "cache/store keys)")
    run_parser.add_argument("--sanitize", action="store_true",
                            help="run the coherence-invariant sanitizer; any "
                                 "violation fails the run")
    run_parser.add_argument("--watchdog", type=positive_int, default=None,
                            metavar="CYCLES",
                            help="deadlock watchdog grace: raise a diagnostic "
                                 "DeadlockError after CYCLES cycles without "
                                 "runtime progress")
    run_parser.add_argument("--checkpoint", default=None, metavar="FILE",
                            help="periodically snapshot the full simulation "
                                 "state to FILE; the file is removed after a "
                                 "successful run unless --keep-checkpoint")
    run_parser.add_argument("--checkpoint-interval", type=positive_int,
                            default=50_000, metavar="N",
                            help="cycles between snapshots for --checkpoint "
                                 "(default: 50000)")
    run_parser.add_argument("--resume", action="store_true",
                            help="if the --checkpoint file exists, restore it "
                                 "and resume instead of starting cold")
    run_parser.add_argument("--keep-checkpoint", action="store_true",
                            help="keep the --checkpoint file after a "
                                 "successful run")
    run_parser.add_argument("--init-dir", default=None, metavar="DIR",
                            help="warm-start: reuse (or create) per-app init "
                                 "snapshots in DIR, skipping the serial setup "
                                 "phase on later runs")
    run_parser.add_argument("--sample", default=None, metavar="U:W:D[:Q]",
                            help="periodic-sampling mode: fast-forward U "
                                 "instructions between detailed windows of W "
                                 "warmup + D measured instructions; cycles/"
                                 "traffic/energy become extrapolated estimates "
                                 "(sampled results get their own cache/store "
                                 "keys and never mix with exact ones)")
    run_parser.add_argument("--shards", type=positive_int, default=1,
                            metavar="N",
                            help="run as N validated parallel replicas "
                                 "(repro.engine.pdes): results are "
                                 "byte-identical to --shards 1 by checked "
                                 "construction; incompatible with "
                                 "--checkpoint/--sample/--faults/--sanitize")

    trace_parser = sub.add_parser(
        "trace",
        help="run one experiment with full tracing and export it for Perfetto",
        parents=[harness_flags])
    trace_parser.add_argument("app", type=_app_arg, metavar="APP",
                              help="application (registry name or alias)")
    trace_parser.add_argument("--config", "--kind", dest="config", type=_kind_arg,
                              default="bt-hcc-dts-gwb", metavar="KIND")
    trace_parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    trace_parser.add_argument("--serial", action="store_true", help="serial elision")
    trace_parser.add_argument("--out", default="trace.json", metavar="FILE",
                              help="Chrome trace-event JSON output (default: "
                                   "trace.json)")
    trace_parser.add_argument("--csv", default=None, metavar="FILE",
                              help="also write the interval stat samples as CSV")
    trace_parser.add_argument("--interval", type=positive_int, default=10_000,
                              metavar="N",
                              help="stat sampling interval in cycles (default: "
                                   "10000)")

    table_parser = sub.add_parser(
        "table", help="regenerate a paper table", parents=[harness_flags])
    table_parser.add_argument("number", type=int, choices=(1, 3, 4, 5))
    table_parser.add_argument("--scale", default="quick", choices=sorted(SCALES))

    fig_parser = sub.add_parser(
        "fig", help="regenerate a paper figure", parents=[harness_flags])
    fig_parser.add_argument("number", type=int, choices=(4, 5, 6, 7, 8))
    fig_parser.add_argument("--scale", default="quick", choices=sorted(SCALES))

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="sweep fault-injection seeds under the sanitizer and assert "
             "nothing breaks (timing-only plans must not change the answer)")
    fuzz_parser.add_argument("--app", type=_app_arg, default="cilk5-cs",
                             metavar="APP", help="application (default: cilk5-cs)")
    fuzz_parser.add_argument("--config", "--kind", dest="config", type=_kind_arg,
                             default="bt-hcc-dts-gwb", metavar="KIND")
    fuzz_parser.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    fuzz_parser.add_argument("--seeds", type=positive_int, default=5, metavar="N",
                             help="number of fault seeds to sweep (default: 5)")
    fuzz_parser.add_argument("--seed-base", type=int, default=1, metavar="S",
                             help="first seed of the sweep (default: 1)")
    fuzz_parser.add_argument("--plan", default="timing", metavar="SPEC",
                             help="fault plan preset/spec (default: timing; "
                                  "'full' adds forced evictions + steal aborts)")
    fuzz_parser.add_argument("--no-sanitize", action="store_true",
                             help="skip the invariant sanitizer (faults only)")
    fuzz_parser.add_argument("--watchdog", type=positive_int,
                             default=2_000_000, metavar="CYCLES",
                             help="watchdog grace per run (default: 2000000)")
    fuzz_parser.add_argument("--break-coherence", default=None,
                             choices=("no-thief-flush", "no-parent-invalidate"),
                             help="deliberately break the runtime's flush "
                                  "discipline (sanitizer positive control)")
    fuzz_parser.add_argument("--expect-violations", action="store_true",
                             help="invert the verdict: fail unless the sweep "
                                  "finds at least one violation")
    fuzz_parser.add_argument("--out", default=None, metavar="FILE",
                             help="write the full fuzz report as JSON")

    verify_parser = sub.add_parser(
        "verify",
        help="exhaustively model-check the real coherence protocols on a "
             "1-line micro-machine (BFS over canonicalized states); "
             "violations yield minimal Perfetto-exportable counterexamples")
    verify_parser.add_argument(
        "--cores", type=int, default=2, choices=(2, 3, 4),
        help="cores in the micro-machine (default: 2; heterogeneous mixes "
             "use 1 MESI big core + the rest tiny)")
    verify_parser.add_argument(
        "--words", type=int, default=1, choices=(1, 2, 3),
        help="words of the line under test in free mode (default: 1; more "
             "words square the state space); the handoff scenario always "
             "uses at least 2 (payload + flag)")
    verify_parser.add_argument(
        "--mixes", default="all", metavar="LIST",
        help="comma-separated protocol mixes, or 'all' (default): "
             "mesi, denovo, gpu-wt, gpu-wb, hcc-dnv, hcc-gwt, hcc-gwb")
    verify_parser.add_argument(
        "--ops", default="all", metavar="LIST",
        help="comma-separated free-mode op alphabet, or 'all' (default): "
             "load, store, amo, flush, invalidate, l1evict, l2evict, bypass")
    verify_parser.add_argument(
        "--scenario", default="all", choices=("all", "free", "handoff"),
        help="'free' = full asynchronous interleaving of --ops; 'handoff' = "
             "the scripted DTS parent/thief handoff (default: both)")
    verify_parser.add_argument(
        "--break-coherence", default=None,
        choices=("no-thief-flush", "no-parent-invalidate"),
        help="drop one discipline step from the handoff scripts (positive "
             "control; implies --scenario handoff)")
    verify_parser.add_argument(
        "--expect-violations", action="store_true",
        help="invert the verdict: fail unless a counterexample is found")
    verify_parser.add_argument(
        "--max-states", type=positive_int, default=500_000, metavar="N",
        help="abort (and FAIL) an exploration past N states (default: "
             "500000); an incomplete run proves nothing")
    verify_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write counterexample JSON + Perfetto trace artifacts to DIR")

    ckpt_parser = sub.add_parser(
        "checkpoint",
        help="inspect a simulation snapshot file (repro.engine.checkpoint)")
    ckpt_parser.add_argument("snapshot", metavar="FILE",
                             help="snapshot written by 'run --checkpoint' or "
                                  "run_grid(checkpoint_dir=...)")

    ws_parser = sub.add_parser(
        "workspan", help="Cilkview work/span analysis", parents=[harness_flags])
    ws_parser.add_argument("app", choices=sorted(PAPER_APPS))
    ws_parser.add_argument("--scale", default="quick", choices=sorted(SCALES))

    perf_parser = sub.add_parser(
        "perf",
        help="benchmark the simulator's own wall-clock throughput "
             "(event-fusion fast path vs REPRO_NO_FUSION slow path)")
    perf_parser.add_argument(
        "--out", default="BENCH_wallclock.json", metavar="FILE",
        help="write the benchmark payload as JSON (default: "
             "BENCH_wallclock.json; pass '' to skip)")
    perf_parser.add_argument(
        "--repeats", type=positive_int, default=2, metavar="N",
        help="runs per mode per entry; wall time is the best of N "
             "(default: 2)")
    perf_parser.add_argument(
        "--smoke", action="store_true",
        help="run the small CI smoke mix instead of the full default mix")
    perf_parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="exit non-zero if the mix-aggregate fused/unfused speedup "
             "falls below X")
    perf_parser.add_argument(
        "--sampled", action="store_true",
        help="also benchmark the exact-vs-sampled pairs (repro.sampling) "
             "and record them in the payload's 'sampled' section")
    perf_parser.add_argument(
        "--parallel", action="store_true",
        help="also benchmark serial-vs-sharded replica pairs "
             "(repro.engine.pdes) and record them in the payload's "
             "'parallel' section")
    perf_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare against a committed BENCH_wallclock.json and exit "
             "non-zero on any regression beyond --tolerance")
    perf_parser.add_argument(
        "--tolerance", type=float, default=0.15, metavar="FRAC",
        help="allowed fractional drop per metric for --baseline "
             "(default: 0.15)")

    sample_parser = sub.add_parser(
        "sample",
        help="differentially validate sampled simulation against exact "
             "runs (cycles/traffic error per app) on affordable scales",
        parents=[harness_flags])
    sample_parser.add_argument(
        "--app", type=_app_arg, default=None, metavar="APP",
        help="validate a single app instead of the default validation mix")
    sample_parser.add_argument(
        "--config", "--kind", dest="config", type=_kind_arg,
        default="bt-hcc-dts-dnv", metavar="KIND",
        help="configuration for --app (default: bt-hcc-dts-dnv)")
    sample_parser.add_argument(
        "--scale", default="paper", choices=sorted(SCALES),
        help="scale for --app (default: paper)")
    sample_parser.add_argument(
        "--spec", default=None, metavar="U:W:D[:Q[:S]]",
        help="sampling spec to validate (default: the qualified "
             "validation spec)")
    sample_parser.add_argument(
        "--max-error", type=float, default=None, metavar="PCT",
        help="exit non-zero if the worst cycles/traffic error exceeds PCT")
    sample_parser.add_argument(
        "--json", action="store_true",
        help="emit the full validation payload as JSON")

    top_parser = sub.add_parser(
        "top",
        help="live top-style view over heartbeat snapshots written by runs "
             "started with --heartbeat-dir / REPRO_HEARTBEAT_DIR")
    top_parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="snapshot directory (default: REPRO_HEARTBEAT_DIR)")
    top_parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default: 1.0)")
    top_parser.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)")
    top_parser.add_argument(
        "--frames", type=positive_int, default=None, metavar="N",
        help="exit after N frames (plain output, no screen clearing)")
    top_parser.add_argument(
        "--prom", default=None, metavar="FILE",
        help="also maintain a Prometheus textfile with sweep aggregates")
    top_parser.add_argument(
        "--clean", action="store_true",
        help="garbage-collect snapshots whose writer process is dead "
             "(runs killed without finalizing) instead of listing them")
    top_parser.add_argument(
        "--stale-after", type=float, default=None, metavar="SECONDS",
        help="flag a live run as stale? after this many seconds without "
             "a heartbeat (default: REPRO_TOP_STALE_S or 30)")
    top_parser.add_argument(
        "--serve", default=None, metavar="WORKDIR",
        help="also render the job service status from WORKDIR's "
             "serve-status.json ('repro serve' work directory)")

    serve_parser = sub.add_parser(
        "serve",
        help="run the crash-tolerant simulation job service: supervised "
             "worker pool with retry/backoff, preemption for deadline "
             "jobs, and journal-based recovery (kill it anytime; restart "
             "recovers every job exactly once)",
        parents=[harness_flags])
    serve_parser.add_argument(
        "workdir", metavar="DIR",
        help="work directory: journal, snapshots, socket, status file")
    serve_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket path (default: DIR/serve.sock)")
    serve_parser.add_argument(
        "--slots", type=positive_int, default=2, metavar="N",
        help="concurrent worker processes (default: 2)")
    serve_parser.add_argument(
        "--max-pending", type=positive_int, default=64, metavar="N",
        help="queued jobs before submissions are rejected as overload "
             "(default: 64)")
    serve_parser.add_argument(
        "--max-per-tenant", type=positive_int, default=32, metavar="N",
        help="non-terminal jobs one tenant may hold (default: 32)")
    serve_parser.add_argument(
        "--max-attempts", type=positive_int, default=3, metavar="N",
        help="attempts before a failing job is quarantined (default: 3)")
    serve_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per attempt (default: unlimited)")
    serve_parser.add_argument(
        "--wedged-after", type=float, default=60.0, metavar="SECONDS",
        help="kill a worker whose heartbeat snapshot is older than this "
             "(default: 60; needs --heartbeat-dir)")
    serve_parser.add_argument(
        "--park-grace", type=float, default=10.0, metavar="SECONDS",
        help="time a preempted worker gets to park before being killed "
             "(default: 10)")
    serve_parser.add_argument(
        "--checkpoint-interval", type=positive_int, default=50_000,
        metavar="N", help="periodic snapshot cadence in simulated cycles "
                          "(default: 50000)")
    serve_parser.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="retry backoff floor (default: 0.5)")
    serve_parser.add_argument(
        "--backoff-cap", type=float, default=30.0, metavar="SECONDS",
        help="retry backoff ceiling (default: 30)")

    submit_parser = sub.add_parser(
        "submit",
        help="submit one experiment job to a running 'repro serve' "
             "instance (optionally waiting for its result)")
    submit_parser.add_argument(
        "workdir", metavar="DIR",
        help="the server's work directory (to find its socket)")
    submit_parser.add_argument("app", type=_app_arg, metavar="APP",
                               help="application (registry name or alias)")
    submit_parser.add_argument(
        "--config", "--kind", dest="config", type=_kind_arg,
        default="bt-hcc-dts-gwb", metavar="KIND")
    submit_parser.add_argument("--scale", default="quick",
                               choices=sorted(SCALES))
    submit_parser.add_argument("--serial", action="store_true",
                               help="serial elision")
    submit_parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket path (default: DIR/serve.sock)")
    submit_parser.add_argument(
        "--tenant", default="default", metavar="NAME",
        help="tenant the job is charged to (default: default)")
    submit_parser.add_argument(
        "--priority", type=int, default=5, metavar="N",
        help="scheduling priority, lower is more urgent (default: 5)")
    submit_parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="soft deadline; deadline jobs may preempt running batch jobs")
    submit_parser.add_argument(
        "--no-preempt", action="store_true",
        help="never park this job to make room for a deadline job")
    submit_parser.add_argument(
        "--sample", default=None, metavar="U:W:D[:Q]",
        help="run in periodic-sampling mode (not preemptible)")
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and report its outcome")
    submit_parser.add_argument(
        "--json", action="store_true",
        help="with --wait, print the full result payload as JSON")
    submit_parser.add_argument(
        "--retry-for", type=float, default=5.0, metavar="SECONDS",
        help="keep retrying the socket connection this long while the "
             "server boots (default: 5)")

    profile_parser = sub.add_parser(
        "profile",
        help="profile the simulator itself: wall-clock attribution per op "
             "kind and component (coroutines, L1/L2/DRAM, NoC, event loop) "
             "over the perf mix")
    profile_parser.add_argument(
        "--quick", action="store_true",
        help="profile the small CI smoke mix instead of the full default mix")
    profile_parser.add_argument(
        "--repeats", type=positive_int, default=1, metavar="N",
        help="runs per mix entry (default: 1)")
    profile_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the attribution payload as JSON")
    profile_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome-trace flamegraph-style view of the attribution")

    report_parser = sub.add_parser(
        "report",
        help="aggregate a run ledger into per-sweep summaries "
             "(hit/miss/failure counts, wall-time breakdown)",
        parents=[harness_flags])
    report_parser.add_argument(
        "ledger_file", nargs="?", default=None, metavar="LEDGER",
        help="ledger JSONL file (default: ledger.jsonl next to the "
             "configured result store)")
    report_parser.add_argument(
        "--json", action="store_true",
        help="emit the summary as JSON on stdout")

    args = parser.parse_args(argv)
    _apply_harness_flags(args)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "table": _cmd_table,
        "fig": _cmd_fig,
        "workspan": _cmd_workspan,
        "perf": _cmd_perf,
        "sample": _cmd_sample,
        "fuzz": _cmd_fuzz,
        "verify": _cmd_verify,
        "checkpoint": _cmd_checkpoint,
        "top": _cmd_top,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }[args.command]
    code = handler(args)
    if args.command in ("run", "table", "fig", "workspan"):
        _report_store()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
