"""Result export: JSON / CSV serialization of experiment results.

The benchmark harness prints human-readable tables; this module gives
downstream tooling (plotting scripts, result archives) machine-readable
forms of the same data.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from typing import Dict, List, Sequence

from repro.analysis.energy import EnergyReport
from repro.harness.runner import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """Flatten one ExperimentResult into a JSON-safe dict."""
    out = asdict(result)
    energy = out.pop("energy")
    out["energy_pj"] = energy["total_pj"]
    out["energy_breakdown_pj"] = energy["breakdown_pj"]
    return out


def result_from_dict(data: dict) -> ExperimentResult:
    """Revive an ExperimentResult from :func:`result_to_dict` output.

    The round trip is lossless (ints stay ints; floats survive JSON's
    repr-based round trip exactly), which is what lets the result store
    and the grid workers stand in for live simulations bit-for-bit.
    """
    data = dict(data)
    energy = EnergyReport(
        total_pj=data.pop("energy_pj"),
        breakdown_pj=dict(data.pop("energy_breakdown_pj")),
    )
    return ExperimentResult(energy=energy, **data)


def results_to_json(results: Sequence[ExperimentResult], indent: int = 2) -> str:
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def rows_to_csv(rows: List[dict]) -> str:
    """Serialize table rows (list of homogeneous dicts) to CSV text."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: _scalar(v) for k, v in row.items()})
    return buffer.getvalue()


def series_to_csv(data: Dict[str, Dict[str, float]]) -> str:
    """Serialize figure series ({app: {config: value}}) to CSV text."""
    if not data:
        return ""
    configs: List[str] = []
    for series in data.values():
        for kind in series:
            if kind not in configs:
                configs.append(kind)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["app"] + configs)
    for app_name, series in data.items():
        writer.writerow([app_name] + [_scalar(series.get(k, "")) for k in configs])
    return buffer.getvalue()


def _scalar(value):
    """Uniform float formatting for both table and figure CSVs."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return value
