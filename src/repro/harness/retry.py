"""Retry backoff policy shared by the grid and the serve supervisor.

One retry discipline for every supervisor-shaped loop in the repo:
exponential backoff with *decorrelated jitter* (the AWS architecture-blog
variant): each delay is drawn uniformly from ``[base, prev * multiplier]``
and clamped to ``cap``.  Compared with plain exponential backoff this
spreads retries of simultaneously failing workers apart (no thundering
herd after a shared-cause failure) while still growing the expected delay
geometrically.

Everything is injectable — the RNG and the clock — so the policy is unit
testable without sleeping: :class:`Backoff` tracks attempts and *when* the
next retry becomes eligible against whatever monotonic clock the caller
supplies; it never sleeps itself.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BackoffPolicy:
    """Delay schedule parameters (stateless, shareable, hashable).

    ``base_s`` is both the first delay's lower bound and the floor of every
    later draw; ``cap_s`` clamps the schedule; ``multiplier`` scales the
    previous *actual* delay (not the attempt number) into the next draw's
    upper bound, which is what makes the jitter decorrelated.
    """

    base_s: float = 0.25
    cap_s: float = 10.0
    multiplier: float = 3.0

    def __post_init__(self):
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.cap_s < self.base_s:
            raise ValueError(
                f"cap_s ({self.cap_s}) must be >= base_s ({self.base_s})"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def next_delay(self, prev_delay: Optional[float], rng: random.Random) -> float:
        """The delay after a failure whose previous delay was ``prev_delay``
        (None for the first failure)."""
        if self.cap_s == 0.0:
            return 0.0
        if prev_delay is None:
            prev_delay = self.base_s
        upper = min(self.cap_s, max(self.base_s, prev_delay * self.multiplier))
        return rng.uniform(self.base_s, upper)


#: Immediate retries, for tests and callers that want the old behaviour.
NO_BACKOFF = BackoffPolicy(base_s=0.0, cap_s=0.0, multiplier=1.0)


class Backoff:
    """Stateful retry tracker for one retried unit of work.

    The caller reports failures with :meth:`fail` and asks :meth:`ready`
    whether the unit is eligible to run again.  Time never passes inside
    this class — ``clock`` is sampled only when the caller calls in — so a
    test can drive it with a plain counter.
    """

    def __init__(
        self,
        policy: BackoffPolicy,
        rng: Optional[random.Random] = None,
        clock=time.monotonic,
    ):
        self.policy = policy
        self.rng = rng if rng is not None else random.Random()
        self.clock = clock
        self.attempts = 0
        self.last_delay: Optional[float] = None
        self.eligible_at: float = float("-inf")

    def fail(self) -> float:
        """Record one failure; returns the delay before the next attempt."""
        self.attempts += 1
        delay = self.policy.next_delay(self.last_delay, self.rng)
        self.last_delay = delay
        self.eligible_at = self.clock() + delay
        return delay

    def ready(self) -> bool:
        return self.clock() >= self.eligible_at

    def remaining(self) -> float:
        """Seconds until the next attempt is eligible (0 when ready)."""
        return max(0.0, self.eligible_at - self.clock())

    def reset(self) -> None:
        """Forget history (the unit succeeded)."""
        self.attempts = 0
        self.last_delay = None
        self.eligible_at = float("-inf")
