"""Shared stderr logging for harness telemetry.

Everything the harness says on stderr — the grid progress/ETA line, retry
notes, result-store hit/miss telemetry — goes through this module so the
output is consistent and parallel activity cannot interleave mangled
fragments: every emission is a single ``write()`` call, and a pending
overwriting status line is terminated with a newline before any regular
line is printed over it.

Verbosity is controlled by the ``REPRO_VERBOSE`` environment variable:

* ``0`` — silence all telemetry (progress and store lines);
* ``1`` — normal (the default): store telemetry, retry notes, and the
  progress line when ``REPRO_PROGRESS`` requests one;
* ``2+`` — debug-level extras (per-worker lifecycle notes).

Structured mode: ``REPRO_LOG_JSON=1`` switches every emission to one JSON
object per line — ``{"ts": ..., "level": ..., "kind": "log"|"alert"|
"status", "msg": ...}`` — so the run ledger and a future sweep server can
consume harness telemetry without scraping human-formatted stderr.  The
human format stays the default; in JSON mode status lines lose their
``\\r`` overwrite behaviour (each update is its own line, as a stream
consumer needs).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Optional

#: True while the last stderr emission was an unterminated ``\r`` status
#: line; the next regular line must first drop to a fresh row.
_status_active = False


def verbosity() -> int:
    """Current verbosity level from ``REPRO_VERBOSE`` (default 1)."""
    try:
        return int(os.environ.get("REPRO_VERBOSE", "1"))
    except ValueError:
        return 1


def json_mode() -> bool:
    """Whether ``REPRO_LOG_JSON`` requests JSON-lines telemetry."""
    return os.environ.get("REPRO_LOG_JSON", "") not in ("", "0")


def progress_enabled(override: Optional[bool] = None) -> bool:
    """Whether the overwriting progress/ETA line should be drawn.

    ``override`` (the ``run_grid(progress=...)`` argument) wins when given;
    otherwise ``REPRO_PROGRESS`` opts in.  ``REPRO_VERBOSE=0`` silences the
    line regardless.
    """
    if verbosity() <= 0:
        return False
    if override is not None:
        return override
    return os.environ.get("REPRO_PROGRESS", "") not in ("", "0")


def _emit_json(kind: str, message: str, level: int) -> None:
    """One structured telemetry line (single write, like the human path)."""
    record = {"ts": time.time(), "level": level, "kind": kind, "msg": message}
    sys.stderr.write(json.dumps(record, sort_keys=True) + "\n")
    sys.stderr.flush()


def log(message: str, level: int = 1) -> None:
    """Emit one complete telemetry line (atomically) at ``level``."""
    global _status_active
    if verbosity() < level:
        return
    if json_mode():
        _emit_json("log", message, level)
        return
    prefix = "\n" if _status_active else ""
    _status_active = False
    sys.stderr.write(f"{prefix}{message}\n")
    sys.stderr.flush()


def alert(message: str) -> None:
    """Emit a high-visibility line for watchdog/sanitizer findings.

    Alerts carry a distinct ``!!`` prefix so deadlock diagnostics and
    invariant violations stand out from routine telemetry, and they print
    even at ``REPRO_VERBOSE=0``: a sweep that silently swallowed a
    deadlock would defeat the point of recording it.
    """
    global _status_active
    if json_mode():
        _emit_json("alert", message, 0)
        return
    prefix = "\n" if _status_active else ""
    _status_active = False
    sys.stderr.write(f"{prefix}!! {message}\n")
    sys.stderr.flush()


def status(message: str) -> None:
    """Draw/overwrite the single in-place status line (no newline).

    In JSON mode every update is a complete line instead (a ``\\r``
    overwrite is meaningless to a stream consumer).
    """
    global _status_active
    if verbosity() <= 0:
        return
    if json_mode():
        _emit_json("status", message, 1)
        return
    sys.stderr.write(f"\r{message}")
    sys.stderr.flush()
    _status_active = True


def end_status() -> None:
    """Terminate a pending status line, if any, with a newline."""
    global _status_active
    if _status_active:
        sys.stderr.write("\n")
        sys.stderr.flush()
        _status_active = False
