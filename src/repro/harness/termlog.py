"""Shared stderr logging for harness telemetry.

Everything the harness says on stderr — the grid progress/ETA line, retry
notes, result-store hit/miss telemetry — goes through this module so the
output is consistent and parallel activity cannot interleave mangled
fragments: every emission is a single ``write()`` call, and a pending
overwriting status line is terminated with a newline before any regular
line is printed over it.

Verbosity is controlled by the ``REPRO_VERBOSE`` environment variable:

* ``0`` — silence all telemetry (progress and store lines);
* ``1`` — normal (the default): store telemetry, retry notes, and the
  progress line when ``REPRO_PROGRESS`` requests one;
* ``2+`` — debug-level extras (per-worker lifecycle notes).
"""

from __future__ import annotations

import os
import sys
from typing import Optional

#: True while the last stderr emission was an unterminated ``\r`` status
#: line; the next regular line must first drop to a fresh row.
_status_active = False


def verbosity() -> int:
    """Current verbosity level from ``REPRO_VERBOSE`` (default 1)."""
    try:
        return int(os.environ.get("REPRO_VERBOSE", "1"))
    except ValueError:
        return 1


def progress_enabled(override: Optional[bool] = None) -> bool:
    """Whether the overwriting progress/ETA line should be drawn.

    ``override`` (the ``run_grid(progress=...)`` argument) wins when given;
    otherwise ``REPRO_PROGRESS`` opts in.  ``REPRO_VERBOSE=0`` silences the
    line regardless.
    """
    if verbosity() <= 0:
        return False
    if override is not None:
        return override
    return os.environ.get("REPRO_PROGRESS", "") not in ("", "0")


def log(message: str, level: int = 1) -> None:
    """Emit one complete telemetry line (atomically) at ``level``."""
    global _status_active
    if verbosity() < level:
        return
    prefix = "\n" if _status_active else ""
    _status_active = False
    sys.stderr.write(f"{prefix}{message}\n")
    sys.stderr.flush()


def alert(message: str) -> None:
    """Emit a high-visibility line for watchdog/sanitizer findings.

    Alerts carry a distinct ``!!`` prefix so deadlock diagnostics and
    invariant violations stand out from routine telemetry, and they print
    even at ``REPRO_VERBOSE=0``: a sweep that silently swallowed a
    deadlock would defeat the point of recording it.
    """
    global _status_active
    prefix = "\n" if _status_active else ""
    _status_active = False
    sys.stderr.write(f"{prefix}!! {message}\n")
    sys.stderr.flush()


def status(message: str) -> None:
    """Draw/overwrite the single in-place status line (no newline)."""
    global _status_active
    if verbosity() <= 0:
        return
    sys.stderr.write(f"\r{message}")
    sys.stderr.flush()
    _status_active = True


def end_status() -> None:
    """Terminate a pending status line, if any, with a newline."""
    global _status_active
    if _status_active:
        sys.stderr.write("\n")
        sys.stderr.flush()
        _status_active = False
