"""Regenerators for the paper's tables (I, III, IV, V)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.apps import PAPER_APPS, make_app
from repro.config.system import BIGTINY_KINDS, DTS_KINDS, HCC_KINDS
from repro.harness.grid import GridPoint, run_grid
from repro.harness.params import TABLE5_APPS, app_params
from repro.harness.runner import run_experiment, run_serial_baseline, workspan
from repro.mem.l1 import PROTOCOLS

#: Protocol key -> (hcc kind, dts kind) pairs used by Table IV.
_PROTO_PAIRS = {
    "dnv": ("bt-hcc-dnv", "bt-hcc-dts-dnv"),
    "gwt": ("bt-hcc-gwt", "bt-hcc-dts-gwt"),
    "gwb": ("bt-hcc-gwb", "bt-hcc-dts-gwb"),
}


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ----------------------------------------------------------------------
# Table I — protocol taxonomy
# ----------------------------------------------------------------------
def table1_taxonomy() -> List[dict]:
    """Classification of the four coherence protocols (paper Table I)."""
    rows = []
    for key in ("mesi", "denovo", "gpu-wt", "gpu-wb"):
        proto = PROTOCOLS[key]
        rows.append(
            {
                "protocol": key,
                "invalidation": proto.INVALIDATION,
                "dirty_propagation": proto.DIRTY_PROPAGATION,
                "write_granularity": proto.WRITE_GRANULARITY,
                "amo_at_l2": proto.AMO_AT_L2,
                "needs_flush": proto.NEEDS_FLUSH,
                "needs_invalidate": proto.NEEDS_INVALIDATE,
            }
        )
    return rows


def format_table1(rows: List[dict]) -> str:
    header = (
        f"{'Protocol':10s} {'Invalidation':14s} {'Dirty Prop.':12s} "
        f"{'Granularity':12s} {'AMO@L2':7s} {'flush?':7s} {'inv?':5s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['protocol']:10s} {r['invalidation']:14s} {r['dirty_propagation']:12s} "
            f"{r['write_granularity']:12s} {str(r['amo_at_l2']):7s} "
            f"{str(r['needs_flush']):7s} {str(r['needs_invalidate']):5s}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table III — the main results table
# ----------------------------------------------------------------------
def table3(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> List[dict]:
    """Per-app: workspan stats, O3xN speedups, HCC speedups vs bt-mesi."""
    kinds = ("o3x1", "o3x4", "o3x8", "bt-mesi") + tuple(HCC_KINDS) + tuple(DTS_KINDS)
    points = [GridPoint(app, "serial-io", scale, serial=True) for app in apps]
    points += [GridPoint(app, kind, scale) for app in apps for kind in kinds]
    run_grid(points, jobs=jobs)  # seeds the memo cache the loops below hit
    rows = []
    for app_name in apps:
        serial = run_serial_baseline(app_name, scale)
        ws = workspan(app_name, scale)
        mesi = run_experiment(app_name, "bt-mesi", scale)
        row = {
            "app": app_name,
            "pm": make_app(app_name, **app_params(app_name, scale)).pm,
            "dinst": mesi.instructions,
            "work": ws.work,
            "span": ws.span,
            "para": ws.parallelism,
            "ipt": ws.instructions_per_task,
            "serial_cycles": serial.cycles,
        }
        for kind in ("o3x1", "o3x4", "o3x8", "bt-mesi"):
            res = run_experiment(app_name, kind, scale)
            row[f"speedup_{kind}"] = serial.cycles / res.cycles
        for kind in HCC_KINDS + DTS_KINDS:
            res = run_experiment(app_name, kind, scale)
            row[f"rel_{kind}"] = mesi.cycles / res.cycles
        rows.append(row)
    summary = {"app": "geomean", "pm": "", "dinst": 0, "work": 0, "span": 0}
    summary["para"] = geomean(r["para"] for r in rows)
    summary["ipt"] = geomean(r["ipt"] for r in rows)
    summary["serial_cycles"] = 0
    for kind in ("o3x1", "o3x4", "o3x8", "bt-mesi"):
        summary[f"speedup_{kind}"] = geomean(r[f"speedup_{kind}"] for r in rows)
    for kind in HCC_KINDS + DTS_KINDS:
        summary[f"rel_{kind}"] = geomean(r[f"rel_{kind}"] for r in rows)
    rows.append(summary)
    return rows


def format_table3(rows: List[dict]) -> str:
    header = (
        f"{'Name':12s} {'PM':3s} {'DInst':>9s} {'Work':>9s} {'Span':>7s} "
        f"{'Para':>7s} {'IPT':>8s} | {'O3x1':>6s} {'O3x4':>6s} {'O3x8':>6s} "
        f"{'bT/MESI':>8s} | {'dnv':>5s} {'gwt':>5s} {'gwb':>5s} | "
        f"{'D-dnv':>5s} {'D-gwt':>5s} {'D-gwb':>5s}"
    )
    lines = [
        "Table III: speedups over serial-IO (left) and vs big.TINY/MESI (right)",
        header,
        "-" * len(header),
    ]
    for r in rows:
        lines.append(
            f"{r['app']:12s} {r['pm']:3s} {r['dinst']:>9d} {r['work']:>9d} "
            f"{r['span']:>7d} {r['para']:>7.2f} {r['ipt']:>8.1f} | "
            f"{r['speedup_o3x1']:>6.2f} {r['speedup_o3x4']:>6.2f} "
            f"{r['speedup_o3x8']:>6.2f} {r['speedup_bt-mesi']:>8.2f} | "
            f"{r['rel_bt-hcc-dnv']:>5.2f} {r['rel_bt-hcc-gwt']:>5.2f} "
            f"{r['rel_bt-hcc-gwb']:>5.2f} | {r['rel_bt-hcc-dts-dnv']:>5.2f} "
            f"{r['rel_bt-hcc-dts-gwt']:>5.2f} {r['rel_bt-hcc-dts-gwb']:>5.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table IV — invalidation / flush reduction, hit-rate increase with DTS
# ----------------------------------------------------------------------
def table4(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> List[dict]:
    pair_kinds = [k for pair in _PROTO_PAIRS.values() for k in pair]
    run_grid(
        [GridPoint(app, kind, scale) for app in apps for kind in pair_kinds],
        jobs=jobs,
    )
    rows = []
    for app_name in apps:
        row = {"app": app_name}
        for proto, (hcc_kind, dts_kind) in _PROTO_PAIRS.items():
            hcc = run_experiment(app_name, hcc_kind, scale)
            dts = run_experiment(app_name, dts_kind, scale)
            inv_dec = _pct_decrease(hcc.lines_invalidated, dts.lines_invalidated)
            row[f"invdec_{proto}"] = inv_dec
            row[f"hitinc_{proto}"] = 100.0 * (dts.l1_hit_rate_tiny - hcc.l1_hit_rate_tiny)
            if proto == "gwb":
                row["flsdec_gwb"] = _pct_decrease(hcc.lines_flushed, dts.lines_flushed)
        rows.append(row)
    return rows


def _pct_decrease(before: int, after: int) -> float:
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before


def format_table4(rows: List[dict]) -> str:
    header = (
        f"{'App':12s} | {'InvDec dnv':>10s} {'InvDec gwt':>10s} {'InvDec gwb':>10s} | "
        f"{'FlsDec gwb':>10s} | {'HitInc dnv':>10s} {'HitInc gwt':>10s} {'HitInc gwb':>10s}"
    )
    lines = [
        "Table IV: DTS vs non-DTS HCC (invalidation/flush decrease %, hit-rate increase pp)",
        header,
        "-" * len(header),
    ]
    for r in rows:
        lines.append(
            f"{r['app']:12s} | {r['invdec_dnv']:>10.2f} {r['invdec_gwt']:>10.2f} "
            f"{r['invdec_gwb']:>10.2f} | {r['flsdec_gwb']:>10.2f} | "
            f"{r['hitinc_dnv']:>10.2f} {r['hitinc_gwt']:>10.2f} {r['hitinc_gwb']:>10.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table V — larger-scale (256-core) system
# ----------------------------------------------------------------------
def table5(
    scale: str = "large",
    apps: Sequence[str] = TABLE5_APPS,
    jobs: Optional[int] = None,
) -> List[dict]:
    points = [GridPoint(app, "serial-io", scale, serial=True) for app in apps]
    points += [
        GridPoint(app, kind, scale)
        for app in apps
        for kind in ("bt-mesi", "bt-hcc-gwb", "bt-hcc-dts-gwb")
    ]
    run_grid(points, jobs=jobs)
    rows = []
    for app_name in apps:
        serial = run_serial_baseline(app_name, scale)
        mesi = run_experiment(app_name, "bt-mesi", scale)
        gwb = run_experiment(app_name, "bt-hcc-gwb", scale)
        dts = run_experiment(app_name, "bt-hcc-dts-gwb", scale)
        rows.append(
            {
                "app": app_name,
                "dinst": mesi.instructions,
                "mesi_vs_serial": serial.cycles / mesi.cycles,
                "gwb_vs_mesi": mesi.cycles / gwb.cycles,
                "dts_gwb_vs_mesi": mesi.cycles / dts.cycles,
            }
        )
    return rows


def format_table5(rows: List[dict]) -> str:
    header = (
        f"{'App':12s} {'DInst':>10s} {'bT/MESI vs serial':>18s} "
        f"{'HCC-gwb vs MESI':>16s} {'HCC-DTS-gwb vs MESI':>20s}"
    )
    lines = ["Table V: larger-scale big.TINY system", header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['app']:12s} {r['dinst']:>10d} {r['mesi_vs_serial']:>18.2f} "
            f"{r['gwb_vs_mesi']:>16.2f} {r['dts_gwb_vs_mesi']:>20.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Headline claims (abstract / Section I)
# ----------------------------------------------------------------------
def headline_claims(scale: str, apps: Sequence[str] = PAPER_APPS) -> Dict[str, float]:
    """The paper's three headline numbers.

    * big.TINY/MESI speedup over a single big core (paper: ~7x);
    * big.TINY/MESI speedup over area-equivalent O3x8 (paper: ~1.4x);
    * best HCC+DTS vs big.TINY/MESI (paper: +21%).
    """
    rows = table3(scale, apps)
    summary = rows[-1]
    mesi_over_o3x1 = summary["speedup_bt-mesi"] / summary["speedup_o3x1"]
    mesi_over_o3x8 = summary["speedup_bt-mesi"] / summary["speedup_o3x8"]
    best_dts = max(summary[f"rel_{kind}"] for kind in DTS_KINDS)
    # The conclusion's vision claim: HCC-DTS-gwb vs O3x4 (paper: up to 2-3x).
    dts_gwb_abs = summary["rel_bt-hcc-dts-gwb"] * summary["speedup_bt-mesi"]
    return {
        "bigtiny_mesi_vs_one_big_core": mesi_over_o3x1,
        "bigtiny_mesi_vs_o3x8": mesi_over_o3x8,
        "best_hcc_dts_vs_bigtiny_mesi": best_dts,
        "hcc_dts_gwb_vs_o3x4": dts_gwb_abs / summary["speedup_o3x4"],
    }
