"""Experiment runner: one (app, config, scale) simulation -> ExperimentResult.

Results are memoized per process *and* persisted to an optional on-disk
:class:`repro.harness.resultstore.ResultStore`, the way a results database
would in the paper's gem5 workflow: the Table III runs feed Figures 5-8
without re-simulating, and a warm rerun of any benchmark against the same
results directory performs zero simulations.

The store is configured explicitly with :func:`set_result_store` (the CLI's
``--results-dir`` / ``--no-store`` flags) or ambiently via the
``REPRO_RESULTS_DIR`` environment variable.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro import __version__
from repro.analysis.cilkview import CilkviewAnalyzer, WorkSpanReport
from repro.analysis.energy import EnergyReport, estimate_energy
from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointDaemon,
    CheckpointError,
    ParkDaemon,
    ParkedRun,
    capture_init_state,
    capture_run_state,
    load_snapshot,
    restore_init_state,
    save_snapshot,
)
from repro.faults import FaultPlan
from repro.harness.params import app_params, init_signature
from repro.harness.resultstore import STORE_SCHEMA, ResultStore, hash_key
from repro.machine import Machine
from repro.obs.heartbeat import heartbeat_dir


@dataclass
class ExperimentResult:
    app: str
    kind: str
    scale: str
    serial: bool
    cycles: int
    instructions: int
    tasks: int
    spawns: int
    steals: int
    steal_attempts: int
    l1_hit_rate_tiny: float
    lines_invalidated: int
    lines_flushed: int
    invalidate_ops: int
    flush_ops: int
    amos: int
    traffic_bytes: Dict[str, int]
    tiny_breakdown: Dict[str, int]
    energy: EnergyReport
    uli_handled: int = 0
    uli_handler_cycles: int = 0
    uli_nacks: int = 0
    uli_utilization: float = 0.0
    uli_avg_latency: float = 0.0
    #: "exact" or "sampled" — sampled results carry extrapolated cycles,
    #: traffic, and rates (repro.sampling) and are firewalled from exact
    #: ones by the memo/store keys and the run ledger.
    mode: str = "exact"
    #: Sampling summary (spec, windows, coverage, CIs) for sampled runs.
    sampling: Optional[Dict] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total_traffic(self) -> int:
        return sum(self.traffic_bytes.values())


_CACHE: Dict[Tuple, ExperimentResult] = {}
_WORKSPAN_CACHE: Dict[Tuple, WorkSpanReport] = {}

#: Number of timed machine simulations actually executed in this process
#: (cache and store hits do not count) — the quantity warm-store smoke
#: tests assert to be zero.
_SIM_COUNT = 0

#: Lazily initialized process-wide result store; the sentinel means "not
#: configured yet, consult REPRO_RESULTS_DIR on first use".
_STORE_UNSET = object()
_STORE: Union[object, Optional[ResultStore]] = _STORE_UNSET


def default_scale() -> str:
    """Benchmark scale, overridable with REPRO_SCALE=paper|large|quick."""
    return os.environ.get("REPRO_SCALE", "quick")


def simulation_count() -> int:
    """How many real simulations this process has executed so far."""
    return _SIM_COUNT


# ----------------------------------------------------------------------
# Result store configuration
# ----------------------------------------------------------------------
def get_result_store() -> Optional[ResultStore]:
    """The process-wide result store (REPRO_RESULTS_DIR), or None."""
    global _STORE
    if _STORE is _STORE_UNSET:
        path = os.environ.get("REPRO_RESULTS_DIR")
        _STORE = ResultStore(path) if path else None
    return _STORE


def set_result_store(store) -> Optional[ResultStore]:
    """Install ``store`` (a ResultStore, a directory path, or None)."""
    global _STORE
    if store is None or isinstance(store, ResultStore):
        _STORE = store
    else:
        _STORE = ResultStore(store)
    return _STORE


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------
def canonicalize(value):
    """Recursively reduce ``value`` to a hashable, order-independent form.

    Dicts become key-sorted tuples of (key, canonical value) pairs, lists
    and tuples become tuples, sets become repr-sorted tuples.  This is the
    memo-key form; the on-disk store applies the same discipline through
    ``json.dumps(sort_keys=True)``.
    """
    if isinstance(value, dict):
        return tuple((k, canonicalize(value[k])) for k in sorted(value))
    if isinstance(value, (list, tuple)):
        return tuple(canonicalize(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonicalize(v) for v in value), key=repr))
    return value


def _robustness_dict(
    faults: Optional[FaultPlan], sanitize: bool, watchdog: Optional[int]
) -> dict:
    """Canonical description of the fault/sanitizer/watchdog setup.

    Part of both the memo key and the persistent store key: a faulted or
    sanitized run must never satisfy a cache probe for a clean one (or
    vice versa).  The watchdog participates too — it cannot change a
    *successful* run's numbers, but a result produced under a different
    deadlock policy is a different experiment.
    """
    return {
        "faults": faults.as_dict() if faults is not None else None,
        "sanitize": bool(sanitize),
        "watchdog": watchdog,
    }


def _mode_dict(sampling) -> dict:
    """Canonical mode descriptor for cache keys.

    Part of both the memo key and the persistent store key: a sampled
    result (estimated cycles/traffic) must never satisfy a probe for an
    exact one, or vice versa — and two sampled runs with different
    sampling parameters are different experiments.
    """
    return {
        "mode": "sampled" if sampling is not None else "exact",
        "sampling": sampling.as_dict() if sampling is not None else None,
    }


def memo_key(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool = False,
    app_overrides: Optional[dict] = None,
    runtime_kwargs: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    faults: Optional[FaultPlan] = None,
    sanitize: bool = False,
    watchdog: Optional[int] = None,
    sampling=None,
) -> Tuple:
    """The in-process memo key for one experiment (always hashable)."""
    return (
        app_name,
        kind,
        scale,
        bool(serial),
        canonicalize(app_overrides or {}),
        canonicalize(runtime_kwargs or {}),
        canonicalize(config_overrides or {}),
        canonicalize(_robustness_dict(faults, sanitize, watchdog)),
        canonicalize(_mode_dict(sampling)),
    )


def _experiment_store_key(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool,
    app_overrides: Optional[dict],
    runtime_kwargs: Optional[dict],
    config_overrides: Optional[dict],
    faults: Optional[FaultPlan] = None,
    sanitize: bool = False,
    watchdog: Optional[int] = None,
    sampling=None,
) -> dict:
    """The persistent store key: resolved params + config + code version.

    App parameters and the system configuration are resolved before
    hashing, so editing a scale preset or an input table invalidates
    exactly the affected entries.
    """
    config = make_config(kind, scale, **(config_overrides or {}))
    return {
        "schema": STORE_SCHEMA,
        "code_version": __version__,
        "experiment": {
            "app": app_name,
            "kind": kind,
            "scale": scale,
            "serial": bool(serial),
            "app_params": app_params(app_name, scale, **(app_overrides or {})),
            "runtime_kwargs": runtime_kwargs or {},
            "config": dataclasses.asdict(config),
            "robustness": _robustness_dict(faults, sanitize, watchdog),
            # Schema 3: identifies the shared init phase.  Computed the
            # same way for cold and warm-started runs (checkpointing never
            # perturbs outcomes), so either satisfies probes for the other;
            # whether a stored result actually warm-started or resumed is
            # recorded in the payload's "lineage", not the key.
            "init_signature": init_signature(
                app_name, scale, **(app_overrides or {})
            ),
            # Schema 4: the exact/sampled firewall.  Sampled estimates and
            # exact measurements of the same experiment hash to different
            # store paths, so neither can ever satisfy a warm-rerun probe
            # for the other.
            "mode": _mode_dict(sampling),
        },
    }


def _workspan_store_key(app_name: str, scale: str, overrides: dict) -> dict:
    return {
        "schema": STORE_SCHEMA,
        "code_version": __version__,
        "workspan": {
            "app": app_name,
            "scale": scale,
            "app_params": app_params(app_name, scale, **overrides),
        },
    }


def _classify_error(exc: BaseException) -> str:
    """Ledger error kind for a simulation failure (mirrors grid labels)."""
    from repro.engine.watchdog import DeadlockError
    from repro.sanitize import SanitizerError

    if isinstance(exc, DeadlockError):
        return "deadlock"
    if isinstance(exc, SanitizerError):
        return "violation"
    return "error"


def _ledger_record(
    outcome: str,
    *,
    app_name: str,
    kind: str,
    scale: str,
    serial: bool,
    wall_s: float,
    store_key=None,
    error=None,
    message=None,
    cycles=None,
    seed=None,
    robustness=None,
    lineage=None,
    sampling=None,
) -> None:
    """Append one run-manifest line when a ledger is configured (no-op
    otherwise — the ledger is strictly off by default)."""
    from repro.obs.ledger import get_ledger

    ledger = get_ledger()
    if ledger is None:
        return
    ledger.record(
        # Supervising parents can relabel their workers' lines (the serve
        # spawn sets "serve" around its fork) so `repro report` can tell
        # service work from ad-hoc runs.
        source=os.environ.get("REPRO_LEDGER_SOURCE", "runner"),
        outcome=outcome,
        app=app_name,
        kind=kind,
        scale=scale,
        serial=bool(serial),
        error=error,
        message=message,
        wall_s=wall_s,
        cycles=cycles,
        seed=seed,
        robustness=robustness,
        lineage=lineage,
        # The exact/sampled firewall extends into run accounting: every
        # line carries the mode so `repro report` can never mix them.
        mode="sampled" if sampling is not None else "exact",
        sampling=sampling.spec_str() if sampling is not None else None,
        store_key=hash_key(store_key) if store_key is not None else None,
    )


def run_experiment(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool = False,
    check: bool = True,
    use_cache: bool = True,
    app_overrides: Optional[dict] = None,
    runtime_kwargs: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    tracer=None,
    sample_interval: Optional[int] = None,
    faults=None,
    sanitize: bool = False,
    watchdog: Optional[int] = None,
    checkpoint=None,
    sampling=None,
    shards: Optional[int] = None,
) -> ExperimentResult:
    """Simulate ``app_name`` on configuration ``kind`` at ``scale``.

    Passing a :class:`repro.trace.Tracer` (and optionally a
    ``sample_interval`` in cycles for the interval statistics sampler)
    records a cycle-accurate event trace of the run.  Traced runs always
    simulate — the memo cache and the on-disk result store are bypassed,
    since a cached result carries no events — but the *result* is
    identical either way: tracing never perturbs simulated timing.

    ``faults`` (a :class:`repro.faults.FaultPlan`, preset name, or spec
    string), ``sanitize``, and ``watchdog`` (a grace in cycles) configure
    the robustness subsystem; all three participate in the memo and store
    keys.  A sanitized run raises :class:`repro.sanitize.SanitizerError`
    on any invariant violation; a watchdogged run raises
    :class:`repro.engine.DeadlockError` with a per-core diagnostic instead
    of grinding to ``max_cycles``.

    ``checkpoint`` (a :class:`repro.engine.CheckpointConfig`, a snapshot
    path, or a kwargs dict) enables deterministic checkpoint/restore:
    with ``path`` + ``interval`` the run snapshots itself periodically;
    with ``resume`` an existing snapshot at ``path`` is restored and the
    run finishes from there, byte-identical to an uninterrupted run; with
    ``init_dir`` the post-``setup`` state is shared across configurations
    (warm-start fan-out).  Checkpointing never perturbs a simulation's
    outcome, so it participates in neither the memo key nor the store key;
    provenance lands in ``result.extras`` (``ckpt_*`` keys) and the store
    payload's ``lineage``.

    ``sampling`` (a :class:`repro.sampling.SamplingSpec` or a ``"U:W:D"``
    spec string) runs the experiment in periodic-sampling mode: detailed
    measurement windows alternate with functional fast-forward, and the
    result's cycles/traffic/rates are window extrapolations (exact
    architectural counts stay exact).  Sampled results are firewalled:
    ``mode`` + the spec enter the memo key, store key, and ledger line,
    so they can never satisfy a probe for an exact result.  Sampling is
    incompatible with tracing, the interval sampler, fault injection, the
    sanitizer, and run checkpoints (warm-start ``init_dir`` is fine).

    ``shards`` (``> 1``) runs the experiment as that many validated
    parallel replicas (:mod:`repro.engine.pdes`): worker processes under
    diversified engines whose memory digests, statistics, counts, and
    traces must agree byte-for-byte before the result is returned.
    Sharding never enters the memo or store keys — a sharded result *is*
    the serial result (validated, not assumed), so either satisfies
    probes for the other; provenance lands in ``extras`` (``pdes_*``).
    Sharding is incompatible with tracing via this function (use
    ``repro run --shards --trace`` / ``pdes.run_sharded(trace_path=…)``),
    checkpoints, sampling, fault injection, and the sanitizer — all
    refused loudly.
    """
    started = time.perf_counter()
    faults = FaultPlan.coerce(faults)
    ckpt = CheckpointConfig.coerce(checkpoint)
    n_shards = int(shards) if shards is not None else 1
    if n_shards > 1:
        from repro.engine.pdes.replicate import (
            ShardUnsupportedError,
            _check_supported,
        )

        if tracer is not None or sample_interval is not None:
            raise ShardUnsupportedError(
                "sharded runs cannot take an in-process tracer (replicas "
                "trace in their own processes); use repro run --shards "
                "--trace or pdes.run_sharded(trace_path=...)"
            )
        # Refuse unsupported combinations before any cache probe: a
        # contradictory request must fail loudly, never be satisfied
        # quietly by a memo hit.
        _check_supported(dict(
            sampling=sampling, checkpoint=ckpt, faults=faults,
            sanitize=sanitize,
        ))
    robustness = _robustness_dict(faults, sanitize, watchdog)
    if sampling is not None:
        from repro.sampling import SamplingError, SamplingSpec

        sampling = SamplingSpec.coerce(sampling)
        if tracer is not None or sample_interval is not None:
            raise SamplingError(
                "sampled runs cannot be traced: fast-forward has no "
                "cycle-accurate timeline to trace"
            )
        if faults is not None:
            raise SamplingError(
                "sampled runs cannot inject faults: fault sites live in "
                "the timing models fast-forward bypasses"
            )
        if sanitize:
            raise SamplingError(
                "sampled runs cannot be sanitized: coherence invariants "
                "are vacuous while the cache hierarchy is drained"
            )
        if ckpt is not None and (
            ckpt.path or ckpt.resume or ckpt.interval or ckpt.park_path
        ):
            raise SamplingError(
                "sampled runs cannot take or resume run checkpoints, and "
                "so cannot be parked (warm-start init_dir is allowed)"
            )
    traced = tracer is not None or sample_interval is not None
    if traced:
        use_cache = False
    key = memo_key(
        app_name, kind, scale, serial, app_overrides, runtime_kwargs,
        config_overrides, faults, sanitize, watchdog, sampling,
    )
    if use_cache and key in _CACHE:
        result = _CACHE[key]
        _ledger_record(
            "memo-hit",
            app_name=app_name, kind=kind, scale=scale, serial=serial,
            wall_s=time.perf_counter() - started,
            cycles=result.cycles, robustness=robustness, sampling=sampling,
        )
        return result

    store = get_result_store() if use_cache else None
    store_key = None
    if store is not None:
        store_key = _experiment_store_key(
            app_name, kind, scale, serial,
            app_overrides, runtime_kwargs, config_overrides,
            faults, sanitize, watchdog, sampling,
        )
        payload = store.load(store_key)
        if payload is not None:
            from repro.harness.export import result_from_dict

            result = result_from_dict(payload["result"])
            _CACHE[key] = result
            _ledger_record(
                "store-hit",
                app_name=app_name, kind=kind, scale=scale, serial=serial,
                wall_s=time.perf_counter() - started, store_key=store_key,
                cycles=result.cycles, robustness=robustness,
                lineage=payload.get("lineage"), sampling=sampling,
            )
            return result

    # The uncached path runs in a helper so this wrapper can guarantee the
    # observability postconditions on *every* exit: exactly one ledger
    # line per call (success or failure) and a finalized heartbeat file.
    ctx: dict = {}
    try:
        if n_shards > 1:
            result = _run_sharded_experiment(
                app_name, kind, scale, serial, check, use_cache,
                app_overrides, runtime_kwargs, config_overrides,
                watchdog, n_shards, key, store, store_key, ctx,
            )
        else:
            result = _simulate_experiment(
                app_name, kind, scale, serial, check, use_cache,
                app_overrides, runtime_kwargs, config_overrides,
                tracer, sample_interval, faults, sanitize, watchdog,
                ckpt, sampling, key, store, store_key, ctx,
            )
    except ParkedRun as exc:
        # Preemption is not a failure: the run's snapshot is on disk and a
        # later resume finishes it byte-identically.  The ledger records
        # the parked attempt so wall-time accounting stays complete.
        heartbeat = ctx.get("heartbeat")
        if heartbeat is not None:
            heartbeat.finalize("parked")
        _ledger_record(
            "parked",
            app_name=app_name, kind=kind, scale=scale, serial=serial,
            wall_s=time.perf_counter() - started, store_key=store_key,
            cycles=exc.cycle, seed=ctx.get("seed"), robustness=robustness,
            lineage=ctx.get("lineage"), sampling=sampling,
        )
        raise
    except Exception as exc:
        heartbeat = ctx.get("heartbeat")
        if heartbeat is not None:
            heartbeat.finalize("failed", error=repr(exc))
        _ledger_record(
            "failed",
            app_name=app_name, kind=kind, scale=scale, serial=serial,
            wall_s=time.perf_counter() - started, store_key=store_key,
            error=_classify_error(exc),
            message=(str(exc).splitlines() or [repr(exc)])[0],
            seed=ctx.get("seed"), robustness=robustness,
            lineage=ctx.get("lineage"), sampling=sampling,
        )
        raise
    heartbeat = ctx.get("heartbeat")
    if heartbeat is not None:
        heartbeat.finalize("done")
    _ledger_record(
        "ok",
        app_name=app_name, kind=kind, scale=scale, serial=serial,
        wall_s=time.perf_counter() - started, store_key=store_key,
        cycles=result.cycles, seed=ctx.get("seed"),
        robustness=robustness, lineage=ctx.get("lineage"), sampling=sampling,
    )
    return result


def _run_sharded_experiment(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool,
    check: bool,
    use_cache: bool,
    app_overrides: Optional[dict],
    runtime_kwargs: Optional[dict],
    config_overrides: Optional[dict],
    watchdog: Optional[int],
    n_shards: int,
    key,
    store,
    store_key,
    ctx: dict,
) -> ExperimentResult:
    """The ``shards > 1`` path of :func:`run_experiment`: validated
    parallel replicas (:mod:`repro.engine.pdes.replicate`).

    Counts as one simulation for this process (the replicas run in
    children); the returned result is byte-identical to the serial path
    by checked construction, so it lands in the same memo/store slots.
    """
    global _SIM_COUNT
    from repro.engine.pdes import run_sharded

    _SIM_COUNT += 1
    ctx["lineage"] = {"pdes_shards": n_shards, "pdes_validated": True}
    result = run_sharded(
        dict(
            app_name=app_name, kind=kind, scale=scale, serial=serial,
            check=check, app_overrides=app_overrides,
            runtime_kwargs=runtime_kwargs,
            config_overrides=config_overrides, watchdog=watchdog,
        ),
        n_shards,
    )
    if use_cache:
        _CACHE[key] = result
    if store is not None:
        from repro.harness.export import result_to_dict

        store.store(
            store_key,
            {
                "key": store_key,
                "result": result_to_dict(result),
                "lineage": ctx["lineage"],
            },
        )
    return result


def _simulate_experiment(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool,
    check: bool,
    use_cache: bool,
    app_overrides: Optional[dict],
    runtime_kwargs: Optional[dict],
    config_overrides: Optional[dict],
    tracer,
    sample_interval: Optional[int],
    faults,
    sanitize: bool,
    watchdog: Optional[int],
    ckpt,
    sampling,
    key,
    store,
    store_key,
    ctx: dict,
) -> ExperimentResult:
    """The uncached simulation path of :func:`run_experiment`.

    ``ctx`` is an out-channel for provenance the caller needs even when
    this function raises mid-run: the machine seed, the checkpoint lineage
    dict, and the heartbeat writer (the caller finalizes it — "done" or
    "failed" — once the outcome is known).
    """
    global _SIM_COUNT
    _SIM_COUNT += 1
    params = app_params(app_name, scale, **(app_overrides or {}))
    machine = Machine(
        make_config(kind, scale, **(config_overrides or {})),
        tracer=tracer,
        faults=faults,
        sanitize=sanitize,
    )
    ctx["seed"] = machine.config.seed
    run_snapshots = ckpt is not None and ckpt.path is not None
    if run_snapshots:
        machine.enable_checkpointing()

    lineage = {"warm_start": False, "resumed_from_cycle": None, "snapshots_taken": 0}
    ctx["lineage"] = lineage
    resume_snap = None
    if run_snapshots and ckpt.resume and os.path.exists(ckpt.path):
        resume_snap = load_snapshot(ckpt.path)

    # Warm start: restore the shared post-setup image instead of running
    # the app's (possibly expensive) serial init phase again.  Resumed
    # runs re-execute setup: its effects are overwritten by the restore,
    # but the app object it produces must exist either way.
    app = None
    if resume_snap is None and ckpt is not None and ckpt.init_dir:
        sig = init_signature(app_name, scale, **(app_overrides or {}))
        init_path = os.path.join(ckpt.init_dir, f"{sig}.init")
        if os.path.exists(init_path):
            app = restore_init_state(machine, load_snapshot(init_path), signature=sig)
            lineage["warm_start"] = True
    if app is None:
        app = make_app(app_name, **params)
        app.setup(machine)
        if resume_snap is None and ckpt is not None and ckpt.init_dir and ckpt.save_init:
            try:
                save_snapshot(init_path, capture_init_state(machine, app, sig))
            except CheckpointError:
                # Setup consumed machine.rng: this app's init phase is not
                # configuration-invariant, so every run must cold-start.
                pass

    rt_kwargs = dict(runtime_kwargs or {})
    if serial:
        # Table III "serial IO" baseline: the serial elision of the same
        # program (same grain, no runtime bookkeeping).
        rt_kwargs["serial_elision"] = True
    if watchdog is not None:
        rt_kwargs["watchdog"] = watchdog
    runtime = WorkStealingRuntime(machine, **rt_kwargs)

    heartbeat = None
    hb_dir = heartbeat_dir()
    if hb_dir:
        from repro.obs.heartbeat import HeartbeatWriter

        heartbeat = HeartbeatWriter.for_run(
            machine, runtime, hb_dir,
            meta={
                "app": app_name,
                "kind": kind,
                "scale": scale,
                "serial": bool(serial),
            },
        )
        ctx["heartbeat"] = heartbeat

    sampler = None
    if sample_interval is not None:
        from repro.obs.metrics import machine_metrics
        from repro.trace.sampler import IntervalSampler
        from repro.trace.tracer import NULL_TRACER

        # engine=False: event/fusion gauges differ between fused and
        # unfused runs, and sampled traces must stay byte-identical.
        sampler = IntervalSampler(
            machine.sim, machine_metrics(machine, engine=False).collect,
            sample_interval,
            tracer=tracer if tracer is not None else NULL_TRACER,
        )
        if run_snapshots:
            # Let snapshots carry (and restores re-arm) the sampler.
            machine.ckpt_sampler = sampler
        if resume_snap is None:
            sampler.start()

    daemon = None
    if run_snapshots and ckpt.interval:
        daemon = CheckpointDaemon(
            machine,
            ckpt.interval,
            lambda m: save_snapshot(ckpt.path, capture_run_state(m)),
        )
    park_daemon = None
    if ckpt is not None and ckpt.park_path:
        if not run_snapshots:
            raise CheckpointError(
                "a preemptible (park_path) run needs a snapshot path"
            )
        park_daemon = ParkDaemon(
            machine,
            ckpt.park_poll,
            ckpt.park_path,
            lambda m: save_snapshot(ckpt.path, capture_run_state(m)),
            snapshot_path=ckpt.path,
        )
    controller = None
    if sampling is not None:
        from repro.sampling import SamplingController

        controller = SamplingController(machine, sampling)
        controller.start()

    if resume_snap is not None:
        machine.restore(resume_snap, app.make_root(serial=False))
        lineage["resumed_from_cycle"] = resume_snap["cycle"]
        if daemon is not None:
            daemon.arm()
        if park_daemon is not None:
            park_daemon.arm()
        # Heartbeat starts after the restore so its daemon tick rides the
        # restored event queue (restore rebuilds simulator state).
        if heartbeat is not None:
            heartbeat.start()
        cycles = runtime.resume_run()
    else:
        if daemon is not None:
            daemon.arm()
        if park_daemon is not None:
            park_daemon.arm()
        if heartbeat is not None:
            heartbeat.start()
        cycles = runtime.run(app.make_root(serial=False))
    if park_daemon is not None:
        park_daemon.cancel()
    if daemon is not None:
        daemon.cancel()
        lineage["snapshots_taken"] = daemon.snapshots_taken
    if run_snapshots and not ckpt.keep and os.path.exists(ckpt.path):
        # The run completed; a leftover snapshot would only be clutter
        # (and a stale resume source).  ``keep=True`` preserves it.
        os.remove(ckpt.path)
    if controller is not None:
        controller.finalize()
    if sampler is not None:
        sampler.finalize()
    if tracer is not None:
        tracer.core_labels.update(machine.core_labels())
        tracer.set_meta(
            app=app_name, kind=kind, scale=scale, serial=bool(serial),
            seed=machine.config.seed, n_cores=machine.config.n_cores,
            cycles=cycles, sample_interval=sample_interval,
        )
        tracer.finish(machine.sim.now)
    if machine.sanitizer is not None:
        # Raises SanitizerError before any (less diagnostic) check failure.
        machine.sanitizer.finish(runtime)
    if check:
        app.check()

    result = assemble_result(app_name, kind, scale, serial, machine, runtime, cycles)
    if controller is not None:
        _apply_sampled_estimates(result, machine, sampling, controller)
    if machine.fault_injector is not None:
        result.extras["faults_fired"] = machine.fault_injector.total_fired()
    if machine.sanitizer is not None:
        result.extras["sanitizer_walks"] = machine.sanitizer.stats.get("walks")
    # Checkpoint provenance: diagnostics only, never part of result
    # identity (a warm-started or resumed run is byte-identical to a cold
    # one; comparisons should ignore ``extras``).
    if lineage["warm_start"]:
        result.extras["ckpt_warm_start"] = 1.0
    if lineage["resumed_from_cycle"] is not None:
        result.extras["ckpt_resumed_from"] = float(lineage["resumed_from_cycle"])
    if lineage["snapshots_taken"]:
        result.extras["ckpt_snapshots"] = float(lineage["snapshots_taken"])
    if use_cache:
        _CACHE[key] = result
    if store is not None:
        from repro.harness.export import result_to_dict

        store.store(
            store_key,
            {"key": store_key, "result": result_to_dict(result), "lineage": lineage},
        )
    return result


def assemble_result(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool,
    machine,
    runtime,
    cycles: int,
) -> ExperimentResult:
    """Build an :class:`ExperimentResult` from a finished machine/runtime.

    Shared by the serial path (:func:`_simulate_experiment`) and the
    sharded replicas (:mod:`repro.engine.pdes.replicate`), so every
    execution mode derives its result fields from the machine state the
    same way — a precondition for byte-identity validation.
    """
    tiny_ids = machine.tiny_core_ids() or list(range(machine.config.n_cores))
    l1_agg = machine.aggregate_l1_stats(tiny_ids)
    uli_stats = machine.stats.child("uli_network")
    uli_messages = uli_stats.get("messages")
    return ExperimentResult(
        app=app_name,
        kind=kind,
        scale=scale,
        serial=serial,
        cycles=cycles,
        instructions=machine.total_instructions(),
        tasks=runtime.stats.get("tasks_executed"),
        spawns=runtime.stats.get("spawns"),
        steals=runtime.stats.get("steals"),
        steal_attempts=runtime.stats.get("steal_attempts"),
        l1_hit_rate_tiny=machine.l1_hit_rate(tiny_ids),
        lines_invalidated=l1_agg["lines_invalidated"],
        lines_flushed=l1_agg["lines_flushed"],
        invalidate_ops=l1_agg["invalidate_ops"],
        flush_ops=l1_agg["flush_ops"],
        amos=l1_agg["amos"],
        traffic_bytes=machine.traffic.snapshot(),
        tiny_breakdown=machine.aggregate_core_breakdown(tiny_ids),
        energy=estimate_energy(machine),
        uli_handled=runtime.stats.get("uli_handler_runs"),
        uli_handler_cycles=sum(
            machine.cores[c].stats.get("cycles_uli_handler") for c in tiny_ids
        ),
        uli_nacks=runtime.stats.get("steal_nacks"),
        uli_utilization=machine.uli_network.utilization(max(1, cycles)),
        uli_avg_latency=(
            uli_stats.get("total_latency") / uli_messages if uli_messages else 0.0
        ),
    )


def _apply_sampled_estimates(result, machine, sampling, controller) -> None:
    """Overwrite a sampled result's timing-derived fields with window
    extrapolations (repro.sampling.estimate).

    Architectural counts (instructions, tasks, spawns, steals, ULI
    handler runs/NACKs) are left alone — fast-forward counts them exactly.
    When no measurement window completed, the run never left the initial
    detailed warmup, so the raw values are already exact and only the
    mode/summary markers change.
    """
    result.mode = "sampled"
    est = controller.estimates()
    if est is None:
        result.sampling = {
            "spec": sampling.as_dict(),
            "windows": 0,
            "ff_periods": 0,
            "ff_instructions": 0,
            "coverage": 1.0,
            "exact_fallback": True,
        }
        return
    result.cycles = est["cycles"]
    result.l1_hit_rate_tiny = est["l1_hit_rate_tiny"]
    result.lines_invalidated = est["lines_invalidated"]
    result.lines_flushed = est["lines_flushed"]
    result.invalidate_ops = est["invalidate_ops"]
    result.flush_ops = est["flush_ops"]
    result.amos = est["amos"]
    result.traffic_bytes = est["traffic_bytes"]
    result.tiny_breakdown = est["tiny_breakdown"]
    result.energy = est["energy"]
    result.uli_handler_cycles = est["uli_handler_cycles"]
    result.uli_utilization = machine.uli_network.utilization(max(1, est["cycles"]))
    result.sampling = est["summary"]


def adopt_result(
    result: ExperimentResult,
    app_overrides: Optional[dict] = None,
    runtime_kwargs: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    faults=None,
    sanitize: bool = False,
    watchdog: Optional[int] = None,
    sampling=None,
) -> None:
    """Insert an externally computed result (e.g. from a grid worker) into
    the in-process memo cache and, when configured, the result store.

    Refuses anything that is not a successful :class:`ExperimentResult`:
    adopting a ``FailedResult`` would persist a failure as a success and
    every later probe of that key would silently skip the simulation.
    """
    if getattr(result, "failed", False) or not isinstance(result, ExperimentResult):
        raise TypeError(
            f"refusing to adopt {type(result).__name__} into the result "
            "cache/store: only successful ExperimentResults are cacheable"
        )
    faults = FaultPlan.coerce(faults)
    if sampling is not None:
        from repro.sampling import SamplingSpec

        sampling = SamplingSpec.coerce(sampling)
    key = memo_key(
        result.app, result.kind, result.scale, result.serial,
        app_overrides, runtime_kwargs, config_overrides,
        faults, sanitize, watchdog, sampling,
    )
    _CACHE[key] = result
    store = get_result_store()
    if store is not None:
        store_key = _experiment_store_key(
            result.app, result.kind, result.scale, result.serial,
            app_overrides, runtime_kwargs, config_overrides,
            faults, sanitize, watchdog, sampling,
        )
        if not store.contains(store_key):
            from repro.harness.export import result_to_dict

            store.store(
                store_key, {"key": store_key, "result": result_to_dict(result)}
            )


def run_serial_baseline(app_name: str, scale: str, **kwargs) -> ExperimentResult:
    """The Table III baseline: serial elision on one in-order core."""
    return run_experiment(app_name, "serial-io", scale, serial=True, **kwargs)


def workspan(app_name: str, scale: str, **overrides) -> WorkSpanReport:
    """Cilkview work/span analysis of the app at this scale's input."""
    key = (app_name, scale, canonicalize(overrides))
    if key in _WORKSPAN_CACHE:
        return _WORKSPAN_CACHE[key]
    store = get_result_store()
    store_key = None
    if store is not None:
        store_key = _workspan_store_key(app_name, scale, overrides)
        payload = store.load(store_key)
        if payload is not None:
            report = WorkSpanReport(**payload["workspan"])
            _WORKSPAN_CACHE[key] = report
            return report
    params = app_params(app_name, scale, **overrides)
    app = make_app(app_name, **params)
    analyzer = CilkviewAnalyzer()
    app.setup(analyzer.machine)
    report = analyzer.analyze(app.make_root())
    _WORKSPAN_CACHE[key] = report
    if store is not None:
        store.store(
            store_key,
            {"key": store_key, "workspan": dataclasses.asdict(report)},
        )
    return report


def clear_cache() -> None:
    _CACHE.clear()
    _WORKSPAN_CACHE.clear()
