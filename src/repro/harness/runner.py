"""Experiment runner: one (app, config, scale) simulation -> ExperimentResult.

Results are memoized per process so that the Table III runs feed Figures
5-8 without re-simulating, the way a results database would in the paper's
gem5 workflow.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.cilkview import CilkviewAnalyzer, WorkSpanReport
from repro.analysis.energy import EnergyReport, estimate_energy
from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.harness.params import app_params
from repro.machine import Machine


@dataclass
class ExperimentResult:
    app: str
    kind: str
    scale: str
    serial: bool
    cycles: int
    instructions: int
    tasks: int
    spawns: int
    steals: int
    steal_attempts: int
    l1_hit_rate_tiny: float
    lines_invalidated: int
    lines_flushed: int
    invalidate_ops: int
    flush_ops: int
    amos: int
    traffic_bytes: Dict[str, int]
    tiny_breakdown: Dict[str, int]
    energy: EnergyReport
    uli_handled: int = 0
    uli_handler_cycles: int = 0
    uli_nacks: int = 0
    uli_utilization: float = 0.0
    uli_avg_latency: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def total_traffic(self) -> int:
        return sum(self.traffic_bytes.values())


_CACHE: Dict[Tuple, ExperimentResult] = {}
_WORKSPAN_CACHE: Dict[Tuple, WorkSpanReport] = {}


def default_scale() -> str:
    """Benchmark scale, overridable with REPRO_SCALE=paper|large|quick."""
    return os.environ.get("REPRO_SCALE", "quick")


def run_experiment(
    app_name: str,
    kind: str,
    scale: str,
    serial: bool = False,
    check: bool = True,
    use_cache: bool = True,
    app_overrides: Optional[dict] = None,
    runtime_kwargs: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
) -> ExperimentResult:
    """Simulate ``app_name`` on configuration ``kind`` at ``scale``."""
    key = (
        app_name,
        kind,
        scale,
        serial,
        tuple(sorted((app_overrides or {}).items())),
        tuple(sorted((runtime_kwargs or {}).items())),
        tuple(sorted((config_overrides or {}).items())),
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]

    params = app_params(app_name, scale, **(app_overrides or {}))
    app = make_app(app_name, **params)
    machine = Machine(make_config(kind, scale, **(config_overrides or {})))
    app.setup(machine)
    rt_kwargs = dict(runtime_kwargs or {})
    if serial:
        # Table III "serial IO" baseline: the serial elision of the same
        # program (same grain, no runtime bookkeeping).
        rt_kwargs["serial_elision"] = True
    runtime = WorkStealingRuntime(machine, **rt_kwargs)
    cycles = runtime.run(app.make_root(serial=False))
    if check:
        app.check()

    tiny_ids = machine.tiny_core_ids() or list(range(machine.config.n_cores))
    l1_agg = machine.aggregate_l1_stats(tiny_ids)
    uli_stats = machine.stats.child("uli_network")
    uli_messages = uli_stats.get("messages")
    result = ExperimentResult(
        app=app_name,
        kind=kind,
        scale=scale,
        serial=serial,
        cycles=cycles,
        instructions=machine.total_instructions(),
        tasks=runtime.stats.get("tasks_executed"),
        spawns=runtime.stats.get("spawns"),
        steals=runtime.stats.get("steals"),
        steal_attempts=runtime.stats.get("steal_attempts"),
        l1_hit_rate_tiny=machine.l1_hit_rate(tiny_ids),
        lines_invalidated=l1_agg["lines_invalidated"],
        lines_flushed=l1_agg["lines_flushed"],
        invalidate_ops=l1_agg["invalidate_ops"],
        flush_ops=l1_agg["flush_ops"],
        amos=l1_agg["amos"],
        traffic_bytes=machine.traffic.snapshot(),
        tiny_breakdown=machine.aggregate_core_breakdown(tiny_ids),
        energy=estimate_energy(machine),
        uli_handled=runtime.stats.get("uli_handler_runs"),
        uli_handler_cycles=sum(
            machine.cores[c].stats.get("cycles_uli_handler") for c in tiny_ids
        ),
        uli_nacks=runtime.stats.get("steal_nacks"),
        uli_utilization=machine.uli_network.utilization(max(1, cycles)),
        uli_avg_latency=(
            uli_stats.get("total_latency") / uli_messages if uli_messages else 0.0
        ),
    )
    if use_cache:
        _CACHE[key] = result
    return result


def run_serial_baseline(app_name: str, scale: str, **kwargs) -> ExperimentResult:
    """The Table III baseline: serial elision on one in-order core."""
    return run_experiment(app_name, "serial-io", scale, serial=True, **kwargs)


def workspan(app_name: str, scale: str, **overrides) -> WorkSpanReport:
    """Cilkview work/span analysis of the app at this scale's input."""
    key = (app_name, scale, tuple(sorted(overrides.items())))
    if key in _WORKSPAN_CACHE:
        return _WORKSPAN_CACHE[key]
    params = app_params(app_name, scale, **overrides)
    app = make_app(app_name, **params)
    analyzer = CilkviewAnalyzer()
    app.setup(analyzer.machine)
    report = analyzer.analyze(app.make_root())
    _WORKSPAN_CACHE[key] = report
    return report


def clear_cache() -> None:
    _CACHE.clear()
    _WORKSPAN_CACHE.clear()
