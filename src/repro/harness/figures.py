"""Regenerators for the paper's figures (4, 5, 6, 7, 8) and the DTS
overhead numbers quoted in Section VI-C.

Each ``figN_*`` function returns the figure's data series; ``format_figN``
renders it as a fixed-width text chart the way the benchmark harness
prints it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.apps import PAPER_APPS
from repro.config.system import BIGTINY_KINDS
from repro.cores.core import TIME_CATEGORIES
from repro.harness.grid import GridPoint, expand_grid, run_grid
from repro.harness.runner import run_experiment, run_serial_baseline, workspan
from repro.mem.traffic import CATEGORIES

#: Short column labels for the seven big.TINY configurations.
KIND_LABELS = {
    "bt-mesi": "MESI",
    "bt-hcc-dnv": "dnv",
    "bt-hcc-gwt": "gwt",
    "bt-hcc-gwb": "gwb",
    "bt-hcc-dts-dnv": "D-dnv",
    "bt-hcc-dts-gwt": "D-gwt",
    "bt-hcc-dts-gwb": "D-gwb",
}


# ----------------------------------------------------------------------
# Figure 4 — speedup and logical parallelism vs task granularity
# ----------------------------------------------------------------------
def fig4_granularity(
    scale: str,
    app_name: str = "ligra-tc",
    grains: Sequence[int] = (2, 4, 8, 16, 32, 64),
    kind: str = "bt-mesi",
    jobs: Optional[int] = None,
) -> List[dict]:
    """Sweep task granularity for one app (paper: ligra-tc on 64 cores)."""
    points = [GridPoint(app_name, "serial-io", scale, serial=True)]
    points += [
        GridPoint(app_name, kind, scale, app_overrides={"grain": grain})
        for grain in grains
    ]
    run_grid(points, jobs=jobs)
    rows = []
    serial = run_serial_baseline(app_name, scale)
    for grain in grains:
        res = run_experiment(app_name, kind, scale, app_overrides={"grain": grain})
        ws = workspan(app_name, scale, grain=grain)
        rows.append(
            {
                "grain": grain,
                "speedup_vs_serial": serial.cycles / res.cycles,
                "parallelism": ws.parallelism,
                "ipt": ws.instructions_per_task,
                "tasks": ws.n_tasks,
            }
        )
    return rows


def format_fig4(rows: List[dict], app_name: str = "ligra-tc") -> str:
    header = f"{'Grain':>6s} {'Speedup':>9s} {'Parallelism':>12s} {'IPT':>9s} {'Tasks':>7s}"
    lines = [f"Figure 4: {app_name} granularity sweep", header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['grain']:>6d} {r['speedup_vs_serial']:>9.2f} "
            f"{r['parallelism']:>12.2f} {r['ipt']:>9.1f} {r['tasks']:>7d}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figures 5-8 — per-app, per-config series normalized to big.TINY/MESI
# ----------------------------------------------------------------------
def fig5_speedup(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> Dict[str, Dict[str, float]]:
    """Speedup of each big.TINY config relative to big.TINY/MESI."""
    run_grid(expand_grid(apps, BIGTINY_KINDS, (scale,)), jobs=jobs)
    data = {}
    for app_name in apps:
        mesi = run_experiment(app_name, "bt-mesi", scale)
        data[app_name] = {
            kind: mesi.cycles / run_experiment(app_name, kind, scale).cycles
            for kind in BIGTINY_KINDS
        }
    return data


def fig6_hitrate(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> Dict[str, Dict[str, float]]:
    """Tiny-core L1 data cache hit rate per app and config."""
    run_grid(expand_grid(apps, BIGTINY_KINDS, (scale,)), jobs=jobs)
    data = {}
    for app_name in apps:
        data[app_name] = {
            kind: run_experiment(app_name, kind, scale).l1_hit_rate_tiny
            for kind in BIGTINY_KINDS
        }
    return data


def fig7_breakdown(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Aggregated tiny-core execution-time breakdown, normalized to MESI."""
    run_grid(expand_grid(apps, BIGTINY_KINDS, (scale,)), jobs=jobs)
    data = {}
    for app_name in apps:
        mesi_total = sum(
            run_experiment(app_name, "bt-mesi", scale).tiny_breakdown.values()
        )
        per_kind = {}
        for kind in BIGTINY_KINDS:
            res = run_experiment(app_name, kind, scale)
            per_kind[kind] = {
                cat: res.tiny_breakdown[cat] / max(1, mesi_total)
                for cat in TIME_CATEGORIES
            }
        data[app_name] = per_kind
    return data


def fig8_traffic(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """On-chip network traffic by category, normalized to MESI total."""
    run_grid(expand_grid(apps, BIGTINY_KINDS, (scale,)), jobs=jobs)
    data = {}
    for app_name in apps:
        mesi_total = run_experiment(app_name, "bt-mesi", scale).total_traffic
        per_kind = {}
        for kind in BIGTINY_KINDS:
            res = run_experiment(app_name, kind, scale)
            per_kind[kind] = {
                cat: res.traffic_bytes[cat] / max(1, mesi_total) for cat in CATEGORIES
            }
        data[app_name] = per_kind
    return data


def format_series(title: str, data: Dict[str, Dict[str, float]]) -> str:
    """Render an app x config table of scalars (figures 5 and 6)."""
    kinds = BIGTINY_KINDS
    header = f"{'App':12s} " + " ".join(f"{KIND_LABELS[k]:>6s}" for k in kinds)
    lines = [title, header, "-" * len(header)]
    for app_name, series in data.items():
        lines.append(
            f"{app_name:12s} " + " ".join(f"{series[k]:>6.2f}" for k in kinds)
        )
    return "\n".join(lines)


def format_stacked(
    title: str,
    data: Dict[str, Dict[str, Dict[str, float]]],
    categories: Sequence[str],
) -> str:
    """Render app x config stacked-bar data (figures 7 and 8) as text."""
    lines = [title]
    for app_name, per_kind in data.items():
        lines.append(f"  {app_name}:")
        for kind, stack in per_kind.items():
            total = sum(stack.values())
            parts = " ".join(
                f"{cat}={stack[cat]:.3f}" for cat in categories if stack[cat] > 0.0005
            )
            lines.append(f"    {KIND_LABELS[kind]:>6s} total={total:.3f}  {parts}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Section VI-C — DTS overhead characterization
# ----------------------------------------------------------------------
def dts_overhead(
    scale: str, apps: Sequence[str] = PAPER_APPS, jobs: Optional[int] = None
) -> List[dict]:
    """ULI network utilization, latency, and DTS time share per app.

    The paper reports <5% ULI network utilization, ~50-cycle average ULI
    latency, and <1% of execution time spent on DTS.
    """
    run_grid(expand_grid(apps, ("bt-hcc-dts-gwb",), (scale,)), jobs=jobs)
    rows = []
    for app_name in apps:
        res = run_experiment(app_name, "bt-hcc-dts-gwb", scale)
        total_cycles = sum(res.tiny_breakdown.values())
        rows.append(
            {
                "app": app_name,
                "uli_utilization_pct": 100.0 * res.uli_utilization,
                "uli_avg_latency": res.uli_avg_latency,
                # Victim-side handler cycles (entry + handler body), the
                # quantity the paper bounds below 1%.
                "dts_time_pct": 100.0 * res.uli_handler_cycles / max(1, total_cycles),
                "steals": res.steals,
                "nacks": res.uli_nacks,
            }
        )
    return rows


def format_dts_overhead(rows: List[dict]) -> str:
    header = (
        f"{'App':12s} {'ULI util %':>10s} {'ULI lat (cyc)':>13s} "
        f"{'DTS time %':>10s} {'Steals':>7s} {'NACKs':>6s}"
    )
    lines = ["DTS overheads (Section VI-C)", header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['app']:12s} {r['uli_utilization_pct']:>10.3f} "
            f"{r['uli_avg_latency']:>13.1f} {r['dts_time_pct']:>10.2f} "
            f"{r['steals']:>7d} {r['nacks']:>6d}"
        )
    return "\n".join(lines)
