"""Wall-clock throughput benchmark for the simulator itself.

Runs a fixed mix of app×config entries twice — once with the event-fusion
fast path enabled and once with it disabled — and reports host throughput
(simulated cycles per second, events per second) plus the fused/unfused
speedup.  Every run pair is differentially verified: ``StatGroup.flatten``
must be identical between the two modes, turning the benchmark into a
determinism proof as well as a stopwatch.

The default mix is deliberately weighted toward dispatch-bound runs
(the ``kernel-*`` throughput microkernels and serial-elision baselines):
those measure the engine itself, which is what the fast path accelerates.
Task-parallel runs on many-core configs appear too, but their event
streams interleave across cores, so little fuses and their speedup is
intentionally modest — the benchmark records the ratio per entry.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import host_fingerprint

#: Result schema version for BENCH_wallclock.json.
BENCH_SCHEMA = 1


@dataclass(frozen=True)
class PerfEntry:
    """One benchmarked simulation."""

    app: str
    kind: str
    scale: str
    serial: bool = False


#: The tier-1 bench mix (EXPERIMENTS.md quotes numbers for this list).
DEFAULT_MIX: Tuple[PerfEntry, ...] = (
    PerfEntry("kernel-spin", "serial-io", "large", serial=True),
    PerfEntry("kernel-spin", "serial-io", "quick", serial=True),
    PerfEntry("kernel-stream", "serial-io", "quick", serial=True),
    PerfEntry("cilk5-cs", "serial-io", "quick", serial=True),
    PerfEntry("ligra-bfs", "serial-io", "quick", serial=True),
    PerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "tiny"),
)

#: Small mix for CI smoke runs (seconds, not minutes).
SMOKE_MIX: Tuple[PerfEntry, ...] = (
    PerfEntry("kernel-spin", "serial-io", "tiny", serial=True),
    PerfEntry("kernel-stream", "serial-io", "tiny", serial=True),
    PerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "tiny"),
)


def _run_once(entry: PerfEntry, fusion: bool) -> Dict:
    """Build a fresh machine, run the entry, return stats + wall time."""
    from repro.apps import make_app
    from repro.config import make_config
    from repro.core import WorkStealingRuntime
    from repro.harness.params import app_params
    from repro.machine import Machine

    app = make_app(entry.app, **app_params(entry.app, entry.scale))
    machine = Machine(make_config(entry.kind, entry.scale))
    app.setup(machine)
    machine.sim.fusion_enabled = fusion
    kwargs = {"serial_elision": True} if entry.serial else {}
    runtime = WorkStealingRuntime(machine, **kwargs)
    start = time.perf_counter()
    cycles = runtime.run(app.make_root(serial=False))
    wall = time.perf_counter() - start
    app.check()
    return {
        "wall": wall,
        "cycles": cycles,
        "flatten": machine.stats.flatten(),
        "fusion": machine.sim.fusion_stats(),
    }


def run_entry(entry: PerfEntry, repeats: int = 1) -> Dict:
    """Benchmark one entry fused and unfused; verify identical statistics.

    Wall time is the best of ``repeats`` runs per mode (standard practice
    for throughput benchmarks: the minimum is the least-noisy estimator).
    """
    fused = [_run_once(entry, fusion=True) for _ in range(repeats)]
    unfused = [_run_once(entry, fusion=False) for _ in range(repeats)]
    reference = fused[0]["flatten"]
    identical = all(r["flatten"] == reference for r in fused + unfused)
    if not identical:
        raise AssertionError(
            f"{entry.app}/{entry.kind}/{entry.scale}: fused and unfused "
            "runs disagree on StatGroup.flatten() — fusion changed results"
        )
    wall_fused = min(r["wall"] for r in fused)
    wall_unfused = min(r["wall"] for r in unfused)
    fusion = fused[0]["fusion"]
    cycles = fused[0]["cycles"]
    return {
        "app": entry.app,
        "kind": entry.kind,
        "scale": entry.scale,
        "serial": entry.serial,
        "cycles": cycles,
        "events": fusion["events_total"],
        "events_fused": fusion["events_fused"],
        "fused_ratio": fusion["fused_ratio"],
        "wall_fused_s": wall_fused,
        "wall_unfused_s": wall_unfused,
        "speedup": wall_unfused / wall_fused if wall_fused > 0 else 0.0,
        "sim_cycles_per_sec": cycles / wall_fused if wall_fused > 0 else 0.0,
        "events_per_sec": (
            fusion["events_total"] / wall_fused if wall_fused > 0 else 0.0
        ),
        "stats_identical": True,
    }


def run_mix(
    mix: Optional[List[PerfEntry]] = None, repeats: int = 1
) -> Dict:
    """Run the whole mix; return the BENCH_wallclock.json payload."""
    entries = [run_entry(e, repeats=repeats) for e in (mix or list(DEFAULT_MIX))]
    wall_fused = sum(e["wall_fused_s"] for e in entries)
    wall_unfused = sum(e["wall_unfused_s"] for e in entries)
    events = sum(e["events"] for e in entries)
    events_fused = sum(e["events_fused"] for e in entries)
    return {
        "schema": BENCH_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # Full host/python identity so the perf trajectory in
        # BENCH_wallclock.json stays attributable across machines.
        "host": host_fingerprint(),
        "repeats": repeats,
        "entries": entries,
        "aggregate": {
            "wall_fused_s": wall_fused,
            "wall_unfused_s": wall_unfused,
            "speedup": wall_unfused / wall_fused if wall_fused > 0 else 0.0,
            "events": events,
            "events_fused": events_fused,
            "fused_ratio": events_fused / events if events else 0.0,
            "events_per_sec": events / wall_fused if wall_fused > 0 else 0.0,
            "events_fused_per_sec": (
                events_fused / wall_fused if wall_fused > 0 else 0.0
            ),
        },
    }


def write_bench(payload: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_report(payload: Dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"{'app':<14} {'config':<16} {'scale':<6} {'events':>9} "
        f"{'fused%':>7} {'Mev/s':>7} {'speedup':>8}"
    ]
    for e in payload["entries"]:
        lines.append(
            f"{e['app']:<14} {e['kind']:<16} {e['scale']:<6} "
            f"{e['events']:>9} {100 * e['fused_ratio']:>6.1f}% "
            f"{e['events_per_sec'] / 1e6:>7.2f} {e['speedup']:>7.2f}x"
        )
    agg = payload["aggregate"]
    lines.append(
        f"{'-- mix --':<38} {agg['events']:>9} "
        f"{100 * agg['fused_ratio']:>6.1f}% "
        f"{agg['events_per_sec'] / 1e6:>7.2f} {agg['speedup']:>7.2f}x"
    )
    return "\n".join(lines)
