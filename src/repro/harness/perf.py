"""Wall-clock throughput benchmark for the simulator itself.

Runs a fixed mix of app×config entries twice — once with the event-fusion
fast path enabled and once with it disabled — and reports host throughput
(simulated cycles per second, events per second) plus the fused/unfused
speedup.  Every run pair is differentially verified: ``StatGroup.flatten``
must be identical between the two modes, turning the benchmark into a
determinism proof as well as a stopwatch.

The default mix is deliberately weighted toward dispatch-bound runs
(the ``kernel-*`` throughput microkernels and serial-elision baselines):
those measure the engine itself, which is what the fast path accelerates.
Task-parallel runs on many-core configs appear too, but their event
streams interleave across cores, so little fuses and their speedup is
intentionally modest — the benchmark records the ratio per entry.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import host_fingerprint

#: Result schema version for BENCH_wallclock.json.
#: 2: added the ``sampled`` section (exact-vs-sampled speedup + error).
#: 3: added the ``parallel`` section (sharded-replica speedup).
BENCH_SCHEMA = 3


@dataclass(frozen=True)
class PerfEntry:
    """One benchmarked simulation."""

    app: str
    kind: str
    scale: str
    serial: bool = False


@dataclass(frozen=True)
class SampledPerfEntry:
    """One exact-vs-sampled benchmark pair (repro.sampling)."""

    app: str
    kind: str
    scale: str
    #: Sampling spec "U:W:D[:Q]" (see repro.sampling.spec).
    spec: str = "60000:20000:6000"


#: The tier-1 bench mix (EXPERIMENTS.md quotes numbers for this list).
DEFAULT_MIX: Tuple[PerfEntry, ...] = (
    PerfEntry("kernel-spin", "serial-io", "large", serial=True),
    PerfEntry("kernel-spin", "serial-io", "quick", serial=True),
    PerfEntry("kernel-stream", "serial-io", "quick", serial=True),
    PerfEntry("cilk5-cs", "serial-io", "quick", serial=True),
    PerfEntry("ligra-bfs", "serial-io", "quick", serial=True),
    PerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "tiny"),
)

#: Small mix for CI smoke runs (seconds, not minutes).
SMOKE_MIX: Tuple[PerfEntry, ...] = (
    PerfEntry("kernel-spin", "serial-io", "tiny", serial=True),
    PerfEntry("kernel-stream", "serial-io", "tiny", serial=True),
    PerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "tiny"),
)

#: The large-scale sampled mix: the sampling-qualified apps (the same
#: two that pass differential validation at paper scale — see
#: repro.sampling.differential) on the 256-core machine, at throughput
#: specs with idle stretching on.  These specs trade accuracy for wall
#: clock deliberately: the benchmark records the estimation error of
#: every regeneration next to the speedup (EXPERIMENTS.md quotes both),
#: and the stretch values are measured operating points on this machine
#: shape — the error is NOT monotone in the stretch factor (window
#: placement interacts with the app's phase structure), so treat any
#: retuning as a measurement exercise, not a knob to crank.
SAMPLED_MIX: Tuple[SampledPerfEntry, ...] = (
    SampledPerfEntry("ligra-bc", "bt-hcc-dnv", "large", "200000:16000:6000:2048:16"),
    SampledPerfEntry("ligra-bfs", "bt-hcc-dnv", "large", "200000:16000:6000:2048:24"),
)

#: Sampled smoke pair for CI (seconds).
SMOKE_SAMPLED_MIX: Tuple[SampledPerfEntry, ...] = (
    SampledPerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "quick", "40000:16000:4000"),
)


@dataclass(frozen=True)
class ParallelPerfEntry:
    """One serial-vs-sharded benchmark pair (repro.engine.pdes).

    The serial leg runs the entry's ``shards`` validation replicas
    sequentially in-process (sum of legs — what a trusted differential
    run costs without parallelism); the parallel leg runs the same
    replicas through :func:`repro.engine.pdes.run_sharded` (max of
    legs plus coordination).  Both legs produce the same validated
    observables, so the pair is a determinism proof as well.
    """

    app: str
    kind: str
    scale: str
    shards: int = 2


#: The parallel mix: big-enough runs that replica wall time dominates
#: process spawn, on the config whose ULI/steal traffic stresses the
#: cross-engine validation hardest.
PARALLEL_MIX: Tuple[ParallelPerfEntry, ...] = (
    ParallelPerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "quick", shards=2),
    ParallelPerfEntry("ligra-bfs", "bt-hcc-dnv", "quick", shards=2),
)

#: Parallel smoke pair for CI (seconds).
SMOKE_PARALLEL_MIX: Tuple[ParallelPerfEntry, ...] = (
    ParallelPerfEntry("cilk5-cs", "bt-hcc-dts-dnv", "tiny", shards=2),
)


def _run_once(entry: PerfEntry, fusion: bool) -> Dict:
    """Build a fresh machine, run the entry, return stats + wall time."""
    from repro.apps import make_app
    from repro.config import make_config
    from repro.core import WorkStealingRuntime
    from repro.harness.params import app_params
    from repro.machine import Machine

    app = make_app(entry.app, **app_params(entry.app, entry.scale))
    machine = Machine(make_config(entry.kind, entry.scale))
    app.setup(machine)
    machine.sim.fusion_enabled = fusion
    kwargs = {"serial_elision": True} if entry.serial else {}
    runtime = WorkStealingRuntime(machine, **kwargs)
    start = time.perf_counter()
    cycles = runtime.run(app.make_root(serial=False))
    wall = time.perf_counter() - start
    app.check()
    return {
        "wall": wall,
        "cycles": cycles,
        "flatten": machine.stats.flatten(),
        "fusion": machine.sim.fusion_stats(),
    }


def run_entry(entry: PerfEntry, repeats: int = 1) -> Dict:
    """Benchmark one entry fused and unfused; verify identical statistics.

    Wall time is the best of ``repeats`` runs per mode (standard practice
    for throughput benchmarks: the minimum is the least-noisy estimator).
    """
    fused = [_run_once(entry, fusion=True) for _ in range(repeats)]
    unfused = [_run_once(entry, fusion=False) for _ in range(repeats)]
    reference = fused[0]["flatten"]
    identical = all(r["flatten"] == reference for r in fused + unfused)
    if not identical:
        raise AssertionError(
            f"{entry.app}/{entry.kind}/{entry.scale}: fused and unfused "
            "runs disagree on StatGroup.flatten() — fusion changed results"
        )
    wall_fused = min(r["wall"] for r in fused)
    wall_unfused = min(r["wall"] for r in unfused)
    fusion = fused[0]["fusion"]
    cycles = fused[0]["cycles"]
    return {
        "app": entry.app,
        "kind": entry.kind,
        "scale": entry.scale,
        "serial": entry.serial,
        "cycles": cycles,
        "events": fusion["events_total"],
        "events_fused": fusion["events_fused"],
        "fused_ratio": fusion["fused_ratio"],
        "wall_fused_s": wall_fused,
        "wall_unfused_s": wall_unfused,
        "speedup": wall_unfused / wall_fused if wall_fused > 0 else 0.0,
        "sim_cycles_per_sec": cycles / wall_fused if wall_fused > 0 else 0.0,
        "events_per_sec": (
            fusion["events_total"] / wall_fused if wall_fused > 0 else 0.0
        ),
        "stats_identical": True,
    }


def _run_sampled_once(entry: SampledPerfEntry, spec: Optional[str]) -> Dict:
    """One leg of an exact-vs-sampled pair; spec None = exact."""
    from repro.apps import make_app
    from repro.config import make_config
    from repro.core import WorkStealingRuntime
    from repro.harness.params import app_params
    from repro.machine import Machine

    app = make_app(entry.app, **app_params(entry.app, entry.scale))
    machine = Machine(make_config(entry.kind, entry.scale))
    app.setup(machine)
    runtime = WorkStealingRuntime(machine)
    controller = None
    if spec is not None:
        from repro.sampling import SamplingController, SamplingSpec

        controller = SamplingController(machine, SamplingSpec.coerce(spec))
        controller.start()
    start = time.perf_counter()
    cycles = runtime.run(app.make_root(serial=False))
    wall = time.perf_counter() - start
    # Finalize before check: if the run ended mid-fast-forward, the L2
    # still holds stale copies of lines fast-forward wrote, and finalize
    # is what purges them (Machine.invalidate_ff_lines).
    if controller is not None:
        controller.finalize()
    app.check()
    out = {"wall": wall, "cycles": cycles, "instructions": machine.total_instructions()}
    if controller is not None:
        est = controller.estimates()
        if est is not None:
            out["cycles"] = est["cycles"]
            out["traffic"] = sum(est["traffic_bytes"].values())
            out["sampling"] = est["summary"]
        else:
            out["traffic"] = sum(machine.traffic.bytes.values())
            out["sampling"] = {"exact_fallback": True}
    else:
        out["traffic"] = sum(machine.traffic.bytes.values())
    return out


def run_sampled_entry(entry: SampledPerfEntry, repeats: int = 1) -> Dict:
    """Benchmark one exact-vs-sampled pair.

    The stopwatch covers ``runtime.run`` only (setup and check are mode
    independent); wall time is the best of ``repeats`` per leg.  The
    exact leg doubles as the truth reference for the sampled estimate's
    cycle and traffic error.
    """
    exact = [_run_sampled_once(entry, None) for _ in range(repeats)]
    sampled = [_run_sampled_once(entry, entry.spec) for _ in range(repeats)]
    wall_exact = min(r["wall"] for r in exact)
    wall_sampled = min(r["wall"] for r in sampled)
    cycles_exact = exact[0]["cycles"]
    cycles_est = sampled[0]["cycles"]
    traffic_exact = exact[0]["traffic"]
    traffic_est = sampled[0]["traffic"]
    return {
        "app": entry.app,
        "kind": entry.kind,
        "scale": entry.scale,
        "spec": entry.spec,
        "cycles_exact": cycles_exact,
        "cycles_sampled": cycles_est,
        "cycles_err_pct": (
            100.0 * (cycles_est - cycles_exact) / cycles_exact
            if cycles_exact
            else 0.0
        ),
        "traffic_err_pct": (
            100.0 * (traffic_est - traffic_exact) / traffic_exact
            if traffic_exact
            else 0.0
        ),
        "wall_exact_s": wall_exact,
        "wall_sampled_s": wall_sampled,
        "speedup": wall_exact / wall_sampled if wall_sampled > 0 else 0.0,
        "sampling": sampled[0].get("sampling", {}),
    }


def run_sampled_mix(
    mix: Optional[List[SampledPerfEntry]] = None, repeats: int = 1
) -> Dict:
    """Run the sampled mix; returns the payload's ``sampled`` section."""
    entries = [
        run_sampled_entry(e, repeats=repeats)
        for e in (mix or list(SAMPLED_MIX))
    ]
    wall_exact = sum(e["wall_exact_s"] for e in entries)
    wall_sampled = sum(e["wall_sampled_s"] for e in entries)
    return {
        "entries": entries,
        "aggregate": {
            "wall_exact_s": wall_exact,
            "wall_sampled_s": wall_sampled,
            "speedup": wall_exact / wall_sampled if wall_sampled > 0 else 0.0,
            "max_abs_cycles_err_pct": max(
                (abs(e["cycles_err_pct"]) for e in entries), default=0.0
            ),
            "max_abs_traffic_err_pct": max(
                (abs(e["traffic_err_pct"]) for e in entries), default=0.0
            ),
        },
    }


def run_parallel_entry(entry: ParallelPerfEntry, repeats: int = 1) -> Dict:
    """Benchmark one serial-vs-sharded pair; verify identical statistics.

    Trace cross-validation is disabled for both legs
    (``REPRO_PDES_TRACE_CHECK=0``): the stopwatch prices the replicas
    themselves, not the optional trace export.  Statistics are still
    fully cross-checked — the serial legs' ``StatGroup.flatten`` must
    agree with each other here, and ``run_sharded`` validates its own
    replicas before returning.
    """
    import os

    from repro.engine.pdes.replicate import _replica_observables, run_sharded

    run_kwargs = dict(app_name=entry.app, kind=entry.kind, scale=entry.scale)

    def serial_leg() -> Dict:
        walls = []
        flattens = []
        cycles = 0
        for shard in range(entry.shards):
            start = time.perf_counter()
            payload = _replica_observables(
                run_kwargs, shard, entry.shards, group="bench",
                want_trace=False,
            )
            walls.append(time.perf_counter() - start)
            flattens.append(payload["flatten"])
            cycles = payload["result"]["cycles"]
        if any(flat != flattens[0] for flat in flattens):
            raise AssertionError(
                f"{entry.app}/{entry.kind}/{entry.scale}: serial replica "
                "legs disagree on StatGroup.flatten() — engines diverged"
            )
        return {"wall": sum(walls), "cycles": cycles}

    def parallel_leg() -> Dict:
        saved = os.environ.get("REPRO_PDES_TRACE_CHECK")
        os.environ["REPRO_PDES_TRACE_CHECK"] = "0"
        try:
            start = time.perf_counter()
            result = run_sharded(dict(run_kwargs), entry.shards)
            wall = time.perf_counter() - start
        finally:
            if saved is None:
                os.environ.pop("REPRO_PDES_TRACE_CHECK", None)
            else:
                os.environ["REPRO_PDES_TRACE_CHECK"] = saved
        return {
            "wall": wall,
            "cycles": result.cycles,
            "min_lookahead": result.extras["pdes_min_lookahead"],
        }

    serial = [serial_leg() for _ in range(repeats)]
    parallel = [parallel_leg() for _ in range(repeats)]
    wall_serial = min(r["wall"] for r in serial)
    wall_parallel = min(r["wall"] for r in parallel)
    assert serial[0]["cycles"] == parallel[0]["cycles"]
    return {
        "app": entry.app,
        "kind": entry.kind,
        "scale": entry.scale,
        "shards": entry.shards,
        "cycles": serial[0]["cycles"],
        "min_lookahead": parallel[0]["min_lookahead"],
        "wall_serial_s": wall_serial,
        "wall_parallel_s": wall_parallel,
        "speedup": wall_serial / wall_parallel if wall_parallel > 0 else 0.0,
        "stats_identical": True,
    }


def run_parallel_mix(
    mix: Optional[List[ParallelPerfEntry]] = None, repeats: int = 1
) -> Dict:
    """Run the parallel mix; returns the payload's ``parallel`` section."""
    entries = [
        run_parallel_entry(e, repeats=repeats)
        for e in (mix or list(PARALLEL_MIX))
    ]
    wall_serial = sum(e["wall_serial_s"] for e in entries)
    wall_parallel = sum(e["wall_parallel_s"] for e in entries)
    return {
        "entries": entries,
        "aggregate": {
            "wall_serial_s": wall_serial,
            "wall_parallel_s": wall_parallel,
            "speedup": wall_serial / wall_parallel if wall_parallel > 0 else 0.0,
        },
    }


def run_mix(
    mix: Optional[List[PerfEntry]] = None, repeats: int = 1
) -> Dict:
    """Run the whole mix; return the BENCH_wallclock.json payload."""
    entries = [run_entry(e, repeats=repeats) for e in (mix or list(DEFAULT_MIX))]
    wall_fused = sum(e["wall_fused_s"] for e in entries)
    wall_unfused = sum(e["wall_unfused_s"] for e in entries)
    events = sum(e["events"] for e in entries)
    events_fused = sum(e["events_fused"] for e in entries)
    return {
        "schema": BENCH_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # Full host/python identity so the perf trajectory in
        # BENCH_wallclock.json stays attributable across machines.
        "host": host_fingerprint(),
        "repeats": repeats,
        "entries": entries,
        "aggregate": {
            "wall_fused_s": wall_fused,
            "wall_unfused_s": wall_unfused,
            "speedup": wall_unfused / wall_fused if wall_fused > 0 else 0.0,
            "events": events,
            "events_fused": events_fused,
            "fused_ratio": events_fused / events if events else 0.0,
            "events_per_sec": events / wall_fused if wall_fused > 0 else 0.0,
            "events_fused_per_sec": (
                events_fused / wall_fused if wall_fused > 0 else 0.0
            ),
        },
    }


def write_bench(payload: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_bench(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Baseline comparison (repro perf --baseline)
# ----------------------------------------------------------------------
def _entry_key(entry: Dict) -> Tuple:
    return (entry["app"], entry["kind"], entry["scale"], entry.get("serial", False))


def compare_baseline(
    payload: Dict, baseline: Dict, tolerance: float = 0.15
) -> Dict:
    """Compare a fresh perf payload against a committed baseline.

    Throughput metrics (events/s per entry and for the mix, the mix
    fusion speedup, and the sampled-section speedup when both payloads
    carry one) may drop at most ``tolerance`` (fractional) below the
    baseline before they are flagged as regressions.  Improvements and
    entries missing from either side are reported but never flagged —
    the baseline file is a trajectory, not a straitjacket, and mixes
    evolve.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    comparisons = []
    regressions = []

    def check(label: str, new: float, old: float) -> None:
        if old <= 0:
            return
        delta = (new - old) / old
        row = {"label": label, "new": new, "old": old, "delta_pct": 100.0 * delta}
        comparisons.append(row)
        if delta < -tolerance:
            regressions.append(row)

    base_entries = {_entry_key(e): e for e in baseline.get("entries", [])}
    for entry in payload.get("entries", []):
        base = base_entries.get(_entry_key(entry))
        if base is None:
            continue
        label = "/".join(str(part) for part in _entry_key(entry)[:3])
        check(f"{label} events/s", entry["events_per_sec"], base["events_per_sec"])
    check(
        "mix events/s",
        payload["aggregate"]["events_per_sec"],
        baseline.get("aggregate", {}).get("events_per_sec", 0.0),
    )
    check(
        "mix fusion speedup",
        payload["aggregate"]["speedup"],
        baseline.get("aggregate", {}).get("speedup", 0.0),
    )
    if payload.get("sampled") and baseline.get("sampled"):
        check(
            "sampled mix speedup",
            payload["sampled"]["aggregate"]["speedup"],
            baseline["sampled"]["aggregate"]["speedup"],
        )
    if payload.get("parallel") and baseline.get("parallel"):
        check(
            "parallel mix speedup",
            payload["parallel"]["aggregate"]["speedup"],
            baseline["parallel"]["aggregate"]["speedup"],
        )
    return {
        "tolerance_pct": 100.0 * tolerance,
        "comparisons": comparisons,
        "regressions": regressions,
        "ok": not regressions,
    }


def format_baseline_report(report: Dict) -> str:
    lines = [
        f"{'metric':<44} {'baseline':>12} {'current':>12} {'delta':>8}"
    ]
    for row in report["comparisons"]:
        flag = "  <-- REGRESSION" if row in report["regressions"] else ""
        lines.append(
            f"{row['label']:<44} {row['old']:>12.3g} {row['new']:>12.3g} "
            f"{row['delta_pct']:>+7.1f}%{flag}"
        )
    verdict = (
        "OK: no metric regressed beyond "
        if report["ok"]
        else "FAIL: regression(s) beyond "
    )
    lines.append(f"{verdict}{report['tolerance_pct']:.0f}% tolerance")
    return "\n".join(lines)


def format_sampled_report(section: Dict) -> str:
    """Human-readable table for the payload's ``sampled`` section."""
    lines = [
        f"{'app':<14} {'config':<16} {'scale':<6} {'spec':<24} "
        f"{'cyc err':>8} {'speedup':>8}"
    ]
    for e in section["entries"]:
        lines.append(
            f"{e['app']:<14} {e['kind']:<16} {e['scale']:<6} {e['spec']:<24} "
            f"{e['cycles_err_pct']:>+7.2f}% {e['speedup']:>7.2f}x"
        )
    agg = section["aggregate"]
    lines.append(
        f"-- sampled mix: speedup {agg['speedup']:.2f}x "
        f"(exact {agg['wall_exact_s']:.1f}s vs sampled "
        f"{agg['wall_sampled_s']:.1f}s), max |cycles err| "
        f"{agg['max_abs_cycles_err_pct']:.2f}%"
    )
    return "\n".join(lines)


def format_parallel_report(section: Dict) -> str:
    """Human-readable table for the payload's ``parallel`` section."""
    lines = [
        f"{'app':<14} {'config':<16} {'scale':<6} {'shards':>6} "
        f"{'serial':>8} {'parallel':>9} {'speedup':>8}"
    ]
    for e in section["entries"]:
        lines.append(
            f"{e['app']:<14} {e['kind']:<16} {e['scale']:<6} "
            f"{e['shards']:>6} {e['wall_serial_s']:>7.2f}s "
            f"{e['wall_parallel_s']:>8.2f}s {e['speedup']:>7.2f}x"
        )
    agg = section["aggregate"]
    lines.append(
        f"-- parallel mix: speedup {agg['speedup']:.2f}x "
        f"(serial replicas {agg['wall_serial_s']:.1f}s vs sharded "
        f"{agg['wall_parallel_s']:.1f}s)"
    )
    return "\n".join(lines)


def format_report(payload: Dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"{'app':<14} {'config':<16} {'scale':<6} {'events':>9} "
        f"{'fused%':>7} {'Mev/s':>7} {'speedup':>8}"
    ]
    for e in payload["entries"]:
        lines.append(
            f"{e['app']:<14} {e['kind']:<16} {e['scale']:<6} "
            f"{e['events']:>9} {100 * e['fused_ratio']:>6.1f}% "
            f"{e['events_per_sec'] / 1e6:>7.2f} {e['speedup']:>7.2f}x"
        )
    agg = payload["aggregate"]
    lines.append(
        f"{'-- mix --':<38} {agg['events']:>9} "
        f"{100 * agg['fused_ratio']:>6.1f}% "
        f"{agg['events_per_sec'] / 1e6:>7.2f} {agg['speedup']:>7.2f}x"
    )
    return "\n".join(lines)
