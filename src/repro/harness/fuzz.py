"""Fault-injection fuzzing: sweep fault seeds, assert nothing breaks.

The paper's correctness story is that the runtimes tolerate *any* timing:
steals may win or lose, ULI requests may be delayed, cache lines may be
evicted at the worst moment — and the program still computes the same
answer.  :func:`run_fuzz` turns that claim into a harness: it runs one
(app, config, scale) cell once fault-free to capture a baseline (final
memory digest over the application's own allocations, task/spawn counts),
then re-runs it under a :class:`~repro.faults.FaultPlan` for each seed in
a sweep, with the sanitizer watching and a watchdog bounding deadlocks.

For **timing-only** plans (no forced evictions, no steal aborts — see
``FaultPlan.timing_only``; forced evictions change which lines are
resident and steal aborts change who runs what, both of which legitimately
perturb *scheduling*, though never the answer) the harness additionally
asserts the faulted end state is byte-identical to the baseline.  For all
plans it asserts: the app's own ``check()`` passes, the sanitizer saw
zero violations, and no run deadlocked.

The deliberately broken runtime variants (``break_coherence=...``) invert
the game: a fuzz sweep over a broken runtime must *find* violations,
which is the positive control proving the sanitizer can see real bugs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.apps import make_app
from repro.config import make_config
from repro.core import WorkStealingRuntime
from repro.engine.watchdog import DeadlockError
from repro.faults import FaultPlan
from repro.harness.params import app_params
from repro.machine import Machine

#: Default watchdog grace for fuzz runs: generous against slow timing
#: faults, tiny against the 500M-cycle max_cycles guard.
DEFAULT_FUZZ_GRACE = 2_000_000


@dataclass
class FuzzCase:
    """Outcome of one seeded faulted run."""

    seed: int
    cycles: int = 0
    tasks: int = 0
    spawns: int = 0
    faults_fired: int = 0
    digest: Optional[str] = None
    #: None when the plan is not timing-only (digest is informational).
    digest_match: Optional[bool] = None
    violations: List[dict] = field(default_factory=list)
    #: None, or "deadlock" / "check" / "error".
    error: Optional[str] = None
    message: Optional[str] = None
    diagnostic: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and not self.violations
            and self.digest_match is not False
        )


@dataclass
class FuzzReport:
    """One fuzz sweep: a baseline plus one :class:`FuzzCase` per seed."""

    app: str
    kind: str
    scale: str
    plan: dict
    sanitize: bool
    break_coherence: Optional[str]
    baseline_cycles: int
    baseline_digest: str
    cases: List[FuzzCase] = field(default_factory=list)

    @property
    def n_violations(self) -> int:
        return sum(len(c.violations) for c in self.cases)

    @property
    def failed_cases(self) -> List[FuzzCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failed_cases

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        lines = [
            f"fuzz {self.app} on {self.kind} @ {self.scale}: "
            f"{len(self.cases)} seed(s), plan {self.plan}",
            f"baseline       : {self.baseline_cycles} cycles, "
            f"digest {self.baseline_digest[:16]}...",
        ]
        for case in self.cases:
            if case.ok:
                detail = f"{case.cycles} cycles, {case.faults_fired} faults fired"
                if case.digest_match is not None:
                    detail += ", digest identical"
                lines.append(f"seed {case.seed:<4d}     : ok ({detail})")
            else:
                reasons = []
                if case.error:
                    reasons.append(f"{case.error}: {case.message}")
                if case.violations:
                    reasons.append(f"{len(case.violations)} violation(s), "
                                   f"first {case.violations[0]['kind']}")
                if case.digest_match is False:
                    reasons.append("end-state digest diverged")
                lines.append(f"seed {case.seed:<4d}     : FAIL ({'; '.join(reasons)})")
        verdict = "ok" if self.ok else f"{len(self.failed_cases)} failing seed(s)"
        lines.append(f"verdict        : {verdict}, {self.n_violations} violation(s)")
        return "\n".join(lines)


def _run_once(
    app_name: str,
    kind: str,
    scale: str,
    plan: Optional[FaultPlan],
    sanitize: bool,
    watchdog: Optional[int],
    break_coherence: Optional[str],
):
    """One simulation; returns (machine, runtime, app, app-only regions)."""
    config = make_config(kind, scale)
    machine = Machine(config, faults=plan, sanitize=sanitize)
    app = make_app(app_name, **app_params(app_name, scale))
    app.setup(machine)
    # Snapshot now: these are the application's own allocations; the
    # runtime's deques/task args allocated later are scheduling-dependent
    # and excluded from the end-state digest by construction.
    regions = list(machine.address_space.regions())
    rt_kwargs = {}
    if watchdog is not None:
        rt_kwargs["watchdog"] = watchdog
    if break_coherence is not None:
        rt_kwargs["break_coherence"] = break_coherence
    runtime = WorkStealingRuntime(machine, **rt_kwargs)
    runtime.run(app.make_root(serial=False))
    return machine, runtime, app, regions


def run_fuzz(
    app_name: str = "cilk5-cs",
    kind: str = "bt-hcc-dts-gwb",
    scale: str = "tiny",
    seeds=range(1, 6),
    plan="timing",
    sanitize: bool = True,
    watchdog: Optional[int] = DEFAULT_FUZZ_GRACE,
    break_coherence: Optional[str] = None,
) -> FuzzReport:
    """Sweep ``seeds`` over ``plan``; see the module docstring for claims."""
    base_plan = FaultPlan.coerce(plan)
    if base_plan is None:
        raise ValueError("run_fuzz needs an active fault plan (got none)")

    # Fault-free baseline (sanitized too: a violation here is a real bug).
    machine, runtime, app, regions = _run_once(
        app_name, kind, scale, None, sanitize, watchdog, break_coherence
    )
    baseline_violations: List[dict] = []
    if machine.sanitizer is not None:
        baseline_violations = machine.sanitizer.finish(runtime, strict=False)
    report = FuzzReport(
        app=app_name,
        kind=kind,
        scale=scale,
        plan=base_plan.as_dict(),
        sanitize=sanitize,
        break_coherence=break_coherence,
        baseline_cycles=machine.sim.now,
        baseline_digest=machine.memory_digest(regions),
    )
    baseline_tasks = runtime.stats.get("tasks_executed")
    baseline_spawns = runtime.stats.get("spawns")
    if baseline_violations:
        case = FuzzCase(seed=-1, violations=baseline_violations,
                        message="fault-free baseline tripped the sanitizer")
        report.cases.append(case)

    for seed in seeds:
        seeded = base_plan.replace(seed=seed)
        case = FuzzCase(seed=seed)
        report.cases.append(case)
        try:
            machine, runtime, app, regions = _run_once(
                app_name, kind, scale, seeded, sanitize, watchdog, break_coherence
            )
        except DeadlockError as exc:
            case.error = "deadlock"
            case.message = str(exc)
            case.diagnostic = exc.diagnostic
            continue
        except Exception as exc:  # noqa: BLE001 - every seed must report
            case.error = "error"
            case.message = f"{exc!r}"
            continue
        case.cycles = machine.sim.now
        case.tasks = runtime.stats.get("tasks_executed")
        case.spawns = runtime.stats.get("spawns")
        if machine.fault_injector is not None:
            case.faults_fired = machine.fault_injector.total_fired()
        if machine.sanitizer is not None:
            case.violations = machine.sanitizer.finish(runtime, strict=False)
        case.digest = machine.memory_digest(regions)
        if seeded.timing_only:
            case.digest_match = (
                case.digest == report.baseline_digest
                and case.tasks == baseline_tasks
                and case.spawns == baseline_spawns
            )
        try:
            app.check()
        except AssertionError as exc:
            case.error = "check"
            case.message = str(exc)
    return report
