"""Persistent experiment-result store.

Every table and figure of the paper is derived from the same app x config
grid, so the harness keeps a gem5-style results database: each completed
experiment is written to an on-disk JSON file keyed by a canonical hash of
everything that determines its outcome (resolved app parameters, the fully
resolved system configuration, runtime kwargs, and the code version).  A
warm rerun of any benchmark then performs zero simulations.

Layout (one file per result, sharded by the first two hash digits)::

    <results-dir>/
        ab/abcdef0123....json    {"key": {...}, "result": {...}}
        cd/cdef4567....json      {"key": {...}, "workspan": {...}}

The store knows nothing about :class:`ExperimentResult`; it persists plain
JSON payload dicts.  Serialization lives in ``repro.harness.export`` and
the key construction in ``repro.harness.runner``, keeping this module free
of import cycles.

Keys are canonicalized by ``json.dumps(key, sort_keys=True, default=repr)``
and hashed with SHA-256, so dict ordering never matters and non-JSON values
(e.g. ``CacheParams`` overrides) participate through their deterministic
``repr``.  Bump :data:`STORE_SCHEMA` whenever simulation semantics change
in a way that invalidates archived results.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

#: Schema/version tag mixed into every key; bump to invalidate old stores.
#: 2: keys gained the "robustness" block (fault plan / sanitizer / watchdog).
STORE_SCHEMA = 2


def hash_key(key: dict) -> str:
    """Canonical SHA-256 digest of a JSON-able key dict."""
    text = json.dumps(key, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultStore:
    """On-disk JSON store of experiment payloads with hit/miss counters."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Paths and keys
    # ------------------------------------------------------------------
    def path_for(self, key: dict) -> Path:
        digest = hash_key(key)
        return self.root / digest[:2] / f"{digest}.json"

    def contains(self, key: dict) -> bool:
        """Existence check that does not touch the hit/miss counters."""
        return self.path_for(key).is_file()

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: dict) -> Optional[dict]:
        """Return the payload stored under ``key``, or None (counted)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            # Missing, unreadable, or truncated (e.g. a crashed writer
            # predating atomic replace): treat as a miss.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: dict, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path.

        Writes go to a per-process temporary file followed by an atomic
        rename, so concurrent grid workers racing on the same key can never
        leave a torn file; last writer wins with identical content.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def stats_line(self) -> str:
        return f"result store {self.root}: {self.hits} hits, {self.misses} misses"
