"""Persistent experiment-result store.

Every table and figure of the paper is derived from the same app x config
grid, so the harness keeps a gem5-style results database: each completed
experiment is written to an on-disk JSON file keyed by a canonical hash of
everything that determines its outcome (resolved app parameters, the fully
resolved system configuration, runtime kwargs, and the code version).  A
warm rerun of any benchmark then performs zero simulations.

Layout (one file per result, sharded by the first two hash digits)::

    <results-dir>/
        ab/abcdef0123....json    {"key": {...}, "result": {...}}
        cd/cdef4567....json      {"key": {...}, "workspan": {...}}

The store knows nothing about :class:`ExperimentResult`; it persists plain
JSON payload dicts.  Serialization lives in ``repro.harness.export`` and
the key construction in ``repro.harness.runner``, keeping this module free
of import cycles.

Keys are canonicalized by ``json.dumps(key, sort_keys=True)`` and hashed
with SHA-256, so dict ordering never matters.  Non-JSON values (e.g.
``CacheParams`` overrides, fault plans) participate as dataclass field
dicts; anything whose fallback ``repr`` embeds an object address (``<...
object at 0x7f...>``) is rejected outright — such a repr differs in every
process, so the "same" experiment would hash to a fresh key per run and
the store would silently never hit.  Bump :data:`STORE_SCHEMA` whenever
simulation semantics change in a way that invalidates archived results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from pathlib import Path
from typing import Optional

#: Schema/version tag mixed into every key; bump to invalidate old stores.
#: 2: keys gained the "robustness" block (fault plan / sanitizer / watchdog).
#: 3: experiment keys gained "init_signature" (checkpoint warm-start
#:    identity; see repro.harness.params.init_signature) and payloads an
#:    optional "lineage" block recording warm-start/resume provenance.
#:    Lineage is payload-only by design: a warm-started or resumed run is
#:    byte-identical to a cold one, so either must satisfy the other's
#:    probes.
#: 4: experiment keys gained "mode" (exact vs sampled plus the sampling
#:    spec; see repro.sampling).  A sampled result carries *estimated*
#:    cycles/traffic, so it must never satisfy a probe for an exact run —
#:    the firewall is the key itself.
STORE_SCHEMA = 4

#: A default-repr containing a memory address: never stable across runs.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+>")


def _canonical_default(value):
    """json.dumps fallback for non-JSON key components.

    Dataclass instances (fault plans, cache-parameter overrides) reduce to
    their field dict — stable across processes, unlike the default
    ``repr`` of an arbitrary object, which embeds the object's memory
    address and would make every process compute a different key for the
    same experiment (a permanent, silent store miss).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    text = repr(value)
    if _ADDRESS_REPR.search(text):
        raise TypeError(
            f"store key component {type(value).__name__} has an "
            f"address-based repr ({text[:60]}...); it would hash "
            "differently in every process. Convert it to plain data "
            "(or a dataclass) before keying."
        )
    return text


def hash_key(key: dict) -> str:
    """Canonical SHA-256 digest of a JSON-able key dict."""
    text = json.dumps(key, sort_keys=True, default=_canonical_default)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultStore:
    """On-disk JSON store of experiment payloads with hit/miss counters."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Paths and keys
    # ------------------------------------------------------------------
    def path_for(self, key: dict) -> Path:
        digest = hash_key(key)
        return self.root / digest[:2] / f"{digest}.json"

    def contains(self, key: dict) -> bool:
        """Existence check that does not touch the hit/miss counters."""
        return self.path_for(key).is_file()

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: dict) -> Optional[dict]:
        """Return the payload stored under ``key``, or None (counted)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            # Missing, unreadable, or truncated (e.g. a crashed writer
            # predating atomic replace): treat as a miss.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: dict, payload: dict) -> Path:
        """Atomically persist ``payload`` under ``key``; returns the path.

        Writes go to a per-process temporary file followed by an atomic
        rename, so concurrent grid workers racing on the same key can never
        leave a torn file; last writer wins with identical content.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def stats_line(self) -> str:
        return f"result store {self.root}: {self.hits} hits, {self.misses} misses"
