"""Per-application input parameters at each experiment scale.

The paper's inputs (Table III) are far too large for a pure-Python
simulator, so we apply the paper's own weak-scaling methodology: inputs
shrink with the simulated machine, keeping logical parallelism moderate
relative to core count.  ``grain`` (task granularity, GS in Table III) is
chosen per app the way Section V-D prescribes — large enough to amortize
runtime overhead, small enough to keep parallelism (for ligra-tc the grain
counts *edges* per task, for the other Ligra kernels vertices per task).
"""

from __future__ import annotations

from typing import Dict

#: app -> scale -> constructor kwargs.
APP_PARAMS: Dict[str, Dict[str, dict]] = {
    "cilk5-cs": {
        "tiny": dict(n=128, grain=32),
        "quick": dict(n=2048, grain=64),
        "paper": dict(n=4096, grain=64),
        "large": dict(n=6000, grain=64),
    },
    "cilk5-lu": {
        "tiny": dict(n=8, grain=4),
        "quick": dict(n=24, grain=4),
        "paper": dict(n=32, grain=4),
        "large": dict(n=32, grain=4),
    },
    "cilk5-mm": {
        "tiny": dict(n=8, grain=4),
        "quick": dict(n=16, grain=4),
        "paper": dict(n=32, grain=4),
        "large": dict(n=32, grain=4),
    },
    "cilk5-mt": {
        "tiny": dict(n=16, grain=8),
        "quick": dict(n=64, grain=8),
        "paper": dict(n=128, grain=8),
        "large": dict(n=128, grain=8),
    },
    "cilk5-nq": {
        "tiny": dict(n=5, cutoff=2),
        "quick": dict(n=7, cutoff=3),
        "paper": dict(n=8, cutoff=3),
        "large": dict(n=8, cutoff=3),
    },
    "ligra-bc": {
        "tiny": dict(scale=5, grain=8),
        "quick": dict(scale=9, grain=8),
        "paper": dict(scale=10, grain=8),
        "large": dict(scale=11, grain=8),
    },
    "ligra-bf": {
        "tiny": dict(scale=5, grain=8),
        "quick": dict(scale=9, grain=8),
        "paper": dict(scale=10, grain=8),
        "large": dict(scale=10, grain=8),
    },
    "ligra-bfs": {
        "tiny": dict(scale=5, grain=8),
        "quick": dict(scale=9, grain=8),
        "paper": dict(scale=11, grain=8),
        "large": dict(scale=12, grain=8),
    },
    "ligra-bfsbv": {
        "tiny": dict(scale=5, grain=8),
        "quick": dict(scale=9, grain=32),
        "paper": dict(scale=11, grain=64),
        "large": dict(scale=11, grain=64),
    },
    "ligra-cc": {
        "tiny": dict(scale=5, grain=8),
        "quick": dict(scale=9, grain=8),
        "paper": dict(scale=10, grain=8),
        "large": dict(scale=11, grain=8),
    },
    "ligra-mis": {
        "tiny": dict(scale=5, grain=8),
        "quick": dict(scale=9, grain=8),
        "paper": dict(scale=10, grain=8),
        "large": dict(scale=10, grain=8),
    },
    "ligra-radii": {
        "tiny": dict(scale=4, grain=8),
        "quick": dict(scale=7, grain=8),
        "paper": dict(scale=9, grain=8),
        "large": dict(scale=9, grain=8),
    },
    "ligra-tc": {
        "tiny": dict(scale=5, grain=16),
        "quick": dict(scale=8, grain=32),
        "paper": dict(scale=9, grain=32),
        "large": dict(scale=10, grain=32),
    },
    # Simulator-throughput microkernels (repro.apps.kernels) — not part of
    # Table III; sized for the wall-clock benchmark, not for paper figures.
    "kernel-spin": {
        "tiny": dict(iters=20_000, grain=2048),
        "quick": dict(iters=300_000, grain=8192),
        "paper": dict(iters=1_000_000, grain=16384),
        "large": dict(iters=4_000_000, grain=16384),
    },
    # n is sized to stay resident in a tiny core's 4 KB L1 (512 words), so
    # the steady state measures the hit path rather than L2 thrash.
    "kernel-stream": {
        "tiny": dict(n=128, passes=16, grain=64),
        "quick": dict(n=384, passes=160, grain=96),
        "paper": dict(n=384, passes=500, grain=96),
        "large": dict(n=384, passes=1000, grain=96),
    },
    # Deliberately wedged kernel (watchdog / crash-tolerant sweep tests);
    # takes no parameters at any scale.
    "kernel-deadlock": {
        "tiny": dict(),
        "quick": dict(),
        "paper": dict(),
        "large": dict(),
    },
}

#: Table V uses this subset of kernels at larger inputs (paper Section VI-D).
TABLE5_APPS = ("cilk5-cs", "ligra-bc", "ligra-bfs", "ligra-cc", "ligra-tc")


def app_params(app_name: str, scale: str, **overrides) -> dict:
    params = dict(APP_PARAMS[app_name][scale])
    params.update(overrides)
    return params


def init_signature(app_name: str, scale: str, **overrides) -> str:
    """Digest identifying an app's init (setup) phase for warm starts.

    Two experiments share an init snapshot exactly when this matches: the
    app, its fully resolved input parameters, and the code version — but
    *not* the system kind or runtime flags, because ``app.setup`` runs on
    the host before any machine state exists (checked at capture time by
    ``repro.engine.checkpoint.capture_init_state``).  The same value is
    recorded in result-store keys (schema 3) whether a run was warm- or
    cold-started, so warm results satisfy cold probes and vice versa.
    """
    import hashlib
    import json

    from repro import __version__

    payload = json.dumps(
        {
            "app": app_name,
            "scale": scale,
            "app_params": app_params(app_name, scale, **overrides),
            "code_version": __version__,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]
