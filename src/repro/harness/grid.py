"""Parallel experiment grid: fan an (app, config, scale) grid over workers.

Every paper artifact (Tables III-V, Figures 5-8) is derived from the same
experiment grid.  :func:`run_grid` executes a list of :class:`GridPoint`s
either serially in-process or on a pool of ``multiprocessing`` workers,
with a per-run timeout, one retry on failure, and an optional progress/ETA
line.  Completed results are adopted into the parent's memo cache (and the
persistent result store when one is configured), so the table/figure
producers that follow hit the cache instead of re-simulating.

Determinism: a simulation's outcome is a pure function of its grid point —
every Machine seeds its own RNG from the configuration — so a parallel run
is bit-identical to a serial one.  Workers return results serialized
through ``result_to_dict`` and the parent revives them with
``result_from_dict``; Python's JSON float round-trip is exact, so even
float fields survive the process boundary unchanged (this is asserted by
``tests/test_grid.py``).

Worker count resolution order: explicit ``jobs=`` argument, then
:func:`set_default_jobs` (the CLI's ``--jobs``), then the ``REPRO_JOBS``
environment variable, then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence

import repro.harness.runner as runner
from repro.engine.checkpoint import ParkedRun
from repro.engine.watchdog import DeadlockError
from repro.harness import termlog
from repro.harness.retry import Backoff, BackoffPolicy
from repro.harness.runner import ExperimentResult
from repro.sanitize import SanitizerError

#: Default retry schedule for failed grid workers: exponential backoff
#: with decorrelated jitter (repro.harness.retry), shared discipline with
#: the serve supervisor.  A crashed worker usually shares its cause with
#: its siblings (OOM, disk, a wedged store), so immediate same-slot
#: retries mostly burn an attempt reproducing the failure.
GRID_BACKOFF = BackoffPolicy(base_s=0.2, cap_s=5.0, multiplier=3.0)


class GridError(RuntimeError):
    """A grid point failed (or timed out) on every allowed attempt."""


@dataclass
class FailedResult:
    """A grid point that did not produce a result (``on_error="record"``).

    Occupies the failed point's slot in ``run_grid``'s output so a sweep
    with one wedged configuration still returns every other cell.  The
    ``error`` field is one of ``"deadlock"``, ``"violation"``,
    ``"timeout"``, or ``"error"``; ``diagnostic`` carries the watchdog's
    per-core dump (or the sanitizer's violation list) when available.
    """

    app: str
    kind: str
    scale: str
    label: str
    error: str
    message: str
    diagnostic: dict = field(default_factory=dict)
    attempts: int = 1

    #: Discriminator mirroring ExperimentResult duck-typing checks.
    failed: bool = True


@dataclass(frozen=True)
class GridPoint:
    """One cell of the experiment grid: run_experiment's arguments."""

    app: str
    kind: str
    scale: str
    serial: bool = False
    check: bool = True
    app_overrides: Optional[dict] = None
    runtime_kwargs: Optional[dict] = None
    config_overrides: Optional[dict] = None
    faults: Optional[object] = None
    sanitize: bool = False
    watchdog: Optional[int] = None
    #: Periodic-sampling spec string ("U:W:D[:Q]"); None = exact run.
    #: Kept as the string form so points stay hashable and pickle across
    #: worker processes; run_experiment coerces it to a SamplingSpec.
    sampling: Optional[str] = None
    #: Checkpoint spec (CheckpointConfig kwargs dict; kept as plain data so
    #: points pickle across worker processes).  Injected by run_grid's
    #: checkpoint_dir machinery; not part of the experiment's identity.
    checkpoint: Optional[dict] = None
    #: Validated parallel replicas per point (repro.engine.pdes); None or
    #: 1 = plain serial run.  An execution strategy, not part of the
    #: experiment's identity — memo/store keys ignore it.  run_grid divides
    #: its worker budget by the largest shard count so shards × jobs never
    #: oversubscribes the host.
    shards: Optional[int] = None

    def label(self) -> str:
        parts = [self.app, self.kind, self.scale]
        if self.serial:
            parts.append("serial")
        if self.app_overrides:
            parts.append(f"app={self.app_overrides}")
        if self.runtime_kwargs:
            parts.append(f"rt={self.runtime_kwargs}")
        if self.config_overrides:
            parts.append(f"cfg={self.config_overrides}")
        if self.faults is not None:
            parts.append(f"faults={self.faults}")
        if self.sanitize:
            parts.append("sanitize")
        if self.sampling is not None:
            parts.append(f"sample={self.sampling}")
        if self.shards is not None and self.shards > 1:
            parts.append(f"shards={self.shards}")
        return " ".join(parts)

    def as_fields(self) -> dict:
        """Constructor kwargs (picklable; rebuilds the point in a worker)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def run_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.harness.runner.run_experiment`."""
        return dict(
            app_name=self.app,
            kind=self.kind,
            scale=self.scale,
            serial=self.serial,
            check=self.check,
            app_overrides=self.app_overrides,
            runtime_kwargs=self.runtime_kwargs,
            config_overrides=self.config_overrides,
            faults=self.faults,
            sanitize=self.sanitize,
            watchdog=self.watchdog,
            checkpoint=self.checkpoint,
            sampling=self.sampling,
            shards=self.shards,
        )


def expand_grid(
    apps: Sequence[str],
    kinds: Sequence[str],
    scales: Sequence[str],
    **common,
) -> List[GridPoint]:
    """The full cross product, app-major (the paper's presentation order)."""
    return [
        GridPoint(app, kind, scale, **common)
        for app in apps
        for kind in kinds
        for scale in scales
    ]


# ----------------------------------------------------------------------
# Default worker count
# ----------------------------------------------------------------------
_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Process-wide default for ``run_grid(jobs=None)`` (CLI ``--jobs``)."""
    global _DEFAULT_JOBS
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


def default_jobs() -> int:
    if _DEFAULT_JOBS is not None:
        return _DEFAULT_JOBS
    env = os.environ.get("REPRO_JOBS", "")
    try:
        return max(1, int(env))
    except ValueError:
        return 1


class _Progress:
    """A single overwriting [done/total + ETA] line, via ``termlog``.

    ETA comes from a *windowed* completion rate over the most recent
    simulated runs, with store/memo hits excluded: a warm store satisfies
    its points in microseconds, so the naive ``elapsed / done * remaining``
    extrapolation announces a wildly optimistic ETA right until the first
    cold point lands (and a wildly pessimistic one on a sweep that ends in
    a burst of hits).  Hits still advance ``done`` — they just contribute
    no rate evidence.  The window keeps the estimate honest when per-point
    cost drifts across a sweep (small scales first, large scales last).
    """

    #: Completions the rate window spans (timestamps kept: WINDOW + 1).
    WINDOW = 16

    def __init__(self, total: int, enabled: bool, clock=time.monotonic):
        self.total = total
        self.enabled = enabled
        self.done = 0
        self.hits = 0
        self._clock = clock
        self.start = clock()
        #: Timestamps of simulated (non-hit) completions, seeded with the
        #: start time so the first miss already defines a rate.
        self._window = deque([self.start], maxlen=self.WINDOW + 1)
        #: Last computed ETA in seconds (None until an estimate exists);
        #: exposed for tests and for the ledger's ETA-accuracy accounting.
        self.last_eta: Optional[float] = None

    def _eta(self, now: float) -> Optional[float]:
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if len(self._window) >= 2:
            span = self._window[-1] - self._window[0]
            completions = len(self._window) - 1
            if span > 0:
                return remaining / (completions / span)
        # No simulated completion yet (all hits so far): fall back to the
        # naive extrapolation, which at least reflects observed hit cost.
        if self.done > 0:
            return (now - self.start) / self.done * remaining
        return None

    def step(self, label: str, instant: bool = False) -> None:
        """Count one completed point; ``instant`` marks a store/memo hit."""
        self.done += 1
        now = self._clock()
        if instant:
            self.hits += 1
        else:
            self._window.append(now)
        self.last_eta = self._eta(now)
        if not self.enabled:
            return
        elapsed = now - self.start
        eta_text = f"{self.last_eta:6.1f}s" if self.last_eta is not None else "   ?  "
        termlog.status(
            f"[{self.done}/{self.total}] {label:<48.48s} "
            f"elapsed {elapsed:6.1f}s  ETA {eta_text}"
        )
        if self.done == self.total:
            termlog.end_status()

    def note(self, message: str) -> None:
        if self.enabled:
            termlog.log(message)


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
def _worker_entry(conn, point_kwargs: dict, results_dir: Optional[str]) -> None:
    """Run one grid point in a child process; ship the result (or the
    failure) back through ``conn`` as JSON-safe plain data."""
    try:
        runner.set_result_store(results_dir)
        point = GridPoint(**point_kwargs)
        result = runner.run_experiment(**point.run_kwargs())
        from repro.harness.export import result_to_dict

        # ``sims`` lets the parent's ETA estimator distinguish a real
        # simulation from a store hit (0 = satisfied from cache/store).
        conn.send(
            ("ok", {"result": result_to_dict(result), "sims": runner.simulation_count()})
        )
    except ParkedRun as exc:
        # Preempted by a supervisor (repro.serve): the snapshot is already
        # on disk; report where the run stopped and exit cleanly.
        try:
            conn.send(("parked", {"cycle": exc.cycle, "snapshot": exc.path}))
        except Exception:
            pass
    except DeadlockError as exc:
        try:
            conn.send(("deadlock", {"message": str(exc), "diagnostic": exc.diagnostic}))
        except Exception:
            pass
    except SanitizerError as exc:
        try:
            conn.send(("violation", {"message": str(exc), "violations": exc.violations}))
        except Exception:
            pass
    except BaseException as exc:  # report, never hang the parent
        import traceback

        try:
            conn.send(("err", f"{exc!r}\n{traceback.format_exc()}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _live_helper_threads():
    """Names of live non-daemon threads other than the caller's.

    Forking while a non-daemon helper (ledger appender, heartbeat writer,
    third-party pool) is running clones whatever locks it holds into the
    child — where no thread will ever release them — so fork is only safe
    when none are alive.  Daemon threads are excluded: the obs helpers are
    daemonic by construction and hold no locks across their sleep.
    """
    import threading

    current = threading.current_thread()
    return [
        thread.name
        for thread in threading.enumerate()
        if thread is not current
        and not thread.daemon
        and thread.is_alive()
    ]


def _mp_context():
    """Pick the multiprocessing start method for grid/serve workers.

    ``REPRO_MP=spawn|fork`` forces a method (``fork`` asserts no live
    non-daemon helper threads first — a forced fork with helpers alive is
    a latent deadlock, better refused loudly).  Unset, prefer fork (cheap,
    inherits loaded modules) unless helper threads are alive or fork is
    unavailable, in which case fall back to spawn.
    """
    methods = multiprocessing.get_all_start_methods()
    choice = os.environ.get("REPRO_MP", "").strip().lower()
    if choice:
        if choice not in ("fork", "spawn"):
            raise ValueError(f"REPRO_MP must be 'spawn' or 'fork', got {choice!r}")
        if choice not in methods:
            raise ValueError(f"REPRO_MP={choice} unsupported on this platform")
        if choice == "fork":
            helpers = _live_helper_threads()
            if helpers:
                raise RuntimeError(
                    "REPRO_MP=fork with live non-daemon threads "
                    f"{helpers}: forked children would inherit their locks "
                    "held forever; stop the helpers or use REPRO_MP=spawn"
                )
        return multiprocessing.get_context(choice)
    if "fork" in methods and not _live_helper_threads():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


@dataclass
class _Running:
    point: GridPoint
    proc: "multiprocessing.process.BaseProcess"
    conn: object
    deadline: Optional[float]
    attempt: int = 1


# ----------------------------------------------------------------------
# The grid driver
# ----------------------------------------------------------------------
def _classify_failure(exc: BaseException):
    """(error kind, message, diagnostic dict) for a grid point failure."""
    if isinstance(exc, DeadlockError):
        return "deadlock", str(exc), exc.diagnostic
    if isinstance(exc, SanitizerError):
        return "violation", str(exc), {"violations": exc.violations}
    return "error", f"{exc!r}", {}


def _record_failure(
    point: GridPoint, error: str, message: str, diagnostic: dict, attempts: int
) -> FailedResult:
    first_line = message.splitlines()[0] if message else error
    termlog.alert(f"{error}: {point.label()}: {first_line}")
    return FailedResult(
        app=point.app,
        kind=point.kind,
        scale=point.scale,
        label=point.label(),
        error=error,
        message=message,
        diagnostic=diagnostic or {},
        attempts=attempts,
    )


def _point_checkpoint_spec(
    point: GridPoint,
    checkpoint_dir: str,
    checkpoint_interval: Optional[int],
    resume: bool,
    warm_init: bool,
) -> dict:
    """The CheckpointConfig kwargs injected into one grid point.

    The snapshot filename is derived from the point's full identity (all
    constructor fields except ``checkpoint`` itself), so a rerun of the
    same sweep — or a retry of one point — finds exactly its own snapshot
    and two different points can never collide.
    """
    from repro.harness.resultstore import hash_key

    identity = {k: v for k, v in point.as_fields().items() if k != "checkpoint"}
    if identity.get("faults") is not None:
        identity["faults"] = str(identity["faults"])
    digest = hash_key({"grid_point": identity})[:20]
    return dict(
        path=os.path.join(checkpoint_dir, f"{digest}.ckpt"),
        interval=checkpoint_interval,
        resume=resume,
        init_dir=os.path.join(checkpoint_dir, "init") if warm_init else None,
    )


def _precompute_init_snapshots(points: Sequence[GridPoint], meter) -> None:
    """Run each distinct app init phase once, serially, in the parent.

    Every point whose ``checkpoint`` spec names an ``init_dir`` gets its
    post-setup image written there (keyed by init signature), so the
    fanned-out configuration variants all warm-start from one shared init
    instead of each re-running it.  Apps whose setup consumes the machine
    RNG are skipped with a note — they cold-start safely.
    """
    from repro.apps import make_app
    from repro.config import make_config
    from repro.engine.checkpoint import (
        CheckpointError,
        capture_init_state,
        save_snapshot,
    )
    from repro.harness.params import app_params, init_signature
    from repro.machine import Machine

    seen = set()
    for point in points:
        init_dir = (point.checkpoint or {}).get("init_dir")
        if not init_dir:
            continue
        overrides = point.app_overrides or {}
        sig = init_signature(point.app, point.scale, **overrides)
        if sig in seen:
            continue
        seen.add(sig)
        path = os.path.join(init_dir, f"{sig}.init")
        if os.path.exists(path):
            continue
        app = make_app(point.app, **app_params(point.app, point.scale, **overrides))
        machine = Machine(
            make_config(point.kind, point.scale, **(point.config_overrides or {}))
        )
        app.setup(machine)
        try:
            save_snapshot(path, capture_init_state(machine, app, sig))
        except CheckpointError as exc:
            meter.note(f"no init snapshot for {point.app}/{point.scale}: {exc}")


def run_grid(
    points: Sequence[GridPoint],
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[bool] = None,
    on_error: str = "raise",
    checkpoint_dir: Optional[str] = None,
    checkpoint_interval: Optional[int] = 50_000,
    warm_init: bool = False,
    backoff: Optional[BackoffPolicy] = None,
):
    """Run every grid point; return results in input order.

    ``jobs > 1`` fans points out over a process pool; each run gets at most
    ``timeout`` wall-clock seconds (None = unlimited) and ``retries`` fresh
    attempts after a failure or timeout before :class:`GridError` is
    raised.  Retries wait out an exponential backoff with decorrelated
    jitter (``backoff``, default :data:`GRID_BACKOFF`; pass
    ``repro.harness.retry.NO_BACKOFF`` for immediate retries) instead of
    respawning into the same failure.  All completed results are adopted
    into the in-process memo cache and the configured result store, so
    follow-up ``run_experiment`` calls for the same points are free.

    ``on_error="record"`` makes sweeps crash-tolerant: a point that
    deadlocks, trips the sanitizer, times out, or errors yields a
    :class:`FailedResult` in its slot (announced via ``termlog.alert``)
    instead of aborting the whole grid.  Deadlocks and sanitizer
    violations are deterministic, so they are never retried.

    ``checkpoint_dir`` turns on deterministic checkpointing: every point
    snapshots itself each ``checkpoint_interval`` cycles into its own file
    under the directory.  ``on_error="resume"`` is ``"record"`` plus
    restore-on-restart — a retried, re-run, or previously killed point
    picks up from its latest snapshot instead of starting over (results
    are byte-identical either way; it requires ``checkpoint_dir``).
    ``warm_init`` additionally runs each distinct app init phase once,
    serially, and warm-starts every configuration variant from that shared
    post-setup image.
    """
    if on_error not in ("raise", "record", "resume"):
        raise ValueError(
            f"on_error must be 'raise', 'record', or 'resume', got {on_error!r}"
        )
    if on_error == "resume" and checkpoint_dir is None:
        raise ValueError("on_error='resume' requires checkpoint_dir")
    if warm_init and checkpoint_dir is None:
        raise ValueError("warm_init requires checkpoint_dir")
    points = list(points)
    if checkpoint_dir is not None:
        # Sampled points run without snapshotting: fast-forward slices
        # advance many ops per event, so their send log cannot be cut at
        # an event boundary (SamplingController refuses the combination).
        # They still share the warm-init images — init restore happens
        # before the first event, identically in both modes.
        def _spec(point: GridPoint) -> dict:
            if point.sampling is None:
                return _point_checkpoint_spec(
                    point,
                    checkpoint_dir,
                    checkpoint_interval,
                    resume=(on_error == "resume"),
                    warm_init=warm_init,
                )
            return dict(
                path=None,
                interval=None,
                resume=False,
                init_dir=os.path.join(checkpoint_dir, "init") if warm_init else None,
            )

        points = [replace(point, checkpoint=_spec(point)) for point in points]
    if jobs is None:
        jobs = default_jobs()
    meter = _Progress(len(points), termlog.progress_enabled(progress))
    # Sharded points spawn their own replica processes; divide the worker
    # budget by the widest point so shards × jobs never oversubscribes.
    max_shards = max((point.shards or 1 for point in points), default=1)
    if max_shards > 1 and jobs > 1:
        budgeted = max(1, jobs // max_shards)
        if budgeted != jobs:
            meter.note(
                f"grid: {jobs} jobs / {max_shards}-shard points -> "
                f"{budgeted} concurrent grid worker(s)"
            )
        jobs = budgeted
    if not points:
        return []
    if warm_init:
        _precompute_init_snapshots(points, meter)
    if on_error == "resume":
        on_error = "record"
    if jobs <= 1 or len(points) == 1:
        results = []
        for point in points:
            sims_before = runner.simulation_count()
            try:
                results.append(runner.run_experiment(**point.run_kwargs()))
            except Exception as exc:
                if on_error != "record":
                    raise
                error, message, diagnostic = _classify_failure(exc)
                results.append(
                    _record_failure(point, error, message, diagnostic, attempts=1)
                )
            meter.step(
                point.label(),
                instant=(runner.simulation_count() == sims_before),
            )
        return results
    return _run_parallel(points, jobs, timeout, retries, meter, on_error, backoff)


def _run_parallel(
    points: List[GridPoint],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    meter: _Progress,
    on_error: str = "raise",
    backoff: Optional[BackoffPolicy] = None,
) -> List[ExperimentResult]:
    from repro.harness.export import result_from_dict

    store = runner.get_result_store()
    results_dir = str(store.root) if store is not None else None
    ctx = _mp_context()
    pending = deque(enumerate(points))
    running: Dict[int, _Running] = {}
    results: List[Optional[ExperimentResult]] = [None] * len(points)
    policy = backoff if backoff is not None else GRID_BACKOFF
    #: Per-point retry state (decorrelated jitter needs the previous
    #: delay), created on first failure.
    backoffs: Dict[int, Backoff] = {}
    #: Points waiting out their backoff: idx -> (point, next attempt).
    delayed: Dict[int, tuple] = {}

    def spawn(idx: int, point: GridPoint, attempt: int) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker_entry,
            args=(child_conn, point.as_fields(), results_dir),
            # Daemonic processes may not have children, and a sharded
            # point spawns its own replica workers; the reap machinery
            # (not daemonization) is what cleans these up either way.
            daemon=(point.shards or 1) <= 1,
        )
        proc.start()
        child_conn.close()
        deadline = (time.monotonic() + timeout) if timeout else None
        running[idx] = _Running(point, proc, parent_conn, deadline, attempt)

    def reap(idx: int) -> None:
        slot = running.pop(idx)
        slot.conn.close()
        if slot.proc.is_alive():
            slot.proc.terminate()
        slot.proc.join()

    def fail(
        idx: int,
        reason: str,
        error: str = "error",
        diagnostic: Optional[dict] = None,
        retryable: bool = True,
        worker_reported: bool = True,
    ) -> None:
        slot = running[idx]
        reap(idx)
        # A worker that failed inside run_experiment wrote its own ledger
        # line before reporting; a killed or timed-out worker could not, so
        # the parent records the attempt on its behalf.
        if not worker_reported:
            from repro.obs.ledger import get_ledger

            ledger = get_ledger()
            if ledger is not None:
                ledger.record(
                    source="grid",
                    outcome="failed",
                    error=error,
                    message=reason.splitlines()[0] if reason else error,
                    app=slot.point.app,
                    kind=slot.point.kind,
                    scale=slot.point.scale,
                    serial=slot.point.serial,
                    attempt=slot.attempt,
                    wall_s=timeout if error == "timeout" else None,
                )
        # Deadlocks and sanitizer violations are deterministic functions
        # of the grid point: a retry would only reproduce them.
        if retryable and slot.attempt <= retries:
            state = backoffs.setdefault(idx, Backoff(policy))
            delay = state.fail()
            meter.note(
                f"retrying {slot.point.label()} "
                f"(attempt {slot.attempt + 1}, backoff {delay:.2f}s): "
                f"{reason.splitlines()[0]}"
            )
            delayed[idx] = (slot.point, slot.attempt + 1)
        elif on_error == "record":
            results[idx] = _record_failure(
                slot.point, error, reason, diagnostic or {}, slot.attempt
            )
            meter.step(slot.point.label())
        else:
            for other in list(running):
                reap(other)
            raise GridError(
                f"grid point {slot.point.label()} failed after "
                f"{slot.attempt} attempt(s): {reason}"
            )

    try:
        while pending or running or delayed:
            # Backed-off retries whose delay has elapsed respawn first:
            # they have been waiting longest and hold a results slot.
            for idx in list(delayed):
                if len(running) >= jobs:
                    break
                if backoffs[idx].ready():
                    point, attempt = delayed.pop(idx)
                    spawn(idx, point, attempt)
            while pending and len(running) < jobs:
                idx, point = pending.popleft()
                spawn(idx, point, attempt=1)
            made_progress = False
            for idx in list(running):
                slot = running[idx]
                if slot.conn.poll(0):
                    try:
                        status, payload = slot.conn.recv()
                    except (EOFError, OSError):
                        made_progress = True
                        fail(
                            idx,
                            "worker died before reporting a result",
                            worker_reported=False,
                        )
                        continue
                    made_progress = True
                    if status == "ok":
                        reap(idx)
                        result = result_from_dict(payload["result"])
                        runner.adopt_result(
                            result,
                            app_overrides=slot.point.app_overrides,
                            runtime_kwargs=slot.point.runtime_kwargs,
                            config_overrides=slot.point.config_overrides,
                            faults=slot.point.faults,
                            sanitize=slot.point.sanitize,
                            watchdog=slot.point.watchdog,
                            sampling=slot.point.sampling,
                        )
                        results[idx] = result
                        meter.step(
                            slot.point.label(), instant=(payload["sims"] == 0)
                        )
                    elif status == "deadlock":
                        fail(
                            idx, payload["message"], error="deadlock",
                            diagnostic=payload.get("diagnostic"), retryable=False,
                        )
                    elif status == "violation":
                        fail(
                            idx, payload["message"], error="violation",
                            diagnostic={"violations": payload.get("violations", [])},
                            retryable=False,
                        )
                    elif status == "parked":
                        # The grid never requests parks itself (only the
                        # serve supervisor does); a stale park file counts
                        # as a retryable interruption — the retry resumes
                        # from the snapshot under on_error="resume".
                        fail(
                            idx,
                            f"worker parked at cycle {payload.get('cycle')}",
                            error="parked",
                        )
                    else:
                        fail(idx, payload)
                elif not slot.proc.is_alive():
                    made_progress = True
                    fail(
                        idx,
                        f"worker exited with code {slot.proc.exitcode}",
                        worker_reported=False,
                    )
                elif slot.deadline is not None and time.monotonic() > slot.deadline:
                    made_progress = True
                    fail(
                        idx,
                        f"timed out after {timeout}s",
                        error="timeout",
                        worker_reported=False,
                    )
            if not made_progress:
                time.sleep(0.02)
    finally:
        for idx in list(running):
            reap(idx)
    return results  # type: ignore[return-value]
