"""Discrete-event simulation kernel.

The simulator keeps a single priority queue of (time, sequence, callback)
events.  Components schedule callbacks at absolute or relative cycle times;
the sequence number makes event ordering fully deterministic for events
scheduled at the same cycle (FIFO among ties).

*Daemon* events (``schedule(..., daemon=True)``) are pure observers such as
the interval stats sampler (``repro.trace.sampler``): they live in their
own small heap, run just before the first regular event at or after their
due time, and never keep the simulation alive or advance the clock past
the last real event — so they cannot perturb a simulation's outcome.  The
main event loop only pays one truthiness test per event for their
existence, keeping untraced runs at full speed.

This kernel is deliberately minimal: the memory system resolves most
latencies analytically (see ``repro.mem``), so the event queue only carries
core wake-ups, ULI deliveries, and watchdog checks.  That keeps the event
count per simulated cycle low enough for Python to simulate 64-core systems
at interactive speed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside a simulation (deadlock, overflow)."""


class Simulator:
    """A deterministic discrete-event simulator with a cycle-granular clock."""

    def __init__(self, max_cycles: int = 500_000_000):
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._daemon_queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self.max_cycles = max_cycles
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: int, callback: Callable[[], None], daemon: bool = False
    ) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now (>= 0).

        ``daemon`` events (observers such as the interval stats sampler)
        never keep the simulation alive: the run loop stops once only
        daemon events remain, without executing them or advancing the
        clock.  They therefore cannot perturb a simulation's outcome.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + int(delay), callback, daemon)

    def schedule_at(
        self, time: int, callback: Callable[[], None], daemon: bool = False
    ) -> None:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        queue = self._daemon_queue if daemon else self._queue
        heapq.heappush(queue, (time, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[Callable[[], bool]] = None) -> int:
        """Drain the event queue.

        Runs until no regular (non-daemon) events remain, ``until()``
        returns True (checked after each event), ``stop()`` is called, or
        ``max_cycles`` is exceeded.  Returns the final cycle count.
        """
        self._running = True
        self._stop_requested = False
        queue = self._queue
        daemon_queue = self._daemon_queue
        heappop = heapq.heappop
        try:
            while queue:
                time, _seq, callback = heappop(queue)
                if time > self.max_cycles:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={self.max_cycles}; "
                        "likely deadlock or runaway spin loop"
                    )
                while daemon_queue and daemon_queue[0][0] <= time:
                    dtime, _dseq, dcallback = heappop(daemon_queue)
                    self.now = dtime
                    dcallback()
                self.now = time
                callback()
                if self._stop_requested or (until is not None and until()):
                    break
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    @property
    def pending_events(self) -> int:
        """Pending non-daemon events (the ones that drive the run loop)."""
        return len(self._queue)
