"""Discrete-event simulation kernel.

The simulator keeps a single priority queue of (time, sequence, callback)
events.  Components schedule callbacks at absolute or relative cycle times;
the sequence number makes event ordering fully deterministic for events
scheduled at the same cycle (FIFO among ties).

This kernel is deliberately minimal: the memory system resolves most
latencies analytically (see ``repro.mem``), so the event queue only carries
core wake-ups, ULI deliveries, and watchdog checks.  That keeps the event
count per simulated cycle low enough for Python to simulate 64-core systems
at interactive speed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside a simulation (deadlock, overflow)."""


class Simulator:
    """A deterministic discrete-event simulator with a cycle-granular clock."""

    def __init__(self, max_cycles: int = 500_000_000):
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self.max_cycles = max_cycles
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[Callable[[], bool]] = None) -> int:
        """Drain the event queue.

        Runs until the queue empties, ``until()`` returns True (checked after
        each event), ``stop()`` is called, or ``max_cycles`` is exceeded.
        Returns the final cycle count.
        """
        self._running = True
        self._stop_requested = False
        try:
            while self._queue:
                time, _seq, callback = heapq.heappop(self._queue)
                if time > self.max_cycles:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={self.max_cycles}; "
                        "likely deadlock or runaway spin loop"
                    )
                self.now = time
                callback()
                if self._stop_requested or (until is not None and until()):
                    break
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    @property
    def pending_events(self) -> int:
        return len(self._queue)
