"""Discrete-event simulation kernel.

The simulator keeps a single priority queue of (time, sequence, callback)
events.  Components schedule callbacks at absolute or relative cycle times;
the sequence number makes event ordering fully deterministic for events
scheduled at the same cycle (FIFO among ties).

*Daemon* events (``schedule(..., daemon=True)``) are pure observers such as
the interval stats sampler (``repro.trace.sampler``): they live in their
own small heap, run just before the first regular event at or after their
due time, and never keep the simulation alive or advance the clock past
the last real event — so they cannot perturb a simulation's outcome.  The
main event loop only pays one truthiness test per event for their
existence, keeping untraced runs at full speed.

Event fusion (the :meth:`Simulator.try_fuse` fast path)
-------------------------------------------------------

Most events in this simulator are core-operation completions: a core
finishes a load/store/work op and schedules its own continuation a few
cycles later.  When that continuation is due *strictly before* every other
pending event — regular or daemon — executing it inline is exactly
equivalent to a heappush immediately followed by a heappop of the same
entry.  :meth:`try_fuse` implements that claim check: callers (the core's
coroutine trampoline, see ``repro.cores.core.Core._resume``) ask "may I
just advance the clock to ``time`` and keep running?" and the simulator
answers yes only when

* fusion is enabled and a ``run()`` without an ``until`` predicate is
  active (an ``until`` predicate must be re-evaluated after *every*
  event, so fusion is disabled for such runs),
* ``stop()`` has not been requested,
* ``time`` does not exceed ``max_cycles`` (the runaway guard must fire
  exactly as it would on the heap path), and
* ``time`` is strictly earlier than both the regular and the daemon
  queue heads.

The strict-less-than comparison is what makes fused and unfused runs
provably identical: an event at the same cycle as the queue head must
lose the FIFO tie-break (the queued event holds a smaller sequence
number), so it is never fused.  Daemon events run just before the first
regular event at-or-after their due time, so fusing past a due daemon
event is likewise forbidden.  Under these rules the sequence of executed
callbacks, the clock values they observe, and every statistic they record
are identical whether fusion is on or off — only the host-side heap
traffic disappears.  Set ``REPRO_NO_FUSION=1`` (or construct with
``fusion=False``) to force every continuation through the heap for
differential testing; the hot loop then pays a single extra branch per
completed operation.

This kernel is deliberately minimal: the memory system resolves most
latencies analytically (see ``repro.mem``), so the event queue only carries
core wake-ups, ULI deliveries, and watchdog checks.  That keeps the event
count per simulated cycle low enough for Python to simulate 64-core systems
at interactive speed.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside a simulation (deadlock, overflow)."""


class Simulator:
    """A deterministic discrete-event simulator with a cycle-granular clock."""

    __slots__ = (
        "_queue",
        "_daemon_queue",
        "_seq",
        "now",
        "max_cycles",
        "_running",
        "_stop_requested",
        "fusion_enabled",
        "_fusible",
        "events_executed",
        "events_fused",
    )

    def __init__(self, max_cycles: int = 500_000_000, fusion: Optional[bool] = None):
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._daemon_queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self.now = 0
        self.max_cycles = max_cycles
        self._running = False
        self._stop_requested = False
        if fusion is None:
            fusion = not os.environ.get("REPRO_NO_FUSION")
        #: Whether the event-fusion fast path may be used at all.
        self.fusion_enabled = bool(fusion)
        #: True only inside a ``run()`` that is allowed to fuse.
        self._fusible = False
        #: Events executed through the heap (popped by the run loop).
        self.events_executed = 0
        #: Continuations executed inline via :meth:`try_fuse`.
        self.events_fused = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: int, callback: Callable[[], None], daemon: bool = False
    ) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now (>= 0).

        ``daemon`` events (observers such as the interval stats sampler)
        never keep the simulation alive: the run loop stops once only
        daemon events remain, without executing them or advancing the
        clock.  They therefore cannot perturb a simulation's outcome.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + int(delay), callback, daemon)

    def schedule_at(
        self, time: int, callback: Callable[[], None], daemon: bool = False
    ) -> None:
        """Schedule ``callback`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        queue = self._daemon_queue if daemon else self._queue
        heapq.heappush(queue, (time, self._seq, callback))
        self._seq += 1

    # ------------------------------------------------------------------
    # Event fusion (fast path)
    # ------------------------------------------------------------------
    def try_fuse(self, time: int) -> bool:
        """Claim an inline continuation at cycle ``time``.

        Returns True — and advances the clock to ``time`` — when running
        the continuation immediately is provably identical to scheduling
        it and letting the run loop pop it next: ``time`` must be strictly
        earlier than every pending regular and daemon event, within the
        ``max_cycles`` guard, with no stop requested and no ``until``
        predicate installed.  Returns False (clock untouched) otherwise;
        the caller must then schedule normally.

        When fusion is disabled this is a single-branch early exit, so the
        unfused hot loop pays at most one extra branch per operation.
        """
        if not self._fusible:
            return False
        if self._stop_requested or time > self.max_cycles:
            return False
        queue = self._queue
        if queue and queue[0][0] <= time:
            return False
        daemon_queue = self._daemon_queue
        if daemon_queue and daemon_queue[0][0] <= time:
            return False
        self.now = time
        self.events_fused += 1
        return True

    @property
    def fusion_active(self) -> bool:
        """Whether the current ``run()`` is allowed to fuse continuations."""
        return self._fusible

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[Callable[[], bool]] = None) -> int:
        """Drain the event queue.

        Runs until no regular (non-daemon) events remain, ``until()``
        returns True (checked after each event), ``stop()`` is called, or
        ``max_cycles`` is exceeded.  Returns the final cycle count.
        """
        self._running = True
        self._stop_requested = False
        # An ``until`` predicate must observe every event boundary, so its
        # presence forces the slow path for the whole run.
        self._fusible = self.fusion_enabled and until is None
        queue = self._queue
        daemon_queue = self._daemon_queue
        heappop = heapq.heappop
        executed = 0
        try:
            while queue:
                time, _seq, callback = heappop(queue)
                if time > self.max_cycles:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={self.max_cycles}; "
                        "likely deadlock or runaway spin loop"
                    )
                if daemon_queue and daemon_queue[0][0] <= time:
                    # Return the popped event before draining daemons so the
                    # heap is complete while they run: a checkpoint daemon
                    # snapshots the queue, and a stopping daemon (deadlock
                    # watchdog) must leave the un-executed event in place.
                    # Re-arms always land strictly in the future, so the
                    # re-pop below cannot loop.
                    heapq.heappush(queue, (time, _seq, callback))
                    while daemon_queue and daemon_queue[0][0] <= time:
                        dtime, _dseq, dcallback = heappop(daemon_queue)
                        self.now = dtime
                        dcallback()
                        if self._stop_requested:
                            break
                    if self._stop_requested:
                        break
                    continue
                self.now = time
                executed += 1
                callback()
                if self._stop_requested or (until is not None and until()):
                    break
        finally:
            self._running = False
            self._fusible = False
            self.events_executed += executed
        return self.now

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    @property
    def pending_events(self) -> int:
        """Pending non-daemon events (the ones that drive the run loop)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Checkpoint support (repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Clock/counter state plus the raw regular-event heap entries.

        The (time, seq, callback) entries still hold live callables; the
        checkpoint layer converts them to serializable descriptors.  Daemon
        events are deliberately not exported: daemons are observers that
        re-arm themselves relative to the restored clock.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "max_cycles": self.max_cycles,
            "events_executed": self.events_executed,
            "events_fused": self.events_fused,
            "queue": list(self._queue),
        }

    def load_state(self, state: dict, events) -> None:
        """Install clock/counters and a rebuilt regular-event heap.

        ``events`` carries (time, seq, callback) tuples whose callbacks the
        checkpoint layer has rebound to this simulator's components.  The
        daemon queue is cleared; observers must re-arm afterwards (the
        clock is already at the restored cycle, so ``schedule_at`` with an
        absolute due time keeps their phase identical to an uninterrupted
        run).
        """
        self.now = state["now"]
        self._seq = state["seq"]
        self.max_cycles = state["max_cycles"]
        self.events_executed = state["events_executed"]
        self.events_fused = state["events_fused"]
        self._queue = list(events)
        heapq.heapify(self._queue)
        self._daemon_queue.clear()
        self._stop_requested = False

    def fusion_stats(self) -> dict:
        """Host-side event accounting: heap events vs fused continuations."""
        total = self.events_executed + self.events_fused
        return {
            "events_executed": self.events_executed,
            "events_fused": self.events_fused,
            "events_total": total,
            "fused_ratio": (self.events_fused / total) if total else 0.0,
        }
