"""Conservative (Chandy–Misra–Bryant) null-message kernel.

Generic over the work it schedules: a :class:`LogicalProcess` owns a
local event heap in ``(time, seq, callback)`` form — the same shape as
:class:`repro.engine.Simulator` events — plus timestamped input/output
:class:`Channel` links to other LPs.  Each channel has a fixed positive
*lookahead*: a message sent at local time t arrives no earlier than
``t + lookahead``, mirroring the mesh's minimum hop latency between two
shards (:mod:`repro.engine.pdes.plan`).

Safety rule (the conservative invariant): an LP may execute a local
event at time t only when every input channel guarantees no message
with timestamp < t can still arrive — i.e. ``t < min(channel clocks)``.
Progress comes from null messages: whenever an LP stalls, it advertises
on every output channel the earliest time it could possibly send
(``min(next local event, input bound) + lookahead``).  With all
lookaheads > 0 the minimum clock in the system strictly increases every
round, so the kernel never deadlocks and never reorders dependent
events — results are identical to a single global event heap by
construction.  That argument, spelled out, is DESIGN.md §12's proof
sketch; ``tests/test_pdes.py`` checks it mechanically by running the
same topologies through this kernel and a global-heap reference.

The kernel is deliberately in-process and deterministic (LPs stepped in
index order): it is the verified foundation and measurement instrument
for cross-shard scheduling, not a throughput device — see DESIGN.md §12
for why message-granular multiprocess sharding cannot pay for itself on
this engine, and :mod:`repro.engine.pdes.replicate` for the parallel
execution mode the harness actually ships.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

INFINITY = float("inf")


class PdesKernelError(RuntimeError):
    """A structural error in an LP topology (zero lookahead, causality)."""


class Channel:
    """A timestamped FIFO link from one LP to another.

    ``clock`` is the receiver's guarantee: no future (non-null) message
    will carry a timestamp below it.  Senders may only raise it —
    timestamps on one channel must be non-decreasing, which the mesh
    guarantees physically (a later send cannot arrive earlier) and this
    class enforces mechanically.
    """

    __slots__ = ("src", "dst", "lookahead", "clock", "queue")

    def __init__(self, src: "LogicalProcess", dst: "LogicalProcess",
                 lookahead: int):
        if lookahead <= 0:
            raise PdesKernelError(
                f"channel {src.name}->{dst.name}: lookahead must be "
                f"positive, got {lookahead} (zero lookahead makes "
                "conservative advance impossible)"
            )
        self.src = src
        self.dst = dst
        self.lookahead = lookahead
        self.clock: float = 0.0
        self.queue: deque = deque()  # (arrival time, payload)

    def send(self, arrival: float, payload) -> None:
        """Enqueue a real message arriving at ``arrival``."""
        if arrival < self.clock:
            raise PdesKernelError(
                f"causality violation on {self.src.name}->{self.dst.name}: "
                f"message at t={arrival} after clock advanced to {self.clock}"
            )
        self.clock = arrival
        self.queue.append((arrival, payload))

    def advance(self, bound: float) -> None:
        """Null message: promise no real message before ``bound``."""
        if bound > self.clock:
            self.clock = bound


class LogicalProcess:
    """One shard of the simulated world: a local event heap + channels."""

    def __init__(self, name: str):
        self.name = name
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable]] = []
        self._seq = 0
        self.inputs: List[Channel] = []
        self.outputs: Dict[str, Channel] = {}
        #: Events executed (for tests and the lookahead accounting).
        self.executed = 0

    # ------------------------------------------------------------------
    # Local scheduling (mirrors Simulator.schedule)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable) -> None:
        self.schedule_at(self.now + delay, fn)

    def schedule_at(self, when: float, fn: Callable) -> None:
        if when < self.now:
            raise PdesKernelError(
                f"{self.name}: cannot schedule at t={when} < now={self.now}"
            )
        heapq.heappush(self._heap, (when, self._seq, fn))
        self._seq += 1

    # ------------------------------------------------------------------
    # Cross-LP messaging
    # ------------------------------------------------------------------
    def connect(self, other: "LogicalProcess", lookahead: int) -> Channel:
        channel = Channel(self, other, lookahead)
        self.outputs[other.name] = channel
        other.inputs.append(channel)
        return channel

    def send(self, dst_name: str, payload, extra_delay: float = 0.0) -> None:
        """Send ``payload``; it arrives at ``now + lookahead + extra``."""
        if extra_delay < 0:
            raise PdesKernelError(f"{self.name}: negative extra_delay")
        channel = self.outputs[dst_name]
        channel.send(self.now + channel.lookahead + extra_delay, payload)

    def on_message(self, when: float, payload) -> None:
        """Convert an arrived message into local work.  Subclasses (or
        instances with a ``handler`` attribute) decide what it means."""
        handler = getattr(self, "handler", None)
        if handler is None:
            raise PdesKernelError(f"{self.name}: no message handler")
        self.schedule_at(when, lambda: handler(self, payload))

    # ------------------------------------------------------------------
    # Conservative bounds
    # ------------------------------------------------------------------
    def input_bound(self) -> float:
        """Earliest time a not-yet-seen message could still arrive."""
        if not self.inputs:
            return INFINITY
        return min(channel.clock for channel in self.inputs)

    def next_local_time(self) -> float:
        return self._heap[0][0] if self._heap else INFINITY

    def earliest_send(self) -> float:
        """Lower bound on this LP's next activation (event or message)."""
        return min(self.next_local_time(), self.input_bound())


class ConservativeKernel:
    """Drives a set of LPs to completion under the conservative rule.

    Deterministic: LPs are stepped in registration order, and each LP's
    local heap preserves the ``(time, seq)`` order of a serial run.
    ``run`` returns when every heap and channel is empty (or ``until``
    is reached); a round that makes no progress raises — with positive
    lookaheads everywhere that is unreachable, so hitting it means a
    topology bug, not an input property.
    """

    def __init__(self):
        self.lps: List[LogicalProcess] = []
        self.null_messages = 0
        self.rounds = 0

    def add(self, lp: LogicalProcess) -> LogicalProcess:
        self.lps.append(lp)
        return lp

    # ------------------------------------------------------------------
    def _drain_inputs(self, lp: LogicalProcess) -> None:
        for channel in lp.inputs:
            while channel.queue:
                when, payload = channel.queue.popleft()
                lp.on_message(when, payload)

    def _step(self, lp: LogicalProcess) -> int:
        """Execute every safe local event; returns how many ran."""
        bound = lp.input_bound()
        ran = 0
        while lp._heap and lp._heap[0][0] < bound:
            when, _seq, fn = heapq.heappop(lp._heap)
            lp.now = when
            fn()
            ran += 1
            lp.executed += 1
            # fn may have sent messages that raised a *different* LP's
            # bound, never this one's inputs mid-step: a message to self
            # is a local schedule, so the bound stays valid.
        return ran

    def _advertise(self, lp: LogicalProcess) -> None:
        horizon = lp.earliest_send()
        for channel in lp.outputs.values():
            bound = horizon + channel.lookahead if horizon < INFINITY else INFINITY
            if bound > channel.clock:
                channel.advance(bound)
                self.null_messages += 1

    def idle(self) -> bool:
        return all(
            not lp._heap and not any(ch.queue for ch in lp.inputs)
            for lp in self.lps
        )

    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence (or ``until``); returns the max LP clock."""
        while not self.idle():
            self.rounds += 1
            progressed = 0
            for lp in self.lps:
                self._drain_inputs(lp)
                if until is not None and lp.next_local_time() > until:
                    continue
                progressed += self._step(lp)
            for lp in self.lps:
                self._advertise(lp)
            if progressed == 0:
                if until is not None and all(
                    lp.next_local_time() > until for lp in self.lps
                ):
                    break
                if self.idle():
                    break
                # advertise() strictly raises min clock when lookaheads
                # are positive; re-check before declaring deadlock.
                safe = any(
                    lp._heap and lp._heap[0][0] < lp.input_bound()
                    for lp in self.lps
                )
                if not safe and not self._clocks_can_rise():
                    raise PdesKernelError(
                        "conservative kernel wedged: no LP can advance "
                        "(is some lookahead effectively zero?)"
                    )
        return max((lp.now for lp in self.lps), default=0.0)

    def _clocks_can_rise(self) -> bool:
        """True if another advertise round would raise some input bound."""
        for lp in self.lps:
            horizon = lp.earliest_send()
            for channel in lp.outputs.values():
                bound = (
                    horizon + channel.lookahead if horizon < INFINITY else INFINITY
                )
                if bound > channel.clock:
                    return True
        return False
