"""Deterministic parallel simulation (conservative PDES).

Three layers, bottom up:

* :mod:`repro.engine.pdes.plan` — the spatial shard planner: partitions
  the mesh's cores and L2 banks into shards and derives the conservative
  cross-shard lookahead matrix from minimum hop distances
  (:class:`ShardPlan`).
* :mod:`repro.engine.pdes.kernel` — a generic conservative (CMB)
  null-message kernel: logical processes, monotone timestamped channels,
  lookahead-bounded safe advance.  Unit-tested against a global event
  heap on synthetic topologies; the determinism argument for the whole
  subsystem lives here (DESIGN.md §12).
* :mod:`repro.engine.pdes.replicate` — the ``--shards N`` execution
  mode used by the harness: engine-diversified full replicas in worker
  processes, cross-validated for byte-identity (memory digest, stats,
  task counts, Perfetto trace) before a result is accepted.

See DESIGN.md §12 for why the replica scheme — not spatial state
sharding — is the shape that is both exact and faster on this codebase:
the analytic memory model gives cross-shard memory traffic *zero*
lookahead, so a faithful spatial split of one machine degenerates to
per-event lockstep over IPC.
"""

from repro.engine.pdes.kernel import (
    Channel,
    ConservativeKernel,
    LogicalProcess,
    PdesKernelError,
)
from repro.engine.pdes.plan import ShardPlan, plan_shards
from repro.engine.pdes.replicate import (
    PdesDivergenceError,
    PdesError,
    ShardUnsupportedError,
    run_sharded,
)

__all__ = [
    "Channel",
    "ConservativeKernel",
    "LogicalProcess",
    "PdesKernelError",
    "PdesDivergenceError",
    "PdesError",
    "ShardPlan",
    "ShardUnsupportedError",
    "plan_shards",
    "run_sharded",
]
