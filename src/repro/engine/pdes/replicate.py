"""The ``--shards N`` execution mode: validated engine-diversified replicas.

DESIGN.md §12 derives why a faithful *spatial* split of one machine
across processes cannot be exact **and** fast here: the analytic memory
model applies cross-tile effects synchronously at issue time, so the
cross-shard lookahead for memory traffic is zero and conservative
advance degenerates to per-event lockstep over IPC (three to four
orders of magnitude slower than the serial engine's 0.37 µs/op).  What
*does* parallelize — perfectly — is the repo's existing differential
validation discipline: every trusted exact run is really K runs under
diversified engines (fused vs unfused event handling,
``repro.harness.perf.run_entry``) whose observables must agree.

``run_sharded`` runs those K legs concurrently instead of serially:
``N`` worker processes each simulate the *whole* machine under a
different engine variant, and the coordinator accepts a result only
when every replica's memory digest, ``StatGroup.flatten``, task/steal
counts, and Perfetto trace bytes are identical.  Results are therefore
byte-identical to ``--shards 1`` *by checked construction* — a
divergence raises :class:`PdesDivergenceError` instead of returning —
and the wall-clock win is real on multi-core hosts: a validated run
costs ``max`` instead of ``sum`` of its legs.

The spatial planner (:mod:`repro.engine.pdes.plan`) still runs first:
it validates the shard geometry and prices the cross-shard lookahead,
which the coordinator reports (``pdes_min_lookahead``) and the stall
accounting uses as its label — coordinator time spent blocked on
replica barriers is attributed to the ``pdes.lookahead`` profiler
component.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, List, Optional

from repro.engine.pdes.plan import plan_shards


class PdesError(RuntimeError):
    """Base class for sharded-execution failures."""


class ShardUnsupportedError(PdesError):
    """A feature combination that cannot run sharded (refused loudly)."""


class PdesDivergenceError(PdesError):
    """Replicas disagreed on an observable — the run is NOT trustworthy."""


#: Profiler label for coordinator time spent blocked waiting on replicas.
LOOKAHEAD_LABEL = "pdes.lookahead"

#: Monotone token source for heartbeat grouping (`repro top` merges all
#: shards of one group into a single frame).
_GROUP_SEQ = 0


def _engine_variant(shard: int) -> bool:
    """Fusion setting for one replica: alternate so at least two engine
    variants are always represented (the differential premise)."""
    return shard % 2 == 0


def _replica_observables(
    run_kwargs: dict,
    shard: int,
    n_shards: int,
    group: str,
    want_trace: bool,
    sample_interval: Optional[int] = None,
) -> dict:
    """Run one full replica in this process; return its observables.

    Mirrors the exact-mode path of ``runner._simulate_experiment`` (and
    ``perf._run_once``): fresh machine, optional tracer, optional
    watchdog, ``app.check()``.  The result dict is what the coordinator
    cross-validates and (for shard 0) returns to the caller.
    """
    from repro.apps import make_app
    from repro.config import make_config
    from repro.core import WorkStealingRuntime
    from repro.harness.export import result_to_dict
    from repro.harness.params import app_params
    from repro.harness.runner import assemble_result
    from repro.machine import Machine
    from repro.obs.heartbeat import heartbeat_dir

    app_name = run_kwargs["app_name"]
    kind = run_kwargs["kind"]
    scale = run_kwargs["scale"]
    serial = bool(run_kwargs.get("serial", False))
    tracer = None
    if want_trace:
        from repro.trace import Tracer

        tracer = Tracer()
    params = app_params(app_name, scale, **(run_kwargs.get("app_overrides") or {}))
    app = make_app(app_name, **params)
    machine = Machine(
        make_config(kind, scale, **(run_kwargs.get("config_overrides") or {})),
        tracer=tracer,
    )
    app.setup(machine)
    machine.sim.fusion_enabled = _engine_variant(shard)
    rt_kwargs = dict(run_kwargs.get("runtime_kwargs") or {})
    if serial:
        rt_kwargs["serial_elision"] = True
    if run_kwargs.get("watchdog") is not None:
        rt_kwargs["watchdog"] = run_kwargs["watchdog"]
    runtime = WorkStealingRuntime(machine, **rt_kwargs)

    sampler = None
    if tracer is not None and sample_interval is not None:
        from repro.obs.metrics import machine_metrics
        from repro.trace.sampler import IntervalSampler

        # engine=False, exactly like runner._simulate_experiment: fusion
        # gauges differ between the diversified engines, and the sampled
        # counter tracks must stay byte-identical across replicas.
        sampler = IntervalSampler(
            machine.sim, machine_metrics(machine, engine=False).collect,
            sample_interval, tracer=tracer,
        )
        sampler.start()

    heartbeat = None
    hb_dir = heartbeat_dir()
    if hb_dir:
        from repro.obs.heartbeat import HeartbeatWriter

        heartbeat = HeartbeatWriter.for_run(
            machine, runtime, hb_dir,
            meta={
                "app": app_name,
                "kind": kind,
                "scale": scale,
                "serial": serial,
                "shard": shard,
                "shards": n_shards,
                "pdes_group": group,
            },
        )
        heartbeat.start()
    try:
        cycles = runtime.run(app.make_root(serial=False))
    except BaseException:
        if heartbeat is not None:
            heartbeat.finalize("failed", error="replica failed")
        raise
    trace_text = None
    if tracer is not None:
        if sampler is not None:
            sampler.finalize()
        tracer.core_labels.update(machine.core_labels())
        # Identical meta to a --shards 1 traced run: the exported bytes
        # must match the serial engine's byte for byte.
        tracer.set_meta(
            app=app_name, kind=kind, scale=scale, serial=serial,
            seed=machine.config.seed, n_cores=machine.config.n_cores,
            cycles=cycles, sample_interval=sample_interval,
        )
        tracer.finish(machine.sim.now)
        from repro.trace import export_chrome_trace

        trace_text = export_chrome_trace(tracer)
    if run_kwargs.get("check", True):
        app.check()
    result = assemble_result(
        app_name, kind, scale, serial, machine, runtime, cycles
    )
    if heartbeat is not None:
        heartbeat.finalize("done")
    observables = {
        "shard": shard,
        "fusion": _engine_variant(shard),
        "result": result_to_dict(result),
        "digest": machine.memory_digest(machine.address_space.regions()),
        "flatten": machine.stats.flatten(),
        "trace_sha": (
            hashlib.sha256(trace_text.encode()).hexdigest()
            if trace_text is not None
            else None
        ),
        # Only shard 0 ships the (potentially large) trace body; the
        # other replicas are compared by digest.
        "trace": trace_text if shard == 0 else None,
    }
    return observables


def _shard_worker(conn, run_kwargs: dict, shard: int, n_shards: int,
                  group: str, want_trace: bool,
                  sample_interval: Optional[int] = None) -> None:
    """Worker process entry: run one replica, report observables."""
    try:
        payload = _replica_observables(
            run_kwargs, shard, n_shards, group, want_trace, sample_interval
        )
        conn.send(("ok", payload))
    except BaseException as exc:  # report, never hang the coordinator
        import traceback

        try:
            conn.send(("err", f"{exc!r}\n{traceback.format_exc()}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _check_supported(run_kwargs: dict) -> None:
    """Refuse loudly (like sampled-park does) what replicas cannot honor."""
    if run_kwargs.get("sampling") is not None:
        raise ShardUnsupportedError(
            "sampled runs cannot be sharded: extrapolated estimates have "
            "no byte-identity oracle to validate replicas against"
        )
    ckpt = run_kwargs.get("checkpoint")
    if ckpt is not None:
        fields = (
            ckpt if isinstance(ckpt, dict)
            else {k: getattr(ckpt, k, None)
                  for k in ("path", "interval", "resume", "park_path")}
        )
        if isinstance(ckpt, str) or any(
            fields.get(k) for k in ("path", "interval", "resume", "park_path")
        ):
            raise ShardUnsupportedError(
                "checkpointed runs cannot be sharded: a snapshot captures "
                "one engine's send log, which cannot restore N diversified "
                "replicas consistently — run with --shards 1 to checkpoint"
            )
    if run_kwargs.get("faults") is not None:
        raise ShardUnsupportedError(
            "faulted runs cannot be sharded: fault sites fire per engine "
            "schedule, so replicas would diverge by construction"
        )
    if run_kwargs.get("sanitize"):
        raise ShardUnsupportedError(
            "sanitized runs cannot be sharded yet: sanitizer walk counts "
            "land in result extras and differ per engine variant"
        )


def run_sharded(
    run_kwargs: dict,
    n_shards: int,
    trace_path: Optional[str] = None,
    profiler=None,
    sample_interval: Optional[int] = None,
):
    """Run one experiment as ``n_shards`` validated parallel replicas.

    ``run_kwargs`` is the ``run_experiment`` keyword dict (app_name,
    kind, scale, serial, check, app_overrides, runtime_kwargs,
    config_overrides, watchdog; checkpoint/sampling/faults/sanitize are
    refused).  Returns the validated :class:`ExperimentResult`, with
    provenance in ``extras`` (``pdes_*`` keys — diagnostics only, never
    part of result identity).  ``trace_path`` additionally writes shard
    0's Perfetto trace (validated byte-identical across replicas) to
    that file.  ``profiler`` (a :class:`repro.obs.profile.WallProfiler`)
    receives the coordinator's blocked time under the
    ``pdes.lookahead`` label.  ``sample_interval`` arms each traced
    replica's interval statistics sampler (counter tracks), matching
    what ``repro run --trace`` records for a serial run — so the traced
    bytes compare equal to the serial CLI path, not just to each other.
    """
    global _GROUP_SEQ
    from repro.config import make_config
    from repro.harness.export import result_from_dict
    from repro.harness.grid import _mp_context

    if n_shards < 2:
        raise PdesError(f"run_sharded needs >= 2 shards, got {n_shards}")
    _check_supported(run_kwargs)
    config = make_config(
        run_kwargs["kind"], run_kwargs["scale"],
        **(run_kwargs.get("config_overrides") or {}),
    )
    # The spatial plan validates the geometry (shards vs mesh columns)
    # and prices the conservative cross-shard bound for the report.
    plan = plan_shards(config, n_shards)
    _GROUP_SEQ += 1
    group = f"{os.getpid()}-{_GROUP_SEQ}"
    want_trace = trace_path is not None or _validate_traces()

    ctx = _mp_context()
    workers = []
    for shard in range(n_shards):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_worker,
            args=(child_conn, run_kwargs, shard, n_shards, group, want_trace,
                  sample_interval),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        workers.append((proc, parent_conn))

    payloads: List[Optional[dict]] = [None] * n_shards
    stalled_s = 0.0
    try:
        for shard, (proc, conn) in enumerate(workers):
            # Waiting for replica barriers is the sharded run's analog of
            # conservative lookahead stall; attribute it as such.
            blocked_at = time.perf_counter()
            if profiler is not None:
                profiler.enter(LOOKAHEAD_LABEL)
            try:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    raise PdesError(
                        f"shard {shard} died without reporting a result"
                    )
            finally:
                if profiler is not None:
                    profiler.exit()
                stalled_s += time.perf_counter() - blocked_at
            status, payload = message
            if status != "ok":
                raise PdesError(f"shard {shard} failed:\n{payload}")
            payloads[shard] = payload
    finally:
        for proc, conn in workers:
            try:
                conn.close()
            except Exception:
                pass
            if proc.is_alive():
                proc.terminate()
            proc.join()

    _validate(payloads, want_trace)
    reference = payloads[0]
    if trace_path is not None:
        with open(trace_path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(reference["trace"])
    result = result_from_dict(reference["result"])
    result.extras["pdes_shards"] = float(n_shards)
    result.extras["pdes_validated"] = 1.0
    result.extras["pdes_min_lookahead"] = float(plan.min_cross_shard_latency)
    result.extras["pdes_lookahead_wall_s"] = stalled_s
    return result


def _validate_traces() -> bool:
    """Trace cross-validation default (REPRO_PDES_TRACE_CHECK=0 disables;
    the perf bench turns it off to price the replicas alone)."""
    return os.environ.get("REPRO_PDES_TRACE_CHECK", "1") != "0"


#: ExperimentResult fields excluded from replica comparison: provenance,
#: not simulation output (ckpt_*/pdes_* markers land here).
_IGNORED_FIELDS = ("extras",)


def _validate(payloads: List[dict], want_trace: bool) -> None:
    """Raise :class:`PdesDivergenceError` unless all replicas agree."""
    reference = payloads[0]
    mismatches: List[str] = []
    for payload in payloads[1:]:
        shard = payload["shard"]
        if payload["digest"] != reference["digest"]:
            mismatches.append(f"shard {shard}: memory digest differs")
        if payload["flatten"] != reference["flatten"]:
            keys = _differing_keys(reference["flatten"], payload["flatten"])
            mismatches.append(
                f"shard {shard}: StatGroup.flatten differs ({keys})"
            )
        ref_result = {
            k: v for k, v in reference["result"].items()
            if k not in _IGNORED_FIELDS
        }
        got_result = {
            k: v for k, v in payload["result"].items()
            if k not in _IGNORED_FIELDS
        }
        if got_result != ref_result:
            keys = _differing_keys(ref_result, got_result)
            mismatches.append(f"shard {shard}: result fields differ ({keys})")
        if want_trace and payload["trace_sha"] != reference["trace_sha"]:
            mismatches.append(f"shard {shard}: Perfetto trace differs")
    if mismatches:
        raise PdesDivergenceError(
            "replica cross-validation failed — refusing to return a "
            "result:\n  " + "\n  ".join(mismatches)
        )


def _differing_keys(a: Dict, b: Dict, limit: int = 5) -> str:
    keys = sorted(
        k for k in set(a) | set(b) if a.get(k) != b.get(k)
    )[:limit]
    return ", ".join(str(k) for k in keys) or "<shape>"
