"""Spatial shard planner: mesh partition + conservative lookahead matrix.

A shard owns a contiguous block of mesh *columns*: every core whose tile
falls in those columns (plus its private L1) and every L2 bank whose
home column falls in them (banks live one virtual row below the core
mesh, :meth:`repro.noc.Mesh.bank_position`).  Column blocks keep each
shard's resources geometrically adjacent, so the minimum distance
between two shards — which bounds how far one may run ahead of the
other — is the horizontal hop gap between their column ranges.

The lookahead entry for an ordered shard pair (A, B) is the latency of
the cheapest possible message from any resource of A to any resource of
B: minimum XY hops times per-hop (router + channel) latency, for a
single-flit message.  This is exactly the conservative bound classic
null-message PDES needs (DESIGN.md §12): no event executed in A at
local time t can affect B before t + lookahead(A, B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.noc.mesh import Mesh, MeshConfig, Position


@dataclass(frozen=True)
class ShardPlan:
    """The spatial decomposition of one machine into ``n_shards`` shards."""

    n_shards: int
    mesh_rows: int
    mesh_cols: int
    #: Per shard: the contiguous (start, stop) column range it owns.
    columns: Tuple[Tuple[int, int], ...]
    #: Per shard: core ids (ascending) whose tiles fall in its columns.
    cores: Tuple[Tuple[int, ...], ...]
    #: Per shard: L2 bank ids (ascending) homed in its columns.
    banks: Tuple[Tuple[int, ...], ...]
    #: Conservative lookahead in cycles for each ordered shard pair
    #: (i, j), i != j: no event in shard i can affect shard j sooner.
    lookahead: Dict[Tuple[int, int], int]
    #: min over all ordered pairs — the global conservative advance bound.
    min_cross_shard_latency: int

    def shard_of_core(self, core_id: int) -> int:
        for shard, members in enumerate(self.cores):
            if core_id in members:
                return shard
        raise ValueError(f"core {core_id} not in any shard")

    def shard_of_bank(self, bank_id: int) -> int:
        for shard, members in enumerate(self.banks):
            if bank_id in members:
                return shard
        raise ValueError(f"bank {bank_id} not in any shard")


def _column_blocks(cols: int, n_shards: int) -> List[Tuple[int, int]]:
    """Split ``cols`` columns into ``n_shards`` contiguous balanced blocks."""
    base, extra = divmod(cols, n_shards)
    blocks = []
    start = 0
    for shard in range(n_shards):
        width = base + (1 if shard < extra else 0)
        blocks.append((start, start + width))
        start += width
    return blocks


def plan_shards(config, n_shards: int) -> ShardPlan:
    """Partition the machine described by ``config`` into ``n_shards``.

    ``config`` is a :class:`repro.config.SystemConfig` (anything with
    ``mesh_rows``, ``mesh_cols``, ``n_cores``, ``n_l2_banks``).  Raises
    ``ValueError`` when the geometry cannot support the split: more
    shards than mesh columns would leave a shard without resources, and
    a single column cannot be cut.
    """
    rows, cols = config.mesh_rows, config.mesh_cols
    if n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    if n_shards > cols:
        raise ValueError(
            f"{n_shards} shards over a {rows}x{cols} mesh: at most one "
            "shard per column"
        )
    mesh = Mesh(MeshConfig(rows=rows, cols=cols))
    blocks = _column_blocks(cols, n_shards)

    def owner(col: int) -> int:
        for shard, (start, stop) in enumerate(blocks):
            if start <= col < stop:
                return shard
        raise AssertionError(f"column {col} unowned")

    cores: List[List[int]] = [[] for _ in range(n_shards)]
    positions: List[List[Position]] = [[] for _ in range(n_shards)]
    for core_id in range(config.n_cores):
        pos = mesh.core_position(core_id)
        shard = owner(pos[1])
        cores[shard].append(core_id)
        positions[shard].append(pos)
    banks: List[List[int]] = [[] for _ in range(n_shards)]
    for bank_id in range(config.n_l2_banks):
        pos = mesh.bank_position(bank_id, config.n_l2_banks)
        shard = owner(pos[1])
        banks[shard].append(bank_id)
        positions[shard].append(pos)

    per_hop = mesh.config.router_latency + mesh.config.channel_latency
    lookahead: Dict[Tuple[int, int], int] = {}
    for i in range(n_shards):
        for j in range(n_shards):
            if i == j:
                continue
            min_hops = min(
                mesh.hops(a, b)
                for a in positions[i]
                for b in positions[j]
            )
            # A single-flit message pays no serialization tail, so the
            # cheapest cross-shard interaction is pure hop latency.
            lookahead[(i, j)] = min_hops * per_hop
    min_latency = min(lookahead.values()) if lookahead else 0
    if n_shards > 1 and min_latency <= 0:
        # Cannot happen with disjoint column blocks (>= 1 hop apart), but
        # the kernel's progress guarantee depends on it — assert loudly.
        raise ValueError(
            "shard plan has zero cross-shard lookahead; conservative "
            "advance would deadlock"
        )
    return ShardPlan(
        n_shards=n_shards,
        mesh_rows=rows,
        mesh_cols=cols,
        columns=tuple(blocks),
        cores=tuple(tuple(c) for c in cores),
        banks=tuple(tuple(b) for b in banks),
        lookahead=lookahead,
        min_cross_shard_latency=min_latency,
    )
