"""Deterministic simulation checkpoint/restore (gem5-style).

A *run snapshot* captures the complete deterministic state of a simulation
at an event boundary — clock and event heap, per-core coroutine stacks,
runtime bookkeeping, every cache/directory/DRAM/NoC/traffic structure,
statistics, RNG streams, tracer events, and backing memory — so the run can
be killed and later finished in a fresh process with byte-identical
results.  An *init snapshot* captures only the host-visible post-``setup``
state (backing memory, address space, the app object) so the N
configuration variants of a sweep can warm-start from one shared serial
init phase instead of re-running it N times.

The hard problem is the coroutine stacks: thread programs are Python
generators, which cannot be pickled.  Instead of serializing frames the
machine keeps a *send log* (``Machine.enable_checkpointing``): every value
sent into a thread generator funnels through a single call site in
``Core._resume``, which appends ``(core_id, value)`` to a machine-wide
list; pushing a ULI handler frame appends a ``("h", core_id, thief)``
marker.  A snapshot stores this log, and restore *replays* it — it rebuilds
the app, machine, and runtime from the original arguments, starts fresh
thread generators, then walks the log sending each value into the top
frame of its core (popping on ``StopIteration``, pushing handler frames on
markers).  Host-side state mutated between yields (task registration,
address-space allocation, per-thread RNG draws, progress counters)
re-executes identically because it is a pure function of the sent values.
Everything else — simulated time, caches, stats, memory, heap events — is
then overwritten concretely from the snapshot, which also clobbers any
double-counting the replay performed.  Replay never dispatches op handlers
and never advances the clock; tracing is suppressed for its duration.

Determinism argument, in brief: (1) all generator sends go through the
logged call site, so the log is a complete replay script for the coroutine
stacks; (2) op handlers (``Core._op_*``) only touch state that is restored
concretely; (3) the event heap contains only four callback shapes (core
wake, op completion, ULI request, ULI response — the latter two are
``functools.partial`` objects precisely so they are recognizable), each
reducible to a plain descriptor; (4) daemon events are observers that
cannot perturb the simulation, so they are re-armed at their next absolute
multiple rather than captured.  ``tests/test_checkpoint.py`` verifies
byte-identical memory digests, statistics, and Perfetto traces across
protocols, with fusion on and off, with steals in flight.

Snapshots are gzip-compressed pickles of plain dicts/lists/tuples with a
magic string and a format version; ``load_snapshot`` refuses anything it
does not recognize.
"""

from __future__ import annotations

import copy
import gzip
import io
import os
import pickle
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Dict, List, Optional

MAGIC = "repro-checkpoint"

#: Bump whenever the snapshot layout changes incompatibly.
FORMAT_VERSION = 1

#: Marker encoding of the ``Core._NO_RESULT`` sentinel on resume stacks
#: (the sentinel itself is an anonymous object and cannot be pickled).
_NO_RESULT_MARK = "__repro_no_result__"


class CheckpointError(RuntimeError):
    """A snapshot could not be taken, loaded, or restored."""


class ParkedRun(RuntimeError):
    """A run was parked (preempted): its state was snapshotted and the
    event loop abandoned.

    Raised by :class:`ParkDaemon` *after* the snapshot has been written,
    so the snapshot is always a complete, safe-point capture; resuming it
    (``CheckpointConfig.resume``) finishes the run byte-identically to an
    uninterrupted one.  Carries the park cycle and the snapshot path so
    supervisors can journal where the run stopped.
    """

    def __init__(self, cycle: int, path: Optional[str]):
        super().__init__(f"run parked at cycle {cycle}")
        self.cycle = cycle
        self.path = path


# ----------------------------------------------------------------------
# Harness-facing configuration
# ----------------------------------------------------------------------
@dataclass
class CheckpointConfig:
    """How a harness run uses checkpointing.

    ``path``/``interval`` drive periodic run snapshots; ``resume`` makes
    ``run_experiment`` restore from ``path`` when it exists; ``init_dir``
    enables warm-start init snapshots shared across configurations.
    ``park_path`` makes the run *preemptible*: a :class:`ParkDaemon` polls
    for that file every ``park_poll`` cycles and, when it appears,
    snapshots the run to ``path`` and raises :class:`ParkedRun` — a
    supervisor parks a worker by touching the file and resumes it later
    with ``resume=True``.  None of these fields participate in memo or
    store keys: checkpointing never perturbs a simulation's outcome.
    """

    path: Optional[str] = None
    interval: Optional[int] = None
    resume: bool = False
    init_dir: Optional[str] = None
    save_init: bool = True
    keep: bool = False
    park_path: Optional[str] = None
    park_poll: int = 2_000

    @classmethod
    def coerce(cls, value) -> Optional["CheckpointConfig"]:
        """None | CheckpointConfig | snapshot path | kwargs dict."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(path=value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(f"cannot interpret checkpoint spec {value!r}")


# ----------------------------------------------------------------------
# Snapshot file I/O
# ----------------------------------------------------------------------
def save_snapshot(path: str, snap: dict) -> str:
    """Atomically write ``snap`` as a gzipped pickle; returns ``path``."""
    data = gzip.compress(pickle.dumps(snap, protocol=4), compresslevel=1)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
    return path


def load_snapshot(path: str) -> dict:
    """Read and validate a snapshot written by :func:`save_snapshot`."""
    try:
        with gzip.open(path, "rb") as fh:
            snap = pickle.load(fh)
    except (OSError, EOFError, pickle.UnpicklingError) as exc:
        raise CheckpointError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(snap, dict) or snap.get("magic") != MAGIC:
        raise CheckpointError(f"{path} is not a repro checkpoint")
    version = snap.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path} has snapshot format version {version}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    return snap


# ----------------------------------------------------------------------
# Event-heap descriptors
#
# Exactly four callback shapes ever reach the regular event heap (see
# Core.start/_resume/_send_uli/_respond); anything else is a bug worth
# failing loudly on.
# ----------------------------------------------------------------------
def _describe_event(entry) -> tuple:
    time, seq, callback = entry
    bound_self = getattr(callback, "__self__", None)
    if bound_self is not None:
        name = getattr(callback, "__name__", "")
        if name == "_on_complete":
            return (time, seq, "complete", bound_self.core_id)
        if name == "_resume_none":
            return (time, seq, "wake", bound_self.core_id)
    if isinstance(callback, partial):
        fn = callback.func
        target = getattr(fn, "__self__", None)
        name = getattr(fn, "__name__", "")
        if target is not None and name == "deliver_uli_request":
            return (time, seq, "uli_req", target.core_id, callback.args[0])
        if target is not None and name == "deliver_uli_response":
            return (time, seq, "uli_resp", target.core_id, callback.args[0])
    raise CheckpointError(
        f"cannot serialize in-flight event {callback!r} at cycle {time}"
    )


def _rebuild_event(entry, cores) -> tuple:
    time, seq, kind = entry[0], entry[1], entry[2]
    core = cores[entry[3]]
    if kind == "complete":
        callback = core._complete_cont
    elif kind == "wake":
        callback = core._resume_none_cont
    elif kind == "uli_req":
        callback = partial(core.deliver_uli_request, entry[4])
    elif kind == "uli_resp":
        callback = partial(core.deliver_uli_response, entry[4])
    else:
        raise CheckpointError(f"unknown event descriptor kind {kind!r}")
    return (time, seq, callback)


# ----------------------------------------------------------------------
# Per-subsystem capture/restore helpers
# ----------------------------------------------------------------------
def _capture_stats(group) -> dict:
    return {
        "counters": dict(group._counters),
        "children": {
            name: _capture_stats(child) for name, child in group._children.items()
        },
    }


def _restore_stats(group, snap: dict) -> None:
    # In place: Core/L1 hot paths hold direct references to the raw
    # counter dicts, so the dict objects must survive the restore.
    counters = group._counters
    counters.clear()
    counters.update(snap["counters"])
    children = snap["children"]
    for name, child_snap in children.items():
        _restore_stats(group.child(name), child_snap)
    for name, child in group._children.items():
        if name not in children:
            _restore_stats(child, {"counters": {}, "children": {}})


def _capture_core(core) -> dict:
    from repro.cores.core import _NO_RESULT

    return {
        "halted": core.halted,
        "uli_enabled": core.uli_enabled,
        "in_handler": core._in_handler,
        "pending_uli": core._pending_uli,
        "uli_waiting": core._uli_waiting,
        "deferred_uli_resp": core._deferred_uli_resp,
        "uli_send_time": core._uli_send_time,
        "handler_entry_time": core._handler_entry_time,
        "wait_handler_cycles": core._wait_handler_cycles,
        "pending_result": core._pending_result,
        "resume_stack": [
            _NO_RESULT_MARK if value is _NO_RESULT else value
            for value in core._resume_stack
        ],
        "frame_depth": len(core._frames),
    }


def _restore_core(core, snap: dict) -> None:
    from repro.cores.core import _NO_RESULT

    core.halted = snap["halted"]
    core.uli_enabled = snap["uli_enabled"]
    core._in_handler = snap["in_handler"]
    core._pending_uli = snap["pending_uli"]
    core._uli_waiting = snap["uli_waiting"]
    core._deferred_uli_resp = snap["deferred_uli_resp"]
    core._uli_send_time = snap["uli_send_time"]
    core._handler_entry_time = snap["handler_entry_time"]
    core._wait_handler_cycles = snap["wait_handler_cycles"]
    core._pending_result = snap["pending_result"]
    core._resume_stack = [
        _NO_RESULT if value == _NO_RESULT_MARK else value
        for value in snap["resume_stack"]
    ]


def _capture_rngs(machine, runtime) -> dict:
    state: Dict[str, Any] = {
        "machine": machine.rng._state,
        "contexts": [ctx.rng._state for ctx in runtime.contexts],
        "steal_failures": [
            getattr(ctx, "_steal_failures", 0) for ctx in runtime.contexts
        ],
        # Start cycle of each thread's current steal attempt: consumed by
        # the tracer when an in-flight steal completes after the restore
        # (the replayed frame re-read sim.now before the clock came back).
        "steal_starts": [
            getattr(ctx, "_steal_start", 0) for ctx in runtime.contexts
        ],
    }
    injector = machine.fault_injector
    if injector is not None:
        state["fault"] = {
            "noc": injector._noc_rng._state,
            "uli": injector._uli_rng._state,
            "steal": injector._steal_rng._state,
            "l1": [rng._state for rng in injector._l1_rngs],
        }
    return state


def _restore_rngs(machine, runtime, state: dict) -> None:
    machine.rng._state = state["machine"]
    for ctx, rng_state in zip(runtime.contexts, state["contexts"]):
        ctx.rng._state = rng_state
    for ctx, failures in zip(runtime.contexts, state["steal_failures"]):
        ctx._steal_failures = failures
    for ctx, start in zip(runtime.contexts, state["steal_starts"]):
        ctx._steal_start = start
    injector = machine.fault_injector
    fault_state = state.get("fault")
    if injector is not None and fault_state is not None:
        injector._noc_rng._state = fault_state["noc"]
        injector._uli_rng._state = fault_state["uli"]
        injector._steal_rng._state = fault_state["steal"]
        for rng, rng_state in zip(injector._l1_rngs, fault_state["l1"]):
            rng._state = rng_state


def _capture_sanitizer(sanitizer) -> Optional[dict]:
    if sanitizer is None:
        return None
    return {
        "violations": copy.deepcopy(sanitizer.violations),
        "unpublished": dict(sanitizer._unpublished),
        "by_core": {cid: set(words) for cid, words in sanitizer._by_core.items()},
        "interval": sanitizer.interval,
    }


def _restore_sanitizer(machine, state: Optional[dict]) -> None:
    sanitizer = machine.sanitizer
    if sanitizer is None:
        if state is not None:
            raise CheckpointError(
                "snapshot was taken with the sanitizer installed; "
                "rebuild the machine with sanitize=True before restoring"
            )
        return
    if state is None:
        raise CheckpointError(
            "snapshot was taken without the sanitizer; "
            "rebuild the machine with sanitize=False before restoring"
        )
    sanitizer.violations = copy.deepcopy(state["violations"])
    sanitizer._unpublished = dict(state["unpublished"])
    sanitizer._by_core = {cid: set(words) for cid, words in state["by_core"].items()}
    # Re-arm the periodic SWMR walk at its next absolute multiple so walk
    # cycles (and the "walks" counter) match the uninterrupted run.
    _rearm_at_next_multiple(machine.sim, sanitizer.interval, sanitizer._walk_tick)


def _capture_tracer(tracer) -> Optional[dict]:
    if not tracer.enabled:
        return None
    return copy.deepcopy(dict(tracer.__dict__))


def _restore_tracer(tracer, state: Optional[dict]) -> None:
    if state is None:
        return
    # Wholesale: every Tracer field is plain data living in __dict__.
    # Clearing also drops the instance-level ``enabled = False`` replay
    # shade, re-exposing the class attribute (True).
    tracer.__dict__.clear()
    tracer.__dict__.update(copy.deepcopy(state))


def _rearm_at_next_multiple(sim, interval: int, callback: Callable[[], None]) -> None:
    """Schedule a self-re-arming daemon at its next absolute phase point.

    Periodic daemons armed at cycle 0 fire at k*interval; after a restore
    to cycle T the next firing must be at the smallest multiple strictly
    greater than T (the firing *at* T, if any, happened before the
    snapshot was taken).
    """
    due = (sim.now // interval + 1) * interval
    sim.schedule_at(due, callback, daemon=True)


# ----------------------------------------------------------------------
# Run snapshots
# ----------------------------------------------------------------------
def capture_run_state(machine) -> dict:
    """Snapshot a checkpoint-enabled machine mid-run (or at completion).

    Must be called between events — from a daemon callback or outside
    ``sim.run()`` — so every core is parked (its continuation, if any, is
    on the heap and its pending result is concrete).
    """
    if machine._ckpt_log is None:
        raise CheckpointError(
            "machine was built without checkpointing; call "
            "Machine.enable_checkpointing() before the run starts"
        )
    runtime = machine.runtime
    if runtime is None:
        raise CheckpointError("no runtime attached to this machine")
    sim = machine.sim
    sim_state = sim.export_state()
    sim_state["queue"] = [_describe_event(entry) for entry in sim_state["queue"]]
    sampler = getattr(machine, "ckpt_sampler", None)
    return {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "kind": "run",
        "cycle": sim.now,
        "sim": sim_state,
        "log": list(machine._ckpt_log),
        "cores": [_capture_core(core) for core in machine.cores],
        "l1s": [l1.export_state() for l1 in machine.l1s],
        "l2": machine.l2.export_state(),
        "dram": [controller.export_state() for controller in machine.l2.dram],
        "traffic": machine.traffic.export_state(),
        "memory": machine.memory.export_state(),
        "address_space": machine.address_space.export_state(),
        "stats": _capture_stats(machine.stats),
        "rng": _capture_rngs(machine, runtime),
        "runtime": {
            "done": runtime.done,
            "progress": runtime.progress,
            "next_task_id": runtime._next_task_id,
        },
        "tracer": _capture_tracer(machine.tracer),
        "sanitizer": _capture_sanitizer(machine.sanitizer),
        "sampler": (
            {
                "samples": copy.deepcopy(sampler.samples),
                "prev": copy.deepcopy(sampler._prev),
                "interval": sampler.interval,
            }
            if sampler is not None
            else None
        ),
    }


def _replay_log(machine, log: List) -> None:
    """Walk the send log against freshly started thread generators.

    Sends advance the coroutines through exactly the host-side execution
    of the recorded run; yielded ops are discarded (their architectural
    effects are restored concretely afterwards).
    """
    cores = machine.cores
    for entry in log:
        first = entry[0]
        if first.__class__ is str:  # ("h", core_id, thief): handler push
            core = cores[entry[1]]
            core._frames.append(core.uli_handler_factory(entry[2]))
            continue
        frames = cores[first]._frames
        try:
            frames[-1].send(entry[1])
        except StopIteration:
            frames.pop()


def _validate_replay(machine, runtime, snap: dict) -> None:
    """Cross-check replay-reconstructed host state against the snapshot.

    Any mismatch means the rebuild diverged from the recorded run (wrong
    app parameters, code drift, nondeterminism) — restoring on top of it
    would silently corrupt the simulation, so fail loudly instead.
    """
    problems = []
    for core, core_snap in zip(machine.cores, snap["cores"]):
        if len(core._frames) != core_snap["frame_depth"]:
            problems.append(
                f"core {core.core_id}: frame depth {len(core._frames)} "
                f"!= snapshot {core_snap['frame_depth']}"
            )
    rt_snap = snap["runtime"]
    if runtime.done != rt_snap["done"]:
        problems.append(f"runtime.done {runtime.done} != {rt_snap['done']}")
    if runtime.progress != rt_snap["progress"]:
        problems.append(
            f"runtime.progress {runtime.progress} != {rt_snap['progress']}"
        )
    if runtime._next_task_id != rt_snap["next_task_id"]:
        problems.append(
            f"next_task_id {runtime._next_task_id} != {rt_snap['next_task_id']}"
        )
    addr_next = snap["address_space"]["next"]
    if machine.address_space._next != addr_next:
        problems.append(
            f"address space next {machine.address_space._next:#x} "
            f"!= snapshot {addr_next:#x}"
        )
    for ctx, rng_state in zip(runtime.contexts, snap["rng"]["contexts"]):
        if ctx.rng._state != rng_state:
            problems.append(f"thread {ctx.tid}: rng state diverged during replay")
    if problems:
        raise CheckpointError(
            "replay diverged from snapshot:\n  " + "\n  ".join(problems)
        )


def restore_run_state(machine, snap: dict, root, main_tid: int = 0) -> None:
    """Restore ``snap`` into a freshly built machine/runtime pair.

    The caller must have rebuilt the app, machine (with checkpointing
    enabled and the same tracer/fault/sanitizer setup), and runtime with
    the original arguments, *without* starting the run.  ``root`` is a
    fresh root task from ``app.make_root``.
    """
    if snap.get("kind") != "run":
        raise CheckpointError(f"expected a run snapshot, got {snap.get('kind')!r}")
    runtime = machine.runtime
    if runtime is None:
        raise CheckpointError("no runtime attached to this machine")
    if machine._ckpt_log is None:
        raise CheckpointError("enable_checkpointing() must precede restore")
    if machine.sim.now != 0 or machine._ckpt_log:
        raise CheckpointError("restore requires a machine that has not run yet")

    tracer = machine.tracer
    recording = tracer.enabled
    if recording and snap["tracer"] is None:
        raise CheckpointError(
            "cannot resume an untraced snapshot with tracing enabled: the "
            "events before the snapshot were never recorded"
        )
    if recording:
        # Instance attribute shades the Tracer class attribute; removed
        # again when the tracer state is restored wholesale below.
        tracer.enabled = False
    runtime._tracing = False
    try:
        runtime.start_threads(root, main_tid)
        _replay_log(machine, snap["log"])
        _validate_replay(machine, runtime, snap)
    finally:
        if recording and tracer.__dict__.get("enabled") is False:
            del tracer.__dict__["enabled"]
        runtime._tracing = tracer.enabled

    # Concrete overwrite of all timed/architectural state.
    for core, core_snap in zip(machine.cores, snap["cores"]):
        _restore_core(core, core_snap)
    sim_state = snap["sim"]
    events = [_rebuild_event(entry, machine.cores) for entry in sim_state["queue"]]
    machine.sim.load_state(sim_state, events)
    for l1, l1_state in zip(machine.l1s, snap["l1s"]):
        l1.load_state(l1_state)
    machine.l2.load_state(snap["l2"])
    for controller, dram_state in zip(machine.l2.dram, snap["dram"]):
        controller.load_state(dram_state)
    machine.traffic.load_state(snap["traffic"])
    machine.memory.load_state(snap["memory"])
    machine.address_space.load_state(snap["address_space"])
    _restore_stats(machine.stats, snap["stats"])
    _restore_rngs(machine, runtime, snap["rng"])
    runtime.done = snap["runtime"]["done"]
    runtime.progress = snap["runtime"]["progress"]
    runtime._next_task_id = snap["runtime"]["next_task_id"]
    _restore_tracer(tracer, snap["tracer"])
    runtime._tracing = tracer.enabled
    _restore_sanitizer(machine, snap["sanitizer"])
    sampler_state = snap.get("sampler")
    sampler = getattr(machine, "ckpt_sampler", None)
    if sampler_state is not None:
        if sampler is None:
            raise CheckpointError(
                "snapshot carries interval-sampler state; recreate the "
                "sampler (same interval) before restoring"
            )
        sampler.samples = copy.deepcopy(sampler_state["samples"])
        sampler._prev = copy.deepcopy(sampler_state["prev"])
        _rearm_at_next_multiple(machine.sim, sampler.interval, sampler._tick)
    elif sampler is not None:
        raise CheckpointError(
            "cannot resume with an interval sampler: the snapshot was "
            "taken without one, so the earlier intervals were never sampled"
        )
    # Continue the send log from the snapshot so later snapshots of the
    # resumed run are themselves restorable (in place: cores share the list).
    machine._ckpt_log[:] = snap["log"]


# ----------------------------------------------------------------------
# Init (warm-start) snapshots
# ----------------------------------------------------------------------
class _AppPickler(pickle.Pickler):
    """Pickles an app object, persisting its machine out by reference."""

    def __init__(self, buffer, machine):
        super().__init__(buffer, protocol=4)
        self._machine = machine

    def persistent_id(self, obj):
        if obj is self._machine:
            return "machine"
        return None


class _AppUnpickler(pickle.Unpickler):
    def __init__(self, buffer, machine):
        super().__init__(buffer)
        self._machine = machine

    def persistent_load(self, pid):
        if pid == "machine":
            return self._machine
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def capture_init_state(machine, app, signature: Optional[str] = None) -> dict:
    """Snapshot the post-``setup`` host state for warm-start fan-out.

    Valid only between ``app.setup(machine)`` and runtime construction:
    the snapshot carries backing memory, the address space, and the app
    object (machine references persisted by id).  Setup is a host-only
    phase — it must not consume ``machine.rng`` or touch timed state —
    which is what makes one init snapshot valid for every configuration
    of the same (app, scale, app_params); this is checked here.
    """
    from repro.engine.rng import XorShift64

    sim = machine.sim
    if sim.now != 0 or sim.events_executed or sim.events_fused:
        raise CheckpointError("init snapshots must be taken before the run starts")
    if machine.rng._state != XorShift64(machine.config.seed)._state:
        raise CheckpointError(
            "app setup consumed machine.rng; its init phase is not "
            "configuration-invariant, so warm-starting it is unsound"
        )
    buffer = io.BytesIO()
    _AppPickler(buffer, machine).dump(app)
    return {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "kind": "init",
        "signature": signature,
        "app_pickle": buffer.getvalue(),
        "memory": machine.memory.export_state(),
        "address_space": machine.address_space.export_state(),
    }


def restore_init_state(machine, snap: dict, signature: Optional[str] = None):
    """Apply an init snapshot to a fresh machine; returns the app object.

    The caller then constructs the runtime and runs normally — further
    allocations continue from the restored address-space cursor exactly
    as they would have after a real ``setup``.
    """
    if snap.get("kind") != "init":
        raise CheckpointError(f"expected an init snapshot, got {snap.get('kind')!r}")
    if signature is not None and snap.get("signature") != signature:
        raise CheckpointError(
            f"init snapshot signature {snap.get('signature')!r} does not "
            f"match this experiment's {signature!r}"
        )
    if machine.sim.now != 0 or machine.sim.events_executed:
        raise CheckpointError("init snapshots restore only into fresh machines")
    machine.memory.load_state(snap["memory"])
    machine.address_space.load_state(snap["address_space"])
    return _AppUnpickler(io.BytesIO(snap["app_pickle"]), machine).load()


# ----------------------------------------------------------------------
# Periodic snapshot daemon
# ----------------------------------------------------------------------
class CheckpointDaemon:
    """Self-re-arming daemon taking a snapshot every ``interval`` cycles.

    Daemon events run between regular events, so every snapshot lands at a
    safe point with all cores parked.  ``write`` receives the machine and
    is responsible for capture + persistence (the harness adds experiment
    metadata there).  Firing cycles are absolute multiples of the
    interval, so a resumed run's later snapshots (and tracer checkpoint
    marks) land at the same cycles as an uninterrupted run's.
    """

    def __init__(self, machine, interval: int, write: Callable):
        if interval <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {interval}")
        self.machine = machine
        self.interval = int(interval)
        self.write = write
        self.snapshots_taken = 0
        self._armed = False

    def arm(self) -> None:
        self._armed = True
        _rearm_at_next_multiple(self.machine.sim, self.interval, self._tick)

    def cancel(self) -> None:
        self._armed = False

    def _tick(self) -> None:
        if not self._armed:
            return
        machine = self.machine
        tracer = machine.tracer
        if tracer.enabled:
            tracer.checkpoint_mark(machine.sim.now)
        self.write(machine)
        self.snapshots_taken += 1
        _rearm_at_next_multiple(machine.sim, self.interval, self._tick)


# ----------------------------------------------------------------------
# Preemption (park/resume)
# ----------------------------------------------------------------------
class ParkDaemon:
    """Cooperative preemption point riding the event queue.

    Every ``poll_interval`` simulated cycles (a daemon event, so always a
    safe point with all cores parked between events) the daemon checks
    whether ``park_path`` exists.  When it does, it snapshots the run via
    ``write(machine)`` and raises :class:`ParkedRun`, abandoning the event
    loop.  The exception propagates out of ``runtime.run`` exactly like
    the watchdog's ``DeadlockError``; by then the snapshot is already on
    disk, so the process can simply exit and a later run with
    ``CheckpointConfig.resume`` finishes byte-identically.

    A wedged run executes no events and therefore never reaches the poll —
    supervisors must pair the park request with a kill deadline and fall
    back to the last *periodic* snapshot for such workers.
    """

    def __init__(
        self,
        machine,
        poll_interval: int,
        park_path: str,
        write: Callable,
        snapshot_path: Optional[str] = None,
    ):
        if poll_interval <= 0:
            raise ValueError(
                f"park poll interval must be positive, got {poll_interval}"
            )
        self.machine = machine
        self.poll_interval = int(poll_interval)
        self.park_path = park_path
        self.write = write
        #: Where ``write`` persists the snapshot (carried on the raised
        #: ParkedRun so supervisors learn the resume source); None when
        #: the callback captures in memory.
        self.snapshot_path = snapshot_path
        self._armed = False

    def arm(self) -> None:
        self._armed = True
        _rearm_at_next_multiple(self.machine.sim, self.poll_interval, self._tick)

    def cancel(self) -> None:
        self._armed = False

    def _tick(self) -> None:
        if not self._armed:
            return
        machine = self.machine
        if os.path.exists(self.park_path):
            self._armed = False
            self.write(machine)
            raise ParkedRun(machine.sim.now, self.snapshot_path)
        _rearm_at_next_multiple(machine.sim, self.poll_interval, self._tick)
