"""Deterministic pseudo-random number generation for simulations.

All stochastic choices inside a simulation (victim selection, R-MAT edge
placement, backoff jitter) draw from :class:`XorShift64` streams seeded from
the system configuration, so a given (config, app, input) triple always
produces bit-identical results.  Python's global ``random`` module is never
used by simulator code.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class XorShift64:
    """Marsaglia xorshift64* generator: tiny, fast, deterministic."""

    def __init__(self, seed: int):
        if seed == 0:
            seed = 0x9E3779B97F4A7C15
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def choice_excluding(self, n: int, exclude: int) -> int:
        """Uniform integer in [0, n) excluding ``exclude`` (requires n >= 2)."""
        if n < 2:
            raise ValueError("need at least two options")
        value = self.randint(0, n - 2)
        return value + 1 if value >= exclude else value

    def fork(self) -> "XorShift64":
        """Derive an independent child stream."""
        return XorShift64(self.next_u64() ^ 0xDEADBEEFCAFEF00D)
