"""Hierarchical statistics registry.

Every simulated component owns a :class:`StatGroup`; groups nest, counters
are plain ints/floats, and the whole tree flattens to a ``dict`` for the
experiment harness.  Counters are created on first touch so components do
not need to pre-declare every statistic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple, Union

Number = Union[int, float]


class Counter:
    """A precomputed-key handle onto one :class:`StatGroup` counter.

    Hot paths (the core dispatch loop, the L1 hit paths) pay string
    formatting and attribute lookups on every ``StatGroup.add(f"...")``
    call.  A handle binds the counter dict and the final key once, so the
    per-event cost collapses to one dict ``__setitem__``.  Handles stay
    valid across :meth:`StatGroup.reset` / :meth:`StatGroup.set` (both
    mutate the same dict in place), and a counter only materializes in
    :meth:`StatGroup.flatten` output on its first ``add`` — exactly like
    the string-keyed path.
    """

    __slots__ = ("_counters", "key")

    def __init__(self, counters: Dict[str, Number], key: str):
        self._counters = counters
        self.key = key

    def add(self, amount: Number = 1) -> None:
        self._counters[self.key] += amount

    def get(self, default: Number = 0) -> Number:
        return self._counters.get(self.key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.key!r}, {self._counters.get(self.key, 0)!r})"


class StatGroup:
    """A named bag of counters with nested sub-groups."""

    def __init__(self, name: str = ""):
        self.name = name
        self._counters: Dict[str, Number] = defaultdict(int)
        self._children: Dict[str, "StatGroup"] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def add(self, key: str, amount: Number = 1) -> None:
        self._counters[key] += amount

    def set(self, key: str, value: Number) -> None:
        self._counters[key] = value

    def get(self, key: str, default: Number = 0) -> Number:
        return self._counters.get(key, default)

    def maximize(self, key: str, value: Number) -> None:
        if value > self._counters.get(key, value - 1):
            self._counters[key] = value

    def counter(self, key: str) -> Counter:
        """A hot-path handle for ``key`` (see :class:`Counter`)."""
        return Counter(self._counters, key)

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------
    def child(self, name: str) -> "StatGroup":
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def children(self) -> Iterator["StatGroup"]:
        return iter(self._children.values())

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def flatten(self, prefix: str = "") -> Dict[str, Number]:
        """Flatten to {dotted.path.counter: value}.

        Key order is fully deterministic — counters and children are both
        visited in sorted-name order — so the output never depends on the
        order in which components touched their statistics.
        """
        out: Dict[str, Number] = {}
        base = f"{prefix}{self.name}." if self.name else prefix
        for key, value in sorted(self._counters.items()):
            out[f"{base}{key}"] = value
        for name in sorted(self._children):
            out.update(self._children[name].flatten(base))
        return out

    def snapshot(self) -> Dict[str, Number]:
        """A point-in-time flat copy of the whole subtree.

        This is what the interval sampler (``repro.trace.sampler``) diffs
        every N cycles to build statistics time series.
        """
        return self.flatten()

    def reset(self) -> None:
        """Zero every counter in this group and all descendants.

        Counter *keys* survive (as zeros), so snapshots taken before and
        after a reset stay comparable key-for-key.
        """
        for key in self._counters:
            self._counters[key] = 0
        for child in self._children.values():
            child.reset()

    def items(self) -> Iterator[Tuple[str, Number]]:
        return iter(sorted(self._counters.items()))

    def total(self, key: str) -> Number:
        """Sum of ``key`` over this group and all descendants."""
        result: Number = self._counters.get(key, 0)
        for child in self._children.values():
            result += child.total(key)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {dict(self._counters)!r})"
