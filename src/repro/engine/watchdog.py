"""Deadlock watchdog: turn silent stalls into structured diagnostics.

Without a watchdog, a wedged simulation (a runtime bug leaving every core
spinning on a flag nobody will ever set, a lost ULI handshake, a broken
coherence discipline) grinds until the ``max_cycles`` guard raises an
opaque :class:`~repro.engine.simulator.SimulationError` — typically after
hundreds of millions of cycles of wall-clock time.

:class:`Watchdog` is a self-re-arming *daemon* event (so it can never
perturb the simulated outcome — see the daemon rules in
``repro.engine.simulator``) that samples a caller-supplied progress
counter.  When the counter has not moved for ``grace`` cycles while the
caller still reports outstanding work, the watchdog raises
:class:`DeadlockError` carrying a JSON-able diagnostic dump assembled by
the caller (per-core ULI state, deque occupancy, runtime stats).  The
harness grid knows how to record that dump as a failed point so a large
sweep survives one wedged configuration.

Interaction with ``stop()`` (see ``Simulator.run``): a stop request —
whether issued by a regular event or by an earlier daemon — prevents both
later daemons *and* the already-popped regular event from firing, so a
finished run can never trip the watchdog posthumously.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.simulator import SimulationError


class DeadlockError(SimulationError):
    """No progress for ``grace`` cycles with work outstanding.

    ``diagnostic`` is a JSON-able dict describing the stalled state
    (assembled by the watchdog's ``diagnose`` callback; the work-stealing
    runtime contributes per-core ULI state, deque occupancy, and its stat
    counters).  It survives pickling across the grid's worker processes.
    """

    def __init__(self, message: str, diagnostic: Optional[dict] = None):
        super().__init__(message)
        self.diagnostic = diagnostic or {}

    def __reduce__(self):
        return (self.__class__, (self.args[0], self.diagnostic))


class Watchdog:
    """Periodic no-progress detector running as a simulator daemon event."""

    def __init__(
        self,
        sim,
        progress: Callable[[], int],
        grace: int = 100_000,
        interval: Optional[int] = None,
        outstanding: Optional[Callable[[], bool]] = None,
        diagnose: Optional[Callable[[], dict]] = None,
    ):
        if grace <= 0:
            raise ValueError(f"watchdog grace must be positive, got {grace}")
        self.sim = sim
        self.progress = progress
        self.grace = grace
        #: How often to sample; several samples per grace window so the
        #: error fires within ~1.25x grace of the true stall point.
        self.interval = interval if interval is not None else max(1, grace // 4)
        if self.interval <= 0:
            raise ValueError(f"watchdog interval must be positive, got {interval}")
        self.outstanding = outstanding
        self.diagnose = diagnose
        self._last_progress: Optional[int] = None
        self._last_change = 0
        self._armed = False
        self._cancelled = False

    def arm(self) -> None:
        """Install the first daemon tick (idempotent)."""
        if self._armed:
            return
        self._armed = True
        self._cancelled = False
        self._last_progress = None
        self._last_change = self.sim.now
        self.sim.schedule(self.interval, self._tick, daemon=True)

    def cancel(self) -> None:
        """Disarm: any still-queued tick becomes a no-op and does not re-arm."""
        self._cancelled = True
        self._armed = False

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._cancelled:
            return
        sim = self.sim
        current = self.progress()
        if current != self._last_progress:
            self._last_progress = current
            self._last_change = sim.now
        elif sim.now - self._last_change >= self.grace:
            if self.outstanding is None or self.outstanding():
                diagnostic = {
                    "cycle": sim.now,
                    "grace": self.grace,
                    "stalled_since": self._last_change,
                    "progress_counter": current,
                    "pending_events": sim.pending_events,
                }
                if self.diagnose is not None:
                    diagnostic.update(self.diagnose())
                raise DeadlockError(
                    f"no runtime progress for {sim.now - self._last_change} cycles "
                    f"(grace {self.grace}) at cycle {sim.now} with work outstanding",
                    diagnostic,
                )
            # Work finished but the runtime has not stopped the simulator
            # yet (drain phase): keep watching without raising.
            self._last_change = sim.now
        self.sim.schedule(self.interval, self._tick, daemon=True)
