"""Simulation kernel: event queue, statistics, deterministic RNG."""

from repro.engine.rng import XorShift64
from repro.engine.simulator import SimulationError, Simulator
from repro.engine.stats import Counter, StatGroup

__all__ = ["Counter", "Simulator", "SimulationError", "StatGroup", "XorShift64"]
