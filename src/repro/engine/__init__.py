"""Simulation kernel: event queue, statistics, deterministic RNG."""

from repro.engine.checkpoint import (
    CheckpointConfig,
    CheckpointDaemon,
    CheckpointError,
    ParkDaemon,
    ParkedRun,
    load_snapshot,
    save_snapshot,
)
from repro.engine.rng import XorShift64
from repro.engine.simulator import SimulationError, Simulator
from repro.engine.stats import Counter, StatGroup
from repro.engine.watchdog import DeadlockError, Watchdog

__all__ = [
    "CheckpointConfig",
    "CheckpointDaemon",
    "CheckpointError",
    "Counter",
    "ParkDaemon",
    "ParkedRun",
    "DeadlockError",
    "SimulationError",
    "Simulator",
    "StatGroup",
    "Watchdog",
    "XorShift64",
    "load_snapshot",
    "save_snapshot",
]
