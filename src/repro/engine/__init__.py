"""Simulation kernel: event queue, statistics, deterministic RNG."""

from repro.engine.rng import XorShift64
from repro.engine.simulator import SimulationError, Simulator
from repro.engine.stats import Counter, StatGroup
from repro.engine.watchdog import DeadlockError, Watchdog

__all__ = [
    "Counter",
    "DeadlockError",
    "SimulationError",
    "Simulator",
    "StatGroup",
    "Watchdog",
    "XorShift64",
]
