"""Shared application infrastructure.

* :class:`SimArray` — a typed array in simulated memory with generator
  accessors, used by every kernel so that all application data goes through
  the cache hierarchy.
* :class:`AppInstance` — the contract between applications and the
  experiment harness: allocate inputs, produce a root task (parallel or
  serial-elision), and check outputs against a pure-Python reference.
* A registry mapping the paper's application names (cilk5-cs, ligra-bfs, …)
  to factories.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.task import Task
from repro.cores import ops
from repro.machine import Machine
from repro.mem.address import WORD_BYTES


class SimArray:
    """A word array in simulated memory."""

    def __init__(self, machine: Machine, n: int, name: str):
        if n <= 0:
            raise ValueError(f"array {name!r} needs positive length, got {n}")
        self.machine = machine
        self.n = n
        self.base = machine.address_space.alloc_words(n, name)
        self.name = name

    def addr(self, i: int) -> int:
        return self.base + i * WORD_BYTES

    # Generator accessors (simulated traffic) -------------------------------
    # These yield the op objects directly rather than delegating to the
    # equivalent ThreadContext generators: every element access otherwise
    # allocates an extra generator and adds a delegation link that each
    # subsequent ``send`` re-traverses.
    def load(self, ctx, i: int):
        value = yield ops.Load(self.base + i * WORD_BYTES)
        return value

    def store(self, ctx, i: int, value):
        yield ops.Store(self.base + i * WORD_BYTES, value)

    def amo(self, ctx, op: str, i: int, operand):
        old = yield ops.Amo(op, self.base + i * WORD_BYTES, operand)
        return old

    def cas(self, ctx, i: int, expected, desired):
        old = yield ops.Amo("cas", self.base + i * WORD_BYTES, (expected, desired))
        return old

    # Host accessors (setup / checking only) --------------------------------
    def host_init(self, values) -> None:
        if len(values) != self.n:
            raise ValueError(f"{self.name}: expected {self.n} values, got {len(values)}")
        self.machine.host_write_array(self.base, values)

    def host_fill(self, value) -> None:
        self.machine.host_write_array(self.base, [value] * self.n)

    def host_read(self) -> List:
        return self.machine.host_read_array(self.base, self.n)


class AppInstance:
    """One configured application run (inputs sized, granularity chosen).

    Subclasses set ``name`` and ``pm`` ("ss" = recursive spawn-and-sync,
    "pf" = parallel_for, following Table III), implement :meth:`setup`,
    :meth:`make_root` and :meth:`check`.
    """

    name: str = "app"
    pm: str = "ss"

    def __init__(self):
        self.machine: Optional[Machine] = None

    # ------------------------------------------------------------------
    def setup(self, machine: Machine) -> None:
        """Allocate and host-initialize all inputs/outputs."""
        raise NotImplementedError

    def make_root(self, serial: bool = False) -> Task:
        """Build the root task; ``serial`` elides all parallelism."""
        raise NotImplementedError

    def check(self) -> None:
        """Raise AssertionError if the simulated output is wrong."""
        raise NotImplementedError


#: name -> factory(**params) for the paper's 13 kernels.
_REGISTRY: Dict[str, Callable[..., AppInstance]] = {}


def register_app(name: str):
    def deco(factory):
        _REGISTRY[name] = factory
        return factory

    return deco


def make_app(name: str, **params) -> AppInstance:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; known: {sorted(_REGISTRY)}") from None
    return factory(**params)


def app_names() -> List[str]:
    return sorted(_REGISTRY)
