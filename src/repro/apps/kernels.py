"""Simulator-throughput microkernels (not part of the paper's Table III).

Two synthetic apps that stress the discrete-event kernel itself rather
than any modeled algorithm, used by ``benchmarks/bench_wallclock.py`` and
the ``repro perf`` CLI to measure host throughput (simulated cycles and
events per wall-clock second):

* ``kernel-spin``  — back-to-back unit ``Work`` ops: the maximum event
  rate the engine can sustain, isolating dispatch + event-fusion cost.
* ``kernel-stream`` — repeated load/store sweeps over a word array:
  the L1 hit path (tag lookup, counters) at full rate.

Both use one flat fork/join wave of leaf tasks rather than recursive
splitting: a recursive tree adds two generator frames per level, and each
``send`` re-traverses the whole delegation chain, which would make the
kernels measure chain depth instead of engine throughput.
"""

from __future__ import annotations

from repro.apps.common import AppInstance, SimArray, register_app
from repro.core.task import Task
from repro.cores import ops
from repro.mem.address import WORD_BYTES


class _SpinRoot(Task):
    ARG_WORDS = 2

    def __init__(self, app: "KernelSpin", grain: int):
        super().__init__()
        self.app = app
        self.grain = grain

    def execute(self, rt, ctx):
        remaining = self.app.iters
        leaves = []
        while remaining > 0:
            count = min(self.grain, remaining)
            leaves.append(_SpinLeaf(self.app, count))
            remaining -= count
        yield from rt.fork_join(ctx, self, leaves)


class _SpinLeaf(Task):
    ARG_WORDS = 2

    def __init__(self, app: "KernelSpin", count: int):
        super().__init__()
        self.app = app
        self.count = count

    def execute(self, rt, ctx):
        unit = ops.Work(1)
        for _ in range(self.count):
            yield unit
        yield from self.app.done.amo(ctx, "add", 0, self.count)


@register_app("kernel-spin")
class KernelSpin(AppInstance):
    name = "kernel-spin"
    pm = "ss"

    def __init__(self, iters: int = 100_000, grain: int = 4096):
        super().__init__()
        if iters <= 0 or grain <= 0:
            raise ValueError("kernel-spin needs positive iters and grain")
        self.iters = iters
        self.grain = grain
        self.done: SimArray = None

    def setup(self, machine) -> None:
        self.machine = machine
        self.done = SimArray(machine, 1, "spin_done")
        self.done.host_fill(0)

    def make_root(self, serial: bool = False) -> Task:
        return _SpinRoot(self, self.iters if serial else self.grain)

    def check(self) -> None:
        (done,) = self.done.host_read()
        assert done == self.iters, f"kernel-spin: {done} != {self.iters}"


class _StreamRoot(Task):
    ARG_WORDS = 2

    def __init__(self, app: "KernelStream", grain: int):
        super().__init__()
        self.app = app
        self.grain = grain

    def execute(self, rt, ctx):
        leaves = [
            _StreamLeaf(self.app, start, min(self.grain, self.app.n - start))
            for start in range(0, self.app.n, self.grain)
        ]
        yield from rt.fork_join(ctx, self, leaves)


class _StreamLeaf(Task):
    """Increment every word in [start, start+count), ``passes`` times."""

    ARG_WORDS = 2

    def __init__(self, app: "KernelStream", start: int, count: int):
        super().__init__()
        self.app = app
        self.start = start
        self.count = count

    def execute(self, rt, ctx):
        base = self.app.data.base + self.start * WORD_BYTES
        count = self.count
        Load, Store = ops.Load, ops.Store
        for _ in range(self.app.passes):
            addr = base
            for _ in range(count):
                value = yield Load(addr)
                yield Store(addr, value + 1)
                addr += WORD_BYTES


class _DeadlockRoot(Task):
    """AMO-spin on a flag no task will ever set: a guaranteed livelock."""

    ARG_WORDS = 2

    def __init__(self, app: "KernelDeadlock"):
        super().__init__()
        self.app = app

    def execute(self, rt, ctx):
        while True:
            value = yield from self.app.flag.amo(ctx, "add", 0, 0)
            if value:  # never: nothing writes the flag
                return


@register_app("kernel-deadlock")
class KernelDeadlock(AppInstance):
    """Deliberately wedged kernel for watchdog and crash-tolerant-sweep tests.

    The root task spins on a flag nobody sets, so the simulation makes no
    runtime progress forever: without a watchdog it grinds to the
    ``max_cycles`` guard; with one it raises a diagnostic
    :class:`~repro.engine.DeadlockError` within ~1.25x the grace window.
    Not part of the paper's Table III.
    """

    name = "kernel-deadlock"
    pm = "ss"

    def __init__(self):
        super().__init__()
        self.flag: SimArray = None

    def setup(self, machine) -> None:
        self.machine = machine
        self.flag = SimArray(machine, 1, "deadlock_flag")
        self.flag.host_fill(0)

    def make_root(self, serial: bool = False) -> Task:
        return _DeadlockRoot(self)

    def check(self) -> None:
        raise AssertionError("kernel-deadlock never completes")


@register_app("kernel-stream")
class KernelStream(AppInstance):
    name = "kernel-stream"
    pm = "ss"

    def __init__(self, n: int = 2048, passes: int = 16, grain: int = 512):
        super().__init__()
        if n <= 0 or passes <= 0 or grain <= 0:
            raise ValueError("kernel-stream needs positive n, passes, grain")
        self.n = n
        self.passes = passes
        self.grain = grain
        self.data: SimArray = None

    def setup(self, machine) -> None:
        self.machine = machine
        self.data = SimArray(machine, self.n, "stream_data")
        self.data.host_fill(0)

    def make_root(self, serial: bool = False) -> Task:
        return _StreamRoot(self, self.n if serial else self.grain)

    def check(self) -> None:
        values = self.data.host_read()
        bad = [i for i, v in enumerate(values) if v != self.passes]
        assert not bad, f"kernel-stream: {len(bad)} stale words (first: {bad[0]})"
