"""The paper's 13 dynamic task-parallel application kernels (Table III)."""

# Importing the subpackages populates the application registry.
from repro.apps import cilk5, ligra, ligra_apps  # noqa: F401
from repro.apps.common import AppInstance, SimArray, app_names, make_app

#: The 13 kernels of Table III, in the paper's presentation order.
PAPER_APPS = (
    "cilk5-cs",
    "cilk5-lu",
    "cilk5-mm",
    "cilk5-mt",
    "cilk5-nq",
    "ligra-bc",
    "ligra-bf",
    "ligra-bfs",
    "ligra-bfsbv",
    "ligra-cc",
    "ligra-mis",
    "ligra-radii",
    "ligra-tc",
)

__all__ = ["AppInstance", "SimArray", "make_app", "app_names", "PAPER_APPS"]
