"""The paper's 13 dynamic task-parallel application kernels (Table III)."""

# Importing the subpackages populates the application registry.
from repro.apps import cilk5, kernels, ligra, ligra_apps  # noqa: F401
from repro.apps.common import AppInstance, SimArray, app_names, make_app

#: The 13 kernels of Table III, in the paper's presentation order.
PAPER_APPS = (
    "cilk5-cs",
    "cilk5-lu",
    "cilk5-mm",
    "cilk5-mt",
    "cilk5-nq",
    "ligra-bc",
    "ligra-bf",
    "ligra-bfs",
    "ligra-bfsbv",
    "ligra-cc",
    "ligra-mis",
    "ligra-radii",
    "ligra-tc",
)

#: Friendly names for the registry keys (the paper and the Cilk-5 / Ligra
#: suites call the kernels by these longer names).
APP_ALIASES = {
    "cilksort": "cilk5-cs",
    "lu": "cilk5-lu",
    "matmul": "cilk5-mm",
    "nqueens": "cilk5-nq",
    "bfs": "ligra-bfs",
    "bc": "ligra-bc",
    "bellman-ford": "ligra-bf",
    "mis": "ligra-mis",
    "radii": "ligra-radii",
    "tc": "ligra-tc",
}


def resolve_app(name: str) -> str:
    """Resolve a friendly application name to its registry key.

    Accepts the registry key itself (``cilk5-cs``), a known alias
    (``cilksort``), or a bare suffix of a registered name (``cs`` →
    ``cilk5-cs``, ``cc`` → ``ligra-cc``) when unambiguous.
    """
    if name in app_names():
        return name
    if name in APP_ALIASES:
        return APP_ALIASES[name]
    suffix_hits = [a for a in app_names() if a.split("-", 1)[-1] == name]
    if len(suffix_hits) == 1:
        return suffix_hits[0]
    if len(suffix_hits) > 1:
        # A bare suffix matching several registered apps must not fall
        # through to "unknown": the user named real apps, just not
        # uniquely — tell them which full keys they have to choose from.
        candidates = ", ".join(sorted(suffix_hits))
        raise ValueError(
            f"ambiguous application name {name!r}: matches {candidates}; "
            "use the full name"
        )
    known = ", ".join(sorted(set(app_names()) | set(APP_ALIASES)))
    raise ValueError(f"unknown application {name!r}; known: {known}")


__all__ = [
    "AppInstance",
    "SimArray",
    "make_app",
    "app_names",
    "resolve_app",
    "APP_ALIASES",
    "PAPER_APPS",
]
