"""Cilk-5 application kernels (recursive spawn-and-sync parallelism)."""

from repro.apps.cilk5.cilksort import CilkSort
from repro.apps.cilk5.lu import CilkLU
from repro.apps.cilk5.matmul import CilkMatmul
from repro.apps.cilk5.nqueens import CilkNQueens
from repro.apps.cilk5.transpose import CilkTranspose

__all__ = ["CilkSort", "CilkLU", "CilkMatmul", "CilkNQueens", "CilkTranspose"]
