"""cilk5-mt: recursive blocked matrix transpose (out of place).

B = A^T over an n x n integer matrix.  The recursion splits the output into
quadrants and forks the four sub-transposes; below the grain size a serial
double loop copies elements.  Matrix transpose is memory-bound with zero
write locality on the output, which is why it is the paper's worst case for
the reader-initiated invalidation protocols (Section VI-B).
"""

from __future__ import annotations

from repro.apps.common import AppInstance, SimArray, register_app
from repro.core.task import Task
from repro.engine.rng import XorShift64


class _MtTask(Task):
    ARG_WORDS = 3

    def __init__(self, app: "CilkTranspose", row, col, size, grain):
        super().__init__()
        self.app = app
        self.row = row
        self.col = col
        self.size = size
        self.grain = grain

    def execute(self, rt, ctx):
        app, s = self.app, self.size
        if s <= self.grain:
            yield from app.serial_transpose(ctx, self.row, self.col, s)
            return
        h = s // 2
        r, c, g = self.row, self.col, self.grain
        children = [
            _MtTask(app, r, c, h, g),
            _MtTask(app, r, c + h, h, g),
            _MtTask(app, r + h, c, h, g),
            _MtTask(app, r + h, c + h, h, g),
        ]
        yield from rt.fork_join(ctx, self, children)


@register_app("cilk5-mt")
class CilkTranspose(AppInstance):
    name = "cilk5-mt"
    pm = "ss"

    def __init__(self, n: int = 32, grain: int = 8, seed: int = 17):
        super().__init__()
        if n & (n - 1):
            raise ValueError("matrix size must be a power of two")
        self.n = n
        self.grain = grain
        self.seed = seed
        self.a: SimArray = None
        self.b: SimArray = None
        self._input = None

    def setup(self, machine) -> None:
        self.machine = machine
        rng = XorShift64(self.seed)
        n = self.n
        self._input = [rng.randint(0, 1 << 16) for _ in range(n * n)]
        self.a = SimArray(machine, n * n, "mt_a")
        self.b = SimArray(machine, n * n, "mt_b")
        self.a.host_init(self._input)
        self.b.host_fill(0)

    def make_root(self, serial: bool = False):
        grain = self.n if serial else self.grain
        return _MtTask(self, 0, 0, self.n, grain)

    def check(self) -> None:
        n = self.n
        result = self.b.host_read()
        for i in range(n):
            for j in range(n):
                assert result[j * n + i] == self._input[i * n + j], (
                    "cilk5-mt: transpose mismatch"
                )

    # ------------------------------------------------------------------
    def serial_transpose(self, ctx, row: int, col: int, s: int):
        """B[col.., row..] = A[row.., col..]^T for an s x s tile."""
        n, a, b = self.n, self.a, self.b
        for i in range(row, row + s):
            for j in range(col, col + s):
                value = yield from a.load(ctx, i * n + j)
                yield from b.store(ctx, j * n + i, value)
