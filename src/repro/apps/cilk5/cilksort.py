"""cilk5-cs: parallel mergesort (cilksort).

Faithful to the MIT Cilk-5 ``cilksort`` structure: recursive spawn-and-sync
sorting with a *parallel divide-and-conquer merge* (split the larger run at
its midpoint, binary-search the split point in the other run, and merge the
two halves as parallel tasks).  The parallel merge is what gives cilksort
its polylogarithmic span — with a serial merge the top-level merge would
dominate the critical path.

Each recursion level sorts four quarters in place, merges quarter pairs
into the temp buffer in parallel, then merges the two temp halves back —
so the result always lands in the data buffer without a separate copy
pass; leaves run a serial insertion sort.  Every element access is a
simulated memory operation.
"""

from __future__ import annotations

from repro.apps.common import AppInstance, SimArray, register_app
from repro.core.task import Task
from repro.engine.rng import XorShift64


class _SortTask(Task):
    """Sort data[lo:hi) in place, cilksort-style.

    Four quarters are sorted in parallel (in ``data``), pairs of quarters
    are merged in parallel into ``temp``, and the two temp halves are
    merged back into ``data`` — exactly the cilk5 ``cilksort`` recursion.
    """

    ARG_WORDS = 3

    def __init__(self, app, lo, hi, grain: int):
        super().__init__()
        self.app = app
        self.lo = lo
        self.hi = hi
        self.grain = grain

    def execute(self, rt, ctx):
        app, lo, hi, g = self.app, self.lo, self.hi, self.grain
        if hi - lo <= g or hi - lo < 4:  # quartering needs >= 4 elements
            yield from app.serial_sort(ctx, app.data, lo, hi)
            return
        quarter = (hi - lo) // 4
        m1 = lo + quarter
        m2 = lo + 2 * quarter
        m3 = lo + 3 * quarter
        yield from rt.fork_join(
            ctx,
            self,
            [
                _SortTask(app, lo, m1, g),
                _SortTask(app, m1, m2, g),
                _SortTask(app, m2, m3, g),
                _SortTask(app, m3, hi, g),
            ],
        )
        yield from rt.fork_join(
            ctx,
            self,
            [
                _MergeTask(app, app.data, app.temp, lo, m1, m1, m2, lo, g),
                _MergeTask(app, app.data, app.temp, m2, m3, m3, hi, m2, g),
            ],
        )
        yield from rt.fork_join(
            ctx,
            self,
            [_MergeTask(app, app.temp, app.data, lo, m2, m2, hi, lo, g)],
        )


class _MergeTask(Task):
    """Merge src[lo1:hi1) and src[lo2:hi2) into dst starting at dlo."""

    ARG_WORDS = 5

    def __init__(self, app, src, dst, lo1, hi1, lo2, hi2, dlo, grain):
        super().__init__()
        self.app = app
        self.src = src
        self.dst = dst
        self.lo1 = lo1
        self.hi1 = hi1
        self.lo2 = lo2
        self.hi2 = hi2
        self.dlo = dlo
        self.grain = grain

    def execute(self, rt, ctx):
        app = self.app
        n1 = self.hi1 - self.lo1
        n2 = self.hi2 - self.lo2
        if n1 + n2 <= 2 * self.grain:
            yield from app.serial_merge(
                ctx, self.src, self.dst, self.lo1, self.hi1, self.lo2, self.hi2, self.dlo
            )
            return
        # Split the larger run at its midpoint; binary-search the other.
        if n1 >= n2:
            mid1 = (self.lo1 + self.hi1) // 2
            pivot = yield from self.src.load(ctx, mid1)
            mid2 = yield from app.lower_bound(ctx, self.src, self.lo2, self.hi2, pivot)
        else:
            mid2 = (self.lo2 + self.hi2) // 2
            pivot = yield from self.src.load(ctx, mid2)
            mid1 = yield from app.lower_bound(ctx, self.src, self.lo1, self.hi1, pivot)
        d_split = self.dlo + (mid1 - self.lo1) + (mid2 - self.lo2)
        children = [
            _MergeTask(app, self.src, self.dst, self.lo1, mid1, self.lo2, mid2,
                       self.dlo, self.grain),
            _MergeTask(app, self.src, self.dst, mid1, self.hi1, mid2, self.hi2,
                       d_split, self.grain),
        ]
        yield from rt.fork_join(ctx, self, children)


@register_app("cilk5-cs")
class CilkSort(AppInstance):
    name = "cilk5-cs"
    pm = "ss"

    def __init__(self, n: int = 512, grain: int = 64, seed: int = 7):
        super().__init__()
        self.n = n
        self.grain = max(2, grain)
        self.seed = seed
        self.data: SimArray = None
        self.temp: SimArray = None
        self._input = None

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        rng = XorShift64(self.seed)
        self._input = [rng.randint(0, 1 << 20) for _ in range(self.n)]
        self.data = SimArray(machine, self.n, "cs_data")
        self.temp = SimArray(machine, self.n, "cs_temp")
        self.data.host_init(self._input)
        self.temp.host_fill(0)

    def make_root(self, serial: bool = False):
        grain = self.n if serial else self.grain
        return _SortTask(self, 0, self.n, grain)

    def check(self) -> None:
        result = self.data.host_read()
        expected = sorted(self._input)
        assert result == expected, "cilk5-cs: output is not the sorted input"

    # ------------------------------------------------------------------
    # Kernels (generator methods)
    # ------------------------------------------------------------------
    def serial_sort(self, ctx, arr: SimArray, lo: int, hi: int):
        """In-place insertion sort on the simulated array."""
        for i in range(lo + 1, hi):
            key = yield from arr.load(ctx, i)
            j = i - 1
            while j >= lo:
                current = yield from arr.load(ctx, j)
                yield from ctx.work(1)
                if current <= key:
                    break
                yield from arr.store(ctx, j + 1, current)
                j -= 1
            yield from arr.store(ctx, j + 1, key)

    def serial_merge(self, ctx, src, dst, lo1, hi1, lo2, hi2, dlo):
        """Two-pointer merge of two sorted runs."""
        i, j, k = lo1, lo2, dlo
        a = b = None
        while i < hi1 and j < hi2:
            if a is None:
                a = yield from src.load(ctx, i)
            if b is None:
                b = yield from src.load(ctx, j)
            yield from ctx.work(1)
            if a <= b:
                yield from dst.store(ctx, k, a)
                i += 1
                a = None
            else:
                yield from dst.store(ctx, k, b)
                j += 1
                b = None
            k += 1
        while i < hi1:
            value = yield from src.load(ctx, i)
            yield from dst.store(ctx, k, value)
            i += 1
            k += 1
        while j < hi2:
            value = yield from src.load(ctx, j)
            yield from dst.store(ctx, k, value)
            j += 1
            k += 1

    def lower_bound(self, ctx, arr: SimArray, lo: int, hi: int, key: int):
        """First index in sorted arr[lo:hi) whose value is >= key."""
        while lo < hi:
            mid = (lo + hi) // 2
            value = yield from arr.load(ctx, mid)
            yield from ctx.work(2)
            if value < key:
                lo = mid + 1
            else:
                hi = mid
        return lo
