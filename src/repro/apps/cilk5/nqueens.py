"""cilk5-nq: N-queens solution counting by parallel backtracking.

A task represents a partial placement (one queen per decided row).  Above
the spawn-depth cutoff the task forks one child per legal column of the
next row, copying its board prefix into each child's own simulated board —
real parent-to-child data sharing through memory, exercising the DAG
consistency requirement.  Below the cutoff the task backtracks serially.
Solutions are accumulated with ``amo_add`` on a global counter, the
fine-grained synchronization Table III notes for this kernel.
"""

from __future__ import annotations

from repro.apps.common import AppInstance, SimArray, register_app
from repro.core.task import Task

#: Known solution counts for small boards (used by check()).
NQ_SOLUTIONS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}


class _NqTask(Task):
    ARG_WORDS = 2

    def __init__(self, app: "CilkNQueens", board: SimArray, row: int):
        super().__init__()
        self.app = app
        self.board = board
        self.row = row

    def execute(self, rt, ctx):
        app, row = self.app, self.row
        # Read this task's own board prefix (written by the parent).
        placed = []
        for r in range(row):
            value = yield from self.board.load(ctx, r)
            placed.append(value)
        if row >= app.cutoff or row == app.n:
            count = yield from app.serial_count(ctx, placed)
            if count:
                yield from ctx.amo_add(app.counter_addr, count)
            return
        children = []
        for col in range(app.n):
            yield from ctx.work(2)
            if not app.legal(placed, row, col):
                continue
            child_board = SimArray(
                rt.machine, app.n, f"nq_board_{self.task_id}_{col}"
            )
            for r in range(row):
                yield from child_board.store(ctx, r, placed[r])
            yield from child_board.store(ctx, row, col)
            children.append(_NqTask(app, child_board, row + 1))
        if children:
            yield from rt.fork_join(ctx, self, children)


@register_app("cilk5-nq")
class CilkNQueens(AppInstance):
    name = "cilk5-nq"
    pm = "pf"

    def __init__(self, n: int = 6, cutoff: int = 2):
        super().__init__()
        if n not in NQ_SOLUTIONS:
            raise ValueError(f"unsupported board size {n}")
        self.n = n
        self.cutoff = cutoff
        self.counter_addr = 0
        self._root_board: SimArray = None

    def setup(self, machine) -> None:
        self.machine = machine
        self.counter_addr = machine.address_space.alloc_words(1, "nq_count")
        machine.host_write_word(self.counter_addr, 0)
        self._root_board = SimArray(machine, self.n, "nq_board_root")
        self._root_board.host_fill(0)

    def make_root(self, serial: bool = False) -> Task:
        if serial:
            app = CilkNQueens(self.n, cutoff=0)
            app.machine = self.machine
            app.counter_addr = self.counter_addr
            app._root_board = self._root_board
            return _NqTask(app, self._root_board, 0)
        return _NqTask(self, self._root_board, 0)

    def check(self) -> None:
        got = self.machine.host_read_word(self.counter_addr)
        assert got == NQ_SOLUTIONS[self.n], (
            f"cilk5-nq: counted {got}, expected {NQ_SOLUTIONS[self.n]}"
        )

    # ------------------------------------------------------------------
    @staticmethod
    def legal(placed, row: int, col: int) -> bool:
        for r, c in enumerate(placed):
            if c == col or abs(c - col) == row - r:
                return False
        return True

    def serial_count(self, ctx, placed):
        """Serial backtracking below the cutoff (simulated compute only).

        The remaining search keeps its frontier in registers/stack, so we
        charge compute work per placement test rather than memory traffic.
        """
        n = self.n
        count = 0
        stack = [list(placed)]
        while stack:
            board = stack.pop()
            row = len(board)
            if row == n:
                count += 1
                yield from ctx.work(2)
                continue
            for col in range(n):
                yield from ctx.work(2 + row)
                if self.legal(board, row, col):
                    stack.append(board + [col])
        return count
