"""cilk5-mm: blocked (recursive) matrix multiplication.

C = A x B over n x n integer matrices.  The recursive task splits the
output into quadrants; each quadrant needs two sub-products which must be
applied in sequence (C accumulates), so the recursion runs two fork-join
waves of four tasks each — the same shape as the cilk5 ``matmul`` kernel.
Below the grain size a serial triple loop runs on simulated memory.
"""

from __future__ import annotations

from repro.apps.common import AppInstance, SimArray, register_app
from repro.core.task import Task
from repro.engine.rng import XorShift64


class _MmTask(Task):
    """Compute C[cr:cr+s, cc:cc+s] += A[ar.., ak..] * B[ak.., cc..]."""

    ARG_WORDS = 4

    def __init__(self, app: "CilkMatmul", ar, ak, cr, cc, size, grain):
        super().__init__()
        self.app = app
        self.ar = ar
        self.ak = ak
        self.cr = cr
        self.cc = cc
        self.size = size
        self.grain = grain

    def execute(self, rt, ctx):
        app, s = self.app, self.size
        if s <= self.grain:
            yield from app.serial_mm(ctx, self.ar, self.ak, self.cr, self.cc, s)
            return
        h = s // 2
        ar, ak, cr, cc, g = self.ar, self.ak, self.cr, self.cc, self.grain
        wave1 = [
            _MmTask(app, cr, ak, cr, cc, h, g),
            _MmTask(app, cr, ak, cr, cc + h, h, g),
            _MmTask(app, cr + h, ak, cr + h, cc, h, g),
            _MmTask(app, cr + h, ak, cr + h, cc + h, h, g),
        ]
        yield from rt.fork_join(ctx, self, wave1)
        wave2 = [
            _MmTask(app, cr, ak + h, cr, cc, h, g),
            _MmTask(app, cr, ak + h, cr, cc + h, h, g),
            _MmTask(app, cr + h, ak + h, cr + h, cc, h, g),
            _MmTask(app, cr + h, ak + h, cr + h, cc + h, h, g),
        ]
        yield from rt.fork_join(ctx, self, wave2)


@register_app("cilk5-mm")
class CilkMatmul(AppInstance):
    name = "cilk5-mm"
    pm = "ss"

    def __init__(self, n: int = 16, grain: int = 8, seed: int = 13):
        super().__init__()
        if n & (n - 1):
            raise ValueError("matrix size must be a power of two")
        self.n = n
        self.grain = grain
        self.seed = seed
        self.a: SimArray = None
        self.b: SimArray = None
        self.c: SimArray = None
        self._a_in = None
        self._b_in = None

    def setup(self, machine) -> None:
        self.machine = machine
        rng = XorShift64(self.seed)
        n = self.n
        self._a_in = [rng.randint(0, 99) for _ in range(n * n)]
        self._b_in = [rng.randint(0, 99) for _ in range(n * n)]
        self.a = SimArray(machine, n * n, "mm_a")
        self.b = SimArray(machine, n * n, "mm_b")
        self.c = SimArray(machine, n * n, "mm_c")
        self.a.host_init(self._a_in)
        self.b.host_init(self._b_in)
        self.c.host_fill(0)

    def make_root(self, serial: bool = False) -> Task:
        grain = self.n if serial else self.grain
        return _MmTask(self, 0, 0, 0, 0, self.n, grain)

    def check(self) -> None:
        n = self.n
        result = self.c.host_read()
        for i in range(n):
            for j in range(n):
                want = sum(
                    self._a_in[i * n + k] * self._b_in[k * n + j] for k in range(n)
                )
                assert result[i * n + j] == want, "cilk5-mm: product mismatch"

    # ------------------------------------------------------------------
    def serial_mm(self, ctx, ar: int, ak: int, cr: int, cc: int, s: int):
        """C[cr.., cc..] += A[ar.., ak..] * B[ak.., cc..] (s x s blocks)."""
        n, a, b, c = self.n, self.a, self.b, self.c
        for i in range(s):
            for j in range(s):
                acc = yield from c.load(ctx, (cr + i) * n + (cc + j))
                for k in range(s):
                    av = yield from a.load(ctx, (ar + i) * n + (ak + k))
                    bv = yield from b.load(ctx, (ak + k) * n + (cc + j))
                    yield from ctx.work(2)
                    acc += av * bv
                yield from c.store(ctx, (cr + i) * n + (cc + j), acc)
