"""cilk5-lu: blocked LU decomposition (no pivoting).

Right-looking blocked LU over an n x n matrix of floats stored row-major in
simulated memory.  For each diagonal block: factor it serially, then solve
the row/column panels in parallel (fork-join), then apply the Schur
complement update to the trailing blocks in parallel.  The grain is the
block size.  The input is made diagonally dominant so no pivoting is
required, matching the cilk5 kernel.
"""

from __future__ import annotations

from repro.apps.common import AppInstance, SimArray, register_app
from repro.core.task import FuncTask, Task
from repro.engine.rng import XorShift64


class _LuRootTask(Task):
    ARG_WORDS = 1

    def __init__(self, app: "CilkLU", block_size: int):
        super().__init__()
        self.app = app
        self.block_size = block_size

    def execute(self, rt, ctx):
        app, b = self.app, self.block_size
        nb = app.n // b
        for k in range(nb):
            yield from app.factor_block(ctx, k * b, b)
            panels = []
            for j in range(k + 1, nb):
                panels.append(self._panel_task(app, k, j, b, row=True))
                panels.append(self._panel_task(app, k, j, b, row=False))
            if panels:
                yield from rt.fork_join(ctx, self, panels)
            updates = [
                FuncTask(self._schur(app, i * b, j * b, k * b, b))
                for i in range(k + 1, nb)
                for j in range(k + 1, nb)
            ]
            if updates:
                yield from rt.fork_join(ctx, self, updates)

    @staticmethod
    def _panel_task(app, k, j, b, row):
        if row:
            return FuncTask(lambda rt, ctx, a=app: a.solve_row_panel(ctx, k * b, j * b, b))
        return FuncTask(lambda rt, ctx, a=app: a.solve_col_panel(ctx, j * b, k * b, b))

    @staticmethod
    def _schur(app, bi, bj, bk, b):
        return lambda rt, ctx: app.schur_update(ctx, bi, bj, bk, b)


@register_app("cilk5-lu")
class CilkLU(AppInstance):
    name = "cilk5-lu"
    pm = "ss"

    def __init__(self, n: int = 16, grain: int = 4, seed: int = 11):
        super().__init__()
        if n % grain != 0:
            raise ValueError("matrix size must be a multiple of the block size")
        self.n = n
        self.grain = grain
        self.seed = seed
        self.a: SimArray = None
        self._input = None

    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        rng = XorShift64(self.seed)
        n = self.n
        values = [rng.random() for _ in range(n * n)]
        # Diagonal dominance avoids tiny pivots (the cilk5 input is similar).
        for i in range(n):
            values[i * n + i] += n
        self._input = values
        self.a = SimArray(machine, n * n, "lu_a")
        self.a.host_init(values)

    def make_root(self, serial: bool = False) -> Task:
        self._last_block = self.n if serial else self.grain
        return _LuRootTask(self, self._last_block)

    def check(self) -> None:
        result = self.a.host_read()
        expected = self._reference(getattr(self, "_last_block", self.grain))
        for got, want in zip(result, expected):
            assert abs(got - want) < 1e-9, "cilk5-lu: factorization mismatch"

    def _reference(self, block: int):
        """Pure-Python blocked LU with the identical update order."""
        n = self.n
        a = list(self._input)

        def idx(i, j):
            return i * n + j

        nb = n // block
        for kb in range(nb):
            base = kb * block
            # factor diagonal block
            for k in range(base, base + block):
                for i in range(k + 1, base + block):
                    a[idx(i, k)] /= a[idx(k, k)]
                    for j in range(k + 1, base + block):
                        a[idx(i, j)] -= a[idx(i, k)] * a[idx(k, j)]
            for jb in range(kb + 1, nb):
                col = jb * block
                for k in range(base, base + block):
                    for i in range(k + 1, base + block):
                        for j in range(col, col + block):
                            a[idx(i, j)] -= a[idx(i, k)] * a[idx(k, j)]
            for ib in range(kb + 1, nb):
                row = ib * block
                for k in range(base, base + block):
                    for i in range(row, row + block):
                        a[idx(i, k)] /= a[idx(k, k)]
                        for j in range(k + 1, base + block):
                            a[idx(i, j)] -= a[idx(i, k)] * a[idx(k, j)]
            for ib in range(kb + 1, nb):
                for jb2 in range(kb + 1, nb):
                    for i in range(ib * block, ib * block + block):
                        for k in range(base, base + block):
                            lik = a[idx(i, k)]
                            for j in range(jb2 * block, jb2 * block + block):
                                a[idx(i, j)] -= lik * a[idx(k, j)]
        return a

    # ------------------------------------------------------------------
    # Simulated kernels
    # ------------------------------------------------------------------
    def _idx(self, i: int, j: int) -> int:
        return i * self.n + j

    def factor_block(self, ctx, base: int, b: int):
        """Serial LU of the diagonal block at (base, base)."""
        end = min(base + b, self.n)
        a = self.a
        for k in range(base, end):
            akk = yield from a.load(ctx, self._idx(k, k))
            for i in range(k + 1, end):
                aik = yield from a.load(ctx, self._idx(i, k))
                lik = aik / akk
                yield from ctx.work(2)
                yield from a.store(ctx, self._idx(i, k), lik)
                for j in range(k + 1, end):
                    akj = yield from a.load(ctx, self._idx(k, j))
                    aij = yield from a.load(ctx, self._idx(i, j))
                    yield from ctx.work(2)
                    yield from a.store(ctx, self._idx(i, j), aij - lik * akj)

    def solve_row_panel(self, ctx, base: int, col: int, b: int):
        """U panel: apply L(base block) to columns [col, col+b)."""
        a = self.a
        for k in range(base, base + b):
            for i in range(k + 1, base + b):
                lik = yield from a.load(ctx, self._idx(i, k))
                for j in range(col, col + b):
                    akj = yield from a.load(ctx, self._idx(k, j))
                    aij = yield from a.load(ctx, self._idx(i, j))
                    yield from ctx.work(2)
                    yield from a.store(ctx, self._idx(i, j), aij - lik * akj)

    def solve_col_panel(self, ctx, row: int, base: int, b: int):
        """L panel: apply U(base block) to rows [row, row+b)."""
        a = self.a
        for k in range(base, base + b):
            akk = yield from a.load(ctx, self._idx(k, k))
            for i in range(row, row + b):
                aik = yield from a.load(ctx, self._idx(i, k))
                lik = aik / akk
                yield from ctx.work(2)
                yield from a.store(ctx, self._idx(i, k), lik)
                for j in range(k + 1, base + b):
                    akj = yield from a.load(ctx, self._idx(k, j))
                    aij = yield from a.load(ctx, self._idx(i, j))
                    yield from ctx.work(2)
                    yield from a.store(ctx, self._idx(i, j), aij - lik * akj)

    def schur_update(self, ctx, bi: int, bj: int, bk: int, b: int):
        """Trailing update: A[bi][bj] -= A[bi][bk] * A[bk][bj]."""
        a = self.a
        for i in range(bi, bi + b):
            for k in range(bk, bk + b):
                lik = yield from a.load(ctx, self._idx(i, k))
                for j in range(bj, bj + b):
                    akj = yield from a.load(ctx, self._idx(k, j))
                    aij = yield from a.load(ctx, self._idx(i, j))
                    yield from ctx.work(2)
                    yield from a.store(ctx, self._idx(i, j), aij - lik * akj)
