"""Ligra's edgeMap / vertexMap programming interface (framework layer).

Ligra [Shun & Blelloch, PPoPP'13] structures graph algorithms as a sequence
of rounds over a *frontier* (a vertex subset):

* ``edge_map(graph, frontier, F)`` — for every edge (u, v) with u in the
  frontier, apply ``F.update(u, v)``; v joins the output frontier when the
  update returns True and ``F.cond(v)`` holds.
* ``vertex_map(frontier, F)`` — apply F to every frontier vertex.

The paper's eight Ligra kernels are expressed in this style in the original
C++; our ports in ``repro.apps.ligra_apps`` inline the pattern per kernel
for clarity.  This module provides the actual reusable framework (dense
frontier representation, double buffering, frontier-size tracking through a
shared counter) so new algorithms can be written exactly the Ligra way —
see :class:`repro.apps.ligra_apps.bfs_em.LigraBfsEdgeMap` and the tests.

All framework state lives in simulated memory: frontier membership flags,
the size counter (AMO-updated), and of course the CSR arrays — so the
framework inherits the DAG-consistency requirements the runtime satisfies.
"""

from __future__ import annotations

from repro.apps.common import SimArray
from repro.apps.ligra.graph import SimGraph
from repro.core.patterns import parallel_for


class DenseFrontier:
    """A dense vertex subset: one word flag per vertex, plus a size counter.

    Two frontiers are typically used in alternation (cur/next); the round
    driver swaps them.  ``clear-on-read`` semantics: a vertex's flag is
    reset by the chunk that consumes it, so a frontier object is immediately
    reusable as the *next* frontier two rounds later.
    """

    def __init__(self, machine, n: int, name: str):
        self.n = n
        self.flags = SimArray(machine, n, f"{name}_flags")
        self.flags.host_fill(0)
        self.size_addr = machine.address_space.alloc_words(1, f"{name}_size")
        machine.host_write_word(self.size_addr, 0)

    # Generator helpers -------------------------------------------------
    def add(self, ctx, v: int):
        """Insert v (idempotent store; caller counts separately)."""
        yield from self.flags.store(ctx, v, 1)

    def test_and_clear(self, ctx, v: int):
        active = yield from self.flags.load(ctx, v)
        if active:
            yield from self.flags.store(ctx, v, 0)
        return bool(active)

    def reset_size(self, ctx):
        yield from ctx.amo("xchg", self.size_addr, 0)

    def add_size(self, ctx, count: int):
        if count:
            yield from ctx.amo_add(self.size_addr, count)

    def read_size(self, ctx):
        size = yield from ctx.load(self.size_addr)
        return size


class EdgeMapF:
    """User functor for :func:`edge_map` (Ligra's ``struct F``).

    Subclasses implement generator methods:

    * ``update(ctx, u, v)``  -> True if v should join the output frontier
      (must itself be idempotent/atomic, e.g. CAS-based);
    * ``cond(ctx, v)``       -> False to skip the edge entirely.
    """

    def update(self, ctx, u: int, v: int):
        raise NotImplementedError
        yield  # pragma: no cover

    def cond(self, ctx, v: int):
        return True
        yield  # pragma: no cover


def edge_map(rt, ctx, graph: SimGraph, frontier_cur: DenseFrontier,
             frontier_next: DenseFrontier, functor: EdgeMapF, grain: int):
    """Apply ``functor`` over all out-edges of the current frontier.

    Returns nothing; the output frontier's size counter holds the number
    of newly added vertices (read it with ``frontier_next.read_size``).
    """
    yield from frontier_next.reset_size(ctx)

    def body(rt, ctx, lo, hi):
        added = 0
        for u in range(lo, hi):
            active = yield from frontier_cur.test_and_clear(ctx, u)
            yield from ctx.work(1)
            if not active:
                continue
            start, end = yield from graph.edge_range(ctx, u)
            for e in range(start, end):
                v = yield from graph.edge_target(ctx, e)
                ok = yield from functor.cond(ctx, v)
                yield from ctx.work(1)
                if not ok:
                    continue
                joined = yield from functor.update(ctx, u, v)
                if joined:
                    yield from frontier_next.add(ctx, v)
                    added += 1
        yield from frontier_next.add_size(ctx, added)

    yield from parallel_for(rt, ctx, 0, graph.n, body, grain)


def vertex_map(rt, ctx, n: int, functor, grain: int):
    """Apply a generator ``functor(ctx, v)`` to every vertex in [0, n)."""

    def body(rt, ctx, lo, hi):
        for v in range(lo, hi):
            yield from functor(ctx, v)

    yield from parallel_for(rt, ctx, 0, n, body, grain)
