"""Graph substrate for the Ligra-style kernels.

* :func:`rmat` — a from-scratch deterministic R-MAT edge generator (the
  paper's inputs are rMat graphs), recursively placing each edge into a
  quadrant with the classic (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) split.
* :class:`HostGraph` — host-side CSR with symmetrization, deduplication,
  sorted adjacency lists, and deterministic edge weights.
* :class:`SimGraph` — the CSR arrays in simulated memory with generator
  accessors used by the kernels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.common import SimArray
from repro.engine.rng import XorShift64


def rmat(
    scale: int,
    avg_degree: int,
    seed: int = 42,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> List[Tuple[int, int]]:
    """Generate ~``n * avg_degree`` R-MAT edges over ``n = 2**scale`` vertices."""
    n = 1 << scale
    n_edges = n * avg_degree
    rng = XorShift64(seed)
    edges = []
    for _ in range(n_edges):
        u = v = 0
        half = n >> 1
        while half:
            r = rng.random()
            if r < a:
                pass
            elif r < a + b:
                v += half
            elif r < a + b + c:
                u += half
            else:
                u += half
                v += half
            half >>= 1
        edges.append((u, v))
    return edges


class HostGraph:
    """Host-side CSR graph built from an edge list."""

    def __init__(
        self,
        n: int,
        edges: List[Tuple[int, int]],
        symmetric: bool = True,
        weighted: bool = False,
        weight_seed: int = 5,
    ):
        edge_set = set()
        for u, v in edges:
            if u == v:
                continue
            edge_set.add((u, v))
            if symmetric:
                edge_set.add((v, u))
        adjacency: List[List[int]] = [[] for _ in range(n)]
        for u, v in sorted(edge_set):
            adjacency[u].append(v)
        self.n = n
        self.adj = adjacency
        self.m = sum(len(nbrs) for nbrs in adjacency)
        self.offsets = [0] * (n + 1)
        for v in range(n):
            self.offsets[v + 1] = self.offsets[v] + len(adjacency[v])
        self.edge_targets = [v for nbrs in adjacency for v in nbrs]
        self.weights: Optional[List[int]] = None
        if weighted:
            rng = XorShift64(weight_seed)
            self.weights = [1 + rng.randint(0, 7) for _ in range(self.m)]

    def degree(self, v: int) -> int:
        return self.offsets[v + 1] - self.offsets[v]

    def neighbors(self, v: int) -> List[int]:
        return self.adj[v]

    def edge_weight(self, v: int, edge_index: int) -> int:
        """Weight of the ``edge_index``-th outgoing edge of ``v``."""
        if self.weights is None:
            return 1
        return self.weights[self.offsets[v] + edge_index]


def rmat_graph(
    scale: int,
    avg_degree: int = 8,
    seed: int = 42,
    symmetric: bool = True,
    weighted: bool = False,
) -> HostGraph:
    """Convenience: generate an rMat edge list and build the CSR graph."""
    n = 1 << scale
    return HostGraph(n, rmat(scale, avg_degree, seed), symmetric, weighted)


class SimGraph:
    """CSR graph resident in simulated memory."""

    def __init__(self, machine, graph: HostGraph, name: str = "graph"):
        self.host = graph
        self.n = graph.n
        self.m = graph.m
        self.offsets = SimArray(machine, graph.n + 1, f"{name}_offsets")
        self.offsets.host_init(graph.offsets)
        self.edges = SimArray(machine, max(1, graph.m), f"{name}_edges")
        if graph.m:
            self.edges.host_init(graph.edge_targets)
        self.weights: Optional[SimArray] = None
        if graph.weights is not None:
            self.weights = SimArray(machine, max(1, graph.m), f"{name}_weights")
            self.weights.host_init(graph.weights)

    # ------------------------------------------------------------------
    # Generator accessors
    # ------------------------------------------------------------------
    def edge_range(self, ctx, v: int):
        """Load [start, end) of v's adjacency (two offset loads)."""
        start = yield from self.offsets.load(ctx, v)
        end = yield from self.offsets.load(ctx, v + 1)
        return start, end

    def edge_target(self, ctx, edge_index: int):
        target = yield from self.edges.load(ctx, edge_index)
        return target

    def edge_weight(self, ctx, edge_index: int):
        if self.weights is None:
            return 1
        weight = yield from self.weights.load(ctx, edge_index)
        return weight
