"""Shared machinery for the Ligra-style applications.

All eight graph kernels follow the same pattern: an rMat input graph, flat
vertex-property arrays in simulated memory, and a root task that runs
synchronous rounds of ``parallel_for`` over the vertex set (loop-level
parallelization, "pf" in Table III).  The grain size — vertices per leaf
task — is the task-granularity knob of Section V-D.

Cross-round visibility relies entirely on the runtime's DAG-consistency
machinery (flush on steal/handoff, invalidate on join), so these kernels
are genuine end-to-end tests of the Figure 3 protocols.  Counters that
multiple leaves update concurrently use AMOs (``amo_add``/``amo_or``/CAS),
the fine-grained synchronization the paper calls out for Ligra apps.
"""

from __future__ import annotations

from typing import List

from repro.apps.common import AppInstance, SimArray
from repro.apps.ligra.graph import HostGraph, SimGraph, rmat_graph
from repro.core.patterns import parallel_for
from repro.core.task import Task


class _LigraRootTask(Task):
    ARG_WORDS = 1

    def __init__(self, app: "LigraApp", grain: int):
        super().__init__()
        self.app = app
        self.grain = grain

    def execute(self, rt, ctx):
        yield from self.app.run(rt, ctx, self.grain)


class LigraApp(AppInstance):
    """Base class: graph setup + round-synchronous parallel_for helpers."""

    pm = "pf"
    weighted = False

    def __init__(self, scale: int = 7, avg_degree: int = 8, grain: int = 16, seed: int = 42):
        super().__init__()
        self.scale = scale
        self.avg_degree = avg_degree
        self.grain = max(1, grain)
        self.seed = seed
        self.graph: HostGraph = None
        self.g: SimGraph = None

    # ------------------------------------------------------------------
    # AppInstance contract
    # ------------------------------------------------------------------
    def setup(self, machine) -> None:
        self.machine = machine
        self.graph = rmat_graph(
            self.scale, self.avg_degree, self.seed, symmetric=True, weighted=self.weighted
        )
        self.g = SimGraph(machine, self.graph, self.name.replace("-", "_"))
        self.setup_arrays(machine)

    def setup_arrays(self, machine) -> None:
        """Allocate and host-initialize the app's vertex property arrays."""
        raise NotImplementedError

    def make_root(self, serial: bool = False) -> Task:
        grain = self.graph.n if serial else self.grain
        return _LigraRootTask(self, grain)

    def run(self, rt, ctx, grain: int):
        """The kernel body (generator); implemented by each app."""
        raise NotImplementedError
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    def array(self, name: str, values: List[int]) -> SimArray:
        arr = SimArray(self.machine, len(values), f"{self.name}_{name}")
        arr.host_init(values)
        return arr

    def counter(self, name: str) -> int:
        addr = self.machine.address_space.alloc_words(1, f"{self.name}_{name}")
        self.machine.host_write_word(addr, 0)
        return addr

    def pfor(self, rt, ctx, body, grain: int, n: int = -1):
        """parallel_for over [0, n) vertices (default: the whole vertex set)."""
        hi = self.graph.n if n < 0 else n
        yield from parallel_for(rt, ctx, 0, hi, body, grain)

    def source_vertex(self) -> int:
        """Highest-degree vertex: the conventional BFS/SSSP source."""
        degrees = [self.graph.degree(v) for v in range(self.graph.n)]
        return max(range(self.graph.n), key=lambda v: (degrees[v], -v))
