"""Ligra-style graph processing substrate."""

from repro.apps.ligra.base import LigraApp
from repro.apps.ligra.edgemap import DenseFrontier, EdgeMapF, edge_map, vertex_map
from repro.apps.ligra.graph import HostGraph, SimGraph, rmat, rmat_graph

__all__ = [
    "LigraApp",
    "HostGraph",
    "SimGraph",
    "rmat",
    "rmat_graph",
    "DenseFrontier",
    "EdgeMapF",
    "edge_map",
    "vertex_map",
]
