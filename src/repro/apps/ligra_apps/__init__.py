"""Ligra application kernels (loop-level parallel_for parallelism)."""

from repro.apps.ligra_apps.bc import LigraBetweennessCentrality
from repro.apps.ligra_apps.bf import LigraBellmanFord
from repro.apps.ligra_apps.bfs import LigraBfs
from repro.apps.ligra_apps.bfs_em import LigraBfsEdgeMap
from repro.apps.ligra_apps.bfsbv import LigraBfsBitvector
from repro.apps.ligra_apps.cc import LigraConnectedComponents
from repro.apps.ligra_apps.mis import LigraMis
from repro.apps.ligra_apps.pagerank import LigraPageRank
from repro.apps.ligra_apps.radii import LigraRadii
from repro.apps.ligra_apps.tc import LigraTriangleCounting

__all__ = [
    "LigraBetweennessCentrality",
    "LigraBellmanFord",
    "LigraBfs",
    "LigraBfsBitvector",
    "LigraBfsEdgeMap",
    "LigraConnectedComponents",
    "LigraMis",
    "LigraPageRank",
    "LigraRadii",
    "LigraTriangleCounting",
]
