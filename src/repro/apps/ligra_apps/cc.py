"""ligra-cc: connected components by label propagation.

Every vertex starts with its own id as label; active vertices push their
label to neighbors with ``amo_min`` (Ligra's writeMin), activating any
neighbor whose label shrank.  At convergence every vertex holds the minimum
vertex id of its component.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp


@register_app("ligra-cc")
class LigraConnectedComponents(LigraApp):
    name = "ligra-cc"

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        self.labels = self.array("labels", list(range(n)))
        self.front = [self.array("front0", [1] * n), self.array("front1", [0] * n)]
        self.count_addr = self.counter("changed")

    def run(self, rt, ctx, grain: int):
        round_index = 0
        while round_index < self.graph.n:
            yield from ctx.amo("xchg", self.count_addr, 0)
            cur = self.front[round_index % 2]
            nxt = self.front[(round_index + 1) % 2]

            def body(rt, ctx, lo, hi, cur=cur, nxt=nxt):
                changed = 0
                for v in range(lo, hi):
                    active = yield from cur.load(ctx, v)
                    yield from ctx.work(1)
                    if not active:
                        continue
                    yield from cur.store(ctx, v, 0)
                    label_v = yield from self.labels.load(ctx, v)
                    start, end = yield from self.g.edge_range(ctx, v)
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        label_u = yield from self.labels.load(ctx, u)
                        yield from ctx.work(1)
                        if label_v < label_u:
                            old = yield from self.labels.amo(ctx, "min", u, label_v)
                            if label_v < old:
                                yield from nxt.store(ctx, u, 1)
                                changed += 1
                if changed:
                    yield from ctx.amo_add(self.count_addr, changed)

            yield from self.pfor(rt, ctx, body, grain)
            changed = yield from ctx.load(self.count_addr)
            if changed == 0:
                break
            round_index += 1

    def check(self) -> None:
        expected = self._reference_components()
        got = self.labels.host_read()
        assert got == expected, "ligra-cc: component labels mismatch"

    def _reference_components(self):
        n = self.graph.n
        labels = list(range(n))
        # Min-label within each component, via BFS from each unvisited min.
        seen = [False] * n
        for start in range(n):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            stack = [start]
            while stack:
                v = stack.pop()
                for u in self.graph.neighbors(v):
                    if not seen[u]:
                        seen[u] = True
                        component.append(u)
                        stack.append(u)
            lowest = min(component)
            for v in component:
                labels[v] = lowest
        return labels
