"""ligra-tc: triangle counting by sorted adjacency intersection.

Counts each triangle once under the ordering u < v < w.  Parallelization is
*edge-parallel*: the task range spans edge indices, and each directed edge
(u, v) with v > u contributes one intersection |adj(u) ∩ adj(v) ∩ {>v}|
computed by a two-pointer merge over the sorted adjacency lists.  Edge
granularity distributes a hub vertex's intersections over many tasks, the
same trick real triangle-counting kernels use.  Leaves accumulate local
counts and publish with a single ``amo_add``.

The number of edges per task is the granularity knob swept in Figure 4 of
the paper ("triangles processed by each task").
"""

from __future__ import annotations

from repro.apps.common import SimArray, register_app
from repro.apps.ligra.base import LigraApp
from repro.core.patterns import parallel_for


@register_app("ligra-tc")
class LigraTriangleCounting(LigraApp):
    name = "ligra-tc"

    def setup_arrays(self, machine) -> None:
        self.count_addr = self.counter("triangles")
        # Edge source array: CSR row-expansion, part of the input encoding.
        sources = []
        for u in range(self.graph.n):
            sources.extend([u] * self.graph.degree(u))
        self.edge_src = SimArray(machine, max(1, self.graph.m), "ligra_tc_esrc")
        if self.graph.m:
            self.edge_src.host_init(sources)

    def make_root(self, serial: bool = False):
        grain = max(1, self.graph.m if serial else self.grain)
        from repro.apps.ligra.base import _LigraRootTask

        return _LigraRootTask(self, grain)

    def run(self, rt, ctx, grain: int):
        def body(rt, ctx, lo, hi):
            local = 0
            for e in range(lo, hi):
                u = yield from self.edge_src.load(ctx, e)
                v = yield from self.g.edge_target(ctx, e)
                yield from ctx.work(1)
                if v <= u:
                    continue
                local += yield from self._intersect_gt(ctx, u, v)
            if local:
                yield from ctx.amo_add(self.count_addr, local)

        yield from parallel_for(rt, ctx, 0, self.graph.m, body, grain)

    def _intersect_gt(self, ctx, u: int, v: int):
        """|adj(u) ∩ adj(v) ∩ {w : w > v}| via two-pointer merge."""
        g = self.g
        u_start, u_end = yield from g.edge_range(ctx, u)
        v_start, v_end = yield from g.edge_range(ctx, v)
        i, j = u_start, v_start
        count = 0
        a = b = None
        while i < u_end and j < v_end:
            if a is None:
                a = yield from g.edge_target(ctx, i)
            if b is None:
                b = yield from g.edge_target(ctx, j)
            yield from ctx.work(1)
            if a == b:
                if a > v:
                    count += 1
                i += 1
                j += 1
                a = b = None
            elif a < b:
                i += 1
                a = None
            else:
                j += 1
                b = None
        return count

    def check(self) -> None:
        got = self.machine.host_read_word(self.count_addr)
        expected = self._reference_count()
        assert got == expected, f"ligra-tc: counted {got}, expected {expected}"

    def _reference_count(self):
        count = 0
        adj_sets = [set(nbrs) for nbrs in self.graph.adj]
        for u in range(self.graph.n):
            for v in self.graph.neighbors(u):
                if v <= u:
                    continue
                for w in self.graph.neighbors(v):
                    if w > v and w in adj_sets[u]:
                        count += 1
        return count
