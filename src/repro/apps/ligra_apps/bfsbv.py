"""ligra-bfsbv: breadth-first search with bit-vector frontiers.

The bit-vector optimized BFS variant: visited set and both frontiers are
packed 64 vertices per word.  Chunks skip whole zero words of the frontier
(fewer loads than ligra-bfs) and claim vertices with ``amo_or`` on the
visited words, so several discoveries share one atomic word update.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp

BITS = 64


@register_app("ligra-bfsbv")
class LigraBfsBitvector(LigraApp):
    name = "ligra-bfsbv"

    def setup_arrays(self, machine) -> None:
        n_words = (self.graph.n + BITS - 1) // BITS
        self.n_words = n_words
        self.visited = self.array("visited", [0] * n_words)
        self.front = [
            self.array("front0", [0] * n_words),
            self.array("front1", [0] * n_words),
        ]
        self.level = self.array("level", [-1] * self.graph.n)
        self.count_addr = self.counter("frontier_size")
        self.src = self.source_vertex()

    def run(self, rt, ctx, grain: int):
        src = self.src
        yield from self.visited.amo(ctx, "or", src // BITS, 1 << (src % BITS))
        yield from self.front[0].store(ctx, src // BITS, 1 << (src % BITS))
        yield from self.level.store(ctx, src, 0)
        round_index = 0
        while True:
            yield from ctx.amo("xchg", self.count_addr, 0)
            cur = self.front[round_index % 2]
            nxt = self.front[(round_index + 1) % 2]
            depth = round_index + 1

            def body(rt, ctx, lo, hi, cur=cur, nxt=nxt, depth=depth):
                # A frontier word belongs to the chunk containing its first
                # vertex, so each word is read-and-cleared by exactly one
                # leaf task per round.
                discovered = 0
                word_lo = (lo + BITS - 1) // BITS
                word_hi = (hi + BITS - 1) // BITS
                for w in range(word_lo, min(word_hi, self.n_words)):
                    bits = yield from cur.load(ctx, w)
                    yield from ctx.work(1)
                    if not bits:
                        continue  # the bit-vector win: one load skips 64 vertices
                    yield from cur.store(ctx, w, 0)
                    while bits:
                        low = bits & (-bits)
                        bits ^= low
                        v = w * BITS + low.bit_length() - 1
                        yield from ctx.work(2)
                        start, end = yield from self.g.edge_range(ctx, v)
                        for e in range(start, end):
                            u = yield from self.g.edge_target(ctx, e)
                            mask = 1 << (u % BITS)
                            seen = yield from self.visited.load(ctx, u // BITS)
                            yield from ctx.work(1)
                            if seen & mask:
                                continue
                            old = yield from self.visited.amo(ctx, "or", u // BITS, mask)
                            if not old & mask:
                                yield from self.nxt_set(ctx, nxt, u)
                                yield from self.level.store(ctx, u, depth)
                                discovered += 1
                if discovered:
                    yield from ctx.amo_add(self.count_addr, discovered)

            yield from self.pfor(rt, ctx, body, grain)
            size = yield from ctx.load(self.count_addr)
            if size == 0:
                break
            round_index += 1

    def nxt_set(self, ctx, nxt, v: int):
        yield from nxt.amo(ctx, "or", v // BITS, 1 << (v % BITS))

    def check(self) -> None:
        from collections import deque

        dist = [-1] * self.graph.n
        dist[self.src] = 0
        queue = deque([self.src])
        while queue:
            v = queue.popleft()
            for u in self.graph.neighbors(v):
                if dist[u] == -1:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        got = self.level.host_read()
        assert got == dist, "ligra-bfsbv: level array mismatch"
