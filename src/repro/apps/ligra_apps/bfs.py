"""ligra-bfs: round-synchronous breadth-first search.

Dense frontier representation (one word per vertex, double-buffered by
round parity).  Each frontier vertex claims undiscovered neighbors with a
compare-and-swap on the parent array — Ligra's non-deterministic
fine-grained synchronization — and leaves accumulate the next frontier size
with one ``amo_add`` per chunk.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp


@register_app("ligra-bfs")
class LigraBfs(LigraApp):
    name = "ligra-bfs"

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        self.parent = self.array("parent", [-1] * n)
        self.front = [self.array("front0", [0] * n), self.array("front1", [0] * n)]
        self.count_addr = self.counter("frontier_size")
        self.src = self.source_vertex()

    def run(self, rt, ctx, grain: int):
        src = self.src
        yield from self.parent.store(ctx, src, src)
        yield from self.front[0].store(ctx, src, 1)
        round_index = 0
        while True:
            yield from ctx.amo("xchg", self.count_addr, 0)
            cur = self.front[round_index % 2]
            nxt = self.front[(round_index + 1) % 2]

            def body(rt, ctx, lo, hi, cur=cur, nxt=nxt):
                claimed = 0
                for v in range(lo, hi):
                    active = yield from cur.load(ctx, v)
                    yield from ctx.work(1)
                    if not active:
                        continue
                    yield from cur.store(ctx, v, 0)
                    start, end = yield from self.g.edge_range(ctx, v)
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        p = yield from self.parent.load(ctx, u)
                        yield from ctx.work(1)
                        if p != -1:
                            continue
                        old = yield from self.parent.cas(ctx, u, -1, v)
                        if old == -1:
                            yield from nxt.store(ctx, u, 1)
                            claimed += 1
                if claimed:
                    yield from ctx.amo_add(self.count_addr, claimed)

            yield from self.pfor(rt, ctx, body, grain)
            size = yield from ctx.load(self.count_addr)
            if size == 0:
                break
            round_index += 1

    def check(self) -> None:
        dist = self._reference_distances()
        parent = self.parent.host_read()
        levels = self._levels_from_parents(parent)
        for v in range(self.graph.n):
            if dist[v] is None:
                assert parent[v] == -1, f"ligra-bfs: unreachable {v} got a parent"
            else:
                assert levels[v] == dist[v], (
                    f"ligra-bfs: vertex {v} at level {levels[v]}, expected {dist[v]}"
                )

    # ------------------------------------------------------------------
    def _reference_distances(self):
        from collections import deque

        dist = [None] * self.graph.n
        dist[self.src] = 0
        queue = deque([self.src])
        while queue:
            v = queue.popleft()
            for u in self.graph.neighbors(v):
                if dist[u] is None:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        return dist

    def _levels_from_parents(self, parent):
        levels = [None] * self.graph.n
        levels[self.src] = 0
        for v in range(self.graph.n):
            if parent[v] == -1 or v == self.src:
                continue
            # follow the parent chain (guaranteed acyclic for a BFS tree)
            chain = []
            u = v
            while levels[u] is None:
                chain.append(u)
                assert parent[u] != -1, f"ligra-bfs: broken parent chain at {u}"
                assert u in self.graph.neighbors(parent[u]), (
                    f"ligra-bfs: {parent[u]} is not a neighbor of {u}"
                )
                u = parent[u]
            base = levels[u]
            for node in reversed(chain):
                base += 1
                levels[node] = base
        return levels
