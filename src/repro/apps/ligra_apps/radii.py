"""ligra-radii: graph radius/eccentricity estimation by multi-source BFS.

K <= 64 sources run simultaneous BFS, one bit per source packed into a
single word per vertex.  Each round every vertex ORs its neighbors' bit
sets (pull direction, double buffered, hence fully deterministic); the last
round in which a vertex's set grew estimates its eccentricity, and the max
over vertices estimates the graph radius — the same bit-trick the Ligra
radii kernel uses.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp


@register_app("ligra-radii")
class LigraRadii(LigraApp):
    name = "ligra-radii"

    K = 64

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        self.k = min(self.K, n)
        # Sources: the k highest-degree vertices (deterministic spread).
        by_degree = sorted(range(n), key=lambda v: (-self.graph.degree(v), v))
        self.sources = by_degree[: self.k]
        init = [0] * n
        for bit, src in enumerate(self.sources):
            init[src] = 1 << bit
        self.vis = [self.array("vis0", init), self.array("vis1", list(init))]
        self.radii = self.array("radii", [0] * n)
        self.changed_addr = self.counter("changed")

    def run(self, rt, ctx, grain: int):
        round_index = 1
        while round_index <= self.graph.n:
            yield from ctx.amo("xchg", self.changed_addr, 0)
            cur = self.vis[(round_index - 1) % 2]
            nxt = self.vis[round_index % 2]

            def body(rt, ctx, lo, hi, cur=cur, nxt=nxt, r=round_index):
                any_changed = 0
                for v in range(lo, hi):
                    bits = yield from cur.load(ctx, v)
                    acc = bits
                    start, end = yield from self.g.edge_range(ctx, v)
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        nbr_bits = yield from cur.load(ctx, u)
                        yield from ctx.work(1)
                        acc |= nbr_bits
                    yield from nxt.store(ctx, v, acc)
                    if acc != bits:
                        yield from self.radii.store(ctx, v, r)
                        any_changed = 1
                if any_changed:
                    yield from ctx.amo_or(self.changed_addr, 1)

            yield from self.pfor(rt, ctx, body, grain)
            changed = yield from ctx.load(self.changed_addr)
            if changed == 0:
                break
            round_index += 1

    def check(self) -> None:
        expected_radii, _ = self._reference()
        got = self.radii.host_read()
        assert got == expected_radii, "ligra-radii: eccentricity estimates mismatch"

    def estimated_radius(self) -> int:
        return max(self.radii.host_read())

    def _reference(self):
        n = self.graph.n
        vis = [0] * n
        for bit, src in enumerate(self.sources):
            vis[src] = 1 << bit
        radii = [0] * n
        round_index = 1
        while round_index <= n:
            nxt = [0] * n
            changed = False
            for v in range(n):
                acc = vis[v]
                for u in self.graph.neighbors(v):
                    acc |= vis[u]
                nxt[v] = acc
                if acc != vis[v]:
                    radii[v] = round_index
                    changed = True
            vis = nxt
            if not changed:
                break
            round_index += 1
        return radii, vis
