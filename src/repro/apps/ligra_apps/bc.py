"""ligra-bc: single-source betweenness centrality (Brandes, level-sync).

Forward pass: BFS from the source accumulating shortest-path counts
(``sigma``) with ``amo_add`` — the path-count contributions commute, so the
result is deterministic despite racy discovery (CAS on levels).  Backward
pass: per BFS level, from deepest to shallowest, each vertex pulls the
dependency contributions of its successors (single writer per vertex).
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp


@register_app("ligra-bc")
class LigraBetweennessCentrality(LigraApp):
    name = "ligra-bc"

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        self.level = self.array("level", [-1] * n)
        self.sigma = self.array("sigma", [0] * n)
        self.delta = self.array("delta", [0.0] * n)
        self.front = [self.array("front0", [0] * n), self.array("front1", [0] * n)]
        self.count_addr = self.counter("frontier_size")
        self.src = self.source_vertex()

    def run(self, rt, ctx, grain: int):
        src = self.src
        yield from self.level.store(ctx, src, 0)
        yield from self.sigma.store(ctx, src, 1)
        yield from self.front[0].store(ctx, src, 1)
        depth = 0
        while True:
            yield from ctx.amo("xchg", self.count_addr, 0)
            cur = self.front[depth % 2]
            nxt = self.front[(depth + 1) % 2]
            next_level = depth + 1

            def forward(rt, ctx, lo, hi, cur=cur, nxt=nxt, next_level=next_level):
                discovered = 0
                for v in range(lo, hi):
                    active = yield from cur.load(ctx, v)
                    yield from ctx.work(1)
                    if not active:
                        continue
                    yield from cur.store(ctx, v, 0)
                    sigma_v = yield from self.sigma.load(ctx, v)
                    start, end = yield from self.g.edge_range(ctx, v)
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        lu = yield from self.level.load(ctx, u)
                        yield from ctx.work(1)
                        if lu == -1:
                            old = yield from self.level.cas(ctx, u, -1, next_level)
                            if old == -1:
                                yield from nxt.store(ctx, u, 1)
                                discovered += 1
                                lu = next_level
                            else:
                                lu = old
                        if lu == next_level:
                            yield from self.sigma.amo(ctx, "add", u, sigma_v)
                if discovered:
                    yield from ctx.amo_add(self.count_addr, discovered)

            yield from self.pfor(rt, ctx, forward, grain)
            size = yield from ctx.load(self.count_addr)
            if size == 0:
                break
            depth += 1

        # Backward dependency accumulation, level by level.
        for r in range(depth - 1, -1, -1):
            def backward(rt, ctx, lo, hi, r=r):
                for v in range(lo, hi):
                    lv = yield from self.level.load(ctx, v)
                    yield from ctx.work(1)
                    if lv != r:
                        continue
                    sigma_v = yield from self.sigma.load(ctx, v)
                    start, end = yield from self.g.edge_range(ctx, v)
                    acc = 0.0
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        lu = yield from self.level.load(ctx, u)
                        yield from ctx.work(1)
                        if lu != r + 1:
                            continue
                        sigma_u = yield from self.sigma.load(ctx, u)
                        delta_u = yield from self.delta.load(ctx, u)
                        yield from ctx.work(3)
                        acc += sigma_v / sigma_u * (1.0 + delta_u)
                    yield from self.delta.store(ctx, v, acc)

            yield from self.pfor(rt, ctx, backward, grain)

    def check(self) -> None:
        exp_level, exp_sigma, exp_delta = self._reference()
        assert self.level.host_read() == exp_level, "ligra-bc: levels mismatch"
        assert self.sigma.host_read() == exp_sigma, "ligra-bc: sigma mismatch"
        got_delta = self.delta.host_read()
        for v in range(self.graph.n):
            assert abs(got_delta[v] - exp_delta[v]) < 1e-9, (
                f"ligra-bc: delta[{v}] = {got_delta[v]}, expected {exp_delta[v]}"
            )

    def _reference(self):
        from collections import deque

        n = self.graph.n
        level = [-1] * n
        sigma = [0] * n
        level[self.src] = 0
        sigma[self.src] = 1
        queue = deque([self.src])
        order = []
        while queue:
            v = queue.popleft()
            order.append(v)
            for u in self.graph.neighbors(v):
                if level[u] == -1:
                    level[u] = level[v] + 1
                    queue.append(u)
                if level[u] == level[v] + 1:
                    sigma[u] += sigma[v]
        delta = [0.0] * n
        for v in reversed(order):
            acc = 0.0
            for u in self.graph.neighbors(v):
                if level[u] == level[v] + 1:
                    acc += sigma[v] / sigma[u] * (1.0 + delta[u])
            delta[v] = acc
        return level, sigma, delta
