"""ligra-mis: maximal independent set (Luby's algorithm).

Each vertex has a fixed random priority.  Per round, an undecided vertex
joins the set when every undecided neighbor has lower priority; vertices
adjacent to a set member drop out.  With fixed priorities this converges to
the sequential greedy MIS in decreasing-priority order, which the checker
verifies exactly (plus the independence/maximality invariants).
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp
from repro.engine.rng import XorShift64

UNDECIDED, IN_SET, OUT = 0, 1, 2


@register_app("ligra-mis")
class LigraMis(LigraApp):
    name = "ligra-mis"

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        rng = XorShift64(self.seed ^ 0x5151)
        # A random permutation of 1..n gives unique priorities.
        self._priorities = list(range(1, n + 1))
        for i in range(n - 1, 0, -1):
            j = rng.randint(0, i)
            self._priorities[i], self._priorities[j] = (
                self._priorities[j],
                self._priorities[i],
            )
        self.priority = self.array("priority", self._priorities)
        self.status = self.array("status", [UNDECIDED] * n)
        self.decided_addr = self.counter("decided")

    def run(self, rt, ctx, grain: int):
        n = self.graph.n
        total_decided = 0
        while total_decided < n:
            yield from ctx.amo("xchg", self.decided_addr, 0)

            def body(rt, ctx, lo, hi):
                decided = 0
                for v in range(lo, hi):
                    state = yield from self.status.load(ctx, v)
                    yield from ctx.work(1)
                    if state != UNDECIDED:
                        continue
                    prio_v = yield from self.priority.load(ctx, v)
                    start, end = yield from self.g.edge_range(ctx, v)
                    joins = True
                    drops = False
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        state_u = yield from self.status.load(ctx, u)
                        yield from ctx.work(1)
                        if state_u == IN_SET:
                            drops = True
                            break
                        if state_u == UNDECIDED:
                            prio_u = yield from self.priority.load(ctx, u)
                            yield from ctx.work(1)
                            if prio_u > prio_v:
                                joins = False
                    if drops:
                        yield from self.status.store(ctx, v, OUT)
                        decided += 1
                    elif joins:
                        yield from self.status.store(ctx, v, IN_SET)
                        decided += 1
                if decided:
                    yield from ctx.amo_add(self.decided_addr, decided)

            yield from self.pfor(rt, ctx, body, grain)
            decided = yield from ctx.load(self.decided_addr)
            total_decided += decided

    def check(self) -> None:
        status = self.status.host_read()
        in_set = [v for v in range(self.graph.n) if status[v] == IN_SET]
        # Invariant 1: independence.
        member = set(in_set)
        for v in in_set:
            for u in self.graph.neighbors(v):
                assert u not in member, f"ligra-mis: adjacent members {v},{u}"
        # Invariant 2: maximality (every OUT vertex has an IN neighbor).
        for v in range(self.graph.n):
            assert status[v] != UNDECIDED, f"ligra-mis: {v} undecided at exit"
            if status[v] == OUT:
                assert any(u in member for u in self.graph.neighbors(v)), (
                    f"ligra-mis: {v} is OUT with no IN neighbor"
                )
        # Exact match with the greedy MIS in decreasing priority order.
        expected = self._greedy_reference()
        assert member == expected, "ligra-mis: not the greedy-by-priority MIS"

    def _greedy_reference(self):
        order = sorted(range(self.graph.n), key=lambda v: -self._priorities[v])
        chosen = set()
        blocked = set()
        for v in order:
            if v in blocked:
                continue
            chosen.add(v)
            blocked.update(self.graph.neighbors(v))
        return chosen
