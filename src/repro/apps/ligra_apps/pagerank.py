"""ligra-pr: PageRank (extension — not part of the paper's 13 kernels).

Pull-based, round-synchronous PageRank over the symmetric rMat graph:
``rank'[v] = (1-d)/n + d * sum(rank[u]/deg(u) for u in nbr(v))`` with
double-buffered rank arrays, so the computation is fully deterministic and
checkable bit-for-bit against a Python reference.  Demonstrates that the
runtime + HCC machinery supports workloads beyond the paper's original
set; it is exercised by the test suite on all coherence configurations.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp

DAMPING = 0.85


@register_app("ligra-pr")
class LigraPageRank(LigraApp):
    name = "ligra-pr"

    def __init__(self, scale=6, avg_degree=8, grain=8, seed=42, iterations=5):
        super().__init__(scale, avg_degree, grain, seed)
        self.iterations = iterations

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        initial = [1.0 / n] * n
        self.rank = [self.array("rank0", initial), self.array("rank1", [0.0] * n)]
        self.degree = self.array("degree", [self.graph.degree(v) for v in range(n)])

    def run(self, rt, ctx, grain: int):
        n = self.graph.n
        base = (1.0 - DAMPING) / n
        for iteration in range(self.iterations):
            cur = self.rank[iteration % 2]
            nxt = self.rank[(iteration + 1) % 2]

            def body(rt, ctx, lo, hi, cur=cur, nxt=nxt):
                for v in range(lo, hi):
                    acc = 0.0
                    start, end = yield from self.g.edge_range(ctx, v)
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        rank_u = yield from cur.load(ctx, u)
                        deg_u = yield from self.degree.load(ctx, u)
                        yield from ctx.work(2)
                        acc += rank_u / deg_u
                    yield from ctx.work(2)
                    yield from nxt.store(ctx, v, base + DAMPING * acc)

            yield from self.pfor(rt, ctx, body, grain)

    def check(self) -> None:
        expected = self._reference()
        got = self.rank[self.iterations % 2].host_read()
        for v in range(self.graph.n):
            assert abs(got[v] - expected[v]) < 1e-12, (
                f"ligra-pr: rank[{v}] = {got[v]}, expected {expected[v]}"
            )
        # Ranks form (approximately) a probability distribution.
        assert abs(sum(got) - 1.0) < 0.2

    def _reference(self):
        n = self.graph.n
        ranks = [1.0 / n] * n
        base = (1.0 - DAMPING) / n
        for _ in range(self.iterations):
            nxt = [0.0] * n
            for v in range(n):
                acc = 0.0
                for u in self.graph.neighbors(v):
                    acc += ranks[u] / self.graph.degree(u)
                nxt[v] = base + DAMPING * acc
            ranks = nxt
        return ranks
