"""ligra-bf: Bellman-Ford single-source shortest paths.

Integer edge weights; relaxation uses ``amo_min`` on the distance array
(Ligra's CAS-style writeMin).  A vertex whose distance improved joins the
next round's dense frontier.  Terminates when a round relaxes nothing.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp

INF = 1 << 40


@register_app("ligra-bf")
class LigraBellmanFord(LigraApp):
    name = "ligra-bf"
    weighted = True

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        self.dist = self.array("dist", [INF] * n)
        self.front = [self.array("front0", [0] * n), self.array("front1", [0] * n)]
        self.count_addr = self.counter("relaxed")
        self.src = self.source_vertex()

    def run(self, rt, ctx, grain: int):
        yield from self.dist.store(ctx, self.src, 0)
        yield from self.front[0].store(ctx, self.src, 1)
        round_index = 0
        while round_index < self.graph.n:  # Bellman-Ford bound
            yield from ctx.amo("xchg", self.count_addr, 0)
            cur = self.front[round_index % 2]
            nxt = self.front[(round_index + 1) % 2]

            def body(rt, ctx, lo, hi, cur=cur, nxt=nxt):
                relaxed = 0
                for v in range(lo, hi):
                    active = yield from cur.load(ctx, v)
                    yield from ctx.work(1)
                    if not active:
                        continue
                    yield from cur.store(ctx, v, 0)
                    dv = yield from self.dist.load(ctx, v)
                    start, end = yield from self.g.edge_range(ctx, v)
                    for e in range(start, end):
                        u = yield from self.g.edge_target(ctx, e)
                        w = yield from self.g.edge_weight(ctx, e)
                        candidate = dv + w
                        yield from ctx.work(1)
                        old = yield from self.dist.amo(ctx, "min", u, candidate)
                        if candidate < old:
                            was = yield from nxt.load(ctx, u)
                            if not was:
                                yield from nxt.store(ctx, u, 1)
                            relaxed += 1
                if relaxed:
                    yield from ctx.amo_add(self.count_addr, relaxed)

            yield from self.pfor(rt, ctx, body, grain)
            relaxed = yield from ctx.load(self.count_addr)
            if relaxed == 0:
                break
            round_index += 1

    def check(self) -> None:
        import heapq

        expected = [INF] * self.graph.n
        expected[self.src] = 0
        heap = [(0, self.src)]
        while heap:
            d, v = heapq.heappop(heap)
            if d > expected[v]:
                continue
            for i, u in enumerate(self.graph.neighbors(v)):
                nd = d + self.graph.edge_weight(v, i)
                if nd < expected[u]:
                    expected[u] = nd
                    heapq.heappush(heap, (nd, u))
        got = self.dist.host_read()
        assert got == expected, "ligra-bf: distance array mismatch"
