"""ligra-bfs-em: BFS written against the edgeMap framework (extension).

The same algorithm as ``ligra-bfs`` but expressed exactly the way the
original Ligra code is written — a BFS functor handed to ``edge_map`` each
round — validating the framework layer end to end.  Registered as an
extension app (not one of the paper's 13); the test suite runs it on every
coherence configuration and checks it against the same BFS reference.
"""

from __future__ import annotations

from repro.apps.common import register_app
from repro.apps.ligra.base import LigraApp
from repro.apps.ligra.edgemap import DenseFrontier, EdgeMapF, edge_map


class _BfsF(EdgeMapF):
    """Ligra's BFS_F: claim undiscovered vertices with CAS on parent."""

    def __init__(self, parent):
        self.parent = parent

    def cond(self, ctx, v: int):
        p = yield from self.parent.load(ctx, v)
        return p == -1

    def update(self, ctx, u: int, v: int):
        old = yield from self.parent.cas(ctx, v, -1, u)
        return old == -1


@register_app("ligra-bfs-em")
class LigraBfsEdgeMap(LigraApp):
    name = "ligra-bfs-em"

    def setup_arrays(self, machine) -> None:
        n = self.graph.n
        self.parent = self.array("parent", [-1] * n)
        self.frontiers = [
            DenseFrontier(machine, n, f"{self.name}_f0"),
            DenseFrontier(machine, n, f"{self.name}_f1"),
        ]
        self.src = self.source_vertex()

    def run(self, rt, ctx, grain: int):
        yield from self.parent.store(ctx, self.src, self.src)
        yield from self.frontiers[0].add(ctx, self.src)
        functor = _BfsF(self.parent)
        round_index = 0
        while True:
            cur = self.frontiers[round_index % 2]
            nxt = self.frontiers[(round_index + 1) % 2]
            yield from edge_map(rt, ctx, self.g, cur, nxt, functor, grain)
            size = yield from nxt.read_size(ctx)
            if size == 0:
                break
            round_index += 1

    def check(self) -> None:
        from collections import deque

        dist = [None] * self.graph.n
        dist[self.src] = 0
        queue = deque([self.src])
        while queue:
            v = queue.popleft()
            for u in self.graph.neighbors(v):
                if dist[u] is None:
                    dist[u] = dist[v] + 1
                    queue.append(u)
        parent = self.parent.host_read()
        for v in range(self.graph.n):
            if dist[v] is None:
                assert parent[v] == -1, f"ligra-bfs-em: unreachable {v} claimed"
            else:
                assert parent[v] != -1, f"ligra-bfs-em: reachable {v} unclaimed"
                if v != self.src:
                    assert v in self.graph.neighbors(parent[v])
                    assert dist[parent[v]] == dist[v] - 1, (
                        f"ligra-bfs-em: non-BFS parent for {v}"
                    )
