"""Crash-tolerant simulation job service (``repro serve``).

A long-lived server that accepts (app × config × scale) experiment jobs
over a unix socket, runs them on supervised grid worker processes, and
survives being killed at any instant: every queue transition is
write-ahead journaled, so a restarted server recovers every in-flight job
exactly once — see ``repro.serve.journal`` for the recovery semantics and
DESIGN.md §11 for the full state machine.

Layering: ``queue`` (job model, pure bookkeeping) ← ``journal``
(write-ahead log + replay) ← ``supervisor`` (dispatch, retry/backoff,
preemption, wedged detection) ← ``server`` (asyncio socket front end) /
``client`` (blocking CLI client); ``policy`` parameterizes everything.
"""

from repro.serve.journal import Journal, recover, replay
from repro.serve.policy import SERVE_BACKOFF, ServePolicy, admission_reason
from repro.serve.queue import Job, JobQueue, JobRecord
from repro.serve.supervisor import Supervisor
from repro.serve.server import JobServer, run_server
from repro.serve.client import ServeClient, ServeError, connect

__all__ = [
    "Job",
    "JobQueue",
    "JobRecord",
    "Journal",
    "JobServer",
    "SERVE_BACKOFF",
    "ServeClient",
    "ServeError",
    "ServePolicy",
    "Supervisor",
    "admission_reason",
    "connect",
    "recover",
    "replay",
    "run_server",
]
