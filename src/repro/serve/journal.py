"""Write-ahead job journal: crash-recoverable JSONL event log.

Every queue state transition is appended to the journal *before* it takes
effect in memory, with the same ``O_APPEND`` single-``write()`` discipline
as ``repro.obs.ledger`` — a line is either fully present or torn at the
tail, never interleaved.  A server killed at any instant (including
mid-append) restarts by replaying the journal: :func:`replay` folds the
event stream back into the job table, and :meth:`Journal.recover` turns
that table into a runnable queue — every in-flight job returns to
``pending`` (parked jobs keep their snapshot, so they resume rather than
restart), orphaned worker processes recorded in ``start`` events are
killed, and nothing submitted is ever lost or run twice (a recovered
rerun of a job whose simulation actually completed is satisfied by the
sha256 result store, not re-simulated).

Event vocabulary (one JSON object per line, ``ev`` discriminates)::

    submit  {id, job}             job accepted into the queue
    reject  {id, job, reason}     admission refused (overload / quota)
    start   {id, pid, attempt, resume}   dispatched to a worker process
    park    {id, snapshot, cycle} preempted; snapshot on disk
    retry   {id, attempt, error}  attempt failed; back to pending
    dedup   {id, of}              coalesced behind an identical job
    done    {id, outcome}         terminal success (ok / dedup)
    failed  {id, error, message}  terminal failure (quarantine etc.)
    recover {pending, running, parked, killed}   server restart marker

The torn-tail tolerance comes from
:func:`repro.obs.ledger.read_jsonl_with_errors`: a final line cut short by
the crash is classified as recoverable damage and skipped — by
construction it described a transition that never completed.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.ledger import read_jsonl_with_errors
from repro.serve.queue import Job, JobQueue, JobRecord

#: Journal line schema; bump when the event shape changes.
JOURNAL_SCHEMA = 1


class Journal:
    """Append-only event log for one job service instance."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lines_written = 0

    def append(self, ev: str, **fields) -> dict:
        """Write one event line (atomic O_APPEND single write)."""
        entry = {"schema": JOURNAL_SCHEMA, "ev": ev, "ts": time.time()}
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=str) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self.lines_written += 1
        return entry


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay(path) -> Tuple[Dict[str, JobRecord], Dict[str, int], dict]:
    """Fold a journal into (job table, orphan worker pids, read stats).

    The table holds one :class:`JobRecord` per job id in its *journaled*
    final state.  ``orphans`` maps job id -> the pid recorded by the most
    recent un-superseded ``start`` event — processes that may still be
    running if the server died without reaping them.  ``stats`` carries
    the tolerant-reader counters (``events``, ``malformed``, ``torn_tail``)
    for the recovery report.
    """
    records: Dict[str, JobRecord] = {}
    orphans: Dict[str, int] = {}
    if not os.path.exists(path):
        return records, orphans, {"events": 0, "malformed": 0, "torn_tail": False}
    entries, bad, torn = read_jsonl_with_errors(path)
    for entry in entries:
        ev = entry.get("ev")
        jid = entry.get("id")
        if ev == "recover":
            # A past restart marker: any orphans before it were killed then.
            orphans.clear()
            continue
        if not jid:
            bad += 1
            continue
        if ev in ("submit", "reject"):
            job = Job.from_dict(entry.get("job") or {})
            record = JobRecord(
                id=jid,
                job=job,
                submitted_at=float(entry.get("ts") or time.time()),
            )
            if ev == "reject":
                record.state = "rejected"
                record.outcome = "rejected"
                record.message = entry.get("reason")
            records[jid] = record
            continue
        record = records.get(jid)
        if record is None:
            bad += 1
            continue
        if ev == "start":
            record.state = "running"
            record.attempts = int(entry.get("attempt") or record.attempts + 1)
            pid = entry.get("pid")
            if pid:
                orphans[jid] = int(pid)
        elif ev == "park":
            record.state = "parked"
            record.snapshot = entry.get("snapshot")
            record.parks += 1
            orphans.pop(jid, None)
        elif ev == "retry":
            record.state = "pending"
            record.attempts = int(entry.get("attempt") or record.attempts)
            orphans.pop(jid, None)
        elif ev == "dedup":
            record.state = "pending"
            record.dedup_of = entry.get("of")
            orphans.pop(jid, None)
        elif ev == "done":
            record.state = "done"
            record.outcome = entry.get("outcome", "ok")
            record.snapshot = None
            orphans.pop(jid, None)
        elif ev == "failed":
            record.state = "failed"
            record.outcome = entry.get("error", "error")
            record.message = entry.get("message")
            orphans.pop(jid, None)
        else:
            bad += 1
    return records, orphans, {"events": len(entries), "malformed": bad, "torn_tail": torn}


def _kill_orphan(pid: int) -> bool:
    """Best-effort SIGKILL of a worker the dead server left behind.

    Only processes that still look like ours are touched: a pid that no
    longer exists (or was recycled into a process we may not signal) is
    left alone.  Returns True when a signal was delivered.
    """
    if pid == os.getpid():
        return False
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    try:
        os.kill(pid, signal.SIGKILL)
    except OSError as exc:
        if exc.errno != errno.ESRCH:
            return False
        return False
    return True


def recover(journal: Journal, clean_park_files: bool = True) -> Tuple[JobQueue, dict]:
    """Rebuild a runnable :class:`JobQueue` from ``journal``'s history.

    Recovery semantics (each case journaled via one ``recover`` marker):

    * terminal jobs (``done``/``failed``/``rejected``) stay terminal;
    * ``pending`` jobs re-enter the queue as-is;
    * ``running`` jobs lose their worker (killed if still alive) and
      re-enter ``pending``; the rerun is exactly-once because a completed
      simulation is satisfied from the result store;
    * ``parked`` jobs re-enter ``pending`` with their snapshot attached,
      so the next dispatch resumes from the park point;
    * dedup followers re-enter ``pending`` (their leader may be gone);
      a completed leader satisfies them through the store.

    Park-request files left over from an interrupted preemption are
    removed (``clean_park_files``) so a resumed run is not immediately
    re-parked by a stale request.
    """
    records, orphans, stats = replay(journal.path)
    queue = JobQueue()
    report = {
        "jobs": len(records),
        "pending": 0,
        "running": 0,
        "parked": 0,
        "terminal": 0,
        "killed": [],
        **stats,
    }
    for jid, record in sorted(records.items()):
        queue.reserve_id(jid)
        if record.terminal:
            report["terminal"] += 1
            queue.add(record)
            continue
        report[record.state] = report.get(record.state, 0) + 1
        if record.state == "running":
            pid = orphans.get(jid)
            if pid and _kill_orphan(pid):
                report["killed"].append(pid)
        if clean_park_files and record.snapshot:
            park_file = f"{record.snapshot}.park"
            try:
                os.unlink(park_file)
            except OSError:
                pass
        record.state = "pending"
        record.dedup_of = None
        queue.add(record)
    journal.append(
        "recover",
        pending=report["pending"],
        running=report["running"],
        parked=report["parked"],
        killed=report["killed"],
        torn_tail=report["torn_tail"],
    )
    return queue, report
