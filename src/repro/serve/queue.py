"""Job model and priority queue for the simulation job service.

A :class:`Job` is one client-submitted (app × config × scale) experiment
plus its service metadata: tenant, priority, optional deadline, and
whether it may be preempted.  The :class:`JobQueue` holds every job the
server knows about, indexed by id and by *work key* — the sha256 identity
of the underlying experiment — and orders runnable jobs by (priority,
deadline, submission order).

Lifecycle state machine (every transition is journaled before it becomes
visible; see ``repro.serve.journal``)::

    submit ──► rejected                      (admission: overload / quota)
       │
       ▼            park                  ┌─────────┐
    pending ──► running ──► parked ──► pending (resume from snapshot)
       ▲            │
       │ retry      ├──► done             (result in the sha256 store)
       └────────────┤
                    └──► failed           (quarantined after N attempts,
                                           or a deterministic failure)

``done``/``failed``/``rejected`` are terminal; the kill-recovery
invariant is that every submitted job reaches exactly one of them, with
at most one simulation per distinct work key (duplicates dedupe through
the result store and the queue's key index).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

#: States a job can be in; TERMINAL states never change again.
STATES = ("pending", "running", "parked", "done", "failed", "rejected")
TERMINAL = ("done", "failed", "rejected")


@dataclass
class Job:
    """One submitted experiment plus service metadata (plain data,
    JSON-serializable via :meth:`as_dict` for the journal and the wire)."""

    app: str
    kind: str
    scale: str
    serial: bool = False
    app_overrides: Optional[dict] = None
    runtime_kwargs: Optional[dict] = None
    config_overrides: Optional[dict] = None
    sampling: Optional[str] = None
    tenant: str = "default"
    #: Lower is more urgent; ties break on deadline, then submit order.
    priority: int = 5
    #: Wall-clock SLO in seconds from submission (None = batch job).
    #: Deadline jobs may preempt running batch jobs to get a slot.
    deadline_s: Optional[float] = None
    #: Preemptible jobs may be parked via checkpoint to free their slot.
    #: Sampled jobs can never be parked (no snapshots in sampled mode).
    preemptible: bool = True

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def work_key(self) -> str:
        """sha256 identity of the underlying experiment (dedupe key).

        Two jobs with the same work key are the same simulation — the
        queue coalesces them so only one ever runs, and the result store
        (which hashes a superset of these fields plus resolved params)
        satisfies any later rerun as a store hit.
        """
        from repro.harness.resultstore import hash_key

        return hash_key(
            {
                "app": self.app,
                "kind": self.kind,
                "scale": self.scale,
                "serial": bool(self.serial),
                "app_overrides": self.app_overrides or {},
                "runtime_kwargs": self.runtime_kwargs or {},
                "config_overrides": self.config_overrides or {},
                "sampling": self.sampling,
            }
        )

    def grid_fields(self) -> dict:
        """GridPoint constructor kwargs for the worker process."""
        return dict(
            app=self.app,
            kind=self.kind,
            scale=self.scale,
            serial=self.serial,
            app_overrides=self.app_overrides,
            runtime_kwargs=self.runtime_kwargs,
            config_overrides=self.config_overrides,
            sampling=self.sampling,
        )


@dataclass
class JobRecord:
    """A job's full service-side state (the queue's table row)."""

    id: str
    job: Job
    state: str = "pending"
    submitted_at: float = field(default_factory=time.time)
    attempts: int = 0
    #: Terminal detail: "ok" | error kind | rejection reason.
    outcome: Optional[str] = None
    message: Optional[str] = None
    #: Result payload (export.result_to_dict form) once done.  In-memory
    #: only — recovered servers re-resolve results through the store.
    result: Optional[dict] = None
    #: Run-snapshot path once the job has been parked (resume source).
    snapshot: Optional[str] = None
    #: Leader job id when this job was deduped onto an identical one.
    dedup_of: Optional[str] = None
    parks: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def deadline_at(self) -> float:
        if self.job.deadline_s is None:
            return math.inf
        return self.submitted_at + self.job.deadline_s

    def sort_key(self, seq: int):
        return (self.job.priority, self.deadline_at(), seq)

    def public(self) -> dict:
        """The wire/status view of this record."""
        return {
            "id": self.id,
            "state": self.state,
            "app": self.job.app,
            "kind": self.job.kind,
            "scale": self.job.scale,
            "tenant": self.job.tenant,
            "priority": self.job.priority,
            "deadline_s": self.job.deadline_s,
            "preemptible": self.job.preemptible,
            "submitted_at": self.submitted_at,
            "attempts": self.attempts,
            "parks": self.parks,
            "outcome": self.outcome,
            "message": self.message,
            "dedup_of": self.dedup_of,
        }


class JobQueue:
    """Priority queue + job table + work-key dedupe index.

    Pure bookkeeping: no I/O, no clocks beyond the submit timestamp the
    caller passes in.  The supervisor drives transitions; the journal
    records them; this class only keeps them consistent.
    """

    def __init__(self):
        self.records: Dict[str, JobRecord] = {}
        #: work key -> job ids sharing it (leader first).
        self.by_key: Dict[str, List[str]] = {}
        self._heap: List[tuple] = []
        self._seq = 0
        self._next_id = 1

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def new_id(self) -> str:
        jid = f"j-{self._next_id:06d}"
        self._next_id += 1
        return jid

    def reserve_id(self, jid: str) -> None:
        """Keep ids monotonic across journal recovery."""
        try:
            n = int(jid.split("-", 1)[1])
        except (IndexError, ValueError):
            return
        self._next_id = max(self._next_id, n + 1)

    def add(self, record: JobRecord) -> None:
        if record.id in self.records:
            raise ValueError(f"duplicate job id {record.id}")
        self.records[record.id] = record
        self.by_key.setdefault(record.job.work_key(), []).append(record.id)
        if record.state == "pending":
            self._push(record)

    def _push(self, record: JobRecord) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (*record.sort_key(self._seq), record.id))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    #: States the heap may hand out: parked jobs re-enter scheduling from
    #: the heap too (they resume from their snapshot when dispatched).
    RUNNABLE = ("pending", "parked")

    def pop_runnable(self) -> Optional[JobRecord]:
        """Highest-priority runnable job, or None.  Lazy deletion: heap
        entries for jobs that moved on (retried, completed via dedupe)
        are skipped on pop."""
        while self._heap:
            *_sort, jid = heapq.heappop(self._heap)
            record = self.records.get(jid)
            if record is not None and record.state in self.RUNNABLE:
                return record
        return None

    def requeue(self, record: JobRecord) -> None:
        """Back to pending (retry, recovery)."""
        record.state = "pending"
        self._push(record)

    def repark(self, record: JobRecord) -> None:
        """Preempted: keep the parked state but stay schedulable."""
        record.state = "parked"
        self._push(record)

    def peek_urgent(self) -> Optional[JobRecord]:
        """The runnable job the supervisor would dispatch next, without
        removing it (preemption decisions look before they leap)."""
        while self._heap:
            *_sort, jid = self._heap[0]
            record = self.records.get(jid)
            if record is not None and record.state in self.RUNNABLE:
                return record
            heapq.heappop(self._heap)
        return None

    # ------------------------------------------------------------------
    # Dedupe
    # ------------------------------------------------------------------
    def twin_ids(self, record: JobRecord) -> List[str]:
        """Other non-terminal jobs with the same work key."""
        return [
            jid
            for jid in self.by_key.get(record.job.work_key(), [])
            if jid != record.id and not self.records[jid].terminal
        ]

    def running_twin(self, record: JobRecord) -> Optional[JobRecord]:
        """A running/parked job this record duplicates, if any."""
        for jid in self.by_key.get(record.job.work_key(), []):
            if jid == record.id:
                continue
            twin = self.records[jid]
            if twin.state in ("running", "parked"):
                return twin
        return None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in STATES}
        for record in self.records.values():
            out[record.state] += 1
        return out

    def tenant_load(self, tenant: str) -> int:
        """Non-terminal jobs charged to a tenant (admission quota base)."""
        return sum(
            1
            for record in self.records.values()
            if record.job.tenant == tenant and not record.terminal
        )

    def pending_count(self) -> int:
        return sum(
            1 for record in self.records.values() if record.state == "pending"
        )

    def non_terminal(self) -> List[JobRecord]:
        return [r for r in self.records.values() if not r.terminal]
