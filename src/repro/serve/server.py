"""The job service front end: asyncio unix-socket server + recovery.

``repro serve`` runs one :class:`JobServer` per work directory.  Clients
connect to a unix socket and speak newline-delimited JSON — one request
object in, one response object out per line, connections may be held open
for many requests (``wait`` blocks server-side until the job is
terminal).  The supervisor runs as a background task calling
:meth:`Supervisor.poll` on a short timer; the asyncio loop only shuttles
requests, so a wedged client can never stall supervision.

Crash tolerance is the whole point: on startup the server replays the
work directory's journal (``repro.serve.journal.recover``), kills any
worker processes the previous incarnation orphaned, and re-queues every
non-terminal job — parked jobs resume from their snapshots, interrupted
jobs re-run (and store-hit if their simulation actually finished).  Kill
the server at any instant and restart it: no submitted job is lost, none
runs twice.

Wire protocol (all objects carry ``"op"`` in requests, ``"ok"`` in
responses)::

    {"op": "submit", "job": {...}}        -> {"ok": true, "id": "j-000001",
                                              "state": "pending"|"rejected", ...}
    {"op": "status"}                      -> {"ok": true, "status": {...}}
    {"op": "status", "id": "j-000001"}    -> {"ok": true, "job": {...}}
    {"op": "result", "id": "j-000001"}    -> {"ok": true, "job": {...},
                                              "result": {...}|null}
    {"op": "wait", "id": "j-000001"}      -> blocks; then as "result"
    {"op": "ping"}                        -> {"ok": true, "pid": ...}
    {"op": "shutdown"}                    -> {"ok": true}; server drains and exits

The server also maintains an atomically-replaced ``serve-status.json`` in
the work directory (same temp-file + ``os.replace`` discipline as
heartbeat snapshots) so ``repro top --serve DIR`` can render the service
without speaking the socket protocol.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Optional

from repro.serve.journal import Journal, recover
from repro.serve.policy import ServePolicy
from repro.serve.queue import Job, JobQueue
from repro.serve.supervisor import Supervisor

#: serve-status.json schema tag (repro top refuses unknown schemas).
SERVE_STATUS_SCHEMA = 1

#: Default supervision cadence (seconds between Supervisor.poll calls).
POLL_INTERVAL_S = 0.05

#: Status-file refresh cadence (seconds).
STATUS_INTERVAL_S = 1.0


def journal_path(workdir: str) -> str:
    return os.path.join(workdir, "journal.jsonl")


def socket_path(workdir: str) -> str:
    return os.path.join(workdir, "serve.sock")


def status_path(workdir: str) -> str:
    return os.path.join(workdir, "serve-status.json")


class JobServer:
    """One job service instance bound to a work directory."""

    def __init__(
        self,
        workdir: str,
        policy: Optional[ServePolicy] = None,
        socket: Optional[str] = None,
        log=print,
    ):
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        self.policy = policy or ServePolicy()
        self.socket = socket or socket_path(workdir)
        self.log = log
        self.journal = Journal(journal_path(workdir))
        self.recovery: Optional[dict] = None
        self.supervisor: Optional[Supervisor] = None
        #: Created inside run() so it binds to the running event loop.
        self._stopping: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Startup / recovery
    # ------------------------------------------------------------------
    def build_supervisor(self) -> Supervisor:
        """Replay the journal and construct the supervisor (sync; also
        used directly by tests that drive poll() by hand)."""
        if os.path.exists(self.journal.path):
            queue, report = recover(self.journal)
            self.recovery = report
            if report["jobs"]:
                self.log(
                    f"serve: recovered {report['jobs']} job(s) from journal "
                    f"(pending {report['pending']}, running {report['running']}, "
                    f"parked {report['parked']}, terminal {report['terminal']}"
                    + (f", killed orphans {report['killed']}" if report["killed"] else "")
                    + (", torn tail skipped" if report.get("torn_tail") else "")
                    + ")"
                )
        else:
            queue = JobQueue()
            self.recovery = None
        self.supervisor = Supervisor(
            queue,
            self.journal,
            self.policy,
            self.workdir,
            log=lambda message: self.log(f"serve: {message}"),
        )
        return self.supervisor

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle_request(self, request: dict) -> dict:
        supervisor = self.supervisor
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "submit":
            try:
                job = Job.from_dict(request.get("job") or {})
            except TypeError as exc:
                return {"ok": False, "error": f"bad job: {exc}"}
            record = supervisor.submit(job)
            response = {"ok": True, "id": record.id, "state": record.state}
            if record.state == "rejected":
                response["reason"] = record.message
            return response
        if op == "status":
            jid = request.get("id")
            if jid is None:
                return {"ok": True, "status": supervisor.status()}
            record = supervisor.queue.records.get(jid)
            if record is None:
                return {"ok": False, "error": f"unknown job {jid}"}
            return {"ok": True, "job": record.public()}
        if op in ("result", "wait"):
            jid = request.get("id")
            record = supervisor.queue.records.get(jid)
            if record is None:
                return {"ok": False, "error": f"unknown job {jid}"}
            if op == "wait":
                while not record.terminal:
                    await asyncio.sleep(POLL_INTERVAL_S)
            return {
                "ok": True,
                "job": record.public(),
                "result": record.result if record.state == "done" else None,
            }
        if op == "shutdown":
            if self._stopping is not None:
                self._stopping.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _serve_client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                else:
                    response = await self._handle_request(request)
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    # ------------------------------------------------------------------
    # Background tasks
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        while not self._stopping.is_set():
            self.supervisor.poll()
            await asyncio.sleep(POLL_INTERVAL_S)

    def write_status_file(self) -> None:
        """Atomic serve-status.json for ``repro top --serve``."""
        payload = {
            "schema": SERVE_STATUS_SCHEMA,
            "pid": os.getpid(),
            "updated_at": time.time(),
            "workdir": self.workdir,
            "socket": self.socket,
            **self.supervisor.status(),
        }
        path = status_path(self.workdir)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, default=str)
        os.replace(tmp, path)

    async def _publish_status(self) -> None:
        while not self._stopping.is_set():
            self.write_status_file()
            await asyncio.sleep(STATUS_INTERVAL_S)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    async def run(self) -> None:
        self._stopping = asyncio.Event()
        self.build_supervisor()
        # A socket file left by a killed predecessor would fail the bind.
        try:
            os.unlink(self.socket)
        except OSError:
            pass
        self._server = await asyncio.start_unix_server(
            self._serve_client, path=self.socket
        )
        self.log(f"serve: listening on {self.socket} (pid {os.getpid()})")
        tasks = [
            asyncio.ensure_future(self._supervise()),
            asyncio.ensure_future(self._publish_status()),
        ]
        try:
            await self._stopping.wait()
        finally:
            for task in tasks:
                task.cancel()
            self._server.close()
            await self._server.wait_closed()
            self.supervisor.shutdown()
            self.write_status_file()
            try:
                os.unlink(self.socket)
            except OSError:
                pass
            self.log("serve: stopped")


def run_server(
    workdir: str,
    policy: Optional[ServePolicy] = None,
    socket: Optional[str] = None,
) -> int:
    """The ``repro serve`` entry point; returns a process exit code."""
    server = JobServer(workdir, policy=policy, socket=socket)
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        # Workers die with us (daemon processes); the journal has every
        # in-flight job, so the next incarnation recovers them.
        pass
    return 0
