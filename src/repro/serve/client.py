"""Blocking unix-socket client for the job service.

The CLI (``repro submit``) and the tests talk to a running
:class:`repro.serve.server.JobServer` through this thin wrapper: one JSON
line per request, one per response, over a long-lived socket connection.
Nothing here knows about jobs beyond dict payloads — the server owns all
semantics.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Optional


class ServeError(RuntimeError):
    """The server refused a request (carried reason) or went away."""


class ServeClient:
    """One blocking connection to a job server's unix socket."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        self.path = path
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            self.sock.settimeout(timeout)
        self.sock.connect(path)
        self._recv_file = self.sock.makefile("r", encoding="utf-8")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def request(self, op: str, **fields) -> dict:
        """Send one request; return the (decoded) response object."""
        payload = {"op": op, **fields}
        self.sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        line = self._recv_file.readline()
        if not line:
            raise ServeError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "request failed"))
        return response

    def close(self) -> None:
        try:
            self._recv_file.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, job: dict) -> dict:
        """Submit one job dict; returns ``{"id", "state", ["reason"]}``."""
        return self.request("submit", job=job)

    def status(self, job_id: Optional[str] = None) -> dict:
        if job_id is None:
            return self.request("status")["status"]
        return self.request("status", id=job_id)["job"]

    def result(self, job_id: str) -> dict:
        return self.request("result", id=job_id)

    def wait(self, job_id: str) -> dict:
        """Block until ``job_id`` is terminal; returns the result response."""
        return self.request("wait", id=job_id)

    def shutdown(self) -> None:
        self.request("shutdown")


def connect(
    path: str,
    retry_for_s: float = 0.0,
    timeout: Optional[float] = None,
) -> ServeClient:
    """Connect to ``path``, optionally retrying while the server boots."""
    deadline = time.monotonic() + retry_for_s
    while True:
        try:
            return ServeClient(path, timeout=timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
