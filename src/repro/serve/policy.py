"""Service policy: admission control, retry limits, supervision knobs.

One frozen :class:`ServePolicy` object parameterizes the whole service —
the supervisor, the admission controller, and the server all read from it
and none of them carry tuning constants of their own.  Everything is
injectable for tests (a policy with ``wedged_after_s=0.05`` and a fake
clock exercises the wedged-worker path in milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.harness.retry import BackoffPolicy

#: Default supervisor retry schedule — shared discipline with the grid
#: (repro.harness.grid.GRID_BACKOFF) but a slower cap: service jobs are
#: long-lived, so hammering a failing configuration helps nobody.
SERVE_BACKOFF = BackoffPolicy(base_s=0.5, cap_s=30.0, multiplier=3.0)


@dataclass(frozen=True)
class ServePolicy:
    """All service tuning in one immutable place."""

    #: Concurrent worker processes (the slot count).
    slots: int = 2
    #: Admission: total queued-but-not-started jobs before shedding load.
    #: Submissions beyond this are *explicitly* rejected ("overload"),
    #: never silently dropped.
    max_pending: int = 64
    #: Admission: non-terminal jobs any one tenant may hold ("quota").
    max_per_tenant: int = 32
    #: Attempts before a repeatedly failing job is quarantined as failed
    #: ("poison job").  Parks do not count as attempts.
    max_attempts: int = 3
    #: Wall-clock budget per attempt (None = unlimited).
    timeout_s: Optional[float] = None
    #: A running worker whose heartbeat snapshot has not been replaced for
    #: this long is presumed wedged and killed (None disables; detection
    #: also requires a heartbeat directory to be configured).
    wedged_after_s: Optional[float] = 60.0
    #: After a park request, how long a worker gets to reach a safe point
    #: and write its snapshot before the supervisor kills it instead (the
    #: job then restarts from its last periodic snapshot, if any).
    park_grace_s: float = 10.0
    #: Retry schedule for failed attempts.
    backoff: BackoffPolicy = field(default_factory=lambda: SERVE_BACKOFF)
    #: Periodic checkpoint cadence for service runs (simulated cycles).
    #: Gives killed/wedged jobs a resume point and bounds park latency.
    checkpoint_interval: Optional[int] = 50_000
    #: Park-poll cadence (simulated cycles) for preemption requests.
    park_poll: int = 2_000

    def __post_init__(self):
        if self.slots < 1:
            raise ValueError(f"slots must be >= 1, got {self.slots}")
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_per_tenant < 1:
            raise ValueError(
                f"max_per_tenant must be >= 1, got {self.max_per_tenant}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")


def admission_reason(policy: ServePolicy, queue, job) -> Optional[str]:
    """Why a submission must be rejected, or None to admit.

    Load is shed *explicitly*: the caller journals the rejection and the
    client gets the reason back on the wire — a submission is never
    silently dropped.
    """
    if queue.pending_count() >= policy.max_pending:
        return "overload"
    if queue.tenant_load(job.tenant) >= policy.max_per_tenant:
        return "quota"
    return None
