"""Job supervisor: dispatch, worker supervision, retry, preemption.

The :class:`Supervisor` is the service's synchronous core: one
:meth:`poll` call performs a complete supervision tick — reap worker
messages, detect dead/wedged/timed-out workers, admit backed-off retries,
preempt for deadline jobs, and dispatch pending work into free slots.
The asyncio server (``repro.serve.server``) just calls ``poll()`` on a
timer; unit tests call it directly with an injected clock, spawn function,
and heartbeat probe, so every failure path is exercisable in milliseconds
without real processes.

Workers are the *grid's* workers: each dispatch builds a
:class:`repro.harness.grid.GridPoint` and forks
``repro.harness.grid._worker_entry`` — the same entry point, pipe
protocol, and result serialization as ``run_grid``, so serve inherits the
grid's determinism and store adoption for free.  Every run gets a
periodic checkpoint (resume point for kills) and, when preemptible, a
park file the supervisor can touch to request a cooperative preemption
(``repro.engine.checkpoint.ParkDaemon``).

Supervision verdicts per worker, in check order:

1. message received — terminal (``ok``/``deadlock``/``violation``),
   ``parked``, or a retryable error;
2. process died without a message — retryable (``worker-died``);
3. wall-clock budget exceeded — kill, retryable (``timeout``);
4. heartbeat snapshot too old — kill, retryable (``wedged``);
5. park grace expired — kill, requeue *without* burning an attempt
   (``park-timeout``; the job restarts from its last periodic snapshot).

Retryable failures wait out the policy's decorrelated-jitter backoff
(shared helper with the grid: ``repro.harness.retry``); a job that fails
``max_attempts`` times is quarantined as terminally ``failed`` — one
poison job can never wedge the service.
"""

from __future__ import annotations

import glob
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.harness.retry import Backoff
from repro.serve.journal import Journal
from repro.serve.policy import ServePolicy, admission_reason
from repro.serve.queue import Job, JobQueue, JobRecord

#: Errors that are deterministic functions of the job — retrying would
#: only reproduce them (mirrors the grid's retryable=False set).
DETERMINISTIC_ERRORS = ("deadlock", "violation")


class WorkerHandle:
    """A live grid worker process plus its result pipe."""

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn

    @property
    def pid(self) -> int:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.is_alive()

    def poll_message(self):
        """The worker's (status, payload) message, or None; "gone" when
        the pipe broke before any message arrived."""
        try:
            if not self.conn.poll(0):
                return None
            return self.conn.recv()
        except (EOFError, OSError):
            return ("gone", None)

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join()


def spawn_grid_worker(record: JobRecord, checkpoint: dict) -> WorkerHandle:
    """Fork one grid worker for ``record`` (the default spawn function)."""
    from repro.harness import grid, runner

    store = runner.get_result_store()
    results_dir = str(store.root) if store is not None else None
    ctx = grid._mp_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    point = grid.GridPoint(**record.job.grid_fields(), checkpoint=checkpoint)
    proc = ctx.Process(
        target=grid._worker_entry,
        args=(child_conn, point.as_fields(), results_dir),
        daemon=True,
    )
    # The fork inherits the environment: ledger lines written by this
    # worker carry source "serve" instead of "runner".
    os.environ["REPRO_LEDGER_SOURCE"] = "serve"
    try:
        proc.start()
    finally:
        os.environ.pop("REPRO_LEDGER_SOURCE", None)
    child_conn.close()
    return WorkerHandle(proc, parent_conn)


class HeartbeatAgeTracker:
    """Ages heartbeat snapshots on the supervisor's injected clock.

    File mtimes live in the wall-clock domain (``time.time``) while every
    supervision verdict runs on the injectable ``clock`` (default
    ``time.monotonic``); subtracting one from the other lets an NTP step
    instantly "age" a healthy worker past the wedged threshold — and makes
    the wedged path untestable under a fake clock.  The tracker therefore
    never subtracts an mtime from anything: mtimes are compared only for
    *equality* (did the snapshot change since last look?), each change is
    stamped with the injected clock, and ages are differences of those
    stamps.  The first observation of a pid counts as fresh (age 0): the
    worker gets one full ``wedged_after_s`` window from the moment the
    supervisor starts watching it, never a head start from stale files.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        #: pid -> (newest mtime last seen, injected-clock stamp of that
        #: observation).  Mtimes are opaque change tokens here.
        self._seen: Dict[int, tuple] = {}

    @staticmethod
    def _newest_mtime(pid: int) -> Optional[float]:
        from repro.obs.heartbeat import heartbeat_dir

        directory = heartbeat_dir()
        if not directory:
            return None
        newest = None
        for path in glob.glob(os.path.join(directory, f"{pid}-*.json")):
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            if newest is None or mtime > newest:
                newest = mtime
        return newest

    def __call__(self, pid: int) -> Optional[float]:
        """Seconds (on the injected clock) since worker ``pid`` last
        replaced a heartbeat snapshot, or None when no snapshot exists
        (heartbeats off → no wedged verdict, the wall-clock timeout is
        the only backstop)."""
        newest = self._newest_mtime(pid)
        if newest is None:
            self._seen.pop(pid, None)
            return None
        now = self.clock()
        last = self._seen.get(pid)
        if last is None or last[0] != newest:
            self._seen[pid] = (newest, now)
            return 0.0
        return max(0.0, now - last[1])

    def forget(self, pid: int) -> None:
        """Drop state for a reaped worker (pids get recycled)."""
        self._seen.pop(pid, None)


@dataclass
class _Active:
    """Book-keeping for one dispatched worker."""

    record: JobRecord
    handle: WorkerHandle
    started_at: float
    deadline: Optional[float]
    snapshot_path: str
    park_path: Optional[str]
    park_deadline: Optional[float] = None


@dataclass
class _Delayed:
    """A retry waiting out its backoff."""

    record: JobRecord
    backoff: Backoff


class Supervisor:
    """Synchronous supervision core for the job service."""

    def __init__(
        self,
        queue: JobQueue,
        journal: Journal,
        policy: ServePolicy,
        workdir: str,
        spawn: Callable[[JobRecord, dict], WorkerHandle] = spawn_grid_worker,
        clock: Callable[[], float] = time.monotonic,
        heartbeat_age: Optional[Callable[[int], Optional[float]]] = None,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.queue = queue
        self.journal = journal
        self.policy = policy
        self.workdir = workdir
        self.snapshots_dir = os.path.join(workdir, "snapshots")
        os.makedirs(self.snapshots_dir, exist_ok=True)
        self.spawn = spawn
        self.clock = clock
        # Default tracker shares the supervisor's clock so wedged verdicts
        # run in the same (fake-steppable) time domain as every other one.
        self.heartbeat_age = (
            heartbeat_age if heartbeat_age is not None
            else HeartbeatAgeTracker(clock)
        )
        self.log = log or (lambda message: None)
        self.active: Dict[str, _Active] = {}
        self.delayed: Dict[str, _Delayed] = {}
        #: Persistent per-job backoff state (decorrelated jitter carries
        #: the previous delay across retries of the same job).
        self._backoffs: Dict[str, Backoff] = {}
        #: leader job id -> follower records coalesced behind it.
        self.followers: Dict[str, List[JobRecord]] = {}

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobRecord:
        """Admit (or explicitly reject) one job; returns its record."""
        jid = self.queue.new_id()
        reason = admission_reason(self.policy, self.queue, job)
        if reason is not None:
            self.journal.append("reject", id=jid, job=job.as_dict(), reason=reason)
            record = JobRecord(
                id=jid, job=job, state="rejected",
                outcome="rejected", message=reason,
            )
            self.queue.add(record)
            self.log(f"{jid} rejected: {reason}")
            return record
        self.journal.append("submit", id=jid, job=job.as_dict())
        record = JobRecord(id=jid, job=job)
        self.queue.add(record)
        self.log(f"{jid} submitted: {job.app}/{job.kind}/{job.scale}")
        return record

    # ------------------------------------------------------------------
    # The supervision tick
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """One complete supervision pass (cheap; call it on a timer)."""
        self._reap_messages()
        self._check_watchdogs()
        self._admit_delayed()
        self._maybe_preempt()
        self._dispatch()

    def idle(self) -> bool:
        """True when no job can make further progress without new input."""
        return not self.active and not self.delayed and not any(
            record.state in ("pending", "parked")
            for record in self.queue.records.values()
        )

    def shutdown(self) -> None:
        """Kill every live worker (their jobs recover from the journal)."""
        for jid in list(self.active):
            active = self.active.pop(jid)
            active.handle.kill()
            active.handle.close()

    # ------------------------------------------------------------------
    # Message reaping
    # ------------------------------------------------------------------
    def _reap_messages(self) -> None:
        for jid in list(self.active):
            active = self.active[jid]
            message = active.handle.poll_message()
            if message is not None:
                status, payload = message
                self._on_message(jid, active, status, payload)
            elif not active.handle.alive():
                self._close(jid)
                self._retry(active.record, "worker-died",
                            "worker exited without reporting a result")

    def _on_message(self, jid: str, active: _Active, status, payload) -> None:
        record = active.record
        self._close(jid)
        if status == "ok":
            self._complete(record, payload["result"])
        elif status == "parked":
            self._on_parked(active, payload)
        elif status in DETERMINISTIC_ERRORS:
            message = (payload or {}).get("message", status)
            self._quarantine(record, status, message)
        elif status == "gone":
            self._retry(record, "worker-died", "result pipe broke")
        else:  # "err" payload is the worker's traceback string
            self._retry(record, "error", str(payload))

    def _close(self, jid: str) -> None:
        active = self.active.pop(jid)
        active.handle.close()
        forget = getattr(self.heartbeat_age, "forget", None)
        if forget is not None:
            forget(active.handle.pid)
        if active.park_path:
            # Consume any pending park request so a later resume of this
            # job is not immediately re-parked by a stale file.
            try:
                os.unlink(active.park_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def _complete(self, record: JobRecord, result: dict) -> None:
        self.journal.append("done", id=record.id, outcome="ok")
        record.state = "done"
        record.outcome = "ok"
        record.result = result
        record.snapshot = None
        self._backoffs.pop(record.id, None)
        self.log(f"{record.id} done")
        for follower in self.followers.pop(record.id, []):
            self.journal.append("done", id=follower.id, outcome="dedup")
            follower.state = "done"
            follower.outcome = "dedup"
            follower.result = result
            self.log(f"{follower.id} done (dedup of {record.id})")

    def _on_parked(self, active: _Active, payload) -> None:
        record = active.record
        snapshot = (payload or {}).get("snapshot") or active.snapshot_path
        self.journal.append(
            "park", id=record.id,
            snapshot=snapshot, cycle=(payload or {}).get("cycle"),
        )
        record.snapshot = snapshot
        record.parks += 1
        self.queue.repark(record)
        self.log(f"{record.id} parked at cycle {(payload or {}).get('cycle')}")

    def _quarantine(self, record: JobRecord, error: str, message: str) -> None:
        self.journal.append("failed", id=record.id, error=error, message=message)
        record.state = "failed"
        record.outcome = error
        record.message = message
        self._backoffs.pop(record.id, None)
        self.log(f"{record.id} failed: {error}")
        # Followers must run for themselves now (and will store-hit if the
        # failure was environmental and a retrying twin later succeeds).
        for follower in self.followers.pop(record.id, []):
            follower.dedup_of = None
            self.queue.requeue(follower)

    def _retry(self, record: JobRecord, error: str, message: str) -> None:
        if error != "park-timeout" and record.attempts >= self.policy.max_attempts:
            self._quarantine(
                record, error,
                f"quarantined after {record.attempts} attempts: {message}",
            )
            return
        self.journal.append(
            "retry", id=record.id, attempt=record.attempts, error=error
        )
        record.state = "pending"
        if error == "park-timeout":
            # Not the job's fault: no backoff, no attempt burned — it
            # restarts from its last periodic snapshot right away.
            self.queue.requeue(record)
            self.log(f"{record.id} park grace expired; requeued")
            return
        backoff = self._backoffs.setdefault(
            record.id, Backoff(self.policy.backoff, clock=self.clock)
        )
        delay = backoff.fail()
        self.delayed[record.id] = _Delayed(record, backoff)
        self.log(
            f"{record.id} attempt {record.attempts} failed ({error}); "
            f"retry in {delay:.2f}s"
        )

    # ------------------------------------------------------------------
    # Watchdogs: timeout, wedged, park grace
    # ------------------------------------------------------------------
    def _check_watchdogs(self) -> None:
        now = self.clock()
        for jid in list(self.active):
            active = self.active[jid]
            if active.park_deadline is not None and now > active.park_deadline:
                active.handle.kill()
                self._close(jid)
                self._retry(active.record, "park-timeout",
                            "worker missed the park grace window")
            elif active.deadline is not None and now > active.deadline:
                active.handle.kill()
                self._close(jid)
                self._retry(
                    active.record, "timeout",
                    f"exceeded {self.policy.timeout_s}s wall budget",
                )
            elif self.policy.wedged_after_s is not None:
                age = self.heartbeat_age(active.handle.pid)
                if age is not None and age > self.policy.wedged_after_s:
                    active.handle.kill()
                    self._close(jid)
                    self._retry(
                        active.record, "wedged",
                        f"no heartbeat for {age:.1f}s",
                    )

    # ------------------------------------------------------------------
    # Backoff admission
    # ------------------------------------------------------------------
    def _admit_delayed(self) -> None:
        for jid in list(self.delayed):
            if self.delayed[jid].backoff.ready():
                delayed = self.delayed.pop(jid)
                self.queue.requeue(delayed.record)

    # ------------------------------------------------------------------
    # Preemption
    # ------------------------------------------------------------------
    def _maybe_preempt(self) -> None:
        """Ask one running batch job to park when a deadline job is stuck
        behind a full slot table."""
        if len(self.active) < self.policy.slots:
            return
        urgent = self.queue.peek_urgent()
        if urgent is None or urgent.job.deadline_s is None:
            return
        victim = self._pick_victim(urgent)
        if victim is None:
            return
        # Touch the park file; the worker's ParkDaemon sees it at its next
        # poll boundary, snapshots, and exits with a "parked" message.
        with open(victim.park_path, "w", encoding="utf-8"):
            pass
        victim.park_deadline = self.clock() + self.policy.park_grace_s
        self.log(
            f"preempting {victim.record.id} for {urgent.id} "
            f"(grace {self.policy.park_grace_s}s)"
        )

    def _pick_victim(self, urgent: JobRecord) -> Optional[_Active]:
        """The least-urgent parkable worker, or None."""
        candidates = [
            active
            for active in self.active.values()
            if active.park_path is not None
            and active.park_deadline is None
            and active.record.job.deadline_s is None
            and active.record.job.priority >= urgent.job.priority
        ]
        if not candidates:
            return None
        # Lowest urgency first; among equals, least sunk simulation time.
        return max(
            candidates,
            key=lambda active: (active.record.job.priority, active.started_at),
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        held = []
        while len(self.active) < self.policy.slots:
            record = self.queue.pop_runnable()
            if record is None:
                break
            twin = self.queue.running_twin(record)
            if twin is not None and record.state == "pending":
                # Identical work is already in flight: coalesce behind it
                # instead of simulating twice.
                self.journal.append("dedup", id=record.id, of=twin.id)
                record.dedup_of = twin.id
                self.followers.setdefault(twin.id, []).append(record)
                self.log(f"{record.id} deduped onto {twin.id}")
                continue
            if twin is not None:
                # A parked record can never follow a twin (its snapshot is
                # its own); hold it until the twin resolves.
                held.append(record)
                continue
            self._start(record)
        for record in held:
            self.queue._push(record)

    def _start(self, record: JobRecord) -> None:
        snapshot_path = os.path.join(self.snapshots_dir, f"{record.id}.ckpt")
        parkable = record.job.preemptible and record.job.sampling is None
        park_path = f"{snapshot_path}.park" if parkable else None
        checkpoint = dict(
            path=snapshot_path if record.job.sampling is None else None,
            interval=(
                self.policy.checkpoint_interval
                if record.job.sampling is None
                else None
            ),
            resume=record.job.sampling is None,
            park_path=park_path,
            park_poll=self.policy.park_poll,
        )
        if park_path is not None:
            # Never start into a stale park request.
            try:
                os.unlink(park_path)
            except OSError:
                pass
        handle = self.spawn(record, checkpoint)
        record.state = "running"
        record.attempts += 1
        resuming = bool(record.snapshot) or os.path.exists(snapshot_path)
        self.journal.append(
            "start", id=record.id, pid=handle.pid,
            attempt=record.attempts, resume=resuming,
        )
        now = self.clock()
        self.active[record.id] = _Active(
            record=record,
            handle=handle,
            started_at=now,
            deadline=(
                now + self.policy.timeout_s
                if self.policy.timeout_s is not None
                else None
            ),
            snapshot_path=snapshot_path,
            park_path=park_path,
        )
        self.log(
            f"{record.id} started (pid {handle.pid}, attempt {record.attempts}"
            + (", resume" if resuming else "") + ")"
        )

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """The service-level snapshot (wire `status` op; `repro top`)."""
        return {
            "counts": self.queue.counts(),
            "slots": self.policy.slots,
            "active": [
                {
                    "id": jid,
                    "pid": active.handle.pid,
                    "app": active.record.job.app,
                    "attempt": active.record.attempts,
                    "parking": active.park_deadline is not None,
                }
                for jid, active in sorted(self.active.items())
            ],
            "delayed": sorted(self.delayed),
            "jobs": [
                record.public()
                for _, record in sorted(self.queue.records.items())
            ],
        }
