"""repro: reproduction of "Efficiently Supporting Dynamic Task Parallelism
on Heterogeneous Cache-Coherent Systems" (Wang, Ta, Cheng, Batten — ISCA 2020).

The package provides:

* an architectural simulator for big.TINY manycores with heterogeneous
  cache coherence (``repro.machine``, ``repro.mem``, ``repro.noc``,
  ``repro.cores``);
* the paper's contribution — work-stealing runtimes for hardware-based
  coherence, HCC, and Direct Task Stealing (``repro.core``);
* the 13 evaluated application kernels (``repro.apps``);
* analysis tools and the experiment harness that regenerates every table
  and figure (``repro.analysis``, ``repro.harness``).

Quick start::

    from repro import Machine, WorkStealingRuntime, make_config
    from repro.apps import make_app

    machine = Machine(make_config("bt-hcc-dts-gwb", "quick"))
    app = make_app("ligra-bfs", scale=7, grain=8)
    app.setup(machine)
    runtime = WorkStealingRuntime(machine)
    cycles = runtime.run(app.make_root())
    app.check()
"""

from repro.config import SystemConfig, make_config
from repro.core import Task, WorkStealingRuntime, parallel_for, parallel_invoke
from repro.machine import Machine

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "SystemConfig",
    "make_config",
    "WorkStealingRuntime",
    "Task",
    "parallel_for",
    "parallel_invoke",
    "__version__",
]
