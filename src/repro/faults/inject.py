"""The runtime half of fault injection: seeded streams + per-site hooks.

One :class:`FaultInjector` is built per :class:`~repro.machine.Machine`
when a :class:`~repro.faults.plan.FaultPlan` is supplied.  Components that
host a fault site (mesh, ULI network, DRAM controllers, L1 caches, the
Chase-Lev deque) carry a ``fault_injector`` attribute that defaults to
``None`` at class level; the machine sets it on the instances it builds.
Every site therefore costs exactly one ``is not None`` branch when no
plan is active, and nothing at all when the attribute stays the class
default.

Determinism rules:

* The injector derives all randomness from a **private**
  :class:`~repro.engine.rng.XorShift64` seeded from ``plan.seed`` mixed
  with the machine seed.  It never touches ``machine.rng``, so thread
  context RNG streams are bit-identical with and without a plan — a
  prerequisite for comparing faulted and clean runs.
* Each site gets its own forked stream (one per core for L1 evictions),
  so enabling one fault type does not reshuffle another's draws.
* Sites draw in component code that executes identically under the fused
  and unfused event paths, so faulted runs stay byte-identical across
  ``REPRO_NO_FUSION``.

Fired faults are counted in ``stats`` (a ``faults`` stat group) and, when
a recording tracer is attached, appended to the trace's fault track.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.rng import XorShift64
from repro.faults.plan import FaultPlan
from repro.trace import NULL_TRACER

#: Golden-ratio odd constant for seed mixing (splitmix64 increment).
_SEED_MIX = 0x9E3779B97F4A7C15


class FaultInjector:
    """Per-machine fault state: plan, private RNG streams, counters."""

    __slots__ = (
        "plan",
        "tracer",
        "stats",
        "sim",
        "_noc_rng",
        "_uli_rng",
        "_steal_rng",
        "_l1_rngs",
    )

    def __init__(self, plan: FaultPlan, machine_seed: int, n_cores: int,
                 stats, sim, tracer=None):
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = stats.child("faults")
        self.sim = sim
        root = XorShift64((plan.seed * _SEED_MIX) ^ machine_seed ^ _SEED_MIX)
        self._noc_rng = root.fork()
        self._uli_rng = root.fork()
        self._steal_rng = root.fork()
        self._l1_rngs = [root.fork() for _ in range(n_cores)]

    # ------------------------------------------------------------------
    # Site hooks — one per instrumented component
    # ------------------------------------------------------------------
    def noc_extra(self) -> int:
        """Extra cycles for one mesh message (``noc/mesh.py``)."""
        plan = self.plan
        if plan.noc_jitter_prob and self._noc_rng.random() < plan.noc_jitter_prob:
            self.stats.add("noc_jitter")
            self.tracer.fault("noc", self.sim.now, plan.noc_jitter_cycles)
            return plan.noc_jitter_cycles
        return 0

    def uli_extra(self, src: int, dst: int) -> int:
        """Extra wire latency for one ULI message (``noc/uli.py``)."""
        plan = self.plan
        if plan.uli_delay_prob and self._uli_rng.random() < plan.uli_delay_prob:
            self.stats.add("uli_delay")
            self.tracer.fault("uli", self.sim.now, plan.uli_delay_cycles)
            return plan.uli_delay_cycles
        return 0

    def dram_service(self, now: int, service: int) -> int:
        """Possibly-throttled DRAM service time (``mem/dram.py``).

        Deterministic in ``now`` (no RNG draw): every ``period`` cycles
        the first ``window`` cycles multiply service time by ``factor``.
        """
        plan = self.plan
        if plan.dram_throttle_period and (
            now % plan.dram_throttle_period < plan.dram_throttle_window
        ):
            self.stats.add("dram_throttle")
            self.tracer.fault("dram", now, service * (plan.dram_throttle_factor - 1))
            return service * plan.dram_throttle_factor
        return service

    def l1_evict_fires(self, core_id: int) -> bool:
        """Should this line fill force-evict a victim? (``mem/l1/base.py``)."""
        plan = self.plan
        if plan.l1_evict_prob and self._l1_rngs[core_id].random() < plan.l1_evict_prob:
            # Counted by the cache itself (it knows whether a candidate
            # victim actually existed); only the trace event lands here.
            self.tracer.fault("l1_evict", self.sim.now, core_id)
            return True
        return False

    def l1_pick_victim(self, core_id: int, candidates):
        """Choose which resident line to force-evict."""
        return candidates[self._l1_rngs[core_id].randint(0, len(candidates) - 1)]

    def steal_aborts(self, thief_tid: int) -> bool:
        """Should this Chase-Lev steal give up pre-CAS? (``core/chaselev.py``)."""
        plan = self.plan
        if plan.steal_abort_prob and self._steal_rng.random() < plan.steal_abort_prob:
            self.stats.add("steal_abort")
            self.tracer.fault("steal_abort", self.sim.now, thief_tid)
            return True
        return False

    # ------------------------------------------------------------------
    def total_fired(self) -> int:
        return sum(self.stats._counters.values())


def make_injector(plan, config, n_cores: int, stats, sim,
                  tracer=None) -> Optional[FaultInjector]:
    """Build an injector for ``plan`` (accepts any ``FaultPlan.coerce`` form)."""
    plan = FaultPlan.coerce(plan)
    if plan is None or not plan.active:
        return None
    return FaultInjector(plan, config.seed, n_cores, stats, sim, tracer)
