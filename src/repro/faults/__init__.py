"""Deterministic fault injection (`repro.faults`).

See :mod:`repro.faults.plan` for what can be perturbed and
:mod:`repro.faults.inject` for how the perturbations are drawn and
recorded.  DESIGN.md §6 documents the fault-site map.
"""

from repro.faults.inject import FaultInjector, make_injector
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "make_injector"]
