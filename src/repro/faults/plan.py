"""Declarative fault plans: what to perturb, how hard, under which seed.

A :class:`FaultPlan` is a frozen description of adversarial-but-legal
timing perturbations.  Every fault a plan can express preserves the
functional semantics of the simulated program:

* **NoC jitter** — extra cycles on mesh messages (congested links).
* **ULI delay** — extra wire latency on steal requests/acks (a slow
  dedicated network).
* **DRAM throttle** — periodic windows where DRAM service time is
  multiplied (refresh storms, thermal throttling).
* **Forced L1 evictions** — a random resident line is capacity-evicted
  through the protocol's normal victim path (cache pressure from a
  co-runner).  The eviction uses the same writeback/notice machinery a
  real conflict miss would, so coherence is preserved exactly.
* **Steal aborts** — a Chase-Lev thief gives up before its claiming CAS
  (an adversarial scheduler losing every race).  The task stays in the
  deque, so no work is lost.

The first three are *timing-only*: they change when things happen but not
what traffic exists, so end-state application memory must be identical to
a fault-free run.  Forced evictions and steal aborts additionally change
the traffic and stats (extra writebacks, extra steal attempts) while still
never changing program results.

Plans are plain data: hashable, JSON-able via :meth:`as_dict`, parseable
from a CLI spec string via :meth:`parse`, and part of the harness memo
key so faulted runs never collide with clean ones in the result store.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Union


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative set of fault-injection knobs (all off by default)."""

    #: Seed for the injector's private RNG streams (mixed with the machine
    #: seed; never consumes ``machine.rng``, so context RNG streams are
    #: identical with and without faults).
    seed: int = 1

    #: Probability that a mesh message picks up extra latency, and how much.
    noc_jitter_prob: float = 0.0
    noc_jitter_cycles: int = 8

    #: Probability that a ULI request/ack is delayed, and by how much.
    uli_delay_prob: float = 0.0
    uli_delay_cycles: int = 16

    #: Every ``period`` cycles, DRAM service time is multiplied by
    #: ``factor`` for the first ``window`` cycles.  ``period == 0`` = off.
    dram_throttle_period: int = 0
    dram_throttle_window: int = 0
    dram_throttle_factor: int = 4

    #: Probability that an L1 line fill additionally force-evicts one
    #: random unrelated resident line through the protocol victim path.
    l1_evict_prob: float = 0.0

    #: Probability that a Chase-Lev steal attempt aborts before its CAS.
    steal_abort_prob: float = 0.0

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one fault site can fire."""
        return (
            self.noc_jitter_prob > 0.0
            or self.uli_delay_prob > 0.0
            or self.dram_throttle_period > 0
            or self.l1_evict_prob > 0.0
            or self.steal_abort_prob > 0.0
        )

    @property
    def timing_only(self) -> bool:
        """True when the plan only stretches latencies (no extra traffic).

        Timing-only plans must leave end-state application memory — and
        structural stats like tasks executed — identical to a fault-free
        run; ``repro fuzz`` asserts exactly that.
        """
        return self.l1_evict_prob == 0.0 and self.steal_abort_prob == 0.0

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "FaultPlan":
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, Union[int, float]]:
        """Plain-dict form (JSON-able; used in memo/store keys)."""
        return dataclasses.asdict(self)

    @classmethod
    def preset(cls, name: str, seed: int = 1) -> "FaultPlan":
        """Named plans for the CLI and CI smoke jobs."""
        if name in ("timing", "default"):
            return cls(
                seed=seed,
                noc_jitter_prob=0.2,
                noc_jitter_cycles=6,
                uli_delay_prob=0.3,
                uli_delay_cycles=12,
                dram_throttle_period=512,
                dram_throttle_window=64,
                dram_throttle_factor=4,
            )
        if name == "full":
            return cls.preset("timing", seed=seed).replace(
                l1_evict_prob=0.02,
                steal_abort_prob=0.25,
            )
        if name == "evict":
            return cls(seed=seed, l1_evict_prob=0.05)
        if name == "steal":
            return cls(seed=seed, steal_abort_prob=0.5)
        if name in ("none", "off"):
            return cls(seed=seed)
        raise ValueError(
            f"unknown fault preset {name!r}; known: timing, full, evict, steal, none"
        )

    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a CLI spec: a preset name, optionally followed by overrides.

        ``"timing"``, ``"full,seed=7"``, ``"seed=3,l1_evict_prob=0.1"`` —
        a bare ``key=value`` list starts from the all-off plan.  ``None``,
        ``""``, ``"none"`` and ``"off"`` mean no plan at all.
        """
        if not spec or spec in ("none", "off"):
            return None
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        if parts and "=" not in parts[0]:
            plan = cls.preset(parts[0])
            parts = parts[1:]
        else:
            plan = cls()
        fields = {f.name: f.type for f in dataclasses.fields(cls)}
        changes: Dict[str, Union[int, float]] = {}
        for part in parts:
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in fields:
                raise ValueError(
                    f"unknown fault knob {key!r}; known: {', '.join(sorted(fields))}"
                )
            changes[key] = float(raw) if "prob" in key else int(raw)
        return plan.replace(**changes) if changes else plan

    @classmethod
    def coerce(
        cls, value: Union[None, str, dict, "FaultPlan"]
    ) -> Optional["FaultPlan"]:
        """Normalize the harness-facing forms (None/str/dict/plan) to a plan."""
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(f"cannot interpret fault plan from {type(value).__name__}")
