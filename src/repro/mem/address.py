"""Simulated physical address space.

Addresses are byte addresses in a flat 64-bit space.  The machine word is
8 bytes and the cache line is 64 bytes (8 words), matching the paper's
simulated systems.  :class:`AddressSpace` is a bump allocator that hands out
line-aligned regions; it exists so that runtime structures (task deques,
task descriptors, mailboxes) and application data never overlap and so that
false sharing between structures is impossible unless requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

WORD_BYTES = 8
LINE_BYTES = 64
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES

# Precomputed shift/mask forms of the helpers below, for call-free address
# arithmetic on hot paths: ``addr & LINE_MASK`` == ``line_addr(addr)`` and
# ``(addr >> WORD_SHIFT) & WORD_INDEX_MASK`` == ``word_index(addr)``.
LINE_MASK = ~(LINE_BYTES - 1)
WORD_SHIFT = WORD_BYTES.bit_length() - 1
WORD_INDEX_MASK = WORDS_PER_LINE - 1


def line_addr(addr: int) -> int:
    """Base address of the cache line containing ``addr``."""
    return addr & ~(LINE_BYTES - 1)


def word_addr(addr: int) -> int:
    """Word-aligned address containing ``addr``."""
    return addr & ~(WORD_BYTES - 1)


def word_index(addr: int) -> int:
    """Index (0..7) of the word containing ``addr`` within its line."""
    return (addr & (LINE_BYTES - 1)) // WORD_BYTES


def align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Region:
    """A named allocated span of the address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Line-aligned bump allocator over the simulated address space."""

    #: Allocations start above zero so that address 0 can serve as NULL.
    BASE = 0x1000

    def __init__(self):
        self._next = self.BASE
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}

    def alloc(self, size_bytes: int, name: str = "anon") -> int:
        """Allocate ``size_bytes`` (rounded up to a whole line), return base."""
        if size_bytes <= 0:
            raise ValueError(f"allocation size must be positive, got {size_bytes}")
        size = align_up(size_bytes, LINE_BYTES)
        base = self._next
        self._next = base + size
        region = Region(name=name, base=base, size=size)
        self._regions.append(region)
        self._by_name.setdefault(name, region)
        return base

    def alloc_words(self, n_words: int, name: str = "anon") -> int:
        """Allocate an array of ``n_words`` machine words, return base."""
        return self.alloc(n_words * WORD_BYTES, name)

    def region(self, name: str) -> Region:
        return self._by_name[name]

    def regions(self) -> List[Region]:
        return list(self._regions)

    def owner_of(self, addr: int) -> str:
        """Name of the region containing ``addr`` (debugging aid)."""
        for region in self._regions:
            if region.contains(addr):
                return region.name
        return "<unmapped>"

    @property
    def bytes_allocated(self) -> int:
        return self._next - self.BASE

    # Checkpoint support (repro.engine.checkpoint).
    def export_state(self) -> dict:
        return {
            "next": self._next,
            "regions": [(r.name, r.base, r.size) for r in self._regions],
        }

    def load_state(self, state: dict) -> None:
        self._next = state["next"]
        self._regions = [
            Region(name=name, base=base, size=size)
            for name, base, size in state["regions"]
        ]
        self._by_name = {}
        for region in self._regions:
            self._by_name.setdefault(region.name, region)
