"""DRAM controller model: fixed access latency + bandwidth-limited queue.

The paper's systems have one memory controller per mesh column with 16GB/s
aggregate bandwidth.  We model each controller as a FIFO server: a request
occupies the controller for ``bytes / bytes_per_cycle`` cycles (bandwidth)
and the data returns after an additional fixed DRAM access latency.
Back-to-back requests queue behind each other, which is how memory-bandwidth
saturation shows up in the simulated systems.
"""

from __future__ import annotations

import math

from repro.engine.stats import StatGroup
from repro.trace.tracer import NULL_TRACER


class DramController:
    """A single bandwidth-limited memory channel."""

    #: Event tracer; replaced per-machine when tracing is enabled.
    tracer = NULL_TRACER

    #: Fault-injection hook (repro.faults); the machine sets it on its
    #: instances when a plan with DRAM throttle windows is active.
    fault_injector = None

    def __init__(
        self,
        controller_id: int,
        stats: StatGroup,
        access_latency: int = 60,
        bytes_per_cycle: float = 2.0,
    ):
        self.controller_id = controller_id
        self.access_latency = access_latency
        self.bytes_per_cycle = bytes_per_cycle
        self.busy_until = 0
        self.stats = stats.child(f"dram{controller_id}")

    # Checkpoint support (repro.engine.checkpoint): the queue clock is the
    # only per-run mutable field outside the stats tree.
    def export_state(self) -> dict:
        return {"busy_until": self.busy_until}

    def load_state(self, state: dict) -> None:
        self.busy_until = state["busy_until"]

    def access(self, now: int, n_bytes: int) -> int:
        """Issue an access at cycle ``now``; return its total latency."""
        service = max(1, math.ceil(n_bytes / self.bytes_per_cycle))
        if self.fault_injector is not None:
            service = self.fault_injector.dram_service(now, service)
        start = max(now, self.busy_until)
        self.busy_until = start + service
        completion = start + service + self.access_latency
        queue_delay = start - now
        self.stats.add("accesses")
        self.stats.add("bytes", n_bytes)
        self.stats.add("queue_cycles", queue_delay)
        self.stats.add("busy_cycles", service)
        if self.tracer.enabled:
            self.tracer.dram_sample(self.controller_id, now, queue_delay)
        return completion - now
