"""On-chip network traffic accounting by the paper's message categories.

Figure 8 of the paper breaks total NoC traffic (in bytes) into:

* ``cpu_req``    — read/ownership requests from L1 to L2
* ``wb_req``     — write-back / write-through data from L1 to L2
* ``data_resp``  — data responses from L2 to L1
* ``sync_req``   — synchronization (AMO-at-L2) requests
* ``sync_resp``  — synchronization responses
* ``coh_req``    — coherence requests (invalidations, owner recalls) L2 to L1
* ``coh_resp``   — coherence responses (acks, recalled data) L1 to L2
* ``dram_req``   — requests from L2 to DRAM
* ``dram_resp``  — responses from DRAM to L2

We count injected bytes per category (what Figure 8 plots) and additionally
byte-hops (bytes x mesh hops traversed) which feed the energy model.
"""

from __future__ import annotations

from typing import Dict

CATEGORIES = (
    "cpu_req",
    "wb_req",
    "data_resp",
    "sync_req",
    "sync_resp",
    "coh_req",
    "coh_resp",
    "dram_req",
    "dram_resp",
)

#: Message payload sizes in bytes.  Control messages are a single 8B word
#: (address/command); data messages add the 64B line or the 8B word being
#: moved.  These match the paper's 16B-flit Garnet configuration to first
#: order.
CTRL_BYTES = 8
WORD_DATA_BYTES = 16  # command + one data word
LINE_DATA_BYTES = 72  # command + full 64B line
AMO_BYTES = 16  # command + operand / old value


class TrafficMeter:
    """Accumulates NoC traffic by category."""

    def __init__(self):
        self.bytes: Dict[str, int] = {cat: 0 for cat in CATEGORIES}
        self.byte_hops: Dict[str, int] = {cat: 0 for cat in CATEGORIES}
        self.messages: Dict[str, int] = {cat: 0 for cat in CATEGORIES}

    def record(self, category: str, n_bytes: int, hops: int) -> None:
        if category not in self.bytes:
            raise KeyError(f"unknown traffic category {category!r}")
        self.bytes[category] += n_bytes
        self.byte_hops[category] += n_bytes * hops
        self.messages[category] += 1

    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def total_byte_hops(self) -> int:
        return sum(self.byte_hops.values())

    def snapshot(self) -> Dict[str, int]:
        return dict(self.bytes)

    # Checkpoint support (repro.engine.checkpoint).
    def export_state(self) -> Dict[str, Dict[str, int]]:
        return {
            "bytes": dict(self.bytes),
            "byte_hops": dict(self.byte_hops),
            "messages": dict(self.messages),
        }

    def load_state(self, state: Dict[str, Dict[str, int]]) -> None:
        self.bytes = dict(state["bytes"])
        self.byte_hops = dict(state["byte_hops"])
        self.messages = dict(state["messages"])

    def merged_with(self, other: "TrafficMeter") -> "TrafficMeter":
        out = TrafficMeter()
        for cat in CATEGORIES:
            out.bytes[cat] = self.bytes[cat] + other.bytes[cat]
            out.byte_hops[cat] = self.byte_hops[cat] + other.byte_hops[cat]
            out.messages[cat] = self.messages[cat] + other.messages[cat]
        return out
