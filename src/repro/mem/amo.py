"""Atomic memory operation (AMO) semantics.

A single helper shared by every protocol: MESI and DeNovo perform AMOs in
the private L1 after acquiring ownership; GPU-WT and GPU-WB perform them at
the shared L2.  Either way the read-modify-write itself is this function.
"""

from __future__ import annotations

from typing import Any, Tuple

#: Supported AMO kinds (RISC-V "A" extension subset plus CAS).
AMO_OPS = ("add", "sub", "or", "and", "xor", "xchg", "min", "max", "cas")


def apply_amo(op: str, old: int, operand: Any) -> Tuple[int, int]:
    """Apply ``op`` to ``old``; return (new_value, returned_old_value).

    For ``cas`` the operand is an ``(expected, desired)`` pair and the store
    happens only when ``old == expected``; the old value is always returned
    so callers can detect success (RISC-V ``lr/sc`` loops and x86
    ``cmpxchg`` both reduce to this).
    """
    if op == "add":
        return old + operand, old
    if op == "sub":
        return old - operand, old
    if op == "or":
        return old | operand, old
    if op == "and":
        return old & operand, old
    if op == "xor":
        return old ^ operand, old
    if op == "xchg":
        return operand, old
    if op == "min":
        return (operand if operand < old else old), old
    if op == "max":
        return (operand if operand > old else old), old
    if op == "cas":
        expected, desired = operand
        return (desired if old == expected else old), old
    raise ValueError(f"unknown AMO op {op!r}")
