"""Cache line and set-associative tag array models.

A single :class:`CacheLine` class serves every protocol: MESI uses the
``state`` field with M/E/S states; DeNovo uses V (valid) and R (registered,
i.e. owned); the GPU protocols use V with per-word ``valid_mask`` and
``dirty_mask``.  The shared L2 extends lines with directory state
(``sharers``/``owner``) — see ``repro.mem.l2``.

The tag array is true set-associative storage with LRU replacement; all
hit/miss/eviction behaviour in the simulator comes from these structures,
not from analytic hit-rate formulas.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.mem.address import LINE_BYTES, WORDS_PER_LINE

# Line states (shared across protocols; each protocol uses a subset).
INVALID = "I"
SHARED = "S"
EXCLUSIVE = "E"
MODIFIED = "M"
VALID = "V"  # software-centric protocols: clean, possibly stale
REGISTERED = "R"  # DeNovo: owned/dirty

FULL_MASK = (1 << WORDS_PER_LINE) - 1


class CacheLine:
    """One resident cache line: tag, state, data, and per-word masks."""

    __slots__ = ("addr", "state", "data", "valid_mask", "dirty_mask", "lru", "sharers", "owner")

    def __init__(self, addr: int, state: str, data: Optional[List[int]] = None):
        self.addr = addr
        self.state = state
        self.data: List[int] = data if data is not None else [0] * WORDS_PER_LINE
        self.valid_mask = FULL_MASK
        self.dirty_mask = 0
        self.lru = 0
        # Directory state; only used by L2 lines.
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None

    def word_valid(self, idx: int) -> bool:
        return bool(self.valid_mask & (1 << idx))

    def word_dirty(self, idx: int) -> bool:
        return bool(self.dirty_mask & (1 << idx))

    def set_word(self, idx: int, value: int, dirty: bool) -> None:
        self.data[idx] = value
        self.valid_mask |= 1 << idx
        if dirty:
            self.dirty_mask |= 1 << idx

    def dirty_word_count(self) -> int:
        return bin(self.dirty_mask).count("1")

    def pack(self) -> Tuple:
        """Plain-data form for ``repro.engine.checkpoint`` (no object refs)."""
        return (
            self.addr,
            self.state,
            list(self.data),
            self.valid_mask,
            self.dirty_mask,
            self.lru,
            sorted(self.sharers),
            self.owner,
        )

    @classmethod
    def unpack(cls, packed: Tuple) -> "CacheLine":
        addr, state, data, valid_mask, dirty_mask, lru, sharers, owner = packed
        line = cls(addr, state, list(data))
        line.valid_mask = valid_mask
        line.dirty_mask = dirty_mask
        line.lru = lru
        line.sharers = set(sharers)
        line.owner = owner
        return line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheLine(0x{self.addr:x}, {self.state}, v={self.valid_mask:02x}, d={self.dirty_mask:02x})"


class TagArray:
    """Set-associative tag/data array with LRU replacement.

    For power-of-two geometries (every configuration the paper evaluates)
    set indexing is a shift+mask; the div/mod fallback only exists for
    exotic user-supplied sizes.  The LRU victim scan is a plain loop over
    the (tiny, assoc-bounded) set so the hot eviction path allocates
    nothing — no key lists, no comparison lambdas.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = LINE_BYTES):
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(
                f"cache size {size_bytes} not divisible by assoc*line ({assoc}*{line_bytes})"
            )
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = size_bytes // (assoc * line_bytes)
        self._pow2 = (
            self.n_sets & (self.n_sets - 1) == 0
            and line_bytes & (line_bytes - 1) == 0
        )
        self._shift = line_bytes.bit_length() - 1
        self._mask = self.n_sets - 1
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.n_sets)]
        self._tick = 0

    def _set_index(self, line_addr: int) -> int:
        if self._pow2:
            return (line_addr >> self._shift) & self._mask
        return (line_addr // self.line_bytes) % self.n_sets

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line, updating LRU; None on miss."""
        if self._pow2:
            cache_set = self._sets[(line_addr >> self._shift) & self._mask]
        else:
            cache_set = self._sets[self._set_index(line_addr)]
        line = cache_set.get(line_addr)
        if line is not None:
            self._tick += 1
            line.lru = self._tick
        return line

    def peek(self, line_addr: int) -> Optional[CacheLine]:
        """Lookup without disturbing LRU (for snoops/recalls)."""
        if self._pow2:
            return self._sets[(line_addr >> self._shift) & self._mask].get(line_addr)
        return self._sets[self._set_index(line_addr)].get(line_addr)

    def insert(self, line: CacheLine) -> Optional[CacheLine]:
        """Insert ``line``; return the evicted victim line, if any."""
        addr = line.addr
        if self._pow2:
            target = self._sets[(addr >> self._shift) & self._mask]
        else:
            target = self._sets[self._set_index(addr)]
        victim = None
        if len(target) >= self.assoc and addr not in target:
            victim_addr = -1
            victim_lru = -1
            for cand_addr, cand in target.items():
                if victim_lru < 0 or cand.lru < victim_lru:
                    victim_lru = cand.lru
                    victim_addr = cand_addr
            victim = target.pop(victim_addr)
        self._tick += 1
        line.lru = self._tick
        target[addr] = line
        return victim

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        if self._pow2:
            return self._sets[(line_addr >> self._shift) & self._mask].pop(
                line_addr, None
            )
        return self._sets[self._set_index(line_addr)].pop(line_addr, None)

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (snapshot; safe to mutate array)."""
        for cache_set in self._sets:
            yield from list(cache_set.values())

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def clear(self) -> List[CacheLine]:
        """Drop every line, returning them (for flash invalidation)."""
        dropped: List[CacheLine] = []
        for cache_set in self._sets:
            dropped.extend(cache_set.values())
            cache_set.clear()
        return dropped

    # ------------------------------------------------------------------
    # Checkpoint support (repro.engine.checkpoint)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Packed resident lines plus the LRU clock."""
        return {
            "lines": [line.pack() for line in self.lines()],
            "tick": self._tick,
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output exactly (LRU order included).

        Lines are placed directly into their sets without touching the LRU
        clock, so replacement decisions after a restore are identical to
        the uninterrupted run's.
        """
        for cache_set in self._sets:
            cache_set.clear()
        for packed in state["lines"]:
            line = CacheLine.unpack(packed)
            self._sets[self._set_index(line.addr)][line.addr] = line
        self._tick = state["tick"]
