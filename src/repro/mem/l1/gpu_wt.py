"""GPU-WT software-centric coherent L1: write-through, no write-allocate.

Reader-initiated invalidation, no ownership, word-granularity write-through
(Table I).  Every store updates the shared L2 directly; a store miss does
not refill the cache, so temporal locality in writes is lost — the paper's
Figure 8 shows this as heavy ``wb_req`` traffic.  AMOs must be performed at
the shared cache since private lines have no ownership.

Stores retire through a small write(-through) buffer: the core stalls only
when the buffer is full, which happens under bursts of stores whose L2
round-trips have not drained.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.mem.address import LINE_MASK, WORD_INDEX_MASK, WORD_SHIFT, line_addr
from repro.mem.cacheline import CacheLine, VALID
from repro.mem.l1.base import L1Cache


class GpuWtL1(L1Cache):
    PROTOCOL = "gpu-wt"
    INVALIDATION = "reader"
    DIRTY_PROPAGATION = "noowner-wt"
    WRITE_GRANULARITY = "word"
    TRACKED = False
    AMO_AT_L2 = True
    NEEDS_FLUSH = False
    NEEDS_INVALIDATE = True

    WRITE_BUFFER_ENTRIES = 8

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._write_buffer: Deque[int] = deque()  # completion times

    def export_state(self) -> dict:
        state = super().export_state()
        state["write_buffer"] = list(self._write_buffer)
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._write_buffer = deque(state["write_buffer"])

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> Tuple[int, int]:
        line = self.tags.lookup(addr & LINE_MASK)
        if line is not None:
            cnt = self._cnt
            cnt["loads"] += 1
            cnt["load_hits"] += 1
            return line.data[(addr >> WORD_SHIFT) & WORD_INDEX_MASK], self.hit_latency
        self._cnt["loads"] += 1
        data, latency, _excl = self.l2.fetch_shared(
            self.core_id, addr, now + self.hit_latency, track_sharer=False
        )
        self._insert(CacheLine(line_addr(addr), VALID, data), now)
        return data[self._word(addr)], self.hit_latency + latency

    def store(self, addr: int, value: int, now: int) -> int:
        line = self.tags.lookup(addr & LINE_MASK)
        self._cnt["stores"] += 1
        if line is not None:
            self._cnt["store_hits"] += 1
            # Update-on-hit keeps the local copy coherent with our own writes.
            line.set_word((addr >> WORD_SHIFT) & WORD_INDEX_MASK, value, dirty=False)
        stall = self._write_buffer_stall(now)
        wt_latency = self.l2.write_through_word(
            self.core_id, addr, value, now + stall + self.hit_latency
        )
        self._write_buffer.append(now + stall + self.hit_latency + wt_latency)
        return self.hit_latency + stall

    def amo(self, op: str, addr: int, operand, now: int) -> Tuple[int, int]:
        """AMOs execute at the shared L2 (no ownership in private caches)."""
        self._cnt["amos"] += 1
        drain = self._drain_stall(now)
        old, latency = self.l2.amo_word(self.core_id, addr, op, operand, now + drain)
        line = self.tags.peek(line_addr(addr))
        if line is not None:
            # The response updates the stale local word.
            from repro.mem.amo import apply_amo

            new, _ = apply_amo(op, old, operand)
            line.set_word(self._word(addr), new, dirty=False)
        return old, drain + latency

    # ------------------------------------------------------------------
    # Software coherence operations
    # ------------------------------------------------------------------
    def invalidate_all(self, now: int) -> int:
        """All lines are clean: flash-invalidate everything."""
        self.stats.add("invalidate_ops")
        dropped = len(self.tags.clear())
        self.stats.add("lines_invalidated", dropped)
        self._trace_burst("invalidate", now, dropped, self.FLASH_OP_LATENCY)
        return self.FLASH_OP_LATENCY

    # flush_all inherited: no-op (every write is already through).

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _write_buffer_stall(self, now: int) -> int:
        """Retire completed entries; stall if the buffer is full."""
        buffer = self._write_buffer
        while buffer and buffer[0] <= now:
            buffer.popleft()
        if len(buffer) < self.WRITE_BUFFER_ENTRIES:
            return 0
        stall = buffer[0] - now
        buffer.popleft()
        self.stats.add("write_buffer_stall_cycles", stall)
        return stall

    def _drain_stall(self, now: int) -> int:
        """AMOs are ordered behind prior write-throughs (fence semantics)."""
        if not self._write_buffer:
            return 0
        last = self._write_buffer[-1]
        self._write_buffer.clear()
        return max(0, last - now)

    def _evict_victim(self, victim: CacheLine, now: int) -> None:
        # All resident lines are clean; evictions are silent.
        pass
