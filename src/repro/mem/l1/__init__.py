"""Private L1 cache protocols (Table I of the paper)."""

from repro.mem.l1.base import L1Cache
from repro.mem.l1.denovo import DeNovoL1
from repro.mem.l1.gpu_wb import GpuWbL1
from repro.mem.l1.gpu_wt import GpuWtL1
from repro.mem.l1.mesi import MesiL1

#: Protocol name -> L1 class, as used by system configurations.
PROTOCOLS = {
    "mesi": MesiL1,
    "denovo": DeNovoL1,
    "gpu-wt": GpuWtL1,
    "gpu-wb": GpuWbL1,
}

__all__ = ["L1Cache", "MesiL1", "DeNovoL1", "GpuWtL1", "GpuWbL1", "PROTOCOLS"]
