"""MESI hardware-based coherent L1.

Writer-initiated invalidation, ownership write-back dirty propagation, line
granularity (Table I).  ``cache_invalidate`` and ``cache_flush`` are no-ops:
hardware keeps the cache transparent to software.  AMOs are performed in the
L1 after acquiring M state, like any store.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mem.address import LINE_MASK, WORD_INDEX_MASK, WORD_SHIFT, line_addr
from repro.mem.amo import apply_amo
from repro.mem.cacheline import (
    CacheLine,
    EXCLUSIVE,
    MODIFIED,
    SHARED,
)
from repro.mem.l1.base import L1Cache


class MesiL1(L1Cache):
    PROTOCOL = "mesi"
    INVALIDATION = "writer"
    DIRTY_PROPAGATION = "owner-wb"
    WRITE_GRANULARITY = "line"
    TRACKED = True
    AMO_AT_L2 = False
    NEEDS_FLUSH = False
    NEEDS_INVALIDATE = False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def load(self, addr: int, now: int) -> Tuple[int, int]:
        line = self.tags.lookup(addr & LINE_MASK)
        if line is not None:
            cnt = self._cnt
            cnt["loads"] += 1
            cnt["load_hits"] += 1
            return line.data[(addr >> WORD_SHIFT) & WORD_INDEX_MASK], self.hit_latency
        self._cnt["loads"] += 1
        data, latency, exclusive = self.l2.fetch_shared(
            self.core_id, addr, now + self.hit_latency, track_sharer=True
        )
        new = CacheLine(line_addr(addr), EXCLUSIVE if exclusive else SHARED, data)
        self._insert(new, now)
        return data[self._word(addr)], self.hit_latency + latency

    def store(self, addr: int, value: int, now: int) -> int:
        base = addr & LINE_MASK
        line = self.tags.lookup(base)
        if line is not None and line.state in (MODIFIED, EXCLUSIVE):
            cnt = self._cnt
            cnt["stores"] += 1
            cnt["store_hits"] += 1
            line.state = MODIFIED
            line.set_word((addr >> WORD_SHIFT) & WORD_INDEX_MASK, value, dirty=True)
            return self.hit_latency
        if line is not None and line.state == SHARED:
            self._cnt["stores"] += 1
            latency = self.l2.upgrade(self.core_id, addr, now + self.hit_latency)
            line.state = MODIFIED
            line.set_word(self._word(addr), value, dirty=True)
            return self._buffered_store_latency(now, latency)
        self._cnt["stores"] += 1
        data, latency = self.l2.fetch_exclusive(self.core_id, addr, now + self.hit_latency)
        new = CacheLine(base, MODIFIED, data)
        new.set_word(self._word(addr), value, dirty=True)
        self._insert(new, now)
        return self._buffered_store_latency(now, latency)

    def amo(self, op: str, addr: int, operand, now: int) -> Tuple[int, int]:
        """RMW in the private cache after acquiring ownership.

        AMOs are fences: they drain the store buffer first.
        """
        self._cnt["amos"] += 1
        drain = self._drain_store_buffer(now)
        now += drain
        base = line_addr(addr)
        line = self.tags.lookup(base)
        if line is not None and line.state in (MODIFIED, EXCLUSIVE):
            latency = self.hit_latency
        elif line is not None and line.state == SHARED:
            latency = self.hit_latency + self.l2.upgrade(self.core_id, addr, now)
        else:
            data, fetch_latency = self.l2.fetch_exclusive(self.core_id, addr, now)
            line = CacheLine(base, MODIFIED, data)
            self._insert(line, now)
            latency = self.hit_latency + fetch_latency
        line.state = MODIFIED
        idx = self._word(addr)
        new, old = apply_amo(op, line.data[idx], operand)
        line.set_word(idx, new, dirty=True)
        return old, drain + latency

    # ------------------------------------------------------------------
    # Snoops / eviction
    # ------------------------------------------------------------------
    def snoop_recall(self, base: int) -> Tuple[Optional[List[int]], int, bool]:
        line = self.tags.peek(line_addr(base))
        if line is None:
            return None, 0, False
        dirty = line.dirty_mask if line.state == MODIFIED else 0
        words = list(line.data) if dirty else None
        # Downgrade to S; the directory re-adds us to the sharer list.
        line.state = SHARED
        line.dirty_mask = 0
        self.stats.add("recalls")
        return words, dirty, True

    def _evict_victim(self, victim: CacheLine, now: int) -> None:
        # MODIFIED implies a nonzero dirty mask (every M transition sets a
        # dirty word; repro.verify proves M-with-empty-mask unreachable).
        if victim.state == MODIFIED and victim.dirty_mask:
            self.l2.writeback_line(
                self.core_id, victim.addr, victim.data, victim.dirty_mask,
                now, release_ownership=True,
            )
        else:
            self.l2.eviction_notice(self.core_id, victim.addr)
